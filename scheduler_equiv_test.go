// Differential scheduler-equivalence suite: the timing wheel must be
// observationally identical to the reference binary heap. Every benchmark in
// the figure roster and every crashmc adversarial profile runs under both
// schedulers across seeds 1–8, and the full Results/telemetry snapshot —
// every counter, distribution, resource utilization, the per-line coherence
// order, and the durable NVM image — must match byte for byte. Timestamp
// order is semantically load-bearing here (persists follow coherence
// serialization order), so "close enough" is not a scheduler property this
// simulator can accept.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/crashmc"
	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/tsoper"
)

// equivSeeds is the seed sweep the issue pins: eight distinct workload
// generations per case.
var equivSeeds = [...]int64{1, 2, 3, 4, 5, 6, 7, 8}

// equivSystems cycles per seed so the sweep exercises all four persistency
// systems without quadrupling the run count.
var equivSystems = [...]tsoper.System{tsoper.TSOPER, tsoper.HWRP, tsoper.BSP, tsoper.STW}

// runEquiv executes one configuration under the given scheduler and returns
// the results plus the serialized snapshot.
func runEquiv(t *testing.T, p tsoper.Profile, sys tsoper.System, o tsoper.RunOptions) (*tsoper.Results, []byte) {
	t.Helper()
	r, err := tsoper.Run(p, sys, o)
	if err != nil {
		t.Fatalf("%s/%s (scheduler %s): %v", p.Name, sys, o.Scheduler, err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return r, buf.Bytes()
}

// assertEquivalent runs the configuration under heap and wheel and demands
// byte-identical snapshots plus identical coherence order and durable image.
func assertEquivalent(t *testing.T, p tsoper.Profile, sys tsoper.System, o tsoper.RunOptions) {
	t.Helper()
	oh, ow := o, o
	oh.Scheduler = tsoper.SchedulerHeap
	ow.Scheduler = tsoper.SchedulerWheel
	rh, sh := runEquiv(t, p, sys, oh)
	rw, sw := runEquiv(t, p, sys, ow)
	if !bytes.Equal(sh, sw) {
		diff := rh.Snapshot().Diff(rw.Snapshot())
		for i, d := range diff {
			if i >= 20 {
				t.Errorf("... %d more", len(diff)-i)
				break
			}
			t.Errorf("diverged: %+v", d)
		}
		t.Fatalf("heap and wheel snapshots differ (%d bytes vs %d)", len(sh), len(sw))
	}
	if rh.Cycles != rw.Cycles || rh.DrainCycles != rw.DrainCycles {
		t.Fatalf("cycle divergence: heap (%d, %d) wheel (%d, %d)",
			rh.Cycles, rh.DrainCycles, rw.Cycles, rw.DrainCycles)
	}
	if !reflect.DeepEqual(rh.LineOrder, rw.LineOrder) {
		t.Fatal("per-line coherence serialization order differs between schedulers")
	}
	if !reflect.DeepEqual(rh.Durable, rw.Durable) {
		t.Fatal("durable NVM image differs between schedulers")
	}
}

// TestSchedulerEquivalenceBenchmarks sweeps the figure roster.
func TestSchedulerEquivalenceBenchmarks(t *testing.T) {
	for _, name := range figureBenches {
		p, ok := tsoper.Benchmark(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			t.Run(fmt.Sprintf("%s/%s/seed%d", name, sys, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, p, sys, tsoper.RunOptions{Scale: 0.05, Seed: seed})
			})
		}
	}
}

// TestSchedulerEquivalenceLitmus drives the Px86 litmus corpus through
// both schedulers across eight jitter seeds and demands byte-identical
// serialized exploration results: the same crash points harvested, the
// same durable outcomes reached with the same witnesses, the same checker
// verdicts. Crash-point cycles are part of the serialized form, so any
// scheduler-dependent event reordering surfaces as a byte diff.
func TestSchedulerEquivalenceLitmus(t *testing.T) {
	tests, err := litmus.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		for _, seed := range equivSeeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tt.Name, seed), func(t *testing.T) {
				t.Parallel()
				var blobs [][]byte
				for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerWheel} {
					o := litmus.Default()
					o.Scheduler = kind
					o.Perturbs = []litmus.Perturb{{Jitter: seed}}
					o.Coverage = false // one perturbation cannot cover alone
					r := litmus.Explore(tt, o)
					if err := r.Err(); err != nil {
						t.Fatal(err)
					}
					blob, err := json.Marshal(r)
					if err != nil {
						t.Fatal(err)
					}
					blobs = append(blobs, blob)
				}
				if !bytes.Equal(blobs[0], blobs[1]) {
					t.Fatalf("heap and wheel litmus explorations diverge:\nheap:  %s\nwheel: %s",
						blobs[0], blobs[1])
				}
			})
		}
	}
}

// TestSchedulerEquivalencePrograms sweeps the genuinely-new workload-VM
// library programs — the scenarios the profile generator cannot express —
// under heap vs wheel. Programs compile to ordinary per-core op streams, so
// the same byte-identity bar applies: full snapshot, coherence order, and
// durable image.
func TestSchedulerEquivalencePrograms(t *testing.T) {
	for _, name := range []string{"producer-consumer-ring", "work-stealing-deque", "log-structured-writer"} {
		p, err := tsoper.LoadProgram(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			seed := seed
			t.Run(fmt.Sprintf("%s/%s/seed%d", name, sys, seed), func(t *testing.T) {
				t.Parallel()
				runProg := func(kind sim.SchedulerKind) (*tsoper.Results, []byte) {
					r, err := tsoper.RunProgram(p, sys, tsoper.RunOptions{Seed: seed, Scheduler: kind})
					if err != nil {
						t.Fatalf("%s/%s (scheduler %s): %v", name, sys, kind, err)
					}
					var buf bytes.Buffer
					if err := r.Snapshot().WriteJSON(&buf); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					return r, buf.Bytes()
				}
				rh, sh := runProg(tsoper.SchedulerHeap)
				rw, sw := runProg(tsoper.SchedulerWheel)
				if !bytes.Equal(sh, sw) {
					for i, d := range rh.Snapshot().Diff(rw.Snapshot()) {
						if i >= 20 {
							break
						}
						t.Errorf("diverged: %+v", d)
					}
					t.Fatalf("heap and wheel snapshots differ (%d bytes vs %d)", len(sh), len(sw))
				}
				if !reflect.DeepEqual(rh.LineOrder, rw.LineOrder) {
					t.Fatal("per-line coherence serialization order differs between schedulers")
				}
				if !reflect.DeepEqual(rh.Durable, rw.Durable) {
					t.Fatal("durable NVM image differs between schedulers")
				}
			})
		}
	}
}

// TestSchedulerEquivalenceAdversaries sweeps the crashmc adversarial
// profiles under the pressure configuration (tiny AGB, tiny AG limit,
// two-entry eviction buffers) — the regime where event ordering bugs in a
// scheduler would surface as silent durability divergence.
func TestSchedulerEquivalenceAdversaries(t *testing.T) {
	for _, p := range crashmc.Adversaries() {
		p := p
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			cfg := crashmc.PressureConfig(machine.SystemKind(sys))
			t.Run(fmt.Sprintf("%s/%s/seed%d", p.Name, sys, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, p, sys, tsoper.RunOptions{Scale: 0.2, Seed: seed, Config: &cfg})
			})
		}
	}
}
