// Differential scheduler-equivalence suite: the timing wheel must be
// observationally identical to the reference binary heap. Every benchmark in
// the figure roster and every crashmc adversarial profile runs under both
// schedulers across seeds 1–8, and the full Results/telemetry snapshot —
// every counter, distribution, resource utilization, the per-line coherence
// order, and the durable NVM image — must match byte for byte. Timestamp
// order is semantically load-bearing here (persists follow coherence
// serialization order), so "close enough" is not a scheduler property this
// simulator can accept.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/crashmc"
	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/tsoper"
)

// equivSeeds is the seed sweep the issue pins: eight distinct workload
// generations per case.
var equivSeeds = [...]int64{1, 2, 3, 4, 5, 6, 7, 8}

// equivSystems cycles per seed so the sweep exercises all four persistency
// systems without quadrupling the run count.
var equivSystems = [...]tsoper.System{tsoper.TSOPER, tsoper.HWRP, tsoper.BSP, tsoper.STW}

// runEquiv executes one configuration under the given scheduler and returns
// the results plus the serialized snapshot.
func runEquiv(t *testing.T, p tsoper.Profile, sys tsoper.System, o tsoper.RunOptions) (*tsoper.Results, []byte) {
	t.Helper()
	r, err := tsoper.Run(p, sys, o)
	if err != nil {
		t.Fatalf("%s/%s (scheduler %s): %v", p.Name, sys, o.Scheduler, err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return r, buf.Bytes()
}

// assertCheckpointResume is the checkpoint axis of the differential suite:
// the same configuration run with a checkpoint taken at roughly the
// midpoint, and again resumed from that blob, must both reproduce the
// straight-through snapshot byte for byte.
func assertCheckpointResume(t *testing.T, p tsoper.Profile, sys tsoper.System, o tsoper.RunOptions, cycles uint64, want []byte) {
	t.Helper()
	mid := cycles / 2
	if mid == 0 {
		mid = 1
	}
	var blob []byte
	oc := o
	oc.CheckpointEvery = mid
	oc.OnCheckpoint = func(b []byte) {
		if blob == nil {
			blob = b // the midpoint blob, before any later stride
		}
	}
	_, sc := runEquiv(t, p, sys, oc)
	if !bytes.Equal(sc, want) {
		t.Fatalf("checkpointing perturbed the run (scheduler %s): %d bytes vs %d", o.Scheduler, len(sc), len(want))
	}
	if blob == nil {
		t.Fatalf("no checkpoint emitted at stride %d", mid)
	}
	or := o
	or.ResumeFrom = blob
	rr, sr := runEquiv(t, p, sys, or)
	if !bytes.Equal(sr, want) {
		t.Fatalf("resumed run diverged from straight-through (scheduler %s, resumed at ~%d of %d cycles): %d bytes vs %d",
			o.Scheduler, mid, cycles, len(sr), len(want))
	}
	if uint64(rr.Cycles) != cycles {
		t.Fatalf("resumed run finished at cycle %d, straight-through at %d", rr.Cycles, cycles)
	}
}

// assertEquivalent runs the configuration under heap and wheel and demands
// byte-identical snapshots plus identical coherence order and durable image
// — and, on each scheduler, that checkpoint-at-midpoint-then-resume
// reproduces the same bytes.
func assertEquivalent(t *testing.T, p tsoper.Profile, sys tsoper.System, o tsoper.RunOptions) {
	t.Helper()
	oh, ow := o, o
	oh.Scheduler = tsoper.SchedulerHeap
	ow.Scheduler = tsoper.SchedulerWheel
	rh, sh := runEquiv(t, p, sys, oh)
	rw, sw := runEquiv(t, p, sys, ow)
	if !bytes.Equal(sh, sw) {
		diff := rh.Snapshot().Diff(rw.Snapshot())
		for i, d := range diff {
			if i >= 20 {
				t.Errorf("... %d more", len(diff)-i)
				break
			}
			t.Errorf("diverged: %+v", d)
		}
		t.Fatalf("heap and wheel snapshots differ (%d bytes vs %d)", len(sh), len(sw))
	}
	if rh.Cycles != rw.Cycles || rh.DrainCycles != rw.DrainCycles {
		t.Fatalf("cycle divergence: heap (%d, %d) wheel (%d, %d)",
			rh.Cycles, rh.DrainCycles, rw.Cycles, rw.DrainCycles)
	}
	if !reflect.DeepEqual(rh.LineOrder, rw.LineOrder) {
		t.Fatal("per-line coherence serialization order differs between schedulers")
	}
	if !reflect.DeepEqual(rh.Durable, rw.Durable) {
		t.Fatal("durable NVM image differs between schedulers")
	}
	assertCheckpointResume(t, p, sys, oh, uint64(rh.Cycles), sh)
	assertCheckpointResume(t, p, sys, ow, uint64(rw.Cycles), sw)
}

// TestSchedulerEquivalenceBenchmarks sweeps the figure roster.
func TestSchedulerEquivalenceBenchmarks(t *testing.T) {
	for _, name := range figureBenches {
		p, ok := tsoper.Benchmark(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			t.Run(fmt.Sprintf("%s/%s/seed%d", name, sys, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, p, sys, tsoper.RunOptions{Scale: 0.05, Seed: seed})
			})
		}
	}
}

// TestSchedulerEquivalenceLitmus drives the Px86 litmus corpus through
// both schedulers across eight jitter seeds and demands byte-identical
// serialized exploration results: the same crash points harvested, the
// same durable outcomes reached with the same witnesses, the same checker
// verdicts. Crash-point cycles are part of the serialized form, so any
// scheduler-dependent event reordering surfaces as a byte diff.
func TestSchedulerEquivalenceLitmus(t *testing.T) {
	tests, err := litmus.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		for _, seed := range equivSeeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tt.Name, seed), func(t *testing.T) {
				t.Parallel()
				var blobs [][]byte
				for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerWheel} {
					o := litmus.Default()
					o.Scheduler = kind
					o.Perturbs = []litmus.Perturb{{Jitter: seed}}
					o.Coverage = false // one perturbation cannot cover alone
					r := litmus.Explore(tt, o)
					if err := r.Err(); err != nil {
						t.Fatal(err)
					}
					blob, err := json.Marshal(r)
					if err != nil {
						t.Fatal(err)
					}
					blobs = append(blobs, blob)
				}
				if !bytes.Equal(blobs[0], blobs[1]) {
					t.Fatalf("heap and wheel litmus explorations diverge:\nheap:  %s\nwheel: %s",
						blobs[0], blobs[1])
				}
			})
		}
	}
}

// TestCheckpointEquivalenceLitmus drives every litmus-corpus workload
// through the machine directly under both schedulers, checkpointing at the
// midpoint and resuming: snapshots, per-line coherence order, and durable
// image must be byte-identical to the straight-through run. (Explore's own
// crash sweeps stay checkpoint-free; this covers the workloads they run.)
func TestCheckpointEquivalenceLitmus(t *testing.T) {
	tests, err := litmus.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		for _, seed := range equivSeeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tt.Name, seed), func(t *testing.T) {
				t.Parallel()
				for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerWheel} {
					cfg := machine.TableI(machine.TSOPER)
					cfg.Cores = len(tt.Cores)
					cfg.Scheduler = kind

					straight, err := machine.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					rs, err := straight.RunChecked(tt.Workload(litmus.Perturb{Jitter: seed}))
					if err != nil {
						t.Fatal(err)
					}
					var want bytes.Buffer
					if err := rs.Snapshot().WriteJSON(&want); err != nil {
						t.Fatal(err)
					}

					mid := rs.Cycles / 2
					if mid == 0 {
						mid = 1
					}
					m, err := machine.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					m.Start(tt.Workload(litmus.Perturb{Jitter: seed}))
					if _, err := m.Advance(mid); err != nil {
						t.Fatal(err)
					}
					blob, err := m.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					resumed, err := machine.Restore(cfg, tt.Workload(litmus.Perturb{Jitter: seed}), blob)
					if err != nil {
						t.Fatalf("restore (scheduler %s): %v", kind, err)
					}
					for {
						done, err := resumed.Advance(sim.MaxTime)
						if err != nil {
							t.Fatal(err)
						}
						if done {
							break
						}
					}
					rr := resumed.Results()
					var got bytes.Buffer
					if err := rr.Snapshot().WriteJSON(&got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						t.Fatalf("resumed litmus run diverged (scheduler %s, mid %d)", kind, mid)
					}
					if !reflect.DeepEqual(rr.LineOrder, rs.LineOrder) {
						t.Fatalf("coherence order diverged after resume (scheduler %s)", kind)
					}
					if !reflect.DeepEqual(rr.Durable, rs.Durable) {
						t.Fatalf("durable image diverged after resume (scheduler %s)", kind)
					}
				}
			})
		}
	}
}

// TestSchedulerEquivalencePrograms sweeps the genuinely-new workload-VM
// library programs — the scenarios the profile generator cannot express —
// under heap vs wheel. Programs compile to ordinary per-core op streams, so
// the same byte-identity bar applies: full snapshot, coherence order, and
// durable image.
func TestSchedulerEquivalencePrograms(t *testing.T) {
	for _, name := range []string{"producer-consumer-ring", "work-stealing-deque", "log-structured-writer"} {
		p, err := tsoper.LoadProgram(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			seed := seed
			t.Run(fmt.Sprintf("%s/%s/seed%d", name, sys, seed), func(t *testing.T) {
				t.Parallel()
				runProg := func(kind sim.SchedulerKind) (*tsoper.Results, []byte) {
					r, err := tsoper.RunProgram(p, sys, tsoper.RunOptions{Seed: seed, Scheduler: kind})
					if err != nil {
						t.Fatalf("%s/%s (scheduler %s): %v", name, sys, kind, err)
					}
					var buf bytes.Buffer
					if err := r.Snapshot().WriteJSON(&buf); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					return r, buf.Bytes()
				}
				rh, sh := runProg(tsoper.SchedulerHeap)
				rw, sw := runProg(tsoper.SchedulerWheel)
				if !bytes.Equal(sh, sw) {
					for i, d := range rh.Snapshot().Diff(rw.Snapshot()) {
						if i >= 20 {
							break
						}
						t.Errorf("diverged: %+v", d)
					}
					t.Fatalf("heap and wheel snapshots differ (%d bytes vs %d)", len(sh), len(sw))
				}
				if !reflect.DeepEqual(rh.LineOrder, rw.LineOrder) {
					t.Fatal("per-line coherence serialization order differs between schedulers")
				}
				if !reflect.DeepEqual(rh.Durable, rw.Durable) {
					t.Fatal("durable NVM image differs between schedulers")
				}

				// Checkpoint axis: midpoint checkpoint + resume reproduces
				// the straight-through bytes on each scheduler.
				for _, kind := range []sim.SchedulerKind{tsoper.SchedulerHeap, tsoper.SchedulerWheel} {
					want := sh
					if kind == tsoper.SchedulerWheel {
						want = sw
					}
					mid := uint64(rh.Cycles) / 2
					if mid == 0 {
						mid = 1
					}
					var blob []byte
					_, err := tsoper.RunProgram(p, sys, tsoper.RunOptions{
						Seed: seed, Scheduler: kind, CheckpointEvery: mid,
						OnCheckpoint: func(b []byte) {
							if blob == nil {
								blob = b
							}
						},
					})
					if err != nil {
						t.Fatalf("checkpointed run: %v", err)
					}
					if blob == nil {
						t.Fatalf("no checkpoint emitted at stride %d", mid)
					}
					rr, err := tsoper.RunProgram(p, sys, tsoper.RunOptions{
						Seed: seed, Scheduler: kind, ResumeFrom: blob,
					})
					if err != nil {
						t.Fatalf("resumed run: %v", err)
					}
					var buf bytes.Buffer
					if err := rr.Snapshot().WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf.Bytes(), want) {
						t.Fatalf("resumed program run diverged (scheduler %s)", kind)
					}
				}
			})
		}
	}
}

// TestSchedulerEquivalenceTardisLitmus is the protocol axis of the
// differential suite: the tardis timestamp backend must be exactly as
// scheduler-deterministic as the sharing-list default. Every corpus test
// explores under heap and wheel on tardis and the serialized results must
// be byte-identical — crash-point cycles, witnesses, and checker verdicts
// included. Four jitter seeds keep the sweep affordable next to the
// eight-seed SLC pass above.
func TestSchedulerEquivalenceTardisLitmus(t *testing.T) {
	tests, err := litmus.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		for _, seed := range equivSeeds[:4] {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tt.Name, seed), func(t *testing.T) {
				t.Parallel()
				var blobs [][]byte
				for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerWheel} {
					o := litmus.Default()
					o.Scheduler = kind
					o.Coherence = machine.CoherenceTardis
					o.Perturbs = []litmus.Perturb{{Jitter: seed}}
					o.Coverage = false // one perturbation cannot cover alone
					r := litmus.Explore(tt, o)
					if err := r.Err(); err != nil {
						t.Fatal(err)
					}
					if r.Protocol != "tardis" {
						t.Fatalf("result protocol %q, want tardis", r.Protocol)
					}
					blob, err := json.Marshal(r)
					if err != nil {
						t.Fatal(err)
					}
					blobs = append(blobs, blob)
				}
				if !bytes.Equal(blobs[0], blobs[1]) {
					t.Fatalf("heap and wheel tardis explorations diverge:\nheap:  %s\nwheel: %s",
						blobs[0], blobs[1])
				}
			})
		}
	}
}

// TestSchedulerEquivalenceTardisAdversaries repeats the adversarial
// pressure sweep on the tardis backend: timestamp bumps and lease renewals
// replace invalidation walks, so the event population differs completely
// from SLC — and the heap/wheel byte-identity bar must hold for it too,
// checkpoint-resume axis included (via assertEquivalent).
func TestSchedulerEquivalenceTardisAdversaries(t *testing.T) {
	for _, p := range crashmc.Adversaries() {
		p := p
		for i, seed := range equivSeeds[:4] {
			sys := equivSystems[i%len(equivSystems)]
			cfg := crashmc.PressureConfig(machine.SystemKind(sys))
			t.Run(fmt.Sprintf("%s/%s/seed%d", p.Name, sys, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, p, sys, tsoper.RunOptions{
					Scale: 0.2, Seed: seed, Config: &cfg, Protocol: tsoper.ProtocolTardis,
				})
			})
		}
	}
}

// TestSchedulerEquivalenceAdversaries sweeps the crashmc adversarial
// profiles under the pressure configuration (tiny AGB, tiny AG limit,
// two-entry eviction buffers) — the regime where event ordering bugs in a
// scheduler would surface as silent durability divergence.
func TestSchedulerEquivalenceAdversaries(t *testing.T) {
	for _, p := range crashmc.Adversaries() {
		p := p
		for i, seed := range equivSeeds {
			sys := equivSystems[i%len(equivSystems)]
			cfg := crashmc.PressureConfig(machine.SystemKind(sys))
			t.Run(fmt.Sprintf("%s/%s/seed%d", p.Name, sys, seed), func(t *testing.T) {
				t.Parallel()
				assertEquivalent(t, p, sys, tsoper.RunOptions{Scale: 0.2, Seed: seed, Config: &cfg})
			})
		}
	}
}
