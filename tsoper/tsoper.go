// Package tsoper is the public API of the TSOPER reproduction: an
// architectural simulator for hardware strict TSO persistency as proposed
// in "TSOPER: Efficient Coherence-Based Strict Persistency" (HPCA 2021).
//
// The simulator models an eight-core CMP with TSO store buffers, private
// caches running an SCI-style sharing-list coherence protocol (SLC), a
// banked shared LLC, an Atomic Group Buffer (AGB) in the persistent domain,
// a mesh NoC, and NVM ranks. Seven persistency systems are available, from
// the non-persistent SLC baseline through relaxed (HW-RP) and
// epoch-through-LLC (BSP and stepping stones) designs to stop-the-world and
// full TSOPER strict persistency.
//
// Quick start:
//
//	profile, _ := tsoper.Benchmark("radix")
//	res, err := tsoper.Run(profile, tsoper.TSOPER, tsoper.RunOptions{})
//	fmt.Println(res)
//
// Crash-consistency testing:
//
//	cs, err := tsoper.Crash(profile, tsoper.TSOPER, 25_000, tsoper.RunOptions{})
//	err = tsoper.Check(cs) // nil: the recovered image is a TSO-consistent cut
package tsoper

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/checker"
	"repro/internal/ckpt"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

// System selects the persistency system under evaluation.
type System = machine.SystemKind

// The systems compared in the paper's evaluation (§V).
const (
	// Baseline is SLC coherence with no persistency support.
	Baseline = machine.Baseline
	// HWRP is hardware relaxed persistency over synchronization-free regions.
	HWRP = machine.HWRP
	// BSP is Buffered Strict Persistency (epochs through the LLC).
	BSP = machine.BSP
	// BSPSLC is BSP with sharing-list coherence (no L1 exclusion).
	BSPSLC = machine.BSPSLC
	// BSPSLCAGB is BSP+SLC persisting through an idealized unbounded AGB.
	BSPSLCAGB = machine.BSPSLCAGB
	// STW is stop-the-world strict TSO persistency.
	STW = machine.STW
	// TSOPER is the paper's full proposal.
	TSOPER = machine.TSOPER
)

// Protocol selects the coherence backend the machine runs on. Every system
// composes with every protocol: the sharing list remains the retention
// structure for unpersisted versions, while the protocol sets invalidation
// timing and — under Tardis — answers persist-ordering queries from
// timestamp order instead of list order.
type Protocol = machine.CoherenceKind

const (
	// ProtocolSLC is the paper's SCI-style sharing-list protocol (default).
	ProtocolSLC = machine.CoherenceSLC
	// ProtocolMESI is a conventional bit-vector directory MESI.
	ProtocolMESI = machine.CoherenceMESI
	// ProtocolTardis is timestamp coherence: lease-based reads, logical-time
	// bumps on writes, no invalidation traffic.
	ProtocolTardis = machine.CoherenceTardis
)

// Protocols lists every coherence backend in bake-off order.
func Protocols() []Protocol { return machine.Coherences() }

// ParseProtocol parses "slc" (or ""), "mesi", and "tardis".
func ParseProtocol(s string) (Protocol, error) { return machine.ParseCoherenceKind(s) }

// Config is the full machine configuration (Table I geometry and timing).
type Config = machine.Config

// Results summarizes a completed simulation.
type Results = machine.Results

// CrashState is the recovered durable state after an injected crash.
type CrashState = machine.CrashState

// Profile parameterizes a synthetic workload.
type Profile = trace.Profile

// Workload is a generated per-core operation trace.
type Workload = trace.Workload

// Systems lists every available system in figure order.
func Systems() []System { return machine.Systems() }

// TableI returns the paper's evaluated configuration for a system.
func TableI(system System) Config { return machine.TableI(system) }

// Benchmarks returns the 22 synthetic profiles standing in for the paper's
// PARSEC 3.0 and Splash-3 roster.
func Benchmarks() []Profile { return trace.Benchmarks() }

// Benchmark looks up one benchmark profile by name.
func Benchmark(name string) (Profile, bool) { return trace.ByName(name) }

// Generate builds the deterministic workload for a profile.
func Generate(p Profile, cores int, seed int64) *Workload {
	return trace.Generate(p, cores, seed)
}

// Scheduler selects the simulation engine's event-queue implementation.
type Scheduler = sim.SchedulerKind

const (
	// SchedulerWheel is the default hierarchical timing wheel.
	SchedulerWheel = sim.SchedulerWheel
	// SchedulerHeap is the binary-heap reference implementation.
	SchedulerHeap = sim.SchedulerHeap
)

// ParseScheduler parses "wheel" (or "") and "heap".
func ParseScheduler(s string) (Scheduler, error) { return sim.ParseSchedulerKind(s) }

// RunOptions tunes a single simulation run.
type RunOptions struct {
	// Scale multiplies the profile's OpsPerCore (0 or 1 = full size).
	Scale float64
	// Seed drives workload generation (default 42).
	Seed int64
	// Scheduler selects the event-queue implementation (default wheel).
	Scheduler Scheduler
	// Protocol selects the coherence backend (default SLC). Applied after
	// Config, so it also overrides an explicit Config's Coherence field.
	Protocol Protocol
	// Config overrides the Table I configuration when non-nil.
	Config *Config

	// CheckpointEvery, when positive, pauses the run every that many cycles
	// and hands a checkpoint blob to OnCheckpoint. Checkpoints are
	// replay-verified on restore and do not perturb the simulation: a
	// checkpointed run produces byte-identical results to a straight one.
	CheckpointEvery uint64
	// OnCheckpoint receives each checkpoint blob (and one final blob when
	// the run completes). Ignored when CheckpointEvery is 0.
	OnCheckpoint func(blob []byte)
	// ResumeFrom, when non-empty, restores the run from a checkpoint blob
	// instead of starting at cycle 0. The config must match the blob's
	// canonical hash; the workload must replay to the checkpointed state
	// (an extension of the checkpointed workload also qualifies).
	ResumeFrom []byte
}

func (o RunOptions) config(system System) Config {
	cfg := TableI(system)
	if o.Config != nil {
		cfg = *o.Config
	}
	if o.Scheduler != SchedulerWheel {
		cfg.Scheduler = o.Scheduler
	}
	if o.Protocol != ProtocolSLC {
		cfg.Coherence = o.Protocol
	}
	return cfg
}

func (o RunOptions) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o RunOptions) scale(p Profile) Profile {
	if o.Scale > 0 && o.Scale != 1 {
		return p.Scale(o.Scale)
	}
	return p
}

// Run simulates one benchmark under one system to completion (including
// the end-of-run persist flush) and returns the results.
func Run(p Profile, system System, o RunOptions) (*Results, error) {
	cfg := o.config(system)
	cfg.System = system
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("tsoper: %w", err)
	}
	w := trace.Generate(o.scale(p), cfg.Cores, o.seed())
	return runWorkload(cfg, w, o)
}

// runWorkload drives one workload to completion, honoring the checkpoint
// options: resume from a blob, and/or emit periodic checkpoints.
func runWorkload(cfg Config, w *Workload, o RunOptions) (*Results, error) {
	var m *machine.Machine
	var err error
	if len(o.ResumeFrom) > 0 {
		m, err = machine.Restore(cfg, w, o.ResumeFrom)
	} else if m, err = machine.New(cfg); err == nil {
		m.Start(w)
	}
	if err != nil {
		return nil, fmt.Errorf("tsoper: %w", err)
	}
	if o.CheckpointEvery == 0 {
		if _, err := m.Advance(sim.MaxTime); err != nil {
			return nil, fmt.Errorf("tsoper: %w", err)
		}
		return m.Results(), nil
	}
	limit := m.Now() + sim.Time(o.CheckpointEvery)
	for {
		done, err := m.Advance(limit)
		if err != nil {
			return nil, fmt.Errorf("tsoper: %w", err)
		}
		if o.OnCheckpoint != nil {
			blob, err := m.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("tsoper: %w", err)
			}
			o.OnCheckpoint(blob)
		}
		if done {
			return m.Results(), nil
		}
		limit += sim.Time(o.CheckpointEvery)
	}
}

// Checkpoint-blob helpers re-exported from the wire-format package.
var (
	// ErrCheckpointFormat marks a blob that is not a checkpoint.
	ErrCheckpointFormat = ckpt.ErrFormat
	// ErrCheckpointVersion marks an incompatible format version.
	ErrCheckpointVersion = ckpt.ErrVersion
	// ErrCheckpointConfig marks a restore under a mismatched config.
	ErrCheckpointConfig = ckpt.ErrConfigMismatch
	// ErrCheckpointDivergence marks a replay that did not reproduce the
	// checkpointed state byte-for-byte.
	ErrCheckpointDivergence = ckpt.ErrDivergence
)

// Crash simulates until the given cycle, then injects a power failure and
// returns the recovered durable state.
func Crash(p Profile, system System, at uint64, o RunOptions) (*CrashState, error) {
	cfg := o.config(system)
	cfg.System = system
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("tsoper: %w", err)
	}
	w := trace.Generate(o.scale(p), cfg.Cores, o.seed())
	return m.RunWithCrash(w, sim.Time(at)), nil
}

// Check validates that a crash state's recovered image is a TSO-consistent
// cut: atomic groups recovered all-or-nothing, persist order prefix-closed
// per core and under persist-before dependencies, per-line FIFO respected.
// It returns nil when the state is consistent.
func Check(cs *CrashState) error { return checker.Check(cs) }

// Program is a workload VM program (see internal/program and PROGRAMS.md).
type Program = program.Program

// ProgramEstimate is a program's up-front cost estimate.
type ProgramEstimate = program.Estimate

// LoadProgram resolves a name-or-path: an embedded library name first
// ("radix", "producer-consumer-ring", …), then a JSON file on disk.
func LoadProgram(nameOrPath string) (*Program, error) {
	if p, err := program.ByName(nameOrPath); err == nil {
		return p, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("tsoper: %q is neither a library program (have: %s) nor a readable file: %w",
			nameOrPath, strings.Join(program.LibraryNames(), ", "), err)
	}
	defer f.Close()
	p, err := program.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("tsoper: %s: %w", nameOrPath, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tsoper: %s: %w", nameOrPath, err)
	}
	return p, nil
}

// LibraryPrograms lists the embedded golden program library.
func LibraryPrograms() []string { return program.LibraryNames() }

// CompileProgram lowers a program for the configuration's machine shape —
// the workload a RunProgram call with the same inputs would execute.
func CompileProgram(p *Program, cfg Config, seed int64) (*Workload, error) {
	w, err := p.Compile(program.Env{Cores: cfg.Cores, Ranks: cfg.NVM.Ranks}, seed)
	if err != nil {
		return nil, fmt.Errorf("tsoper: %w", err)
	}
	return w, nil
}

// EstimateProgram computes a program's cost for a system's Table I shape
// (or RunOptions.Config when set) without compiling or simulating.
func EstimateProgram(p *Program, system System, o RunOptions) (ProgramEstimate, error) {
	cfg := o.config(system)
	est, err := p.Estimate(program.Env{Cores: cfg.Cores, Ranks: cfg.NVM.Ranks})
	if err != nil {
		return ProgramEstimate{}, fmt.Errorf("tsoper: %w", err)
	}
	return est, nil
}

// RunProgram compiles a workload program and simulates it to completion,
// mirroring Run. RunOptions.Scale is ignored: programs size themselves.
func RunProgram(p *Program, system System, o RunOptions) (*Results, error) {
	cfg := o.config(system)
	cfg.System = system
	w, err := CompileProgram(p, cfg, o.seed())
	if err != nil {
		return nil, err
	}
	return runWorkload(cfg, w, o)
}
