package tsoper

import (
	"testing"
)

func TestRunFacade(t *testing.T) {
	p, ok := Benchmark("dedup")
	if !ok {
		t.Fatal("dedup missing")
	}
	r, err := Run(p, TSOPER, RunOptions{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Stores == 0 {
		t.Fatalf("degenerate run: %v", r)
	}
}

func TestRunCustomConfig(t *testing.T) {
	p, _ := Benchmark("fft")
	cfg := TableI(TSOPER)
	cfg.AGLimit = 16
	r, err := Run(p, TSOPER, RunOptions{Scale: 0.05, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r.AGSizes.Max() > 16 {
		t.Fatalf("custom AG limit ignored: max %d", r.AGSizes.Max())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	p, _ := Benchmark("fft")
	cfg := TableI(TSOPER)
	cfg.Cores = -1
	if _, err := Run(p, TSOPER, RunOptions{Config: &cfg}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCrashAndCheck(t *testing.T) {
	p, _ := Benchmark("radix")
	for _, at := range []uint64{2000, 8000, 20000} {
		cs, err := Crash(p, TSOPER, at, RunOptions{Scale: 0.1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(cs); err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
	}
}

func TestCheckRejectsRelaxed(t *testing.T) {
	p, _ := Benchmark("radix")
	cs, err := Crash(p, HWRP, 5000, RunOptions{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(cs); err == nil {
		t.Fatal("HW-RP crash state must not be certifiable as strict TSO")
	}
}

func TestRoster(t *testing.T) {
	if len(Benchmarks()) != 22 {
		t.Fatalf("roster: %d", len(Benchmarks()))
	}
	if len(Systems()) != 7 {
		t.Fatalf("systems: %d", len(Systems()))
	}
	if _, ok := Benchmark("unknown"); ok {
		t.Fatal("unknown benchmark found")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := Benchmark("water")
	w1 := Generate(p, 4, 9)
	w2 := Generate(p, 4, 9)
	if len(w1.Cores) != 4 || len(w1.Cores[0]) != len(w2.Cores[0]) {
		t.Fatal("generation mismatch")
	}
}

func TestDefaultSeedApplied(t *testing.T) {
	p, _ := Benchmark("vips")
	r1, err := Run(p, Baseline, RunOptions{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, Baseline, RunOptions{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("default seed should be 42")
	}
}
