package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 runtime failure, 2 usage.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
		stdout string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "save and load trace", argv: []string{"-save-trace", "a.json", "-load-trace", "b.json"}, want: 2, stderr: "mutually exclusive"},
		{name: "non-positive scale", argv: []string{"-scale", "0"}, want: 2, stderr: "-scale must be positive"},
		{name: "unknown scheduler", argv: []string{"-scheduler", "abacus"}, want: 2},
		{name: "unknown protocol", argv: []string{"-protocol", "dragon"}, want: 2, stderr: "unknown coherence protocol"},
		{name: "unknown system", argv: []string{"-system", "magic"}, want: 2, stderr: "unknown system"},
		{name: "unknown benchmark", argv: []string{"-bench", "doom"}, want: 2, stderr: "unknown benchmark"},
		{name: "unknown program", argv: []string{"-program", "no-such-program"}, want: 2, stderr: "neither a library program"},
		{name: "estimate without program", argv: []string{"-estimate"}, want: 2, stderr: "-estimate requires -program"},
		{name: "program with save-trace", argv: []string{"-program", "radix", "-save-trace", "x.json"}, want: 2, stderr: "incompatible"},
		{name: "metrics-diff arity", argv: []string{"-metrics-diff", "only-one.json"}, want: 2, stderr: "OLD.json NEW.json"},
		{name: "metrics-diff missing files", argv: []string{"-metrics-diff", "does-not-exist.json", "nor-this.json"}, want: 1},
		{name: "checkpoint-out without stride", argv: []string{"-checkpoint-out", "x.ckpt"}, want: 2, stderr: "-checkpoint-out requires -checkpoint-every"},
		{name: "checkpoint with load-trace", argv: []string{"-checkpoint-every", "1000", "-load-trace", "w.json"}, want: 2, stderr: "incompatible with -load-trace"},
		{name: "resume with load-trace", argv: []string{"-resume", "x.ckpt", "-load-trace", "w.json"}, want: 2, stderr: "incompatible with -load-trace"},
		{name: "resume missing file", argv: []string{"-resume", "does-not-exist.ckpt"}, want: 1},
		{name: "list", argv: []string{"-list"}, want: 0, stdout: "producer-consumer-ring"},
		{name: "estimate library program", argv: []string{"-program", "producer-consumer-ring", "-estimate"}, want: 0, stdout: "ops"},
		{
			name: "clean bench run",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-scale", "0.02"},
			want: 0, slow: true, stdout: "execution cycles",
		},
		{
			name: "clean program run",
			argv: []string{"-program", "producer-consumer-ring", "-system", "tsoper"},
			want: 0, slow: true, stdout: "execution cycles",
		},
		{
			name: "clean tardis run",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-scale", "0.02", "-protocol", "tardis"},
			want: 0, slow: true, stdout: "execution cycles",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs a real simulation")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
			if tc.stdout != "" && !strings.Contains(stdout.String(), tc.stdout) {
				t.Errorf("stdout %q does not mention %q", stdout.String(), tc.stdout)
			}
		})
	}
}

// TestCheckpointRoundTrip drives the flags end to end: a run that writes a
// mid-run checkpoint, then a -resume run whose summary is byte-identical
// to the straight-through one. A blob resumed under the wrong seed must be
// rejected as a runtime failure, not a crash.
func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	blob := filepath.Join(dir, "run.ckpt")
	base := []string{"-bench", "radix", "-system", "tsoper", "-scale", "0.02", "-seed", "7"}

	var straight, straightErr bytes.Buffer
	if got := run(append(base, "-checkpoint-every", "5000", "-checkpoint-out", blob), &straight, &straightErr); got != 0 {
		t.Fatalf("checkpointed run = %d\nstderr: %s", got, straightErr.String())
	}
	if !strings.Contains(straightErr.String(), "checkpoint:") {
		t.Fatalf("no checkpoint written: %s", straightErr.String())
	}

	var resumed, resumedErr bytes.Buffer
	if got := run(append(base, "-resume", blob), &resumed, &resumedErr); got != 0 {
		t.Fatalf("resumed run = %d\nstderr: %s", got, resumedErr.String())
	}
	if resumed.String() != straight.String() {
		t.Fatalf("resumed summary differs from straight-through:\n--- straight ---\n%s--- resumed ---\n%s",
			straight.String(), resumed.String())
	}

	var out, errOut bytes.Buffer
	wrong := []string{"-bench", "radix", "-system", "tsoper", "-scale", "0.02", "-seed", "8", "-resume", blob}
	if got := run(wrong, &out, &errOut); got != 1 {
		t.Fatalf("wrong-seed resume = %d, want 1\nstderr: %s", got, errOut.String())
	}
	if !strings.Contains(errOut.String(), "diverge") {
		t.Errorf("wrong-seed resume error %q does not name the divergence", errOut.String())
	}
}

// TestProgramFromFile runs a program loaded from disk rather than the
// embedded library, covering the file branch of -program resolution.
func TestProgramFromFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	doc := `{
  "version": 1,
  "name": "from-file",
  "cores": [
    {"instrs": [{"op": "store_burst", "count": 64}, {"op": "epoch"}]},
    {"instrs": [{"op": "load_scan", "count": 64}]}
  ]
}`
	path := filepath.Join(t.TempDir(), "prog.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-program", path, "-system", "tsoper"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "execution cycles") {
		t.Errorf("stdout missing run summary: %s", stdout.String())
	}
}
