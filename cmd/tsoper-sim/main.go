// Command tsoper-sim runs one benchmark under one persistency system and
// prints the run's statistics.
//
// Usage:
//
//	tsoper-sim -bench radix -system tsoper -scale 0.5 -seed 42 [-stats]
//	tsoper-sim -program producer-consumer-ring -system tsoper
//	tsoper-sim -program my-workload.json -estimate
//	tsoper-sim -bench radix -trace-out radix.json -metrics-out radix-metrics.json
//	tsoper-sim -metrics-diff old-metrics.json new-metrics.json
//	tsoper-sim -bench radix -checkpoint-every 100000 -checkpoint-out radix.ckpt
//	tsoper-sim -bench radix -resume radix.ckpt
//
// -program runs a workload-VM program instead of a benchmark profile: an
// embedded library name (see -list) or a JSON program file (PROGRAMS.md
// documents the wire format). -estimate prints the program's up-front cost
// estimate without simulating. -trace-out writes a Perfetto-compatible
// timeline (open it in ui.perfetto.dev); -metrics-out writes the unified
// metrics snapshot; -metrics-diff compares two snapshots without running
// anything. -checkpoint-every/-checkpoint-out snapshot the machine
// periodically; -resume restores a blob and finishes the run with results
// byte-identical to a straight-through run (restores are replay-verified,
// so a blob from a different workload is rejected with a typed error).
//
// Systems: baseline, hw-rp, bsp, bsp+slc, bsp+slc+agb, stw, tsoper.
// Protocols (-protocol): slc (default), mesi, tardis.
// Benchmarks: the 22 PARSEC 3.0 / Splash-3 stand-ins (see -list).
//
// Exit status: 0 clean, 1 runtime failure, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ckpt"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/tsoper"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "radix", "benchmark name")
	progArg := fs.String("program", "", "run a workload program: a library name or a JSON file (overrides -bench)")
	estimate := fs.Bool("estimate", false, "print the program's cost estimate and exit without simulating (requires -program)")
	system := fs.String("system", "tsoper", "persistency system")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	seed := fs.Int64("seed", 42, "workload seed")
	list := fs.Bool("list", false, "list benchmarks, programs, and systems, then exit")
	full := fs.Bool("stats", false, "dump the full metric registry")
	saveTrace := fs.String("save-trace", "", "write the generated workload trace to this file")
	loadTrace := fs.String("load-trace", "", "replay a workload trace from this file instead of generating")
	traceOut := fs.String("trace-out", "", "write a Perfetto timeline trace (JSON) to this file")
	metricsOut := fs.String("metrics-out", "", "write the unified metrics snapshot (JSON) to this file")
	metricsDiff := fs.Bool("metrics-diff", false, "diff two metrics snapshots given as positional args, then exit")
	schedFlag := fs.String("scheduler", "wheel", "event scheduler: wheel or heap (reference)")
	protoFlag := fs.String("protocol", "slc", "coherence protocol: slc, mesi, or tardis")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "checkpoint the run every N simulation cycles (0 = off)")
	ckptOut := fs.String("checkpoint-out", "", "write the run's last checkpoint blob to this file (requires -checkpoint-every)")
	resume := fs.String("resume", "", "resume the run from a checkpoint blob file (same bench/program, seed, system)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return 2
	}

	// Usage validation, mirroring tsoper-crash: malformed invocations exit
	// 2 before any work happens.
	if *saveTrace != "" && *loadTrace != "" {
		return usageErr("-save-trace and -load-trace are mutually exclusive (replaying never generates)")
	}
	if *scale <= 0 {
		return usageErr("-scale must be positive, got %g", *scale)
	}
	if *estimate && *progArg == "" {
		return usageErr("-estimate requires -program")
	}
	if *progArg != "" && (*saveTrace != "" || *loadTrace != "") {
		return usageErr("-program is incompatible with -save-trace/-load-trace (programs are already portable workloads)")
	}
	if *ckptOut != "" && *ckptEvery == 0 {
		return usageErr("-checkpoint-out requires -checkpoint-every")
	}
	if (*ckptEvery != 0 || *resume != "") && *loadTrace != "" {
		return usageErr("-checkpoint-every/-resume are incompatible with -load-trace (resume re-derives the workload from bench/program + seed)")
	}
	sched, err := tsoper.ParseScheduler(*schedFlag)
	if err != nil {
		return usageErr("%v", err)
	}
	proto, err := tsoper.ParseProtocol(*protoFlag)
	if err != nil {
		return usageErr("%v", err)
	}

	if *metricsDiff {
		if fs.NArg() != 2 {
			return usageErr("usage: tsoper-sim -metrics-diff OLD.json NEW.json")
		}
		if err := diffMetrics(stdout, fs.Arg(0), fs.Arg(1)); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Fprintln(stdout, "benchmarks:")
		for _, p := range tsoper.Benchmarks() {
			input := "small"
			if p.LargeInput {
				input = "large"
			}
			fmt.Fprintf(stdout, "  %-14s (%s input, %d ops/core)\n", p.Name, input, p.OpsPerCore)
		}
		fmt.Fprintln(stdout, "programs (library):")
		for _, name := range tsoper.LibraryPrograms() {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
		fmt.Fprintln(stdout, "systems:")
		for _, s := range tsoper.Systems() {
			fmt.Fprintf(stdout, "  %s\n", s)
		}
		return 0
	}

	var kind tsoper.System
	found := false
	for _, s := range tsoper.Systems() {
		if s.String() == *system {
			kind, found = s, true
			break
		}
	}
	if !found {
		return usageErr("unknown system %q (try -list)", *system)
	}

	var prog *tsoper.Program
	var p tsoper.Profile
	if *progArg != "" {
		prog, err = tsoper.LoadProgram(*progArg)
		if err != nil {
			return usageErr("%v", err)
		}
	} else {
		var ok bool
		p, ok = tsoper.Benchmark(*bench)
		if !ok {
			return usageErr("unknown benchmark %q (try -list)", *bench)
		}
	}

	if *estimate {
		est, err := tsoper.EstimateProgram(prog, kind, tsoper.RunOptions{})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %s\n", prog.Name, est)
		doc, err := json.MarshalIndent(est, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, string(doc))
		return 0
	}

	// A -trace-out flag attaches a recording telemetry bus to the machine.
	var sink *telemetry.TraceSink
	var cfgOverride *tsoper.Config
	if *traceOut != "" {
		sink = telemetry.NewTraceSink()
		cfg := tsoper.TableI(kind)
		cfg.Telemetry = telemetry.NewBus(sink)
		cfgOverride = &cfg
	}

	var r *tsoper.Results
	opts := tsoper.RunOptions{Scale: *scale, Seed: *seed, Scheduler: sched, Protocol: proto, Config: cfgOverride}
	// Keep the last execution-phase blob — the useful one to resume from
	// (drain/done blobs replay the whole run anyway). Fall back to the very
	// last blob when the run finished inside the first stride.
	var lastBlob, lastExecBlob []byte
	if *ckptEvery != 0 {
		opts.CheckpointEvery = *ckptEvery
		opts.OnCheckpoint = func(blob []byte) {
			lastBlob = blob
			if h, _, err := ckpt.DecodeBlob(blob); err == nil && h.Phase == machine.CheckpointPhaseExec {
				lastExecBlob = blob
			}
		}
	}
	if *resume != "" {
		blob, err := os.ReadFile(*resume)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		opts.ResumeFrom = blob
	}
	switch {
	case *loadTrace != "":
		r, err = runSavedTrace(*loadTrace, kind, sched, proto, cfgOverride)
	case prog != nil:
		r, err = tsoper.RunProgram(prog, kind, opts)
	default:
		if *saveTrace != "" {
			if err := saveWorkload(p, *scale, *seed, *saveTrace); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		r, err = tsoper.Run(p, kind, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *ckptOut != "" {
		blob := lastExecBlob
		if blob == nil {
			blob = lastBlob
		}
		if err := os.WriteFile(*ckptOut, blob, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "checkpoint: %d bytes -> %s\n", len(blob), *ckptOut)
	}
	if sink != nil {
		if err := writeFile(*traceOut, sink.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "trace: %d events -> %s (open in ui.perfetto.dev)\n", sink.Len(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, r.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics: %s\n", *metricsOut)
	}
	fmt.Fprintln(stdout, r)
	fmt.Fprintf(stdout, "  execution cycles     %d\n", r.Cycles)
	fmt.Fprintf(stdout, "  drain-complete cycle %d\n", r.DrainCycles)
	fmt.Fprintf(stdout, "  loads / stores       %d / %d (+%d syncs)\n", r.Loads, r.Stores, r.SyncOps)
	fmt.Fprintf(stdout, "  coherence writes     %d\n", r.CoherenceWrites)
	fmt.Fprintf(stdout, "  persist writes       %d (total incl. final flush: %d)\n", r.PersistWrites, r.TotalPersistWrites)
	fmt.Fprintf(stdout, "  NVM writes           %d\n", r.NVMWrites)
	if len(r.Groups) > 0 {
		fmt.Fprintf(stdout, "  atomic groups        %d (mean size %.2f, p90 %d, max %d)\n",
			len(r.Groups), r.AGSizes.Mean(), r.AGSizes.Percentile(90), r.AGSizes.Max())
	}
	fmt.Fprintf(stdout, "  list lengths         coherence %.2f, persist %.2f\n", r.CoherenceListLen, r.PersistListLen)
	fmt.Fprintf(stdout, "  evict buffer         max occupancy %d, stalls %d\n", r.EvictBufMax, r.EvictBufStalls)
	fmt.Fprintf(stdout, "  AGB stalls           %d\n", r.AGBStalls)
	if *full {
		fmt.Fprintln(stdout, "--- full metrics ---")
		fmt.Fprint(stdout, r.Set.String())
	}
	return 0
}

// saveWorkload generates and stores the exact workload the run would use.
func saveWorkload(p tsoper.Profile, scale float64, seed int64, path string) error {
	cfg := tsoper.TableI(tsoper.TSOPER)
	w := tsoper.Generate(p.Scale(scale), cfg.Cores, seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.Save(f)
}

// runSavedTrace replays a stored workload under the chosen system.
func runSavedTrace(path string, kind tsoper.System, sched tsoper.Scheduler, proto tsoper.Protocol, override *tsoper.Config) (*tsoper.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := trace.Load(f)
	if err != nil {
		return nil, err
	}
	cfg := machine.TableI(kind)
	if override != nil {
		cfg = *override
	}
	cfg.Cores = len(w.Cores)
	if sched != tsoper.SchedulerWheel {
		cfg.Scheduler = sched
	}
	if proto != tsoper.ProtocolSLC {
		cfg.Coherence = proto
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(w), nil
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// diffMetrics prints the differences between two metrics snapshots.
func diffMetrics(stdout io.Writer, oldPath, newPath string) error {
	read := func(path string) (*telemetry.Snapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return telemetry.ReadSnapshot(f)
	}
	oldS, err := read(oldPath)
	if err != nil {
		return err
	}
	newS, err := read(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s/%s -> %s/%s\n", oldS.System, oldS.Benchmark, newS.System, newS.Benchmark)
	fmt.Fprint(stdout, telemetry.FormatDiff(oldS.Diff(newS)))
	return nil
}
