// Command tsoper-sim runs one benchmark under one persistency system and
// prints the run's statistics.
//
// Usage:
//
//	tsoper-sim -bench radix -system tsoper -scale 0.5 -seed 42 [-stats]
//	tsoper-sim -bench radix -trace-out radix.json -metrics-out radix-metrics.json
//	tsoper-sim -metrics-diff old-metrics.json new-metrics.json
//
// -trace-out writes a Perfetto-compatible timeline (open it in
// ui.perfetto.dev); -metrics-out writes the unified metrics snapshot;
// -metrics-diff compares two snapshots without running anything.
//
// Systems: baseline, hw-rp, bsp, bsp+slc, bsp+slc+agb, stw, tsoper.
// Benchmarks: the 22 PARSEC 3.0 / Splash-3 stand-ins (see -list).
//
// Exit status: 0 clean, 1 runtime failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/tsoper"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	bench := flag.String("bench", "radix", "benchmark name")
	system := flag.String("system", "tsoper", "persistency system")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list benchmarks and systems, then exit")
	full := flag.Bool("stats", false, "dump the full metric registry")
	saveTrace := flag.String("save-trace", "", "write the generated workload trace to this file")
	loadTrace := flag.String("load-trace", "", "replay a workload trace from this file instead of generating")
	traceOut := flag.String("trace-out", "", "write a Perfetto timeline trace (JSON) to this file")
	metricsOut := flag.String("metrics-out", "", "write the unified metrics snapshot (JSON) to this file")
	metricsDiff := flag.Bool("metrics-diff", false, "diff two metrics snapshots given as positional args, then exit")
	schedFlag := flag.String("scheduler", "wheel", "event scheduler: wheel or heap (reference)")
	flag.Parse()

	// Usage validation, mirroring tsoper-crash: malformed invocations exit
	// 2 before any work happens.
	if *saveTrace != "" && *loadTrace != "" {
		usageErr("-save-trace and -load-trace are mutually exclusive (replaying never generates)")
	}
	if *scale <= 0 {
		usageErr("-scale must be positive, got %g", *scale)
	}
	sched, err := tsoper.ParseScheduler(*schedFlag)
	if err != nil {
		usageErr("%v", err)
	}

	if *metricsDiff {
		if flag.NArg() != 2 {
			usageErr("usage: tsoper-sim -metrics-diff OLD.json NEW.json")
		}
		if err := diffMetrics(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, p := range tsoper.Benchmarks() {
			input := "small"
			if p.LargeInput {
				input = "large"
			}
			fmt.Printf("  %-14s (%s input, %d ops/core)\n", p.Name, input, p.OpsPerCore)
		}
		fmt.Println("systems:")
		for _, s := range tsoper.Systems() {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	p, ok := tsoper.Benchmark(*bench)
	if !ok {
		usageErr("unknown benchmark %q (try -list)", *bench)
	}
	var kind tsoper.System
	found := false
	for _, s := range tsoper.Systems() {
		if s.String() == *system {
			kind, found = s, true
			break
		}
	}
	if !found {
		usageErr("unknown system %q (try -list)", *system)
	}

	// A -trace-out flag attaches a recording telemetry bus to the machine.
	var sink *telemetry.TraceSink
	var cfgOverride *tsoper.Config
	if *traceOut != "" {
		sink = telemetry.NewTraceSink()
		cfg := tsoper.TableI(kind)
		cfg.Telemetry = telemetry.NewBus(sink)
		cfgOverride = &cfg
	}

	var r *tsoper.Results
	if *loadTrace != "" {
		r, err = runSavedTrace(*loadTrace, kind, sched, cfgOverride)
	} else {
		if *saveTrace != "" {
			if err := saveWorkload(p, *scale, *seed, *saveTrace); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		r, err = tsoper.Run(p, kind, tsoper.RunOptions{
			Scale: *scale, Seed: *seed, Scheduler: sched, Config: cfgOverride})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if sink != nil {
		if err := writeFile(*traceOut, sink.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open in ui.perfetto.dev)\n", sink.Len(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, r.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %s\n", *metricsOut)
	}
	fmt.Println(r)
	fmt.Printf("  execution cycles     %d\n", r.Cycles)
	fmt.Printf("  drain-complete cycle %d\n", r.DrainCycles)
	fmt.Printf("  loads / stores       %d / %d (+%d syncs)\n", r.Loads, r.Stores, r.SyncOps)
	fmt.Printf("  coherence writes     %d\n", r.CoherenceWrites)
	fmt.Printf("  persist writes       %d (total incl. final flush: %d)\n", r.PersistWrites, r.TotalPersistWrites)
	fmt.Printf("  NVM writes           %d\n", r.NVMWrites)
	if len(r.Groups) > 0 {
		fmt.Printf("  atomic groups        %d (mean size %.2f, p90 %d, max %d)\n",
			len(r.Groups), r.AGSizes.Mean(), r.AGSizes.Percentile(90), r.AGSizes.Max())
	}
	fmt.Printf("  list lengths         coherence %.2f, persist %.2f\n", r.CoherenceListLen, r.PersistListLen)
	fmt.Printf("  evict buffer         max occupancy %d, stalls %d\n", r.EvictBufMax, r.EvictBufStalls)
	fmt.Printf("  AGB stalls           %d\n", r.AGBStalls)
	if *full {
		fmt.Println("--- full metrics ---")
		fmt.Print(r.Set.String())
	}
}

// saveWorkload generates and stores the exact workload the run would use.
func saveWorkload(p tsoper.Profile, scale float64, seed int64, path string) error {
	cfg := tsoper.TableI(tsoper.TSOPER)
	w := tsoper.Generate(p.Scale(scale), cfg.Cores, seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.Save(f)
}

// runSavedTrace replays a stored workload under the chosen system.
func runSavedTrace(path string, kind tsoper.System, sched tsoper.Scheduler, override *tsoper.Config) (*tsoper.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := trace.Load(f)
	if err != nil {
		return nil, err
	}
	cfg := machine.TableI(kind)
	if override != nil {
		cfg = *override
	}
	cfg.Cores = len(w.Cores)
	if sched != tsoper.SchedulerWheel {
		cfg.Scheduler = sched
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(w), nil
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// diffMetrics prints the differences between two metrics snapshots.
func diffMetrics(oldPath, newPath string) error {
	read := func(path string) (*telemetry.Snapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return telemetry.ReadSnapshot(f)
	}
	oldS, err := read(oldPath)
	if err != nil {
		return err
	}
	newS, err := read(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s -> %s/%s\n", oldS.System, oldS.Benchmark, newS.System, newS.Benchmark)
	fmt.Print(telemetry.FormatDiff(oldS.Diff(newS)))
	return nil
}
