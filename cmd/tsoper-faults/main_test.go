package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 findings (including a
// failed campaign run — previously misreported as a usage error), 2 usage.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "non-positive points", argv: []string{"-points", "0"}, want: 2, stderr: "-points must be positive"},
		{name: "non-positive scale", argv: []string{"-scale", "0"}, want: 2, stderr: "-scale must be positive"},
		{name: "unknown campaign", argv: []string{"-campaign", "lunch"}, want: 2, stderr: "unknown campaign"},
		{name: "unknown benchmark", argv: []string{"-bench", "doom"}, want: 2, stderr: "unknown benchmark"},
		{name: "non-strict system", argv: []string{"-system", "hwrp"}, want: 2, stderr: "strict system"},
		{name: "unknown schedule", argv: []string{"-schedule", "blizzard"}, want: 2, stderr: "unknown fault schedule"},
		{
			name: "clean cell",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-schedule", "nvm-transient", "-points", "1", "-scale", "0.05"},
			want: 0, slow: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs a real campaign")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}
