// Command tsoper-faults runs runtime fault-injection resilience campaigns:
// seeded fault schedules (faulty NVM ranks, a lossy NoC, degraded AGB
// slices) against the strict persistency systems, asserting that every
// injected fault is retried to success or degraded around, that the stall
// watchdog stays silent, and that the crash-consistency checker accepts
// every recovered state — including states cut mid-recovery.
//
// Modes:
//
//	tsoper-faults -bench radix -system tsoper -schedule storm -points 10
//	    one cell per listed benchmark x system x schedule
//	tsoper-faults -campaign smoke -parallel 4 -json faults.json
//	    the CI campaign: adversarial workloads x tsoper x every preset
//	    schedule, with a benchjson-compatible horizon artifact via
//	    -bench-json
//
// Exit status: 0 clean, 1 stalls/lost persists/violations, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/crashmc"
	"repro/internal/faultplan"
	"repro/internal/machine"
	"repro/internal/trace"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	bench := flag.String("bench", "radix", "comma-separated benchmark names")
	system := flag.String("system", "tsoper", "comma-separated strict systems: tsoper, stw")
	schedule := flag.String("schedule", "", "comma-separated fault schedules (default: every preset)")
	points := flag.Int("points", 10, "crash points per benchmark x system x schedule cell (> 0)")
	scale := flag.Float64("scale", 0.3, "workload scale factor (> 0)")
	seed := flag.Int64("seed", 42, "workload seed")
	campaign := flag.String("campaign", "", "predefined campaign: smoke (overrides -bench/-system/-schedule)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write the campaign report to this path as JSON")
	benchJSON := flag.String("bench-json", "", "write benchjson-compatible cycle horizons to this path")
	flag.Parse()

	if *points <= 0 {
		usageErr("-points must be positive, got %d", *points)
	}
	if *scale <= 0 {
		usageErr("-scale must be positive, got %g", *scale)
	}

	var spec crashmc.ResilienceSpec
	switch *campaign {
	case "":
		spec = crashmc.ResilienceSpec{
			Name:       "sweep",
			Benchmarks: parseBenches(*bench),
			Systems:    parseSystems(*system),
			Schedules:  parseSchedules(*schedule),
			Scale:      *scale,
			Seed:       *seed,
			Points:     *points,
			Parallel:   *parallel,
		}
	case "smoke":
		spec = crashmc.ResilienceSpec{
			Name:       "smoke",
			Benchmarks: crashmc.Adversaries()[:2],
			Systems:    []machine.SystemKind{machine.TSOPER},
			Schedules:  faultplan.Presets(),
			Scale:      *scale,
			Seed:       *seed,
			Points:     *points,
			Parallel:   *parallel,
		}
	default:
		usageErr("unknown campaign %q (want smoke)", *campaign)
	}

	report, err := crashmc.RunResilience(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for _, c := range report.Cells {
		fmt.Printf("%s/%s under %-14s %8d -> %8d cycles (%+.1f%%), %4d faults, %d points (%d partial): %s\n",
			c.Benchmark, c.System, c.Schedule, c.BaselineCycles, c.FaultedCycles, c.OverheadPct,
			c.Counts.Injected(), c.Points, c.Partial, c.Counts)
		for _, inc := range c.Incidents {
			fmt.Fprintf(os.Stderr, "INCIDENT %s/%s/%s @%d [%s]: %s\n",
				inc.Benchmark, inc.System, inc.Schedule, inc.At, inc.Kind, inc.Detail)
		}
	}
	fmt.Printf("\n%s\n", report.Summary())

	if *jsonPath != "" {
		if werr := report.WriteJSONFile(*jsonPath); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	}
	if *benchJSON != "" {
		if werr := report.WriteBenchJSONFile(*benchJSON); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	}
	if !report.Clean() {
		os.Exit(1)
	}
}

func parseBenches(names string) []trace.Profile {
	var profiles []trace.Profile
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := trace.ByName(name)
		if !ok {
			if p, ok = crashmc.Adversary(name); !ok {
				usageErr("unknown benchmark %q", name)
			}
		}
		profiles = append(profiles, p)
	}
	return profiles
}

func parseSystems(names string) []machine.SystemKind {
	var kinds []machine.SystemKind
	for _, name := range strings.Split(names, ",") {
		switch strings.TrimSpace(name) {
		case "tsoper":
			kinds = append(kinds, machine.TSOPER)
		case "stw":
			kinds = append(kinds, machine.STW)
		default:
			usageErr("resilience checking requires a strict system (tsoper or stw), got %q", name)
		}
	}
	return kinds
}

func parseSchedules(names string) []faultplan.Spec {
	if strings.TrimSpace(names) == "" {
		return nil // RunResilience defaults to every preset
	}
	var specs []faultplan.Spec
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sch, ok := faultplan.Preset(name)
		if !ok {
			usageErr("unknown fault schedule %q (presets: %s)", name, strings.Join(faultplan.PresetNames(), ", "))
		}
		specs = append(specs, sch)
	}
	return specs
}
