// Command tsoper-faults runs runtime fault-injection resilience campaigns:
// seeded fault schedules (faulty NVM ranks, a lossy NoC, degraded AGB
// slices) against the strict persistency systems, asserting that every
// injected fault is retried to success or degraded around, that the stall
// watchdog stays silent, and that the crash-consistency checker accepts
// every recovered state — including states cut mid-recovery.
//
// Modes:
//
//	tsoper-faults -bench radix -system tsoper -schedule storm -points 10
//	    one cell per listed benchmark x system x schedule
//	tsoper-faults -campaign smoke -parallel 4 -json faults.json
//	    the CI campaign: adversarial workloads x tsoper x every preset
//	    schedule, with a benchjson-compatible horizon artifact via
//	    -bench-json
//
// Exit status: 0 clean, 1 stalls/lost persists/violations, 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/crashmc"
	"repro/internal/faultplan"
	"repro/internal/machine"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks argument mistakes: run exits 2 for those, 1 for
// runtime findings (stalls, lost persists, checker violations).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-faults", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "radix", "comma-separated benchmark names")
	system := fs.String("system", "tsoper", "comma-separated strict systems: tsoper, stw")
	schedule := fs.String("schedule", "", "comma-separated fault schedules (default: every preset)")
	points := fs.Int("points", 10, "crash points per benchmark x system x schedule cell (> 0)")
	scale := fs.Float64("scale", 0.3, "workload scale factor (> 0)")
	seed := fs.Int64("seed", 42, "workload seed")
	campaign := fs.String("campaign", "", "predefined campaign: smoke (overrides -bench/-system/-schedule)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write the campaign report to this path as JSON")
	benchJSON := fs.String("bench-json", "", "write benchjson-compatible cycle horizons to this path")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	spec, err := buildSpec(*bench, *system, *schedule, *points, *scale, *seed, *campaign, *parallel)
	var uerr usageError
	if errors.As(err, &uerr) {
		fmt.Fprintln(stderr, uerr.Error())
		fs.Usage()
		return 2
	}

	report, err := crashmc.RunResilience(spec)
	if err != nil {
		// A failed campaign is a runtime finding, not an argument mistake.
		fmt.Fprintln(stderr, err)
		return 1
	}

	for _, c := range report.Cells {
		fmt.Fprintf(stdout, "%s/%s under %-14s %8d -> %8d cycles (%+.1f%%), %4d faults, %d points (%d partial): %s\n",
			c.Benchmark, c.System, c.Schedule, c.BaselineCycles, c.FaultedCycles, c.OverheadPct,
			c.Counts.Injected(), c.Points, c.Partial, c.Counts)
		for _, inc := range c.Incidents {
			fmt.Fprintf(stderr, "INCIDENT %s/%s/%s @%d [%s]: %s\n",
				inc.Benchmark, inc.System, inc.Schedule, inc.At, inc.Kind, inc.Detail)
		}
	}
	fmt.Fprintf(stdout, "\n%s\n", report.Summary())

	if *jsonPath != "" {
		if werr := report.WriteJSONFile(*jsonPath); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	if *benchJSON != "" {
		if werr := report.WriteBenchJSONFile(*benchJSON); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	if !report.Clean() {
		return 1
	}
	return 0
}

// buildSpec validates the mode flags into a campaign spec.
func buildSpec(bench, system, schedule string, points int, scale float64, seed int64, campaign string, parallel int) (crashmc.ResilienceSpec, error) {
	var spec crashmc.ResilienceSpec
	if points <= 0 {
		return spec, usagef("-points must be positive, got %d", points)
	}
	if scale <= 0 {
		return spec, usagef("-scale must be positive, got %g", scale)
	}
	switch campaign {
	case "":
		profiles, err := parseBenches(bench)
		if err != nil {
			return spec, err
		}
		systems, err := parseSystems(system)
		if err != nil {
			return spec, err
		}
		schedules, err := parseSchedules(schedule)
		if err != nil {
			return spec, err
		}
		return crashmc.ResilienceSpec{
			Name:       "sweep",
			Benchmarks: profiles,
			Systems:    systems,
			Schedules:  schedules,
			Scale:      scale,
			Seed:       seed,
			Points:     points,
			Parallel:   parallel,
		}, nil
	case "smoke":
		return crashmc.ResilienceSpec{
			Name:       "smoke",
			Benchmarks: crashmc.Adversaries()[:2],
			Systems:    []machine.SystemKind{machine.TSOPER},
			Schedules:  faultplan.Presets(),
			Scale:      scale,
			Seed:       seed,
			Points:     points,
			Parallel:   parallel,
		}, nil
	default:
		return spec, usagef("unknown campaign %q (want smoke)", campaign)
	}
}

func parseBenches(names string) ([]trace.Profile, error) {
	var profiles []trace.Profile
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := trace.ByName(name)
		if !ok {
			if p, ok = crashmc.Adversary(name); !ok {
				return nil, usagef("unknown benchmark %q", name)
			}
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

func parseSystems(names string) ([]machine.SystemKind, error) {
	var kinds []machine.SystemKind
	for _, name := range strings.Split(names, ",") {
		switch strings.TrimSpace(name) {
		case "tsoper":
			kinds = append(kinds, machine.TSOPER)
		case "stw":
			kinds = append(kinds, machine.STW)
		default:
			return nil, usagef("resilience checking requires a strict system (tsoper or stw), got %q", name)
		}
	}
	return kinds, nil
}

func parseSchedules(names string) ([]faultplan.Spec, error) {
	if strings.TrimSpace(names) == "" {
		return nil, nil // RunResilience defaults to every preset
	}
	var specs []faultplan.Spec
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sch, ok := faultplan.Preset(name)
		if !ok {
			return nil, usagef("unknown fault schedule %q (presets: %s)", name, strings.Join(faultplan.PresetNames(), ", "))
		}
		specs = append(specs, sch)
	}
	return specs, nil
}
