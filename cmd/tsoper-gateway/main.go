// Command tsoper-gateway fronts N tsoper-serve nodes as one sharded
// simulation service: jobs are rendezvous-hash-routed by their content
// address across replica candidates, with per-node health probing and
// circuit breaking, transparent failover, and peer cache-fill (a node's
// cached result is served before any compute is placed anywhere).
//
//	tsoper-gateway -addr :7500 \
//	  -backends n0=http://127.0.0.1:7501,n1=http://127.0.0.1:7502
//
// Backends are name=url pairs (names become job-ID prefixes and rendezvous
// identities; keep them stable across node restarts) or bare URLs, which
// get positional names n0, n1, … The gateway speaks the same API as a
// single node, so existing clients and tsoper-load work unchanged; point
// tsoper-load -cluster at it for per-node routing reports.
//
// Exit status: 0 clean shutdown, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseBackends turns "n0=http://a,n1=http://b" (or bare URLs) into a
// roster with unique, stable names.
func parseBackends(s string) ([]cluster.Backend, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no backends configured (-backends)")
	}
	var out []cluster.Backend
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("empty -backends entry at position %d", i)
		}
		b := cluster.Backend{Name: fmt.Sprintf("n%d", i), URL: entry}
		if name, url, ok := strings.Cut(entry, "="); ok {
			if name == "" || url == "" {
				return nil, fmt.Errorf("bad -backends entry %q (want name=url)", entry)
			}
			b = cluster.Backend{Name: name, URL: url}
		}
		if !strings.HasPrefix(b.URL, "http://") && !strings.HasPrefix(b.URL, "https://") {
			return nil, fmt.Errorf("backend %s URL %q must start with http:// or https://", b.Name, b.URL)
		}
		out = append(out, b)
	}
	return out, nil
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-gateway", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":7500", "listen address")
	backends := fs.String("backends", "", "comma-separated backend nodes: name=url or bare url")
	replicas := fs.Int("replicas", 2, "replica candidates per job key (> 0)")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "health-probe period")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-probe and cache-fill timeout")
	failThreshold := fs.Int("fail-threshold", 3, "consecutive failures tripping a node's breaker (> 0)")
	cooldown := fs.Duration("cooldown", 500*time.Millisecond, "first re-admission cooldown (doubles per trip)")
	cooldownMax := fs.Duration("cooldown-max", 15*time.Second, "re-admission cooldown ceiling")
	attempts := fs.Int("attempts", 4, "failover attempts per submission (> 0)")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "first failover backoff")
	retryCap := fs.Duration("retry-cap", time.Second, "failover backoff ceiling")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per proxied backend call")
	seed := fs.Uint64("seed", 1, "backoff-jitter seed (deterministic schedules)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return 2
	}
	if *replicas <= 0 {
		return usage("-replicas must be positive, got %d", *replicas)
	}
	if *failThreshold <= 0 {
		return usage("-fail-threshold must be positive, got %d", *failThreshold)
	}
	if *attempts <= 0 {
		return usage("-attempts must be positive, got %d", *attempts)
	}
	roster, err := parseBackends(*backends)
	if err != nil {
		return usage("%v", err)
	}

	gw, err := cluster.New(cluster.Config{
		Backends:       roster,
		Replicas:       *replicas,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		CooldownBase:   *cooldown,
		CooldownMax:    *cooldownMax,
		MaxAttempts:    *attempts,
		RetryBase:      *retryBase,
		RetryCap:       *retryCap,
		RequestTimeout: *requestTimeout,
		Seed:           *seed,
	})
	if err != nil {
		return usage("%v", err)
	}

	log.SetPrefix("tsoper-gateway: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	gw.Start()
	defer gw.Stop()

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s, %d backends, %d replicas", *addr, len(roster), *replicas)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		h := gw.Health()
		log.Printf("%s: shutting down (backends up %d / draining %d / down %d)", sig, h.Up, h.Draining, h.Down)
	case err := <-errCh:
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "shutdown: %v\n", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	m := gw.Metrics(context.Background(), false)
	fmt.Fprintf(stdout, "gateway down clean: %d submitted, %d cache fills (%d peer), %d failovers\n",
		m.Submitted, m.CacheFills, m.PeerFills, m.Failovers)
	return 0
}
