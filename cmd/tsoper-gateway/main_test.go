package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 2 for argument mistakes, before any
// listener is opened.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "no backends", argv: []string{}, want: 2, stderr: "no backends"},
		{name: "empty backend entry", argv: []string{"-backends", "http://a,,http://b"}, want: 2, stderr: "empty -backends entry"},
		{name: "malformed pair", argv: []string{"-backends", "=http://a"}, want: 2, stderr: "want name=url"},
		{name: "non-http url", argv: []string{"-backends", "n0=ftp://a"}, want: 2, stderr: "must start with http"},
		{name: "duplicate names", argv: []string{"-backends", "a=http://x,a=http://y"}, want: 2, stderr: "duplicate backend name"},
		{name: "colon in name", argv: []string{"-backends", "a:b=http://x"}, want: 2},
		{name: "non-positive replicas", argv: []string{"-backends", "http://a", "-replicas", "0"}, want: 2, stderr: "-replicas must be positive"},
		{name: "non-positive threshold", argv: []string{"-backends", "http://a", "-fail-threshold", "0"}, want: 2, stderr: "-fail-threshold must be positive"},
		{name: "non-positive attempts", argv: []string{"-backends", "http://a", "-attempts", "0"}, want: 2, stderr: "-attempts must be positive"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestParseBackends covers naming: bare URLs get positional names,
// name=url pairs keep theirs.
func TestParseBackends(t *testing.T) {
	got, err := parseBackends("http://a:1, n5=http://b:2 ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d backends, want 3", len(got))
	}
	if got[0].Name != "n0" || got[0].URL != "http://a:1" {
		t.Errorf("backend 0 = %+v", got[0])
	}
	if got[1].Name != "n5" || got[1].URL != "http://b:2" {
		t.Errorf("backend 1 = %+v", got[1])
	}
	if got[2].Name != "n2" || got[2].URL != "http://c:3" {
		t.Errorf("backend 2 = %+v", got[2])
	}
}
