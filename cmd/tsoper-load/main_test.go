package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/service"
)

// TestUsageErrors pins the CLI contract: argument mistakes exit 2 before
// any connection is attempted.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		stderr string
	}{
		{"bad flag", []string{"-nonsense"}, ""},
		{"zero jobs", []string{"-jobs", "0"}, "-jobs must be positive"},
		{"negative scale", []string{"-scale", "-1"}, "-scale must be positive"},
		{"negative dup", []string{"-dup", "-1"}, "-dup must be non-negative"},
		{"budget out of range", []string{"-error-budget", "1.5"}, "-error-budget must be in [0,1)"},
		{"bad concurrency entry", []string{"-concurrency", "1,zero"}, "bad -concurrency entry"},
		{"unknown program", []string{"-programs", "not_a_program"}, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", got, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// fakeServeBackend mimics just enough of tsoper-serve for the load
// generator: submissions with odd seeds fail 400 (deterministically — the
// client must not retry them), even seeds complete instantly.
func fakeServeBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.HealthStatus{Node: "fake", State: "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec service.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		if spec.Seed%2 == 1 {
			http.Error(w, `{"error":"scripted failure"}`, http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(service.JobStatus{
			ID: fmt.Sprintf("j-%d", spec.Seed), State: "done",
			Key: fmt.Sprintf("key-%d", spec.Seed),
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":%q}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.MetricsSnapshot{Node: "fake", JobsCompleted: 2})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestErrorBudget: half the jobs fail deterministically; a budget above
// the rate passes, below it fails, and the breakdown names the status.
func TestErrorBudget(t *testing.T) {
	srv := fakeServeBackend(t)
	base := []string{"-addr", srv.URL, "-jobs", "4", "-dup", "0", "-concurrency", "1"}

	var stdout, stderr bytes.Buffer
	if got := run(append(base, "-error-budget", "0.6"), &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d within budget, want 0 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "error breakdown") || !strings.Contains(stdout.String(), "400") {
		t.Errorf("stdout missing per-status breakdown:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if got := run(append(base, "-error-budget", "0.25"), &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d over budget, want 1", got)
	}
	if !strings.Contains(stderr.String(), "exceeds budget") {
		t.Errorf("stderr %q does not explain the budget breach", stderr.String())
	}

	// The default budget is zero: any failure fails the run.
	if got := run(base, &bytes.Buffer{}, &bytes.Buffer{}); got != 1 {
		t.Fatalf("exit = %d with default budget and failures, want 1", got)
	}
}

// TestJSONReport: -json persists the full report — levels, error
// breakdown, rate — for CI artifacts.
func TestJSONReport(t *testing.T) {
	srv := fakeServeBackend(t)
	path := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	run([]string{"-addr", srv.URL, "-jobs", "4", "-dup", "0", "-concurrency", "1,2",
		"-error-budget", "0.9", "-json", path}, &stdout, &stderr)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(rep.Levels) != 2 {
		t.Errorf("levels = %d, want 2", len(rep.Levels))
	}
	if rep.Errors["400"] == 0 {
		t.Errorf("report errors = %v, want 400s counted", rep.Errors)
	}
	if rep.ErrorRate <= 0 {
		t.Errorf("error rate = %g, want > 0", rep.ErrorRate)
	}
	if rep.Server == nil || rep.Server.Node != "fake" {
		t.Errorf("server snapshot = %+v, want node fake", rep.Server)
	}
}

// TestClusterReport: -cluster decodes the gateway metrics document and
// renders per-node routing rows plus scaling efficiency.
func TestClusterReport(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(cluster.Health{Node: "gateway", State: "ok", Up: 2})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec service.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		json.NewEncoder(w).Encode(service.JobStatus{
			ID: fmt.Sprintf("n0:j-%d", spec.Seed), State: "done",
			Key: fmt.Sprintf("key-%d", spec.Seed),
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(cluster.Metrics{
			Submitted: 4, CacheFills: 1, PeerFills: 1, Failovers: 2,
			Nodes: []cluster.NodeStatus{
				{Name: "n0", State: "up", Routed: 3,
					Backend: &service.MetricsSnapshot{JobsCompleted: 3}},
				{Name: "n1", State: "draining", Routed: 1, CacheServed: 1},
			},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	path := filepath.Join(t.TempDir(), "cluster.json")
	var stdout, stderr bytes.Buffer
	got := run([]string{"-addr", srv.URL, "-jobs", "4", "-dup", "0", "-concurrency", "1",
		"-cluster", "-json", path}, &stdout, &stderr)
	if got != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"2 failovers", "n0", "n1", "draining", "eff"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster report missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cluster == nil || rep.Cluster.Failovers != 2 || len(rep.Cluster.Nodes) != 2 {
		t.Errorf("cluster section = %+v, want the gateway document embedded", rep.Cluster)
	}
}

// TestClusterModeRejectsPlainNode: pointing -cluster at a single
// tsoper-serve (whose /metrics has no nodes array) fails loudly instead of
// printing an empty report.
func TestClusterModeRejectsPlainNode(t *testing.T) {
	srv := fakeServeBackend(t)
	var stdout, stderr bytes.Buffer
	got := run([]string{"-addr", srv.URL, "-jobs", "2", "-dup", "0", "-concurrency", "1",
		"-error-budget", "0.9", "-cluster"}, &stdout, &stderr)
	if got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	if !strings.Contains(stderr.String(), "really a gateway") {
		t.Errorf("stderr %q does not flag the address mismatch", stderr.String())
	}
}
