// Command tsoper-load drives a tsoper-serve instance with a measured mix
// of repeated and unique simulation jobs, sweeping client concurrency and
// reporting sustained throughput with latency percentiles — so the
// service's capacity is a number, not a claim.
//
//	tsoper-load -addr http://localhost:7433 -concurrency 1,2,4,8 -jobs 32
//
// Every -dup'th job resubmits a spec from a small duplicate pool; the rest
// are unique (distinct seeds). With -check, the result bytes of every
// duplicate are compared against the first occurrence and any divergence
// fails the run (the cache must be byte-identical, not just equivalent).
// With -require-hit, the run fails unless the server reports at least one
// cache hit — the CI smoke assertion.
//
// -programs mixes workload-VM jobs into the load: each named library
// program (see tsoper-sim -list) joins both the duplicate pool and the
// unique rotation, so program-typed submissions exercise the canonical-hash
// cache path alongside profile jobs.
//
// Exit status: 0 clean, 1 failed jobs / byte mismatches / missing cache
// hits, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/program"
	"repro/internal/service"
	"repro/internal/service/client"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7433", "server base URL")
	concurrency := flag.String("concurrency", "1,2,4", "comma-separated client widths to sweep")
	jobs := flag.Int("jobs", 16, "jobs per concurrency level (> 0)")
	dup := flag.Int("dup", 4, "every dup'th job reuses the duplicate pool (0 = all unique)")
	benches := flag.String("bench", "radix,fft,ocean_cp", "comma-separated benchmark mix")
	programs := flag.String("programs", "", "comma-separated library programs to mix in as program-typed jobs")
	system := flag.String("system", "tsoper", "persistency system for every job")
	scale := flag.Float64("scale", 0.05, "workload scale factor (> 0)")
	seedBase := flag.Int64("seed-base", 1000, "first seed for unique jobs")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	check := flag.Bool("check", false, "verify duplicate submissions return byte-identical results")
	requireHit := flag.Bool("require-hit", false, "fail unless the server reports >= 1 cache hit")
	flag.Parse()

	if *jobs <= 0 {
		usageErr("-jobs must be positive, got %d", *jobs)
	}
	if *scale <= 0 {
		usageErr("-scale must be positive, got %g", *scale)
	}
	if *dup < 0 {
		usageErr("-dup must be non-negative, got %d", *dup)
	}
	var widths []int
	for _, s := range strings.Split(*concurrency, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w <= 0 {
			usageErr("bad -concurrency entry %q", s)
		}
		widths = append(widths, w)
	}
	benchList := strings.Split(*benches, ",")
	for i := range benchList {
		benchList[i] = strings.TrimSpace(benchList[i])
	}

	// Job templates: one per benchmark, plus one program-typed template per
	// requested library program. A template becomes a concrete spec by
	// stamping a seed (program jobs carry no scale — their size is spelled
	// out by their instructions).
	templates := make([]service.JobSpec, 0, len(benchList))
	for _, b := range benchList {
		templates = append(templates, service.JobSpec{Bench: b, System: *system, Scale: *scale})
	}
	if *programs != "" {
		for _, name := range strings.Split(*programs, ",") {
			p, err := program.ByName(strings.TrimSpace(name))
			if err != nil {
				usageErr("%v", err)
			}
			templates = append(templates, service.JobSpec{Program: p, System: *system})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr, nil)
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "server not healthy at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	// The duplicate pool: one spec per template, fixed seed, shared across
	// all levels so later levels exercise the cache the earlier ones filled.
	pool := make([]service.JobSpec, len(templates))
	for i, tmpl := range templates {
		pool[i] = tmpl
		pool[i].Seed = *seedBase - 1
	}

	var (
		firstBytes sync.Map // cache key -> first observed result bytes
		mismatches atomic.Uint64
		failures   atomic.Uint64
		nextSeed   atomic.Int64
	)
	nextSeed.Store(*seedBase)

	runOne := func(idx int) (time.Duration, bool) {
		var spec service.JobSpec
		if *dup > 0 && idx%*dup == 0 {
			spec = pool[(idx / *dup)%len(pool)]
		} else {
			spec = templates[idx%len(templates)]
			spec.Seed = nextSeed.Add(1)
		}
		start := time.Now()
		body, st, err := c.Run(ctx, spec)
		lat := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "job %v failed: %v\n", spec, err)
			failures.Add(1)
			return lat, false
		}
		if *check {
			if prev, loaded := firstBytes.LoadOrStore(st.Key, body); loaded {
				if string(prev.([]byte)) != string(body) {
					fmt.Fprintf(os.Stderr, "BYTE MISMATCH for key %s (job %s)\n", st.Key, st.ID)
					mismatches.Add(1)
				}
			}
		}
		return lat, true
	}

	fmt.Printf("%-12s %6s %10s %12s %9s %9s %9s %9s\n",
		"concurrency", "jobs", "wall", "throughput", "p50", "p90", "p99", "mean")
	jobIdx := 0
	for _, width := range widths {
		lats := make([]time.Duration, 0, *jobs)
		var mu sync.Mutex
		work := make(chan int)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range work {
					lat, ok := runOne(idx)
					if ok {
						mu.Lock()
						lats = append(lats, lat)
						mu.Unlock()
					}
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			work <- jobIdx
			jobIdx++
		}
		close(work)
		wg.Wait()
		wall := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("%-12d %6d %10s %9.1f/s %9s %9s %9s %9s\n",
			width, len(lats), wall.Round(time.Millisecond),
			float64(len(lats))/wall.Seconds(),
			pct(lats, 50).Round(time.Millisecond), pct(lats, 90).Round(time.Millisecond),
			pct(lats, 99).Round(time.Millisecond), mean(lats).Round(time.Millisecond))
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetching metrics: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nserver: %d completed, %d failed, %d rejected (429), cache %d hits / %d misses / %d dedups (hit rate %.2f)\n",
		m.JobsCompleted, m.JobsFailed, m.JobsRejected,
		m.Cache.Hits, m.Cache.Misses, m.Cache.Dedups, m.Cache.HitRate)

	exit := 0
	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d jobs failed\n", n)
		exit = 1
	}
	if n := mismatches.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d duplicate results were not byte-identical\n", n)
		exit = 1
	}
	if *requireHit && m.Cache.Hits+m.Cache.Dedups == 0 {
		fmt.Fprintln(os.Stderr, "no cache hits or dedups despite duplicate submissions")
		exit = 1
	}
	os.Exit(exit)
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}
