// Command tsoper-load drives a tsoper-serve instance — or a tsoper-gateway
// cluster — with a measured mix of repeated and unique simulation jobs,
// sweeping client concurrency and reporting sustained throughput with
// latency percentiles — so the service's capacity is a number, not a claim.
//
//	tsoper-load -addr http://localhost:7433 -concurrency 1,2,4,8 -jobs 32
//	tsoper-load -addr http://localhost:7500 -cluster -jobs 64
//
// Every -dup'th job resubmits a spec from a small duplicate pool; the rest
// are unique (distinct seeds). With -check, the result bytes of every
// duplicate are compared against the first occurrence and any divergence
// fails the run (the cache must be byte-identical, not just equivalent).
// With -require-hit, the run fails unless the server reports at least one
// cache hit — the CI smoke assertion.
//
// -programs mixes workload-VM jobs into the load: each named library
// program (see tsoper-sim -list) joins both the duplicate pool and the
// unique rotation, so program-typed submissions exercise the canonical-hash
// cache path alongside profile jobs.
//
// Failures are never silent: every error is bucketed by status code
// (connection errors under "conn", deadline hits under "timeout") and the
// breakdown is printed; the run exits non-zero when the failed-job rate
// exceeds -error-budget (default 0 — any failure fails the run).
//
// -cluster treats -addr as a tsoper-gateway and adds a routing report:
// per-node throughput, failover and peer-cache-fill counts, and the
// concurrency-scaling efficiency of each sweep level. -json writes the
// whole report (levels, error breakdown, server or cluster metrics) to a
// file for CI artifacts.
//
// Exit status: 0 clean, 1 over-budget failures / byte mismatches / missing
// cache hits, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/program"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// levelReport is one concurrency level's measured row.
type levelReport struct {
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	WallMS      float64 `json:"wall_ms"`
	Throughput  float64 `json:"throughput_per_s"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
	MeanMS      float64 `json:"mean_ms"`
	// Efficiency is this level's throughput per client relative to the
	// first level's — 1.0 is perfect linear scaling.
	Efficiency float64 `json:"efficiency"`
}

// report is the -json artifact.
type report struct {
	Levels []levelReport `json:"levels"`
	// Errors buckets failed jobs by HTTP status ("429", "502", …), "conn"
	// for transport failures, "timeout" for deadline hits.
	Errors     map[string]uint64 `json:"errors,omitempty"`
	ErrorRate  float64           `json:"error_rate"`
	Mismatches uint64            `json:"mismatches"`
	// Server is the single-node metrics snapshot; Cluster replaces it under
	// -cluster.
	Server  *service.MetricsSnapshot `json:"server,omitempty"`
	Cluster *cluster.Metrics         `json:"cluster,omitempty"`
}

// errorTally buckets failures by class, concurrency-safe.
type errorTally struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (t *errorTally) add(err error) {
	class := "conn"
	var apiErr *client.APIError
	switch {
	case errors.As(err, &apiErr):
		class = strconv.Itoa(apiErr.Status)
	case errors.Is(err, context.DeadlineExceeded):
		class = "timeout"
	}
	t.mu.Lock()
	t.m[class]++
	t.mu.Unlock()
}

func (t *errorTally) snapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:7433", "server (or gateway) base URL")
	concurrency := fs.String("concurrency", "1,2,4", "comma-separated client widths to sweep")
	jobs := fs.Int("jobs", 16, "jobs per concurrency level (> 0)")
	dup := fs.Int("dup", 4, "every dup'th job reuses the duplicate pool (0 = all unique)")
	benches := fs.String("bench", "radix,fft,ocean_cp", "comma-separated benchmark mix")
	programs := fs.String("programs", "", "comma-separated library programs to mix in as program-typed jobs")
	system := fs.String("system", "tsoper", "persistency system for every job")
	scale := fs.Float64("scale", 0.05, "workload scale factor (> 0)")
	seedBase := fs.Int64("seed-base", 1000, "first seed for unique jobs")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall deadline")
	check := fs.Bool("check", false, "verify duplicate submissions return byte-identical results")
	requireHit := fs.Bool("require-hit", false, "fail unless the server reports >= 1 cache hit")
	errorBudget := fs.Float64("error-budget", 0, "tolerated failed-job fraction in [0,1); above it the run exits 1")
	clusterMode := fs.Bool("cluster", false, "treat -addr as a tsoper-gateway; report per-node routing and failovers")
	jsonPath := fs.String("json", "", "write the full report to this path as JSON")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return 2
	}
	if *jobs <= 0 {
		return usage("-jobs must be positive, got %d", *jobs)
	}
	if *scale <= 0 {
		return usage("-scale must be positive, got %g", *scale)
	}
	if *dup < 0 {
		return usage("-dup must be non-negative, got %d", *dup)
	}
	if *errorBudget < 0 || *errorBudget >= 1 {
		return usage("-error-budget must be in [0,1), got %g", *errorBudget)
	}
	var widths []int
	for _, s := range strings.Split(*concurrency, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w <= 0 {
			return usage("bad -concurrency entry %q", s)
		}
		widths = append(widths, w)
	}
	benchList := strings.Split(*benches, ",")
	for i := range benchList {
		benchList[i] = strings.TrimSpace(benchList[i])
	}

	// Job templates: one per benchmark, plus one program-typed template per
	// requested library program. A template becomes a concrete spec by
	// stamping a seed (program jobs carry no scale — their size is spelled
	// out by their instructions).
	templates := make([]service.JobSpec, 0, len(benchList))
	for _, b := range benchList {
		templates = append(templates, service.JobSpec{Bench: b, System: *system, Scale: *scale})
	}
	if *programs != "" {
		for _, name := range strings.Split(*programs, ",") {
			p, err := program.ByName(strings.TrimSpace(name))
			if err != nil {
				return usage("%v", err)
			}
			templates = append(templates, service.JobSpec{Program: p, System: *system})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr, nil)
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(stderr, "server not healthy at %s: %v\n", *addr, err)
		return 1
	}

	// The duplicate pool: one spec per template, fixed seed, shared across
	// all levels so later levels exercise the cache the earlier ones filled.
	pool := make([]service.JobSpec, len(templates))
	for i, tmpl := range templates {
		pool[i] = tmpl
		pool[i].Seed = *seedBase - 1
	}

	var (
		firstBytes sync.Map // cache key -> first observed result bytes
		mismatches atomic.Uint64
		failures   atomic.Uint64
		attempted  atomic.Uint64
		nextSeed   atomic.Int64
	)
	tally := &errorTally{m: make(map[string]uint64)}
	nextSeed.Store(*seedBase)

	runOne := func(idx int) (time.Duration, bool) {
		var spec service.JobSpec
		if *dup > 0 && idx%*dup == 0 {
			spec = pool[(idx / *dup)%len(pool)]
		} else {
			spec = templates[idx%len(templates)]
			spec.Seed = nextSeed.Add(1)
		}
		attempted.Add(1)
		start := time.Now()
		body, st, err := c.Run(ctx, spec)
		lat := time.Since(start)
		if err != nil {
			fmt.Fprintf(stderr, "job %v failed: %v\n", spec, err)
			failures.Add(1)
			tally.add(err)
			return lat, false
		}
		if *check {
			if prev, loaded := firstBytes.LoadOrStore(st.Key, body); loaded {
				if string(prev.([]byte)) != string(body) {
					fmt.Fprintf(stderr, "BYTE MISMATCH for key %s (job %s)\n", st.Key, st.ID)
					mismatches.Add(1)
				}
			}
		}
		return lat, true
	}

	var rep report
	fmt.Fprintf(stdout, "%-12s %6s %10s %12s %9s %9s %9s %9s %6s\n",
		"concurrency", "jobs", "wall", "throughput", "p50", "p90", "p99", "mean", "eff")
	jobIdx := 0
	for _, width := range widths {
		lats := make([]time.Duration, 0, *jobs)
		var mu sync.Mutex
		work := make(chan int)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range work {
					lat, ok := runOne(idx)
					if ok {
						mu.Lock()
						lats = append(lats, lat)
						mu.Unlock()
					}
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			work <- jobIdx
			jobIdx++
		}
		close(work)
		wg.Wait()
		wall := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		lv := levelReport{
			Concurrency: width,
			Jobs:        len(lats),
			WallMS:      float64(wall) / float64(time.Millisecond),
			Throughput:  float64(len(lats)) / wall.Seconds(),
			P50MS:       float64(pct(lats, 50)) / float64(time.Millisecond),
			P90MS:       float64(pct(lats, 90)) / float64(time.Millisecond),
			P99MS:       float64(pct(lats, 99)) / float64(time.Millisecond),
			MeanMS:      float64(mean(lats)) / float64(time.Millisecond),
			Efficiency:  1,
		}
		if len(rep.Levels) > 0 {
			base := rep.Levels[0]
			if base.Throughput > 0 && base.Concurrency > 0 {
				perClientBase := base.Throughput / float64(base.Concurrency)
				if perClientBase > 0 {
					lv.Efficiency = (lv.Throughput / float64(lv.Concurrency)) / perClientBase
				}
			}
		}
		rep.Levels = append(rep.Levels, lv)
		fmt.Fprintf(stdout, "%-12d %6d %10s %9.1f/s %8.0fms %8.0fms %8.0fms %8.0fms %6.2f\n",
			width, lv.Jobs, wall.Round(time.Millisecond), lv.Throughput,
			lv.P50MS, lv.P90MS, lv.P99MS, lv.MeanMS, lv.Efficiency)
	}

	rep.Errors = tally.snapshot()
	rep.Mismatches = mismatches.Load()
	if n := attempted.Load(); n > 0 {
		rep.ErrorRate = float64(failures.Load()) / float64(n)
	}

	exit := 0
	if *clusterMode {
		cm, err := fetchClusterMetrics(ctx, *addr)
		if err != nil {
			fmt.Fprintf(stderr, "fetching cluster metrics: %v\n", err)
			exit = 1
		} else {
			rep.Cluster = cm
			printClusterReport(stdout, cm)
			if *requireHit && cm.CacheFills == 0 && !anyBackendHits(cm) {
				fmt.Fprintln(stderr, "no cache fills or backend hits despite duplicate submissions")
				exit = 1
			}
		}
	} else {
		m, err := c.Metrics(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "fetching metrics: %v\n", err)
			exit = 1
		} else {
			rep.Server = &m
			fmt.Fprintf(stdout, "\nserver %s: %d completed, %d failed, %d rejected (429), cache %d hits / %d misses / %d dedups / %d evictions (hit rate %.2f)\n",
				m.Node, m.JobsCompleted, m.JobsFailed, m.JobsRejected,
				m.Cache.Hits, m.Cache.Misses, m.Cache.Dedups, m.Cache.Evictions, m.Cache.HitRate)
			if *requireHit && m.Cache.Hits+m.Cache.Dedups == 0 {
				fmt.Fprintln(stderr, "no cache hits or dedups despite duplicate submissions")
				exit = 1
			}
		}
	}

	if len(rep.Errors) > 0 {
		fmt.Fprintf(stdout, "\nerror breakdown (%d failed / %d attempted, rate %.3f):\n",
			failures.Load(), attempted.Load(), rep.ErrorRate)
		classes := make([]string, 0, len(rep.Errors))
		for k := range rep.Errors {
			classes = append(classes, k)
		}
		sort.Strings(classes)
		for _, k := range classes {
			fmt.Fprintf(stdout, "  %-8s %d\n", k, rep.Errors[k])
		}
	}

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, &rep); err != nil {
			fmt.Fprintf(stderr, "writing report: %v\n", err)
			exit = 1
		}
	}

	if rep.ErrorRate > *errorBudget {
		fmt.Fprintf(stderr, "error rate %.3f exceeds budget %.3f\n", rep.ErrorRate, *errorBudget)
		exit = 1
	}
	if n := mismatches.Load(); n > 0 {
		fmt.Fprintf(stderr, "%d duplicate results were not byte-identical\n", n)
		exit = 1
	}
	return exit
}

// fetchClusterMetrics decodes a tsoper-gateway /metrics document.
func fetchClusterMetrics(ctx context.Context, base string) (*cluster.Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	var m cluster.Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("decoding cluster metrics (is -addr really a gateway?): %w", err)
	}
	if m.Nodes == nil {
		return nil, fmt.Errorf("no nodes in metrics document (is -addr really a gateway?)")
	}
	return &m, nil
}

// printClusterReport renders per-node routing, the failover ledger, and
// cluster-wide cache effectiveness.
func printClusterReport(w io.Writer, m *cluster.Metrics) {
	fmt.Fprintf(w, "\ncluster: %d submitted, %d cache fills (%d peer), %d failovers, %d no-backend rejections\n",
		m.Submitted, m.CacheFills, m.PeerFills, m.Failovers, m.NoBackend)
	fmt.Fprintf(w, "%-10s %-9s %8s %8s %8s %10s %8s %10s\n",
		"node", "state", "routed", "served", "fails", "completed", "hits", "hitrate")
	var hits, misses uint64
	for _, n := range m.Nodes {
		completed, nodeHits, rate := "-", "-", "-"
		if n.Backend != nil {
			completed = strconv.FormatUint(n.Backend.JobsCompleted, 10)
			nodeHits = strconv.FormatUint(n.Backend.Cache.Hits, 10)
			rate = fmt.Sprintf("%.2f", n.Backend.Cache.HitRate)
			hits += n.Backend.Cache.Hits
			misses += n.Backend.Cache.Misses
		}
		fmt.Fprintf(w, "%-10s %-9s %8d %8d %8d %10s %8s %10s\n",
			n.Name, n.State, n.Routed, n.CacheServed, n.Failures, completed, nodeHits, rate)
	}
	// Cluster-wide hit rate counts gateway cache fills as hits too: a fill
	// is a submission answered without compute.
	total := hits + misses + m.CacheFills
	if total > 0 {
		fmt.Fprintf(w, "cluster-wide cache hit rate (incl. gateway fills): %.2f\n",
			float64(hits+m.CacheFills)/float64(total))
	}
}

func anyBackendHits(m *cluster.Metrics) bool {
	for _, n := range m.Nodes {
		if n.Backend != nil && n.Backend.Cache.Hits+n.Backend.Cache.Dedups > 0 {
			return true
		}
	}
	return false
}

func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}
