// Command tsoper-litmus runs the Px86 litmus-test conformance oracle: the
// generated corpus of persistency litmus tests driven through the machine
// across harvested crash points and interleaving perturbations, asserting
// soundness (every reached durable outcome is allowed), coverage (every
// allowed outcome is reached), and checker agreement — gated across both
// event schedulers (byte-identical results) and runtime fault presets.
//
// Modes:
//
//	tsoper-litmus -corpus -json results/litmus.json
//	    the CI gate: full corpus x {wheel, heap} x fault presets, plus
//	    mutation testing of the oracle itself
//	tsoper-litmus -test mp -scheduler wheel
//	    one test, one scheduler
//	tsoper-litmus -corpus -protocol tardis -faults none
//	    the corpus gate on a non-default coherence backend
//	tsoper-litmus -test mp -fault torn-group -shrink
//	    inject a persistency fault and shrink the failing reproduction
//	tsoper-litmus -write-corpus internal/litmus/corpus
//	    regenerate the golden corpus files from the reference model
//
// Exit status: 0 clean, 1 violations/surviving mutants, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultplan"
	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// defaultPresets are the fault presets the corpus gate sweeps.
const defaultPresets = "nvm-transient,noc-lossy"

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-litmus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		corpus      = fs.Bool("corpus", false, "run the full corpus gate (schedulers x fault presets + mutation)")
		testName    = fs.String("test", "", "run a single corpus test by name")
		list        = fs.Bool("list", false, "list the corpus tests")
		scheduler   = fs.String("scheduler", "both", "event scheduler: wheel, heap, or both (cross-checked byte-identical)")
		faults      = fs.String("faults", defaultPresets, "comma-separated fault presets to gate under (\"none\" disables)")
		fault       = fs.String("fault", "", "inject a persistency CrashFault into every recovered state (mutation debugging)")
		mutation    = fs.Bool("mutation", false, "with -corpus: also run oracle mutation testing (default on)")
		noMutation  = fs.Bool("no-mutation", false, "with -corpus: skip oracle mutation testing")
		shrink      = fs.Bool("shrink", false, "minimize a failing test before reporting it")
		budget      = fs.Int("budget", 0, "crash points per perturbation (0 = default)")
		protocol    = fs.String("protocol", "slc", "coherence protocol: slc, mesi, or tardis")
		jsonPath    = fs.String("json", "", "write the conformance report to this path as JSON")
		writeCorpus = fs.String("write-corpus", "", "regenerate the golden corpus files into this directory and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}

	if *writeCorpus != "" {
		return writeCorpusFiles(*writeCorpus, stdout, stderr)
	}

	tests, err := litmus.Corpus()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *list {
		for _, t := range tests {
			fmt.Fprintf(stdout, "%-12s %d cores, %d vars, %2d allowed: %s\n",
				t.Name, len(t.Cores), len(t.Vars), len(t.Allowed), t.Doc)
		}
		return 0
	}

	var schedulers []sim.SchedulerKind
	switch *scheduler {
	case "both":
		schedulers = []sim.SchedulerKind{sim.SchedulerWheel, sim.SchedulerHeap}
	default:
		kind, err := sim.ParseSchedulerKind(*scheduler)
		if err != nil {
			fmt.Fprintln(stderr, err)
			fs.Usage()
			return 2
		}
		schedulers = []sim.SchedulerKind{kind}
	}
	var presets []faultplan.Spec
	if *faults != "none" && *faults != "" {
		for _, name := range strings.Split(*faults, ",") {
			name = strings.TrimSpace(name)
			p, ok := faultplan.Preset(name)
			if !ok {
				fmt.Fprintf(stderr, "unknown fault preset %q (presets: %s)\n",
					name, strings.Join(faultplan.PresetNames(), ", "))
				fs.Usage()
				return 2
			}
			presets = append(presets, p)
		}
	}
	proto, err := machine.ParseCoherenceKind(*protocol)
	if err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}
	crashFault := machine.FaultNone
	if *fault != "" {
		var ok bool
		if crashFault, ok = machine.ParseCrashFault(*fault); !ok {
			names := make([]string, 0, len(machine.Faults()))
			for _, f := range machine.Faults() {
				names = append(names, f.String())
			}
			fmt.Fprintf(stderr, "unknown crash fault %q (faults: %s)\n", *fault, strings.Join(names, ", "))
			fs.Usage()
			return 2
		}
	}

	if *testName != "" {
		t, ok := litmus.Find(tests, *testName)
		if !ok {
			fmt.Fprintf(stderr, "unknown corpus test %q (use -list)\n", *testName)
			fs.Usage()
			return 2
		}
		tests = tests[:0]
		tests = append(tests, t)
	} else if !*corpus {
		*corpus = true // no mode selected: run the corpus gate
	}

	rep := &litmus.Report{}
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
		failed = true
	}

	// Axis 1: full conformance under each scheduler, with cross-scheduler
	// byte-identity when both run.
	perScheduler := make([]map[string][]byte, len(schedulers))
	for si, kind := range schedulers {
		perScheduler[si] = map[string][]byte{}
		label := schedName(kind)
		rep.Axes = append(rep.Axes, label)
		for _, t := range tests {
			o := litmus.Default()
			o.Scheduler = kind
			o.Coherence = proto
			o.Fault = crashFault
			o.CrashBudget = *budget
			if crashFault != machine.FaultNone {
				o.Coverage = false
			}
			r := litmus.Explore(t, o)
			rep.Add(r)
			blob, err := json.Marshal(r)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			perScheduler[si][t.Name] = blob
			if err := r.Err(); err != nil {
				fail("[%s] %v", label, err)
				if *shrink {
					if st, sr := litmus.Shrink(t, o); st != nil {
						b, _ := json.Marshal(st)
						fmt.Fprintf(stderr, "  shrunk to %d violation(s): %s\n", sr.TotalViolations, b)
					}
				}
			} else {
				fmt.Fprintf(stdout, "[%s] %-12s conforms: %d outcomes over %d crash states\n",
					label, t.Name, len(r.Reached), r.Points)
			}
		}
	}
	if len(schedulers) == 2 {
		for _, t := range tests {
			a, b := perScheduler[0][t.Name], perScheduler[1][t.Name]
			if string(a) != string(b) {
				fail("[scheduler-equivalence] %s: %s and %s explorations diverge:\n  %s\n  %s",
					t.Name, schedName(schedulers[0]), schedName(schedulers[1]), a, b)
			}
		}
	}

	// Axis 2: soundness + checker agreement under runtime fault presets
	// (coverage waived: injected failures legitimately narrow reachability).
	for i := range presets {
		p := presets[i]
		label := "faults:" + p.Name
		rep.Axes = append(rep.Axes, label)
		for _, t := range tests {
			o := litmus.Default()
			o.Scheduler = sim.SchedulerWheel
			o.Coherence = proto
			o.Faults = &p
			o.Fault = crashFault
			o.Coverage = false
			o.CrashBudget = *budget
			r := litmus.Explore(t, o)
			rep.Add(r)
			if err := r.Err(); err != nil {
				fail("[%s] %v", label, err)
			} else {
				fmt.Fprintf(stdout, "[%s] %-12s sound: %d outcomes over %d crash states\n",
					label, t.Name, len(r.Reached), r.Points)
			}
		}
	}

	// Axis 3: oracle mutation testing — every injectable persistency fault
	// must be killed by some corpus test.
	if *corpus && !*noMutation || *mutation {
		kills, err := litmus.MutationKills(tests, litmus.Options{
			System: machine.TSOPER, CrashBudget: *budget,
		})
		rep.AddKills(kills)
		for _, k := range kills {
			status := "killed"
			if !k.Killed {
				status = "SURVIVED"
			}
			fmt.Fprintf(stdout, "mutant %-18s -> %s by %-12s (%s) %s\n",
				k.Fault, status, k.Test, k.Mode, k.Violation)
		}
		if err != nil {
			fail("%v", err)
		}
	}

	fmt.Fprintln(stdout, rep.Summary())
	if *jsonPath != "" {
		if err := rep.WriteJSONFile(*jsonPath); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

func schedName(k sim.SchedulerKind) string {
	if k == sim.SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// writeCorpusFiles regenerates the golden corpus from the reference model.
func writeCorpusFiles(dir string, stdout, stderr io.Writer) int {
	tests, err := litmus.Generate()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	old, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	for i, t := range tests {
		data, err := litmus.MarshalIndentTest(t)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		name := litmus.CorpusFileName(i, t.Name)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d allowed, %d forbidden)\n", name, len(t.Allowed), len(t.Forbidden))
	}
	return 0
}
