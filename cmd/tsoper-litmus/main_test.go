package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/litmus"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 conformance violations or
// surviving mutants, 2 usage errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "stray arguments", argv: []string{"stray"}, want: 2, stderr: "unexpected arguments"},
		{name: "unknown scheduler", argv: []string{"-scheduler", "fifo"}, want: 2},
		{name: "unknown preset", argv: []string{"-faults", "blizzard"}, want: 2, stderr: "unknown fault preset"},
		{name: "unknown protocol", argv: []string{"-protocol", "dragon"}, want: 2, stderr: "unknown coherence protocol"},
		{name: "unknown crash fault", argv: []string{"-fault", "gremlin"}, want: 2, stderr: "unknown crash fault"},
		{name: "unknown test", argv: []string{"-test", "zz"}, want: 2, stderr: "unknown corpus test"},
		{name: "list", argv: []string{"-list"}, want: 0},
		{
			name: "single test conforms",
			argv: []string{"-test", "mp", "-scheduler", "wheel", "-faults", "none", "-no-mutation"},
			want: 0, slow: true,
		},
		{
			name: "single test conforms on tardis",
			argv: []string{"-test", "mp", "-scheduler", "wheel", "-faults", "none", "-no-mutation", "-protocol", "tardis"},
			want: 0, slow: true,
		},
		{
			name: "injected fault fails",
			argv: []string{"-test", "epoch-atomic", "-scheduler", "wheel", "-faults", "none", "-fault", "torn-group", "-no-mutation"},
			want: 1, slow: true, stderr: "violation",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs a real exploration")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestJSONReport checks the -json artifact parses back into a report with
// the expected tallies.
func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real exploration")
	}
	path := filepath.Join(t.TempDir(), "litmus.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-test", "sb", "-scheduler", "both", "-faults", "none", "-no-mutation", "-json", path},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep litmus.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Tests != 2 || rep.Conforming != 2 || rep.Violating != 0 {
		t.Errorf("report tallies = %d/%d/%d, want 2 explorations all conforming",
			rep.Tests, rep.Conforming, rep.Violating)
	}
	if len(rep.Axes) != 2 {
		t.Errorf("axes = %v, want wheel and heap", rep.Axes)
	}
}

// TestWriteCorpusRegeneratesGoldenFiles round-trips the generator through
// -write-corpus into a scratch directory.
func TestWriteCorpusRegeneratesGoldenFiles(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-corpus", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := litmus.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(want) {
		t.Fatalf("wrote %d files, want %d", len(files), len(want))
	}
}
