// Command tsoper-experiments regenerates the paper's evaluation (§V): every
// figure, the Table I configuration, the protocol-complexity comparison,
// and the ablation sweeps.
//
// Usage:
//
//	tsoper-experiments -exp all -scale 0.5
//	tsoper-experiments -exp fig11,fig13 -bench radix,ocean_cp
//	tsoper-experiments -exp fig11 -workers 4 -artifacts results
//
// Experiments: tableI, protocol, fig11, fig12, fig13, fig14, fig15, lists,
// agbsweep, evict, agborg, epochs, all.
//
// -artifacts DIR additionally writes each experiment's text output to
// DIR/<exp>.txt so figure data lands in versionable files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment list")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 22)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	workers := flag.Int("workers", 0, "simulation worker count (0 = auto: GOMAXPROCS, or 1 with -serial)")
	artifacts := flag.String("artifacts", "", "also write each experiment's output to this directory")
	scheduler := flag.String("scheduler", "wheel", "event-queue implementation: wheel or heap")
	flag.Parse()

	sched, err := sim.ParseSchedulerKind(*scheduler)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	o := harness.Options{Scale: *scale, Seed: *seed, Parallel: !*serial, Workers: *workers, Scheduler: sched}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	known := map[string]func(harness.Options) string{
		"tableI":   func(harness.Options) string { return harness.TableIText() },
		"protocol": func(harness.Options) string { return harness.ProtocolComplexityText() },
		"fig11":    func(o harness.Options) string { return harness.Figure11(o).String() },
		"fig12":    func(o harness.Options) string { return harness.Figure12(o).String() },
		"fig13":    func(o harness.Options) string { return harness.Figure13(o).String() },
		"fig14":    func(o harness.Options) string { return harness.Figure14(o).String() },
		"fig15":    func(o harness.Options) string { return harness.Figure15(o).String() },
		"lists":    func(o harness.Options) string { return harness.Lists(o).String() },
		"agbsweep": func(o harness.Options) string { return harness.AGBSweep(o).String() },
		"evict":    func(o harness.Options) string { return harness.EvictSweep(o).String() },
		"agborg":   func(o harness.Options) string { return harness.AGBOrganizations(o).String() },
		"epochs":   func(o harness.Options) string { return harness.BSPEpochSweep(o).String() },
		"whisper":  func(o harness.Options) string { return harness.Whisper(o).String() },
		"slccost":  func(o harness.Options) string { return harness.SLCOverhead(o).String() },
	}
	order := []string{"tableI", "protocol", "fig11", "fig12", "fig13", "fig14", "fig15",
		"lists", "agbsweep", "evict", "agborg", "epochs", "whisper", "slccost"}

	var todo []string
	if *exp == "all" {
		todo = order
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if _, ok := known[e]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s, all)\n", e, strings.Join(order, ", "))
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		out := known[e](o)
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e, time.Since(start).Seconds(), out)
		if *artifacts != "" {
			path := filepath.Join(*artifacts, e+".txt")
			if err := os.WriteFile(path, []byte(out+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
