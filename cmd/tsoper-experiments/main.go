// Command tsoper-experiments regenerates the paper's evaluation (§V): every
// figure, the Table I configuration, the protocol-complexity comparison,
// and the ablation sweeps.
//
// Usage:
//
//	tsoper-experiments -exp all -scale 0.5
//	tsoper-experiments -exp fig11,fig13 -bench radix,ocean_cp
//	tsoper-experiments -exp fig11 -workers 4 -artifacts results
//
// Experiments: tableI, protocol, fig11, fig12, fig13, fig14, fig15, lists,
// agbsweep, evict, agborg, epochs, whisper, slccost, protocols, all.
//
// -protocol runs the figure/ablation experiments on a non-default coherence
// backend (slc, mesi, or tardis); the protocols experiment always sweeps all
// three and, with -protocols-json, writes the bake-off as a benchjson-style
// document (CI publishes results/protocols.json).
//
// -artifacts DIR additionally writes each experiment's text output to
// DIR/<exp>.txt so figure data lands in versionable files.
//
// Exit status: 0 clean, 1 runtime failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "comma-separated experiment list")
	scale := fs.Float64("scale", 0.5, "workload scale factor (> 0)")
	seed := fs.Int64("seed", 42, "workload seed")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all 22)")
	serial := fs.Bool("serial", false, "disable parallel simulation")
	workers := fs.Int("workers", 0, "simulation worker count (0 = auto: GOMAXPROCS, or 1 with -serial)")
	artifacts := fs.String("artifacts", "", "also write each experiment's output to this directory")
	scheduler := fs.String("scheduler", "wheel", "event-queue implementation: wheel or heap")
	protocol := fs.String("protocol", "slc", "coherence protocol for the figure/ablation experiments: slc, mesi, or tardis")
	protocolsJSON := fs.String("protocols-json", "", "with -exp protocols, also write the bake-off as benchjson-style JSON to this path")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return 2
	}

	if *scale <= 0 {
		return usageErr("-scale must be positive, got %g", *scale)
	}
	sched, err := sim.ParseSchedulerKind(*scheduler)
	if err != nil {
		return usageErr("%v", err)
	}
	proto, err := machine.ParseCoherenceKind(*protocol)
	if err != nil {
		return usageErr("%v", err)
	}
	o := harness.Options{Scale: *scale, Seed: *seed, Parallel: !*serial, Workers: *workers, Scheduler: sched, Protocol: proto}

	known := map[string]func(harness.Options) string{
		"tableI":   func(harness.Options) string { return harness.TableIText() },
		"protocol": func(harness.Options) string { return harness.ProtocolComplexityText() },
		"fig11":    func(o harness.Options) string { return harness.Figure11(o).String() },
		"fig12":    func(o harness.Options) string { return harness.Figure12(o).String() },
		"fig13":    func(o harness.Options) string { return harness.Figure13(o).String() },
		"fig14":    func(o harness.Options) string { return harness.Figure14(o).String() },
		"fig15":    func(o harness.Options) string { return harness.Figure15(o).String() },
		"lists":    func(o harness.Options) string { return harness.Lists(o).String() },
		"agbsweep": func(o harness.Options) string { return harness.AGBSweep(o).String() },
		"evict":    func(o harness.Options) string { return harness.EvictSweep(o).String() },
		"agborg":   func(o harness.Options) string { return harness.AGBOrganizations(o).String() },
		"epochs":   func(o harness.Options) string { return harness.BSPEpochSweep(o).String() },
		"whisper":  func(o harness.Options) string { return harness.Whisper(o).String() },
		"slccost":  func(o harness.Options) string { return harness.SLCOverhead(o).String() },
		"protocols": func(o harness.Options) string {
			bake := harness.ProtocolBakeoff(o)
			if *protocolsJSON != "" {
				if err := bake.WriteBenchJSONFile(*protocolsJSON); err != nil {
					return fmt.Sprintf("%s\nprotocols-json: %v", bake, err)
				}
			}
			return bake.String()
		},
	}
	order := []string{"tableI", "protocol", "fig11", "fig12", "fig13", "fig14", "fig15",
		"lists", "agbsweep", "evict", "agborg", "epochs", "whisper", "slccost", "protocols"}

	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			b = strings.TrimSpace(b)
			if _, ok := trace.ByName(b); !ok {
				return usageErr("unknown benchmark %q", b)
			}
			o.Benchmarks = append(o.Benchmarks, b)
		}
	}

	var todo []string
	if *exp == "all" {
		todo = order
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if _, ok := known[e]; !ok {
				return usageErr("unknown experiment %q (known: %s, all)", e, strings.Join(order, ", "))
			}
			todo = append(todo, e)
		}
	}

	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	for _, e := range todo {
		start := time.Now()
		out := known[e](o)
		fmt.Fprintf(stdout, "==== %s (%.1fs) ====\n%s\n", e, time.Since(start).Seconds(), out)
		if *artifacts != "" {
			path := filepath.Join(*artifacts, e+".txt")
			if err := os.WriteFile(path, []byte(out+"\n"), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	return 0
}
