package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 runtime failure, 2 usage.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
		stdout string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "non-positive scale", argv: []string{"-scale", "0"}, want: 2, stderr: "-scale must be positive"},
		{name: "unknown scheduler", argv: []string{"-scheduler", "abacus"}, want: 2},
		{name: "unknown protocol", argv: []string{"-protocol", "dragon"}, want: 2, stderr: "unknown coherence protocol"},
		{name: "unknown experiment", argv: []string{"-exp", "fig99"}, want: 2, stderr: "unknown experiment"},
		{name: "unknown benchmark", argv: []string{"-exp", "fig11", "-bench", "doom"}, want: 2, stderr: "unknown benchmark"},
		{name: "tableI only", argv: []string{"-exp", "tableI"}, want: 0, stdout: "==== tableI"},
		{
			name: "small fig11 run",
			argv: []string{"-exp", "fig11", "-bench", "radix", "-scale", "0.02"},
			want: 0, slow: true, stdout: "==== fig11",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs real simulations")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
			if tc.stdout != "" && !strings.Contains(stdout.String(), tc.stdout) {
				t.Errorf("stdout %q does not mention %q", stdout.String(), tc.stdout)
			}
		})
	}
}

// TestArtifacts checks -artifacts writes one file per experiment.
func TestArtifacts(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-exp", "tableI,protocol", "-artifacts", dir}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", got, stderr.String())
	}
	for _, name := range []string{"tableI.txt", "protocol.txt"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if len(b) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
}
