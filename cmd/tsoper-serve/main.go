// Command tsoper-serve runs the simulation-as-a-service server: a bounded
// job queue, a simulation worker pool, a content-addressed result cache,
// and the HTTP API (submit/status/result/cancel, SSE progress, /healthz,
// /metrics).
//
//	tsoper-serve -addr :7433 -workers 8 -queue 64 -cache 256
//
// Submit jobs with curl:
//
//	curl -s localhost:7433/v1/jobs -d '{"bench":"radix","system":"tsoper"}'
//	curl -s localhost:7433/v1/jobs -d '{"program":{...},"system":"tsoper"}'
//
// or drive it with tsoper-load. Program jobs (PROGRAMS.md) are
// cost-estimated before admission — over-budget programs are rejected with
// 429 carrying the estimate — and cached under the program's canonical
// hash. SIGTERM/SIGINT drain gracefully: admission stops, queued and
// in-flight jobs finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":7433", "listen address")
	node := flag.String("node", "", "node ID reported on /healthz and /metrics for cluster routing (default node-0)")
	workers := flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "admission queue bound; overflow gets 429 + Retry-After")
	cacheEntries := flag.Int("cache", 256, "content-addressed result cache entries (LRU)")
	jobTimeout := flag.Uint64("job-timeout", 0, "per-job stall-watchdog horizon in simulation cycles (0 = default)")
	maxProgramOps := flag.Int("max-program-ops", 0, "program-job admission budget in trace ops; over-budget programs get 429 + estimate (0 = default 4Mi)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs at shutdown")
	flag.Parse()
	log.SetPrefix("tsoper-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	srv := service.New(service.Config{
		NodeID:        *node,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheEntries:  *cacheEntries,
		JobTimeout:    sim.Time(*jobTimeout),
		MaxProgramOps: *maxProgramOps,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("%s: draining (queue depth %d)", sig, srv.Metrics().QueueDepth)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("drained clean: %d completed, %d failed, %d cache hits (rate %.2f), p50 %.1fms p99 %.1fms\n",
		m.JobsCompleted, m.JobsFailed, m.Cache.Hits, m.Cache.HitRate,
		m.Latency.P50MS, m.Latency.P99MS)
}
