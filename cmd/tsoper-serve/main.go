// Command tsoper-serve runs the simulation-as-a-service server: a bounded
// job queue, a simulation worker pool, a content-addressed result cache,
// and the HTTP API (submit/status/result/cancel, SSE progress, /healthz,
// /metrics).
//
//	tsoper-serve -addr :7433 -workers 8 -queue 64 -cache 256
//
// Submit jobs with curl:
//
//	curl -s localhost:7433/v1/jobs -d '{"bench":"radix","system":"tsoper"}'
//	curl -s localhost:7433/v1/jobs -d '{"program":{...},"system":"tsoper"}'
//
// or drive it with tsoper-load. Program jobs (PROGRAMS.md) are
// cost-estimated before admission — over-budget programs are rejected with
// 429 carrying the estimate — and cached under the program's canonical
// hash; each program run also caches a periodic checkpoint so later
// superprograms warm-start from the shared prefix (-checkpoint-every).
// SIGTERM/SIGINT drain gracefully: admission stops, queued and in-flight
// jobs finish, then the process exits 0.
//
// Exit status: 0 clean shutdown, 1 serve/drain failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":7433", "listen address")
	node := fs.String("node", "", "node ID reported on /healthz and /metrics for cluster routing (default node-0)")
	workers := fs.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue", 64, "admission queue bound; overflow gets 429 + Retry-After")
	cacheEntries := fs.Int("cache", 256, "content-addressed result cache entries (LRU)")
	jobTimeout := fs.Uint64("job-timeout", 0, "per-job stall-watchdog horizon in simulation cycles (0 = default)")
	maxProgramOps := fs.Int("max-program-ops", 0, "program-job admission budget in trace ops; over-budget programs get 429 + estimate (0 = default 4Mi)")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "program-job checkpoint stride in simulation cycles, for superprogram warm-starts (0 = default 100000)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs at shutdown")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected argument %q", fs.Arg(0))
	}
	if *addr == "" {
		return usage("-addr must not be empty")
	}
	if *workers < 0 {
		return usage("-workers must not be negative, got %d", *workers)
	}
	if *queueDepth < 0 {
		return usage("-queue must not be negative, got %d", *queueDepth)
	}
	if *cacheEntries < 0 {
		return usage("-cache must not be negative, got %d", *cacheEntries)
	}
	if *maxProgramOps < 0 {
		return usage("-max-program-ops must not be negative, got %d", *maxProgramOps)
	}
	if *drainTimeout <= 0 {
		return usage("-drain-timeout must be positive, got %v", *drainTimeout)
	}

	log.SetPrefix("tsoper-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	srv := service.New(service.Config{
		NodeID:          *node,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		JobTimeout:      sim.Time(*jobTimeout),
		MaxProgramOps:   *maxProgramOps,
		CheckpointEvery: sim.Time(*ckptEvery),
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)
	select {
	case sig := <-sigCh:
		log.Printf("%s: draining (queue depth %d)", sig, srv.Metrics().QueueDepth)
	case err := <-errCh:
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "drain: %v\n", err)
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "shutdown: %v\n", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	m := srv.Metrics()
	fmt.Fprintf(stdout, "drained clean: %d completed, %d failed, %d cache hits (rate %.2f), p50 %.1fms p99 %.1fms\n",
		m.JobsCompleted, m.JobsFailed, m.Cache.Hits, m.Cache.HitRate,
		m.Latency.P50MS, m.Latency.P99MS)
	return 0
}
