package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 2 for argument mistakes (before any
// listener opens), 1 for runtime failures like an unusable listen address.
func TestExitCodes(t *testing.T) {
	// A listener we never accept on, so "address already in use" is a
	// deterministic runtime failure.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	busy := ln.Addr().String()

	cases := []struct {
		name   string
		argv   []string
		want   int
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "stray argument", argv: []string{"extra"}, want: 2, stderr: "unexpected argument"},
		{name: "empty addr", argv: []string{"-addr", ""}, want: 2, stderr: "-addr must not be empty"},
		{name: "negative workers", argv: []string{"-workers", "-1"}, want: 2, stderr: "-workers must not be negative"},
		{name: "negative queue", argv: []string{"-queue", "-4"}, want: 2, stderr: "-queue must not be negative"},
		{name: "negative cache", argv: []string{"-cache", "-1"}, want: 2, stderr: "-cache must not be negative"},
		{name: "negative program budget", argv: []string{"-max-program-ops", "-1"}, want: 2, stderr: "-max-program-ops must not be negative"},
		{name: "non-positive drain timeout", argv: []string{"-drain-timeout", "0s"}, want: 2, stderr: "-drain-timeout must be positive"},
		{name: "malformed checkpoint stride", argv: []string{"-checkpoint-every", "soon"}, want: 2},
		{name: "unparseable addr", argv: []string{"-addr", "127.0.0.1:notaport"}, want: 1, stderr: "serve:"},
		{name: "addr in use", argv: []string{"-addr", busy, "-workers", "1"}, want: 1, stderr: "address already in use"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}
