// Command tsoper-crash runs crash-injection campaigns against the strict
// persistency systems and verifies every recovered NVM image is a
// TSO-consistent cut (atomic groups all-or-nothing, persist order
// prefix-closed per core and under persist-before dependencies, per-line
// FIFO).
//
// Three modes:
//
//	tsoper-crash -bench radix -system tsoper -crashes 50 -scale 0.3
//	    sweep one benchmark x system cell, printing every crash point
//	tsoper-crash -campaign smoke -parallel 4 -json smoke.json
//	    the CI campaign: adversarial workloads x {tsoper, stw},
//	    event-targeted crash points, parallel workers
//	tsoper-crash -campaign mutation
//	    checker mutation testing: every injected persistency fault must
//	    be rejected with exactly the rule it is engineered to trip
//
// Exit status: 0 clean, 1 violations or surviving mutants, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/crashmc"
	"repro/internal/machine"
	"repro/internal/trace"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	bench := flag.String("bench", "radix", "comma-separated benchmark names")
	system := flag.String("system", "tsoper", "comma-separated strict systems: tsoper, stw")
	crashes := flag.Int("crashes", 40, "crash points per benchmark x system tuple (> 0)")
	step := flag.Uint64("step", 1500, "cycles between uniform crash points (> 0)")
	first := flag.Uint64("first", 500, "first uniform crash cycle (> 0)")
	scale := flag.Float64("scale", 0.3, "workload scale factor (> 0)")
	seed := flag.Int64("seed", 42, "workload seed")
	strategy := flag.String("strategy", "uniform", "crash-point strategy: events, uniform, random")
	campaign := flag.String("campaign", "", "predefined campaign: smoke or mutation (overrides -bench/-system/-strategy)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write the campaign report to this path as JSON")
	shrink := flag.Bool("shrink", false, "minimize each failing crash point before reporting it")
	flag.Parse()

	if *crashes <= 0 {
		usageErr("-crashes must be positive, got %d", *crashes)
	}
	if *step == 0 {
		usageErr("-step must be positive")
	}
	if *first == 0 {
		usageErr("-first must be positive")
	}
	if *scale <= 0 {
		usageErr("-scale must be positive, got %g", *scale)
	}
	strat, ok := crashmc.ParseStrategy(*strategy)
	if !ok {
		usageErr("unknown strategy %q (want events, uniform, or random)", *strategy)
	}

	var report *crashmc.Report
	var err error
	switch *campaign {
	case "":
		report, err = runSweep(*bench, *system, *crashes, *first, *step, *scale, *seed, strat, *parallel, *shrink)
	case "smoke":
		crashesSet := false
		flag.Visit(func(f *flag.Flag) { crashesSet = crashesSet || f.Name == "crashes" })
		points := 50 // x 2 adversaries x 2 systems = 200 injections
		if crashesSet {
			points = *crashes
		}
		report, err = crashmc.Run(crashmc.Spec{
			Name:       "smoke",
			Benchmarks: crashmc.Adversaries()[:2],
			Systems:    []machine.SystemKind{machine.TSOPER, machine.STW},
			Seed:       *seed,
			Points:     points,
			Strategy:   crashmc.StrategyEvents,
			Parallel:   *parallel,
			Shrink:     *shrink,
		})
		if report != nil {
			fmt.Println(report.Summary())
		}
	case "mutation":
		report, err = runMutation(*seed, *crashes)
	default:
		usageErr("unknown campaign %q (want smoke or mutation)", *campaign)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if report == nil {
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		if werr := report.WriteJSONFile(*jsonPath); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	}
	for _, inj := range report.Violations {
		fmt.Fprintf(os.Stderr, "VIOLATION %s/%s @%d: %s\n", inj.Benchmark, inj.System, inj.At, inj.Violation)
		if inj.Shrunk != nil {
			fmt.Fprintf(os.Stderr, "  shrunk: %s\n", inj.Shrunk)
		}
	}
	for _, k := range report.Kills {
		status := "killed"
		if !k.Killed {
			status = "SURVIVED"
		}
		fmt.Printf("mutant %-16s -> rule %-15s %s (applied at %d of %d points)\n",
			k.Fault, k.Expected, status, k.Applied, k.Tried)
	}
	if !report.Clean() || err != nil {
		os.Exit(1)
	}
}

// runSweep is the legacy single-cell mode, generalized to comma-separated
// benchmark/system lists, with the per-crash-point output lines preserved.
func runSweep(benches, systems string, crashes int, first, step uint64, scale float64, seed int64, strat crashmc.Strategy, parallel int, shrink bool) (*crashmc.Report, error) {
	var profiles []trace.Profile
	for _, name := range strings.Split(benches, ",") {
		p, ok := trace.ByName(strings.TrimSpace(name))
		if !ok {
			if p, ok = crashmc.Adversary(strings.TrimSpace(name)); !ok {
				usageErr("unknown benchmark %q", name)
			}
		}
		profiles = append(profiles, p)
	}
	var kinds []machine.SystemKind
	for _, name := range strings.Split(systems, ",") {
		switch strings.TrimSpace(name) {
		case "tsoper":
			kinds = append(kinds, machine.TSOPER)
		case "stw":
			kinds = append(kinds, machine.STW)
		default:
			usageErr("crash checking requires a strict system (tsoper or stw), got %q", name)
		}
	}
	report, err := crashmc.Run(crashmc.Spec{
		Name:       "sweep",
		Benchmarks: profiles,
		Systems:    kinds,
		Scale:      scale,
		Seed:       seed,
		Points:     crashes,
		Strategy:   strat,
		First:      first,
		Step:       step,
		Parallel:   parallel,
		Shrink:     shrink,
		Detail:     true,
	})
	if err != nil {
		return report, err
	}
	for _, inj := range report.Details {
		status := "consistent"
		if inj.Violation != "" {
			status = inj.Violation
		}
		fmt.Printf("%s/%s crash @%8d: %3d/%3d groups durable — %s\n",
			inj.Benchmark, inj.System, inj.At, inj.Durable, inj.Groups, status)
	}
	fmt.Printf("\n%s\n", report.Summary())
	return report, nil
}

// runMutation proves every injected persistency fault is killed, on both
// strict systems, using event-harvested crash points walked newest-first.
func runMutation(seed int64, budget int) (*crashmc.Report, error) {
	report := &crashmc.Report{Name: "mutation", Seed: seed, Scale: 1, Strategy: crashmc.StrategyEvents.String()}
	var firstErr error
	for _, kind := range []machine.SystemKind{machine.TSOPER, machine.STW} {
		p := crashmc.Adversaries()[0]
		cfg := machine.TableI(kind)
		points, horizon := crashmc.Harvest(p, cfg, seed, budget)
		reversed := make([]uint64, 0, len(points)+1)
		reversed = append(reversed, horizon)
		for i := len(points) - 1; i >= 0; i-- {
			reversed = append(reversed, points[i])
		}
		kills, err := crashmc.Mutate(p, kind, cfg, seed, reversed)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		report.Kills = append(report.Kills, kills...)
		report.Injections += len(reversed) * len(machine.Faults())
	}
	return report, firstErr
}
