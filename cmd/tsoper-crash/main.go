// Command tsoper-crash runs crash-injection campaigns against the strict
// persistency systems and verifies every recovered NVM image is a
// TSO-consistent cut (atomic groups all-or-nothing, persist order
// prefix-closed per core and under persist-before dependencies, per-line
// FIFO).
//
// Usage:
//
//	tsoper-crash -bench radix -system tsoper -crashes 50 -scale 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/tsoper"
)

func main() {
	bench := flag.String("bench", "radix", "benchmark name")
	system := flag.String("system", "tsoper", "strict system: tsoper or stw")
	crashes := flag.Int("crashes", 40, "number of crash points")
	step := flag.Uint64("step", 1500, "cycles between crash points")
	first := flag.Uint64("first", 500, "first crash cycle")
	scale := flag.Float64("scale", 0.3, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	p, ok := tsoper.Benchmark(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	var kind tsoper.System
	switch *system {
	case "tsoper":
		kind = tsoper.TSOPER
	case "stw":
		kind = tsoper.STW
	default:
		fmt.Fprintf(os.Stderr, "crash checking requires a strict system (tsoper or stw), got %q\n", *system)
		os.Exit(1)
	}

	opts := tsoper.RunOptions{Scale: *scale, Seed: *seed}
	failures := 0
	partial := 0
	for i := 0; i < *crashes; i++ {
		at := *first + uint64(i)*(*step)
		cs, err := tsoper.Crash(p, kind, at, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		durable := 0
		for _, g := range cs.Groups {
			if g.State() >= core.Durable {
				durable++
			}
		}
		if durable > 0 && durable < len(cs.Groups) {
			partial++
		}
		status := "consistent"
		if err := tsoper.Check(cs); err != nil {
			status = err.Error()
			failures++
		}
		fmt.Printf("crash @%8d: %3d/%3d groups durable, %5d lines recovered — %s\n",
			at, durable, len(cs.Groups), len(cs.Image), status)
	}
	fmt.Printf("\n%d crashes, %d partially-durable states exercised, %d violations\n",
		*crashes, partial, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
