// Command tsoper-crash runs crash-injection campaigns against the strict
// persistency systems and verifies every recovered NVM image is a
// TSO-consistent cut (atomic groups all-or-nothing, persist order
// prefix-closed per core and under persist-before dependencies, per-line
// FIFO).
//
// Three modes:
//
//	tsoper-crash -bench radix -system tsoper -crashes 50 -scale 0.3
//	    sweep one benchmark x system cell, printing every crash point
//	tsoper-crash -program producer-consumer-ring -crashes 30
//	    sweep a workload-VM program (library name or JSON file) instead
//	tsoper-crash -campaign smoke -parallel 4 -json smoke.json
//	    the CI campaign: adversarial workloads x {tsoper, stw},
//	    event-targeted crash points, parallel workers
//	tsoper-crash -campaign mutation
//	    checker mutation testing: every injected persistency fault must
//	    be rejected with exactly the rule it is engineered to trip
//	tsoper-crash -compare-out results/checkpoint.json -crashes 40
//	    time the pressure campaign under prefix-forked vs full-replay
//	    execution, prove the reports identical, write the comparison
//
// Sweeps fork each crash point from an incrementally advanced prefix
// machine by default; -full-replay restores the legacy
// one-machine-per-point mode (same injections, more simulated cycles).
// -protocol selects the coherence backend (slc, mesi, or tardis) for the
// sweep and smoke modes.
//
// Exit status: 0 clean, 1 violations or surviving mutants, 2 usage error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/crashmc"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/tsoper"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks argument mistakes: run exits 2 for those, 1 for
// runtime findings.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsoper-crash", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "radix", "comma-separated benchmark names")
	progFlag := fs.String("program", "", "comma-separated library programs (or JSON files) to crash-sweep instead of -bench")
	system := fs.String("system", "tsoper", "comma-separated strict systems: tsoper, stw")
	crashes := fs.Int("crashes", 40, "crash points per benchmark x system tuple (> 0)")
	step := fs.Uint64("step", 1500, "cycles between uniform crash points (> 0)")
	first := fs.Uint64("first", 500, "first uniform crash cycle (> 0)")
	scale := fs.Float64("scale", 0.3, "workload scale factor (> 0)")
	seed := fs.Int64("seed", 42, "workload seed")
	strategy := fs.String("strategy", "uniform", "crash-point strategy: events, uniform, random")
	protoFlag := fs.String("protocol", "slc", "coherence protocol: slc, mesi, or tardis")
	campaign := fs.String("campaign", "", "predefined campaign: smoke or mutation (overrides -bench/-system/-strategy)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write the campaign report to this path as JSON")
	shrink := fs.Bool("shrink", false, "minimize each failing crash point before reporting it")
	fullReplay := fs.Bool("full-replay", false, "replay every crash point from cycle 0 instead of forking prefix machines (slower; for differential timing)")
	compareOut := fs.String("compare-out", "", "time prefix-forked vs full-replay sweeps on the pressure config, write the comparison JSON here, and exit")
	minSpeedup := fs.Float64("min-speedup", 0, "with -compare-out, fail unless prefix forking is at least this many times faster")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *compareOut != "" {
		if *campaign != "" || *progFlag != "" {
			fmt.Fprintln(stderr, "-compare-out is its own mode; drop -campaign/-program")
			fs.Usage()
			return 2
		}
		if err := runCompare(stdout, *compareOut, *seed, *crashes, *parallel, *minSpeedup); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	report, err := dispatch(fs, stdout, *bench, *progFlag, *system, *protoFlag, *crashes, *first, *step,
		*scale, *seed, *strategy, *campaign, *parallel, *shrink, *fullReplay)
	var uerr usageError
	if errors.As(err, &uerr) {
		fmt.Fprintln(stderr, uerr.Error())
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		if report == nil {
			return 1
		}
	}

	if *jsonPath != "" {
		if werr := report.WriteJSONFile(*jsonPath); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	for _, inj := range report.Violations {
		fmt.Fprintf(stderr, "VIOLATION %s/%s @%d: %s\n", inj.Benchmark, inj.System, inj.At, inj.Violation)
		if inj.Shrunk != nil {
			fmt.Fprintf(stderr, "  shrunk: %s\n", inj.Shrunk)
		}
	}
	for _, k := range report.Kills {
		status := "killed"
		if !k.Killed {
			status = "SURVIVED"
		}
		fmt.Fprintf(stdout, "mutant %-16s -> rule %-15s %s (applied at %d of %d points)\n",
			k.Fault, k.Expected, status, k.Applied, k.Tried)
	}
	if !report.Clean() || err != nil {
		return 1
	}
	return 0
}

// dispatch validates the mode arguments and runs the selected campaign.
func dispatch(fs *flag.FlagSet, stdout io.Writer, bench, programs, system, protocol string, crashes int,
	first, step uint64, scale float64, seed int64, strategy, campaign string,
	parallel int, shrink, fullReplay bool) (*crashmc.Report, error) {
	if crashes <= 0 {
		return nil, usagef("-crashes must be positive, got %d", crashes)
	}
	if step == 0 {
		return nil, usagef("-step must be positive")
	}
	if first == 0 {
		return nil, usagef("-first must be positive")
	}
	if scale <= 0 {
		return nil, usagef("-scale must be positive, got %g", scale)
	}
	strat, ok := crashmc.ParseStrategy(strategy)
	if !ok {
		return nil, usagef("unknown strategy %q (want events, uniform, or random)", strategy)
	}
	proto, err := tsoper.ParseProtocol(protocol)
	if err != nil {
		return nil, usageError{err}
	}

	if programs != "" && campaign != "" {
		return nil, usagef("-program applies to the sweep mode, not -campaign %s", campaign)
	}

	switch campaign {
	case "":
		return runSweep(stdout, bench, programs, system, proto, crashes, first, step, scale, seed, strat, parallel, shrink, fullReplay)
	case "smoke":
		points := 50 // x 2 adversaries x 2 systems = 200 injections
		crashesSet := false
		fs.Visit(func(f *flag.Flag) { crashesSet = crashesSet || f.Name == "crashes" })
		if crashesSet {
			points = crashes
		}
		report, err := crashmc.Run(crashmc.Spec{
			Name:       "smoke",
			Benchmarks: crashmc.Adversaries()[:2],
			Systems:    []machine.SystemKind{machine.TSOPER, machine.STW},
			Seed:       seed,
			Points:     points,
			Strategy:   crashmc.StrategyEvents,
			Parallel:   parallel,
			Shrink:     shrink,
			FullReplay: fullReplay,
			Coherence:  proto,
		})
		if report != nil {
			fmt.Fprintln(stdout, report.Summary())
		}
		return report, err
	case "mutation":
		return runMutation(seed, crashes)
	default:
		return nil, usagef("unknown campaign %q (want smoke or mutation)", campaign)
	}
}

// runSweep is the legacy single-cell mode, generalized to comma-separated
// benchmark/system lists (or workload-VM programs), with the
// per-crash-point output lines preserved.
func runSweep(stdout io.Writer, benches, programs, systems string, proto tsoper.Protocol, crashes int, first, step uint64, scale float64, seed int64, strat crashmc.Strategy, parallel int, shrink, fullReplay bool) (*crashmc.Report, error) {
	var profiles []trace.Profile
	var progs []*program.Program
	if programs != "" {
		for _, name := range strings.Split(programs, ",") {
			p, err := tsoper.LoadProgram(strings.TrimSpace(name))
			if err != nil {
				return nil, usageError{err}
			}
			progs = append(progs, p)
		}
	} else {
		for _, name := range strings.Split(benches, ",") {
			p, ok := trace.ByName(strings.TrimSpace(name))
			if !ok {
				if p, ok = crashmc.Adversary(strings.TrimSpace(name)); !ok {
					return nil, usagef("unknown benchmark %q", name)
				}
			}
			profiles = append(profiles, p)
		}
	}
	var kinds []machine.SystemKind
	for _, name := range strings.Split(systems, ",") {
		switch strings.TrimSpace(name) {
		case "tsoper":
			kinds = append(kinds, machine.TSOPER)
		case "stw":
			kinds = append(kinds, machine.STW)
		default:
			return nil, usagef("crash checking requires a strict system (tsoper or stw), got %q", name)
		}
	}
	report, err := crashmc.Run(crashmc.Spec{
		Name:       "sweep",
		Benchmarks: profiles,
		Programs:   progs,
		Systems:    kinds,
		Scale:      scale,
		Seed:       seed,
		Points:     crashes,
		Strategy:   strat,
		First:      first,
		Step:       step,
		Parallel:   parallel,
		Shrink:     shrink,
		Detail:     true,
		FullReplay: fullReplay,
		Coherence:  proto,
	})
	if err != nil {
		return report, err
	}
	for _, inj := range report.Details {
		status := "consistent"
		if inj.Violation != "" {
			status = inj.Violation
		}
		fmt.Fprintf(stdout, "%s/%s crash @%8d: %3d/%3d groups durable — %s\n",
			inj.Benchmark, inj.System, inj.At, inj.Durable, inj.Groups, status)
	}
	fmt.Fprintf(stdout, "\n%s\n", report.Summary())
	return report, nil
}

// compareDoc is the results/checkpoint.json artifact: the same pressure
// sweep timed under both execution modes, with proof they agreed.
type compareDoc struct {
	Name               string  `json:"name"`
	Seed               int64   `json:"seed"`
	Points             int     `json:"points"`
	Tuples             int     `json:"tuples"`
	Injections         int     `json:"injections"`
	PrefixForkSeconds  float64 `json:"prefix_fork_seconds"`
	FullReplaySeconds  float64 `json:"full_replay_seconds"`
	Speedup            float64 `json:"speedup"`
	ReportsIdentical   bool    `json:"reports_identical"`
	ViolationsObserved int     `json:"violations_observed"`
}

// runCompare times the adversarial pressure campaign in both execution
// modes — prefix-forked (the default) and full-replay (one machine per
// crash point, from cycle 0) — verifies the two reports are byte-identical,
// and writes the timing document. This is the evidence behind the claim
// that forking prefix machines beats replaying, published by CI as
// results/checkpoint.json.
func runCompare(stdout io.Writer, outPath string, seed int64, points, parallel int, minSpeedup float64) error {
	spec := crashmc.Spec{
		Name:       "checkpoint-compare",
		Benchmarks: crashmc.Adversaries(),
		Systems:    []machine.SystemKind{machine.TSOPER, machine.STW},
		Seed:       seed,
		Points:     points,
		Strategy:   crashmc.StrategyEvents,
		Parallel:   parallel,
		Detail:     true,
		Config:     crashmc.PressureConfig,
	}

	start := time.Now()
	fast, err := crashmc.Run(spec)
	if err != nil {
		return err
	}
	fastDur := time.Since(start)

	spec.FullReplay = true
	start = time.Now()
	slow, err := crashmc.Run(spec)
	if err != nil {
		return err
	}
	slowDur := time.Since(start)

	fastJSON, err := json.Marshal(fast)
	if err != nil {
		return err
	}
	slowJSON, err := json.Marshal(slow)
	if err != nil {
		return err
	}
	doc := compareDoc{
		Name:               spec.Name,
		Seed:               seed,
		Points:             points,
		Tuples:             len(spec.Benchmarks) * len(spec.Systems),
		Injections:         fast.Injections,
		PrefixForkSeconds:  fastDur.Seconds(),
		FullReplaySeconds:  slowDur.Seconds(),
		Speedup:            slowDur.Seconds() / fastDur.Seconds(),
		ReportsIdentical:   string(fastJSON) == string(slowJSON),
		ViolationsObserved: len(fast.Violations),
	}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "prefix-fork %.2fs vs full-replay %.2fs (%.1fx) over %d injections -> %s\n",
		doc.PrefixForkSeconds, doc.FullReplaySeconds, doc.Speedup, doc.Injections, outPath)
	if !doc.ReportsIdentical {
		return fmt.Errorf("prefix-forked and full-replay reports differ — the differential gate failed")
	}
	if !fast.Clean() {
		return fmt.Errorf("pressure campaign found %d violations", len(fast.Violations))
	}
	if minSpeedup > 0 && doc.Speedup < minSpeedup {
		return fmt.Errorf("speedup %.2fx below required %.2fx", doc.Speedup, minSpeedup)
	}
	return nil
}

// runMutation proves every injected persistency fault is killed, on both
// strict systems, using event-harvested crash points walked newest-first.
func runMutation(seed int64, budget int) (*crashmc.Report, error) {
	report := &crashmc.Report{Name: "mutation", Seed: seed, Scale: 1, Strategy: crashmc.StrategyEvents.String()}
	var firstErr error
	for _, kind := range []machine.SystemKind{machine.TSOPER, machine.STW} {
		p := crashmc.Adversaries()[0]
		cfg := machine.TableI(kind)
		points, horizon := crashmc.Harvest(p, cfg, seed, budget)
		reversed := make([]uint64, 0, len(points)+1)
		reversed = append(reversed, horizon)
		for i := len(points) - 1; i >= 0; i-- {
			reversed = append(reversed, points[i])
		}
		kills, err := crashmc.Mutate(p, kind, cfg, seed, reversed)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		report.Kills = append(report.Kills, kills...)
		report.Injections += len(reversed) * len(machine.Faults())
	}
	return report, firstErr
}
