package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 usage.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "non-positive crashes", argv: []string{"-crashes", "0"}, want: 2, stderr: "-crashes must be positive"},
		{name: "zero step", argv: []string{"-step", "0"}, want: 2, stderr: "-step must be positive"},
		{name: "zero first", argv: []string{"-first", "0"}, want: 2, stderr: "-first must be positive"},
		{name: "non-positive scale", argv: []string{"-scale", "-1"}, want: 2, stderr: "-scale must be positive"},
		{name: "unknown strategy", argv: []string{"-strategy", "psychic"}, want: 2, stderr: "unknown strategy"},
		{name: "unknown campaign", argv: []string{"-campaign", "lunch"}, want: 2, stderr: "unknown campaign"},
		{name: "unknown benchmark", argv: []string{"-bench", "doom"}, want: 2, stderr: "unknown benchmark"},
		{name: "unknown program", argv: []string{"-program", "no-such-program"}, want: 2, stderr: "neither a library program"},
		{name: "program with campaign", argv: []string{"-program", "radix", "-campaign", "smoke"}, want: 2, stderr: "sweep mode"},
		{name: "non-strict system", argv: []string{"-system", "bsp"}, want: 2, stderr: "strict system"},
		{
			name: "clean sweep",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-crashes", "2", "-scale", "0.05"},
			want: 0, slow: true,
		},
		{
			name: "clean program sweep",
			argv: []string{"-program", "producer-consumer-ring", "-system", "tsoper", "-crashes", "2"},
			want: 0, slow: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs a real campaign")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}
