package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 usage.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		argv   []string
		want   int
		slow   bool
		stderr string
	}{
		{name: "bad flag", argv: []string{"-nonsense"}, want: 2},
		{name: "non-positive crashes", argv: []string{"-crashes", "0"}, want: 2, stderr: "-crashes must be positive"},
		{name: "zero step", argv: []string{"-step", "0"}, want: 2, stderr: "-step must be positive"},
		{name: "zero first", argv: []string{"-first", "0"}, want: 2, stderr: "-first must be positive"},
		{name: "non-positive scale", argv: []string{"-scale", "-1"}, want: 2, stderr: "-scale must be positive"},
		{name: "unknown strategy", argv: []string{"-strategy", "psychic"}, want: 2, stderr: "unknown strategy"},
		{name: "unknown campaign", argv: []string{"-campaign", "lunch"}, want: 2, stderr: "unknown campaign"},
		{name: "unknown benchmark", argv: []string{"-bench", "doom"}, want: 2, stderr: "unknown benchmark"},
		{name: "unknown protocol", argv: []string{"-protocol", "dragon"}, want: 2, stderr: "unknown coherence protocol"},
		{name: "unknown program", argv: []string{"-program", "no-such-program"}, want: 2, stderr: "neither a library program"},
		{name: "program with campaign", argv: []string{"-program", "radix", "-campaign", "smoke"}, want: 2, stderr: "sweep mode"},
		{name: "non-strict system", argv: []string{"-system", "bsp"}, want: 2, stderr: "strict system"},
		{name: "compare with campaign", argv: []string{"-compare-out", "x.json", "-campaign", "smoke"}, want: 2, stderr: "its own mode"},
		{
			name: "clean sweep",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-crashes", "2", "-scale", "0.05"},
			want: 0, slow: true,
		},
		{
			name: "clean full-replay sweep",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-crashes", "2", "-scale", "0.05", "-full-replay"},
			want: 0, slow: true,
		},
		{
			name: "clean program sweep",
			argv: []string{"-program", "producer-consumer-ring", "-system", "tsoper", "-crashes", "2"},
			want: 0, slow: true,
		},
		{
			name: "clean tardis sweep",
			argv: []string{"-bench", "radix", "-system", "tsoper", "-crashes", "2", "-scale", "0.05", "-protocol", "tardis"},
			want: 0, slow: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("runs a real campaign")
			}
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.argv, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCompareMode runs the timing comparison end to end on a small budget
// and checks the artifact records identical reports.
func TestCompareMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real campaigns")
	}
	out := filepath.Join(t.TempDir(), "checkpoint.json")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-compare-out", out, "-crashes", "5", "-parallel", "4"}, &stdout, &stderr); got != 0 {
		t.Fatalf("compare mode = %d\nstderr: %s", got, stderr.String())
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc compareDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("artifact is not the comparison document: %v\n%s", err, body)
	}
	if !doc.ReportsIdentical {
		t.Fatal("artifact records diverging reports")
	}
	if doc.Injections == 0 || doc.PrefixForkSeconds <= 0 || doc.FullReplaySeconds <= 0 {
		t.Fatalf("artifact incomplete: %+v", doc)
	}
}
