// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name to its measurements, for machine-readable
// regression tracking (CI writes results/bench.json on every push).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o results/bench.json
//
// Lines that are not benchmark results (package headers, PASS/ok, test
// logs) are ignored. When a benchmark appears more than once (e.g. from
// -count), the minimum ns/op wins.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}

// parse extracts benchmark result lines. The format is:
//
//	BenchmarkName-8   	     100	  11083907 ns/op	  513 B/op	   13 allocs/op
func parse(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimSuffix(fields[0], procSuffix(fields[0]))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					seen = true
				}
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !seen {
			continue
		}
		if prev, ok := results[name]; !ok || res.NsPerOp < prev.NsPerOp {
			results[name] = res
		}
	}
	return results, sc.Err()
}

// procSuffix returns the trailing "-N" GOMAXPROCS marker, or "".
func procSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
