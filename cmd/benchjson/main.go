// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name to its measurements, for machine-readable
// regression tracking (CI writes results/bench.json on every push).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o results/bench.json
//
// With -baseline, it additionally compares the fresh measurements against a
// previously committed document and exits non-zero when any benchmark
// present in both regressed in wall-clock by more than -tolerance
// (fractional, default 0.10): the CI bench-regression gate.
//
//	go test -bench . -benchmem ./... | benchjson -baseline results/bench.json -o new.json
//
// Lines that are not benchmark results (package headers, PASS/ok, test
// logs) are ignored. When a benchmark appears more than once (e.g. from
// -count), the minimum ns/op wins.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression vs the baseline")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))

	if *baseline != "" {
		regressed, err := gate(os.Stderr, results, *baseline, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
	}
}

// gate compares fresh results against the baseline document and reports
// every benchmark whose ns/op regressed beyond the tolerance. Benchmarks
// only present on one side are informational: renames and additions must
// not fail the gate.
func gate(w io.Writer, results map[string]Result, path string, tolerance float64) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("benchjson: baseline: %w", err)
	}
	var base map[string]Result
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("benchjson: baseline %s: %w", path, err)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	compared, missing := 0, 0
	for _, name := range names {
		b, ok := base[name]
		if !ok || b.NsPerOp <= 0 {
			missing++
			continue
		}
		compared++
		ratio := results[name].NsPerOp / b.NsPerOp
		if ratio > 1+tolerance {
			regressed = true
			fmt.Fprintf(w, "REGRESSION %s: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)\n",
				name, results[name].NsPerOp, b.NsPerOp, (ratio-1)*100, tolerance*100)
		}
	}
	fmt.Fprintf(w, "benchjson: gate compared %d benchmarks against %s (%d new/unmatched)\n",
		compared, path, missing)
	if compared == 0 {
		return false, fmt.Errorf("benchjson: gate matched no benchmarks in %s", path)
	}
	return regressed, nil
}

// parse extracts benchmark result lines. The format is:
//
//	BenchmarkName-8   	     100	  11083907 ns/op	  513 B/op	   13 allocs/op
func parse(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimSuffix(fields[0], procSuffix(fields[0]))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					seen = true
				}
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !seen {
			continue
		}
		if prev, ok := results[name]; !ok || res.NsPerOp < prev.NsPerOp {
			results[name] = res
		}
	}
	return results, sc.Err()
}

// procSuffix returns the trailing "-N" GOMAXPROCS marker, or "".
func procSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
