package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkFigure11/radix/tsoper-8         	       3	  11348619 ns/op	         1.05 norm_exec	 4213312 B/op	   68513 allocs/op
BenchmarkSchedulerOnly/wheel/uniform     	 1000000	       102.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	2.1s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(results), results)
	}
	r := results["BenchmarkFigure11/radix/tsoper"]
	if r.NsPerOp != 11348619 || r.AllocsPerOp != 68513 || r.Iterations != 3 {
		t.Fatalf("bad parse: %+v", r)
	}
	s := results["BenchmarkSchedulerOnly/wheel/uniform"]
	if s.NsPerOp != 102 || s.AllocsPerOp != 0 {
		t.Fatalf("bad parse: %+v", s)
	}
}

func writeBaseline(t *testing.T, base map[string]Result) string {
	t.Helper()
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGate(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
	}
	path := writeBaseline(t, base)

	cases := []struct {
		name      string
		results   map[string]Result
		regressed bool
	}{
		{"within tolerance", map[string]Result{"BenchmarkA": {NsPerOp: 1090}}, false},
		{"faster is fine", map[string]Result{"BenchmarkA": {NsPerOp: 400}}, false},
		{"regression caught", map[string]Result{"BenchmarkA": {NsPerOp: 1200}}, true},
		{"new benchmarks ignored", map[string]Result{
			"BenchmarkA": {NsPerOp: 1000}, "BenchmarkNew": {NsPerOp: 99999}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			regressed, err := gate(&buf, tc.results, path, 0.10)
			if err != nil {
				t.Fatal(err)
			}
			if regressed != tc.regressed {
				t.Fatalf("regressed = %v, want %v\n%s", regressed, tc.regressed, buf.String())
			}
		})
	}
}

func TestGateNoOverlapFails(t *testing.T) {
	path := writeBaseline(t, map[string]Result{"BenchmarkA": {NsPerOp: 1000}})
	var buf bytes.Buffer
	if _, err := gate(&buf, map[string]Result{"BenchmarkZ": {NsPerOp: 1}}, path, 0.10); err == nil {
		t.Fatal("gate with zero matched benchmarks should error")
	}
}
