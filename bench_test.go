// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§V) as Go benchmarks. Each benchmark runs the
// relevant simulations and reports the paper's headline quantity as a
// custom metric, so `go test -bench=. -benchmem` reproduces the evaluation
// end to end:
//
//	BenchmarkTableIConfig        — Table I machine construction
//	BenchmarkProtocolComplexity  — SLICC complexity comparison (§V text)
//	BenchmarkFigure11/*          — execution time vs baseline (norm_exec)
//	BenchmarkFigure12/*          — BSP stepping stones vs TSOPER
//	BenchmarkFigure13            — AG-size CDF (frac_under_10, frac_over_80)
//	BenchmarkFigure14/*          — coherence vs persist traffic
//	BenchmarkFigure15            — ocean_cp SFR/AG comparison
//	BenchmarkPersistListLength   — §V-B sharing-list lengths
//	BenchmarkAGBSizeSweep/*      — AGB sizing ablation (§I)
//	BenchmarkEvictionBuffer/*    — eviction-buffer depth ablation (§III-B)
//	BenchmarkAGBOrganization/*   — centralized vs distributed AGB (§II-C)
//	BenchmarkBSPEpochSize/*      — BSP epoch-size ablation (§V-B)
//	BenchmarkCrashCheck          — crash-injection + consistency validation
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/tsoper"
)

// benchScale keeps `go test -bench=.` in the tens of seconds while
// exercising every experiment; raise it (or use cmd/tsoper-experiments
// -scale 1.0) for full-size runs.
const benchScale = 0.1

// figureBenches is the contention-diverse subset used by the per-benchmark
// figure benchmarks; the full 22-benchmark roster runs via the CLI.
var figureBenches = []string{"radix", "ocean_cp", "bodytrack", "dedup", "lu_ncb", "blackscholes"}

func benchOpts() tsoper.RunOptions { return tsoper.RunOptions{Scale: benchScale, Seed: 42} }

func mustProfile(b *testing.B, name string) tsoper.Profile {
	b.Helper()
	p, ok := tsoper.Benchmark(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	return p
}

func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := machine.TableI(machine.TSOPER)
		if _, err := machine.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slc := coherence.SLCComplexity()
		moesi := coherence.MOESIComplexity()
		if slc.Transitions >= moesi.Transitions {
			b.Fatal("complexity inverted")
		}
	}
	b.ReportMetric(float64(coherence.SLCComplexity().Transitions), "slc_transitions")
	b.ReportMetric(float64(coherence.MOESIComplexity().Transitions), "moesi_transitions")
}

// BenchmarkFigure11 regenerates Figure 11 rows: execution time of each
// persistency system normalized to the SLC baseline.
func BenchmarkFigure11(b *testing.B) {
	for _, name := range figureBenches {
		p := mustProfile(b, name)
		base, err := tsoper.Run(p, tsoper.Baseline, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range []tsoper.System{tsoper.HWRP, tsoper.BSP, tsoper.STW, tsoper.TSOPER} {
			b.Run(fmt.Sprintf("%s/%s", name, sys), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					r, err := tsoper.Run(p, sys, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
					norm = float64(r.Cycles) / float64(base.Cycles)
				}
				b.ReportMetric(norm, "norm_exec")
			})
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12: the BSP stepping stones
// normalized to TSOPER.
func BenchmarkFigure12(b *testing.B) {
	for _, name := range figureBenches {
		p := mustProfile(b, name)
		ts, err := tsoper.Run(p, tsoper.TSOPER, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range []tsoper.System{tsoper.BSP, tsoper.BSPSLC, tsoper.BSPSLCAGB} {
			b.Run(fmt.Sprintf("%s/%s", name, sys), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					r, err := tsoper.Run(p, sys, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
					norm = float64(r.Cycles) / float64(ts.Cycles)
				}
				b.ReportMetric(norm, "vs_tsoper")
			})
		}
	}
}

// BenchmarkFigure13 regenerates Figure 13: the AG-size cumulative histogram.
func BenchmarkFigure13(b *testing.B) {
	o := harness.Options{Scale: benchScale, Seed: 42, Benchmarks: figureBenches, Parallel: true}
	var fig *harness.Fig13
	for i := 0; i < b.N; i++ {
		fig = harness.Figure13(o)
	}
	b.ReportMetric(fig.FracUnder10*100, "pct_under_10_lines")
	b.ReportMetric(fig.FracOver80*100, "pct_over_80_lines")
}

// BenchmarkFigure14 regenerates Figure 14 rows: persist-vs-coherence write
// traffic normalized to the baseline's coherence writes.
func BenchmarkFigure14(b *testing.B) {
	for _, name := range figureBenches {
		p := mustProfile(b, name)
		base, err := tsoper.Run(p, tsoper.Baseline, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		den := float64(base.CoherenceWrites)
		if den == 0 {
			den = 1
		}
		for _, sys := range []tsoper.System{tsoper.HWRP, tsoper.TSOPER} {
			b.Run(fmt.Sprintf("%s/%s", name, sys), func(b *testing.B) {
				var coh, per float64
				for i := 0; i < b.N; i++ {
					r, err := tsoper.Run(p, sys, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
					coh = float64(r.CoherenceWrites) / den
					per = float64(r.PersistWrites) / den
				}
				b.ReportMetric(coh, "coherence_writes")
				b.ReportMetric(per, "persist_writes")
			})
		}
	}
}

// BenchmarkFigure15 regenerates Figure 15: ocean_cp SFR vs AG behavior.
func BenchmarkFigure15(b *testing.B) {
	o := harness.Options{Scale: benchScale, Seed: 42, Parallel: true}
	var fig *harness.Fig15
	for i := 0; i < b.N; i++ {
		fig = harness.Figure15(o)
	}
	b.ReportMetric(fig.FracSFROne*100, "pct_sfr_single_store")
	b.ReportMetric(float64(fig.HWRPPersists)/float64(fig.TSOPERPersists), "hwrp_vs_tsoper_persists")
}

// BenchmarkPersistListLength regenerates the §V-B list-length statistics.
func BenchmarkPersistListLength(b *testing.B) {
	o := harness.Options{Scale: benchScale, Seed: 42, Benchmarks: figureBenches, Parallel: true}
	var l *harness.ListLengths
	for i := 0; i < b.N; i++ {
		l = harness.Lists(o)
	}
	b.ReportMetric(l.AvgCoherence, "coherence_list_len")
	b.ReportMetric(l.AvgPersist, "persist_list_len")
}

// BenchmarkAGBSizeSweep is the AGB sizing ablation: 10 KB slices down to
// 1.25 KB (§I claims the reduction is almost free).
func BenchmarkAGBSizeSweep(b *testing.B) {
	p := mustProfile(b, "radix")
	for _, lines := range []int{160, 80, 40, 20} {
		b.Run(fmt.Sprintf("%dlines", lines), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := machine.TableI(machine.TSOPER)
				cfg.AGB.LinesPerSlice = lines
				if cfg.AGLimit > lines {
					cfg.AGLimit = lines / 2
				}
				r, err := tsoper.Run(p, tsoper.TSOPER, tsoper.RunOptions{Scale: benchScale, Seed: 42, Config: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Cycles)
			}
			b.ReportMetric(cycles, "exec_cycles")
		})
	}
}

// BenchmarkEvictionBuffer is the §III-B eviction-buffer depth ablation.
func BenchmarkEvictionBuffer(b *testing.B) {
	p := mustProfile(b, "blackscholes")
	for _, entries := range []int{16, 8, 4, 2} {
		b.Run(fmt.Sprintf("%dentries", entries), func(b *testing.B) {
			var stalls, maxocc float64
			for i := 0; i < b.N; i++ {
				cfg := machine.TableI(machine.TSOPER)
				cfg.EvictBufEntries = entries
				r, err := tsoper.Run(p, tsoper.TSOPER, tsoper.RunOptions{Scale: benchScale, Seed: 42, Config: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				stalls = float64(r.EvictBufStalls)
				maxocc = float64(r.EvictBufMax)
			}
			b.ReportMetric(stalls, "stalls")
			b.ReportMetric(maxocc, "max_occupancy")
		})
	}
}

// BenchmarkAGBOrganization compares centralized vs distributed AGBs (§II-C)
// at equal capacity.
func BenchmarkAGBOrganization(b *testing.B) {
	p := mustProfile(b, "ocean_cp")
	for _, org := range []struct {
		name   string
		slices int
	}{{"centralized", 1}, {"distributed", 8}} {
		b.Run(org.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := machine.TableI(machine.TSOPER)
				cfg.AGB.Slices = org.slices
				cfg.AGB.LinesPerSlice = 1280 / org.slices
				r, err := tsoper.Run(p, tsoper.TSOPER, tsoper.RunOptions{Scale: benchScale, Seed: 42, Config: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Cycles)
			}
			b.ReportMetric(cycles, "exec_cycles")
		})
	}
}

// BenchmarkBSPEpochSize is the §V-B epoch-size ablation for BSP+SLC+AGB.
func BenchmarkBSPEpochSize(b *testing.B) {
	p := mustProfile(b, "bodytrack")
	ts, err := tsoper.Run(p, tsoper.TSOPER, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	for _, epoch := range []int{10000, 1000, 80} {
		b.Run(fmt.Sprintf("%dstores", epoch), func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				cfg := machine.TableI(machine.BSPSLCAGB)
				cfg.BSPEpochStores = epoch
				r, err := tsoper.Run(p, tsoper.BSPSLCAGB, tsoper.RunOptions{Scale: benchScale, Seed: 42, Config: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				norm = float64(r.Cycles) / float64(ts.Cycles)
			}
			b.ReportMetric(norm, "vs_tsoper")
		})
	}
}

// BenchmarkCrashCheck measures a full crash injection plus consistency
// validation — the reproduction's correctness kernel.
func BenchmarkCrashCheck(b *testing.B) {
	p := mustProfile(b, "radix")
	for i := 0; i < b.N; i++ {
		at := uint64(5000 + (i%10)*3000)
		cs, err := tsoper.Crash(p, tsoper.TSOPER, at, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := tsoper.Check(cs); err != nil {
			b.Fatal(err)
		}
	}
}
