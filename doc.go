// Package repro is a from-scratch Go reproduction of "TSOPER: Efficient
// Coherence-Based Strict Persistency" (HPCA 2021).
//
// Import repro/tsoper for the public simulation API; see README.md for the
// repository tour, DESIGN.md for the architecture and substitution notes,
// and EXPERIMENTS.md for paper-vs-measured results. The root-level
// bench_test.go regenerates every figure of the paper's evaluation as Go
// benchmarks.
package repro
