package faultplan

import (
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"presets-valid", Spec{}, true}, // presets checked separately below
		{"pct-high", Spec{NVM: NVMSpec{WriteFailPct: 1.5}}, false},
		{"pct-negative", Spec{NoC: NoCSpec{DropPct: -0.1}}, false},
		{"agb-pct-high", Spec{AGB: AGBSpec{StallPct: 2}}, false},
		{"outage-inverted", Spec{NVM: NVMSpec{Outages: []Outage{{Unit: 0, From: 10, To: 5}}}}, false},
		{"outage-empty", Spec{AGB: AGBSpec{Outages: []Outage{{Unit: 1, From: 7, To: 7}}}}, false},
		{"outage-negative-unit", Spec{NVM: NVMSpec{Outages: []Outage{{Unit: -1, From: 0, To: 5}}}}, false},
		{"negative-factor", Spec{NVM: NVMSpec{SpikeFactor: -1}}, false},
		{"negative-budget", Spec{Resilience: Resilience{NVMRetryLimit: -2}}, false},
		{"full", Spec{
			NVM: NVMSpec{WriteFailPct: 0.5, ReadFailPct: 1, SpikePct: 0.1, SpikeFactor: 8,
				Outages: []Outage{{Unit: 3, From: 100, To: 200}}},
			NoC: NoCSpec{DropPct: 0.2, DupPct: 0.1, DelayPct: 0.3, DelayCycles: 10},
			AGB: AGBSpec{StallPct: 0.1, StallCycles: 50, Outages: []Outage{{Unit: 0, From: 0, To: 1}}},
		}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	for _, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
		if p.Empty() {
			t.Errorf("preset %s injects nothing", p.Name)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	names := PresetNames()
	if len(names) != len(Presets()) {
		t.Fatalf("%d names for %d presets", len(names), len(Presets()))
	}
	for _, name := range names {
		p, ok := Preset(name)
		if !ok || p.Name != name {
			t.Fatalf("Preset(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := Preset("no-such-schedule"); ok {
		t.Fatal("unknown preset must not resolve")
	}
	seeds := map[int64]string{}
	for _, p := range Presets() {
		if prev, dup := seeds[p.Seed]; dup {
			t.Fatalf("presets %s and %s share seed %d", prev, p.Name, p.Seed)
		}
		seeds[p.Seed] = p.Name
	}
}

func TestEmpty(t *testing.T) {
	if !(Spec{}).Empty() {
		t.Fatal("zero spec must be empty")
	}
	// A spec with only resilience tuning still injects nothing.
	if !(Spec{Resilience: Resilience{NVMRetryLimit: 2}}).Empty() {
		t.Fatal("resilience-only spec must be empty")
	}
	for _, s := range []Spec{
		{NVM: NVMSpec{WriteFailPct: 0.1}},
		{NVM: NVMSpec{Outages: []Outage{{Unit: 0, From: 0, To: 1}}}},
		{NoC: NoCSpec{DupPct: 0.1}},
		{AGB: AGBSpec{StallPct: 0.1}},
		{AGB: AGBSpec{Outages: []Outage{{Unit: 0, From: 0, To: 1}}}},
	} {
		if s.Empty() {
			t.Fatalf("spec %+v must not be empty", s)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Spec{Name: "d", Seed: 7})
	s := p.Spec()
	if s.Resilience.NVMRetryLimit != DefaultNVMRetryLimit ||
		s.Resilience.NVMBackoff != DefaultNVMBackoff ||
		s.Resilience.DegradedFactor != DefaultDegradedFactor ||
		s.Resilience.AckTimeout != DefaultAckTimeout ||
		s.Resilience.MaxRetransmits != DefaultMaxRetransmits ||
		s.NVM.SpikeFactor != DefaultSpikeFactor {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Explicit values survive.
	p2 := New(Spec{Resilience: Resilience{NVMRetryLimit: 9, AckTimeout: 5}})
	if p2.NVMRetryLimit() != 9 || p2.AckTimeout() != 5 {
		t.Fatalf("explicit resilience overridden: %+v", p2.Spec().Resilience)
	}
}

// Determinism: two plans compiled from the same spec make identical decision
// sequences; a different seed diverges.
func TestDeterministicDecisions(t *testing.T) {
	spec := Spec{Name: "det", Seed: 99,
		NVM: NVMSpec{WriteFailPct: 0.3, ReadFailPct: 0.2, SpikePct: 0.2},
		NoC: NoCSpec{DropPct: 0.3, DupPct: 0.2, DelayPct: 0.2, DelayCycles: 8},
		AGB: AGBSpec{StallPct: 0.3, StallCycles: 16},
	}
	run := func(s Spec) []bool {
		p := New(s)
		var out []bool
		for i := 0; i < 200; i++ {
			at := uint64(i * 10)
			out = append(out,
				p.NVMWriteAttempt(i%4, at, uint64(i)),
				p.NVMReadAttempt(i%4, at, uint64(i)),
				p.NoCDropAttempt(at, i%8, (i+1)%8),
				p.NoCDuplicate(at, i%8),
				p.NoCDelay(at) > 0,
				p.AGBStall(at, i%8) > 0,
				p.NVMLatencyFactor(i%4, at) > 1,
			)
		}
		return out
	}
	a, b := run(spec), run(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical specs", i)
		}
	}
	c := run(Spec{Name: spec.Name, Seed: 100, NVM: spec.NVM, NoC: spec.NoC, AGB: spec.AGB})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

// Streams are independent: consuming NoC decisions must not perturb the NVM
// stream, so a schedule that adds NoC faults replays NVM faults unchanged.
func TestIndependentStreams(t *testing.T) {
	nvmOnly := Spec{Seed: 5, NVM: NVMSpec{WriteFailPct: 0.3}}
	both := Spec{Seed: 5, NVM: NVMSpec{WriteFailPct: 0.3}, NoC: NoCSpec{DropPct: 0.5}}
	seq := func(s Spec, drawNoC bool) []bool {
		p := New(s)
		var out []bool
		for i := 0; i < 100; i++ {
			if drawNoC {
				p.NoCDropAttempt(uint64(i), 0, 1)
			}
			out = append(out, p.NVMWriteAttempt(0, uint64(i), 0))
		}
		return out
	}
	a, b := seq(nvmOnly, false), seq(both, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("NVM decision %d perturbed by NoC draws", i)
		}
	}
}

func TestOutagesForceFailure(t *testing.T) {
	p := New(Spec{NVM: NVMSpec{Outages: []Outage{{Unit: 2, From: 100, To: 200}}}})
	if p.NVMWriteAttempt(2, 99, 0) {
		t.Fatal("before the window must succeed")
	}
	if !p.NVMWriteAttempt(2, 100, 0) || !p.NVMWriteAttempt(2, 199, 0) {
		t.Fatal("inside the window must fail")
	}
	if p.NVMWriteAttempt(2, 200, 0) {
		t.Fatal("at To the window is over")
	}
	if p.NVMWriteAttempt(1, 150, 0) {
		t.Fatal("other ranks unaffected")
	}
}

func TestDegradation(t *testing.T) {
	p := New(Spec{NVM: NVMSpec{WriteFailPct: 1}})
	if !p.NVMWriteAttempt(3, 0, 0) {
		t.Fatal("pct=1 must fail")
	}
	p.NVMDegrade(3, 10)
	p.NVMDegrade(3, 11) // idempotent
	if !p.NVMDegraded(3) || p.NVMDegraded(2) {
		t.Fatal("degradation state wrong")
	}
	if p.NVMWriteAttempt(3, 20, 0) {
		t.Fatal("degraded rank must stop failing")
	}
	if f := p.NVMLatencyFactor(3, 20); f != DefaultDegradedFactor {
		t.Fatalf("degraded latency factor = %d, want %d", f, DefaultDegradedFactor)
	}
	c := p.Counts()
	if c.NVMDegraded != 1 || c.NVMWriteFails != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestCountsLedger(t *testing.T) {
	p := New(Spec{NVM: NVMSpec{WriteFailPct: 1, ReadFailPct: 1}, NoC: NoCSpec{DropPct: 1, DupPct: 1, DelayPct: 1, DelayCycles: 4}, AGB: AGBSpec{StallPct: 1, StallCycles: 8}})
	p.NVMWriteAttempt(0, 0, 1)
	p.NVMReadAttempt(0, 0, 1)
	p.NVMRetry(0, 10)
	p.NoCDropAttempt(0, 1, 2)
	p.NoCRetransmit(5, 1)
	p.NoCEscalate(9, 1)
	p.NoCDuplicate(3, 1)
	p.NoCDelay(4)
	p.AGBStall(6, 2)
	p.AGBOffline(7, 2, true)
	p.AGBRedirect(8, 42, 2, 3)
	p.NVMAbandon(0, 12)
	c := p.Counts()
	if c.Injected() == 0 {
		t.Fatal("Injected() must count injections")
	}
	if c.Lost() != 1 {
		t.Fatalf("Lost() = %d, want 1 (the abandoned access)", c.Lost())
	}
	if c.String() == "" {
		t.Fatal("Counts.String must render")
	}
	want := Counts{NVMWriteFails: 1, NVMReadFails: 1, NVMRetries: 1, NVMAbandoned: 1,
		NoCDrops: 1, NoCRetransmits: 1, NoCEscalations: 1, NoCDups: 1, NoCDelays: 1,
		AGBStalls: 1, AGBOfflines: 1, AGBRedirects: 1}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
}

// The decision hooks on an instrumented-but-sinkless plan must not allocate:
// they sit on the per-access hot path of every component.
func TestDecisionZeroAlloc(t *testing.T) {
	p := New(Spec{Seed: 1, NVM: NVMSpec{WriteFailPct: 0.5, SpikePct: 0.5}, NoC: NoCSpec{DropPct: 0.5}, AGB: AGBSpec{StallPct: 0.5, StallCycles: 4}})
	p.ensureRank(7)
	var at uint64
	allocs := testing.AllocsPerRun(1000, func() {
		p.NVMWriteAttempt(3, at, 9)
		p.NVMLatencyFactor(3, at)
		p.NoCDropAttempt(at, 1, 2)
		p.AGBStall(at, 2)
		at += 7
	})
	if allocs != 0 {
		t.Fatalf("decision hooks allocated %.1f/op, want 0", allocs)
	}
}
