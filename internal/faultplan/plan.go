package faultplan

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// Counts is the injection and recovery ledger of one run. The resilience
// campaigns assert Lost() == 0: every injected fault was either retried to
// success or degraded around.
type Counts struct {
	// NVM injections and recoveries.
	NVMWriteFails uint64 `json:"nvm_write_fails,omitempty"`
	NVMReadFails  uint64 `json:"nvm_read_fails,omitempty"`
	NVMSpikes     uint64 `json:"nvm_spikes,omitempty"`
	NVMRetries    uint64 `json:"nvm_retries,omitempty"`
	NVMDegraded   uint64 `json:"nvm_degraded_ranks,omitempty"`
	NVMAbandoned  uint64 `json:"nvm_abandoned,omitempty"`

	// NoC injections and recoveries.
	NoCDrops       uint64 `json:"noc_drops,omitempty"`
	NoCRetransmits uint64 `json:"noc_retransmits,omitempty"`
	NoCEscalations uint64 `json:"noc_escalations,omitempty"`
	NoCDups        uint64 `json:"noc_dups_suppressed,omitempty"`
	NoCDelays      uint64 `json:"noc_delays,omitempty"`

	// AGB injections and recoveries.
	AGBStalls    uint64 `json:"agb_stalls,omitempty"`
	AGBOfflines  uint64 `json:"agb_offlines,omitempty"`
	AGBRedirects uint64 `json:"agb_redirects,omitempty"`
}

// Injected totals the faults injected (not the recovery actions).
func (c Counts) Injected() uint64 {
	return c.NVMWriteFails + c.NVMReadFails + c.NVMSpikes +
		c.NoCDrops + c.NoCDups + c.NoCDelays +
		c.AGBStalls + c.AGBOfflines
}

// Lost counts faults that were neither retried to success nor degraded
// around — permanently lost persists. Nonzero only under the test-only
// DisableDegradation mode; campaigns assert zero.
func (c Counts) Lost() uint64 { return c.NVMAbandoned }

func (c Counts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nvm[fails=%d/%d spikes=%d retries=%d degraded=%d abandoned=%d]",
		c.NVMWriteFails, c.NVMReadFails, c.NVMSpikes, c.NVMRetries, c.NVMDegraded, c.NVMAbandoned)
	fmt.Fprintf(&b, " noc[drops=%d rexmit=%d escalated=%d dups=%d delays=%d]",
		c.NoCDrops, c.NoCRetransmits, c.NoCEscalations, c.NoCDups, c.NoCDelays)
	fmt.Fprintf(&b, " agb[stalls=%d offlines=%d redirects=%d]",
		c.AGBStalls, c.AGBOfflines, c.AGBRedirects)
	return b.String()
}

// Decision stream indices: one independent pseudo-random sequence per
// component keeps the schedules decorrelated while staying deterministic.
const (
	streamNVM = iota
	streamNoC
	streamAGB
	numStreams
)

// Plan is one machine's compiled fault schedule: the Spec plus the mutable
// decision and degradation state. A Plan belongs to exactly one machine and
// is not safe for concurrent use (the simulation is single-threaded);
// parallel campaigns compile one Plan per machine from a shared Spec.
type Plan struct {
	spec Spec
	rng  [numStreams]uint64
	n    Counts

	// degraded marks ranks routed around after retry-budget exhaustion.
	degraded []bool

	// bus/track carry fault instants onto the telemetry timeline so
	// Perfetto traces show fault -> retry -> recovery causality.
	bus   *telemetry.Bus
	track telemetry.Track
}

// New compiles a spec (applying resilience defaults) into a fresh plan.
func New(spec Spec) *Plan {
	p := &Plan{spec: spec.WithDefaults()}
	for i := range p.rng {
		// Distinct nonzero stream states derived from the seed.
		p.rng[i] = uint64(spec.Seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	}
	return p
}

// Spec returns the effective schedule (defaults applied).
func (p *Plan) Spec() Spec { return p.spec }

// Counts returns a copy of the injection ledger.
func (p *Plan) Counts() Counts { return p.n }

// Instrument attaches a telemetry bus; fault instants land on a dedicated
// "faults" track. A nil or sinkless bus is a no-op.
func (p *Plan) Instrument(bus *telemetry.Bus) {
	if !bus.Enabled() {
		return
	}
	p.bus = bus
	p.track = bus.Track("faults", "injector")
}

// mark drops a fault instant on the timeline (no-op without a bus).
func (p *Plan) mark(name string, at uint64, scope, aux uint64) {
	if p.bus == nil {
		return
	}
	p.bus.Instant(p.track, name, telemetry.Ticks(at), scope, aux)
}

// next advances one decision stream (splitmix64).
func (p *Plan) next(stream int) uint64 {
	p.rng[stream] += 0x9e3779b97f4a7c15
	z := p.rng[stream]
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws from the stream iff pct > 0 so that schedules without a
// fault class leave that class's randomness untouched.
func (p *Plan) chance(stream int, pct float64) bool {
	if pct <= 0 {
		return false
	}
	return float64(p.next(stream)>>11)/float64(1<<53) < pct
}

func inOutage(outs []Outage, unit int, at uint64) bool {
	for _, o := range outs {
		if o.contains(unit, at) {
			return true
		}
	}
	return false
}

// ensureRank grows the degradation table to cover rank (steady-state free).
func (p *Plan) ensureRank(rank int) {
	for len(p.degraded) <= rank {
		p.degraded = append(p.degraded, false)
	}
}

// ---- NVM hooks ----

// NVMWriteAttempt decides whether one write attempt to rank fails at media
// time `at`. Degraded ranks never fail (they are being routed around).
func (p *Plan) NVMWriteAttempt(rank int, at, line uint64) bool {
	p.ensureRank(rank)
	if p.degraded[rank] {
		return false
	}
	if !inOutage(p.spec.NVM.Outages, rank, at) && !p.chance(streamNVM, p.spec.NVM.WriteFailPct) {
		return false
	}
	p.n.NVMWriteFails++
	p.mark("fault:nvm-write-fail", at, uint64(rank), line)
	return true
}

// NVMReadAttempt is NVMWriteAttempt for reads.
func (p *Plan) NVMReadAttempt(rank int, at, line uint64) bool {
	p.ensureRank(rank)
	if p.degraded[rank] {
		return false
	}
	if !inOutage(p.spec.NVM.Outages, rank, at) && !p.chance(streamNVM, p.spec.NVM.ReadFailPct) {
		return false
	}
	p.n.NVMReadFails++
	p.mark("fault:nvm-read-fail", at, uint64(rank), line)
	return true
}

// NVMRetry records a backoff retry scheduled for cycle at.
func (p *Plan) NVMRetry(rank int, at uint64) {
	p.n.NVMRetries++
	p.mark("fault:nvm-retry", at, uint64(rank), 0)
}

// NVMDegrade marks a rank degraded after retry-budget exhaustion:
// subsequent attempts succeed at DegradedFactor× latency. Idempotent.
func (p *Plan) NVMDegrade(rank int, at uint64) {
	p.ensureRank(rank)
	if p.degraded[rank] {
		return
	}
	p.degraded[rank] = true
	p.n.NVMDegraded++
	p.mark("fault:nvm-degraded", at, uint64(rank), 0)
}

// NVMDegraded reports whether the rank has been degraded.
func (p *Plan) NVMDegraded(rank int) bool {
	return rank < len(p.degraded) && p.degraded[rank]
}

// NVMAbandon records a permanently lost access (DisableDegradation only).
func (p *Plan) NVMAbandon(rank int, at uint64) {
	p.n.NVMAbandoned++
	p.mark("fault:nvm-abandoned", at, uint64(rank), 0)
}

// NVMLatencyFactor is the multiplier for a successful access: the degraded
// penalty on a degraded rank, a transient spike otherwise, 1 normally.
func (p *Plan) NVMLatencyFactor(rank int, at uint64) int {
	if p.NVMDegraded(rank) {
		return p.spec.Resilience.DegradedFactor
	}
	if p.chance(streamNVM, p.spec.NVM.SpikePct) {
		p.n.NVMSpikes++
		p.mark("fault:nvm-spike", at, uint64(rank), uint64(p.spec.NVM.SpikeFactor))
		return p.spec.NVM.SpikeFactor
	}
	return 1
}

// NVMRetryLimit / NVMBackoff / DegradationDisabled expose the NVM
// resilience parameters.
func (p *Plan) NVMRetryLimit() int        { return p.spec.Resilience.NVMRetryLimit }
func (p *Plan) NVMBackoff() uint64        { return p.spec.Resilience.NVMBackoff }
func (p *Plan) DegradationDisabled() bool { return p.spec.Resilience.DisableDegradation }

// ---- NoC hooks ----

// NoCDropAttempt decides whether one transmission is lost in the network.
func (p *Plan) NoCDropAttempt(at uint64, src, dst int) bool {
	if !p.chance(streamNoC, p.spec.NoC.DropPct) {
		return false
	}
	p.n.NoCDrops++
	p.mark("fault:noc-drop", at, uint64(src), uint64(dst))
	return true
}

// NoCRetransmit records an ack-timeout retransmission at cycle at.
func (p *Plan) NoCRetransmit(at uint64, src int) {
	p.n.NoCRetransmits++
	p.mark("fault:noc-retransmit", at, uint64(src), 0)
}

// NoCEscalate records the sender giving up on retransmission and taking
// the slow guaranteed path.
func (p *Plan) NoCEscalate(at uint64, src int) {
	p.n.NoCEscalations++
	p.mark("fault:noc-escalated", at, uint64(src), 0)
}

// NoCDuplicate decides whether the delivery's ack is lost: the sender
// retransmits although the message arrived, and the receiver's
// sequence-number dedup suppresses the duplicate.
func (p *Plan) NoCDuplicate(at uint64, src int) bool {
	if !p.chance(streamNoC, p.spec.NoC.DupPct) {
		return false
	}
	p.n.NoCDups++
	p.mark("fault:noc-dup-suppressed", at, uint64(src), 0)
	return true
}

// NoCDelay returns the extra delivery delay for this message (0 = none).
func (p *Plan) NoCDelay(at uint64) uint64 {
	if !p.chance(streamNoC, p.spec.NoC.DelayPct) {
		return 0
	}
	p.n.NoCDelays++
	p.mark("fault:noc-delay", at, 0, p.spec.NoC.DelayCycles)
	return p.spec.NoC.DelayCycles
}

// AckTimeout / MaxRetransmits expose the NoC resilience parameters.
func (p *Plan) AckTimeout() uint64  { return p.spec.Resilience.AckTimeout }
func (p *Plan) MaxRetransmits() int { return p.spec.Resilience.MaxRetransmits }

// ---- AGB hooks ----

// AGBOutages returns the scheduled slice-offline windows.
func (p *Plan) AGBOutages() []Outage { return p.spec.AGB.Outages }

// AGBStall returns the stall duration injected before a line transfer into
// slice (0 = no stall).
func (p *Plan) AGBStall(at uint64, slice int) uint64 {
	if !p.chance(streamAGB, p.spec.AGB.StallPct) {
		return 0
	}
	p.n.AGBStalls++
	p.mark("fault:agb-stall", at, uint64(slice), p.spec.AGB.StallCycles)
	return p.spec.AGB.StallCycles
}

// AGBOffline records a slice going offline (off=true) or recovering.
func (p *Plan) AGBOffline(at uint64, slice int, off bool) {
	if off {
		p.n.AGBOfflines++
		p.mark("fault:agb-offline", at, uint64(slice), 0)
		return
	}
	p.mark("fault:agb-online", at, uint64(slice), 0)
}

// AGBRedirect records the arbiter routing a line around an offline slice.
func (p *Plan) AGBRedirect(at, line uint64, from, to int) {
	p.n.AGBRedirects++
	p.mark("fault:agb-redirect", at, uint64(from), uint64(to))
}
