// Package faultplan is the machine-wide runtime fault-injection layer: a
// deterministic, seeded schedule of transient hardware faults for the
// simulated persist path — NVM rank write/read failures and latency spikes,
// NoC message drops, duplicates, and delays, AGB slice stalls and temporary
// offlining — plus the resilience parameters (retry budgets, backoff,
// ack timeouts, degradation factors) that the tolerant components consume.
//
// A Spec is an immutable, JSON-able schedule description shared freely
// across machines; each machine compiles it into its own stateful Plan
// (faultplan.New) whose pseudo-random decision streams advance in simulation
// order, so two runs of the same workload under the same Spec inject
// byte-identical fault sequences. Components hold a possibly-nil *Plan and
// guard every hook with one nil check, mirroring the telemetry bus: with no
// plan attached the hot persist path pays a single branch and allocates
// nothing.
//
// The injected faults are all *transient or degradable*: every mechanism
// either retries an operation to success or permanently routes around the
// faulty unit (a degraded rank, an escalated NoC path, a redirected AGB
// slice), so strict TSO persistency — the paper's invariant — is preserved
// under every schedule. The one deliberate exception is
// Resilience.DisableDegradation, a test-only mode that abandons persists
// once the retry budget is exhausted; it exists to exercise the simulation
// watchdog (internal/sim), which converts the resulting
// quiescence-without-progress into a diagnostic failure instead of a hang.
package faultplan

import (
	"errors"
	"fmt"
)

// Outage is a scheduled window [From, To) during which one unit (an NVM
// rank or an AGB slice, selected by Unit) is faulty: every NVM access to
// the rank fails, or the AGB slice is offline for new reservations.
type Outage struct {
	Unit int    `json:"unit"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// contains reports whether at falls inside the window.
func (o Outage) contains(unit int, at uint64) bool {
	return o.Unit == unit && at >= o.From && at < o.To
}

// NVMSpec schedules NVM rank faults. Probabilities are per access attempt.
type NVMSpec struct {
	// WriteFailPct / ReadFailPct are per-attempt transient failure
	// probabilities (0..1). A failed attempt occupies the rank bus, is
	// detected at media-completion time, and is retried with exponential
	// backoff up to Resilience.NVMRetryLimit times; beyond that the rank is
	// marked degraded (all later accesses succeed at DegradedFactor×
	// latency) and the access completes on the next attempt.
	WriteFailPct float64 `json:"write_fail_pct,omitempty"`
	ReadFailPct  float64 `json:"read_fail_pct,omitempty"`
	// SpikePct injects a transient latency spike: the access succeeds but
	// takes SpikeFactor× the configured latency.
	SpikePct    float64 `json:"spike_pct,omitempty"`
	SpikeFactor int     `json:"spike_factor,omitempty"`
	// Outages are windows during which every access to the rank fails
	// (modeling a rank brown-out); retries inside the window fail too, so a
	// long outage exhausts the budget and degrades the rank.
	Outages []Outage `json:"outages,omitempty"`
}

// NoCSpec schedules interconnect faults for persist-protocol messages.
type NoCSpec struct {
	// DropPct is the per-transmission loss probability. The sender's ack
	// timer (Resilience.AckTimeout) expires and the message is
	// retransmitted, up to Resilience.MaxRetransmits times; beyond that the
	// sender escalates to the slow reliable path (delivery is guaranteed,
	// at one extra timeout of latency).
	DropPct float64 `json:"drop_pct,omitempty"`
	// DupPct models a lost *ack*: the message was delivered but the sender
	// retransmits anyway; the receiver's sequence-number dedup suppresses
	// the duplicate, costing only injection bandwidth.
	DupPct float64 `json:"dup_pct,omitempty"`
	// DelayPct delays a delivered message by DelayCycles (congestion,
	// misrouting).
	DelayPct    float64 `json:"delay_pct,omitempty"`
	DelayCycles uint64  `json:"delay_cycles,omitempty"`
}

// AGBSpec schedules atomic-group-buffer slice faults.
type AGBSpec struct {
	// StallPct stalls a slice ingress port for StallCycles before a line
	// transfer (transient SRAM access fault, retried in place).
	StallPct    float64 `json:"stall_pct,omitempty"`
	StallCycles uint64  `json:"stall_cycles,omitempty"`
	// Outages take a slice offline for the window: the slice drains the
	// groups already reserved in it (the SRAM is battery-backed) but accepts
	// no new reservations — the arbiter redirects those to surviving
	// slices, preserving allocation order and therefore dependency order
	// and same-address FIFO.
	Outages []Outage `json:"outages,omitempty"`
}

// Resilience parameterizes the fault-tolerance mechanisms. Zero values take
// the package defaults.
type Resilience struct {
	// NVMRetryLimit is the per-access retry budget beyond the first attempt
	// (default DefaultNVMRetryLimit). NVMBackoff is the base backoff in
	// cycles, doubling per retry (default DefaultNVMBackoff).
	NVMRetryLimit int    `json:"nvm_retry_limit,omitempty"`
	NVMBackoff    uint64 `json:"nvm_backoff,omitempty"`
	// DegradedFactor is the latency multiplier on a degraded rank
	// (default DefaultDegradedFactor).
	DegradedFactor int `json:"degraded_factor,omitempty"`
	// AckTimeout is the NoC retransmission timer in cycles (default
	// DefaultAckTimeout); MaxRetransmits bounds retransmissions before the
	// sender escalates to the slow reliable path (default
	// DefaultMaxRetransmits).
	AckTimeout     uint64 `json:"ack_timeout,omitempty"`
	MaxRetransmits int    `json:"max_retransmits,omitempty"`
	// DisableDegradation abandons an NVM access once its retry budget is
	// exhausted instead of degrading the rank. The abandoned persist never
	// completes, the owning group never retires, and the machine stalls —
	// which the simulation watchdog must catch. Test-only.
	DisableDegradation bool `json:"disable_degradation,omitempty"`
}

// Defaults for zero Resilience fields.
const (
	DefaultNVMRetryLimit  = 4
	DefaultNVMBackoff     = 64
	DefaultDegradedFactor = 4
	DefaultAckTimeout     = 128
	DefaultMaxRetransmits = 8
	DefaultSpikeFactor    = 4
)

// Spec is one complete fault schedule. The zero Spec injects nothing.
type Spec struct {
	// Name labels the schedule in reports and telemetry.
	Name string `json:"name"`
	// Seed drives the per-component decision streams.
	Seed int64 `json:"seed"`

	NVM        NVMSpec    `json:"nvm"`
	NoC        NoCSpec    `json:"noc"`
	AGB        AGBSpec    `json:"agb"`
	Resilience Resilience `json:"resilience"`
}

// WithDefaults returns the schedule with zero resilience fields and the
// spike factor filled in. It is the normal form the plan compiler runs and
// the form content-addressed caching hashes: two specs that differ only in
// unfilled defaults behave identically, so they must hash identically.
func (s Spec) WithDefaults() Spec {
	r := &s.Resilience
	if r.NVMRetryLimit == 0 {
		r.NVMRetryLimit = DefaultNVMRetryLimit
	}
	if r.NVMBackoff == 0 {
		r.NVMBackoff = DefaultNVMBackoff
	}
	if r.DegradedFactor == 0 {
		r.DegradedFactor = DefaultDegradedFactor
	}
	if r.AckTimeout == 0 {
		r.AckTimeout = DefaultAckTimeout
	}
	if r.MaxRetransmits == 0 {
		r.MaxRetransmits = DefaultMaxRetransmits
	}
	if s.NVM.SpikeFactor == 0 {
		s.NVM.SpikeFactor = DefaultSpikeFactor
	}
	return s
}

// Validate reports schedule errors: probabilities outside [0,1], inverted
// outage windows, nonsensical factors or budgets.
func (s Spec) Validate() error {
	pcts := map[string]float64{
		"nvm.write_fail_pct": s.NVM.WriteFailPct,
		"nvm.read_fail_pct":  s.NVM.ReadFailPct,
		"nvm.spike_pct":      s.NVM.SpikePct,
		"noc.drop_pct":       s.NoC.DropPct,
		"noc.dup_pct":        s.NoC.DupPct,
		"noc.delay_pct":      s.NoC.DelayPct,
		"agb.stall_pct":      s.AGB.StallPct,
	}
	for name, p := range pcts {
		if p < 0 || p > 1 {
			return fmt.Errorf("faultplan: %s = %g outside [0, 1]", name, p)
		}
	}
	for _, o := range append(append([]Outage{}, s.NVM.Outages...), s.AGB.Outages...) {
		if o.Unit < 0 {
			return fmt.Errorf("faultplan: outage unit %d negative", o.Unit)
		}
		if o.To <= o.From {
			return fmt.Errorf("faultplan: outage window [%d, %d) empty or inverted", o.From, o.To)
		}
	}
	if s.NVM.SpikeFactor < 0 || s.Resilience.DegradedFactor < 0 {
		return errors.New("faultplan: latency factors must be non-negative")
	}
	if s.Resilience.NVMRetryLimit < 0 || s.Resilience.MaxRetransmits < 0 {
		return errors.New("faultplan: retry budgets must be non-negative")
	}
	return nil
}

// Empty reports whether the schedule injects nothing at all.
func (s Spec) Empty() bool {
	return s.NVM.WriteFailPct == 0 && s.NVM.ReadFailPct == 0 && s.NVM.SpikePct == 0 &&
		len(s.NVM.Outages) == 0 &&
		s.NoC.DropPct == 0 && s.NoC.DupPct == 0 && s.NoC.DelayPct == 0 &&
		s.AGB.StallPct == 0 && len(s.AGB.Outages) == 0
}

// Presets returns the named fault schedules the resilience campaigns and
// the CLI use. Windows are sized for the adversarial workloads at the
// campaign's default scale (runs of a few tens of thousands of cycles).
func Presets() []Spec {
	return []Spec{
		{
			// Transient NVM bit-line faults: every failure recovers within
			// the retry budget.
			Name: "nvm-transient", Seed: 1001,
			NVM: NVMSpec{WriteFailPct: 0.05, ReadFailPct: 0.02, SpikePct: 0.05, SpikeFactor: 4},
		},
		{
			// A rank brown-out long enough to exhaust the retry budget and
			// force rank degradation.
			Name: "nvm-outage", Seed: 1002,
			NVM: NVMSpec{
				WriteFailPct: 0.01,
				Outages:      []Outage{{Unit: 2, From: 2_000, To: 40_000}},
			},
		},
		{
			// Lossy interconnect: drops force retransmission, dups exercise
			// dedup, delays jitter the persist protocol.
			Name: "noc-lossy", Seed: 1003,
			NoC: NoCSpec{DropPct: 0.05, DupPct: 0.03, DelayPct: 0.10, DelayCycles: 40},
		},
		{
			// Two AGB slices go dark mid-run; the arbiter must redirect new
			// reservations while the dark slices drain what they hold.
			Name: "agb-degraded", Seed: 1004,
			AGB: AGBSpec{
				StallPct: 0.05, StallCycles: 200,
				Outages: []Outage{
					{Unit: 1, From: 1_500, To: 30_000},
					{Unit: 5, From: 4_000, To: 20_000},
				},
			},
		},
		{
			// Everything at once.
			Name: "storm", Seed: 1005,
			NVM: NVMSpec{
				WriteFailPct: 0.03, ReadFailPct: 0.01, SpikePct: 0.03, SpikeFactor: 3,
				Outages: []Outage{{Unit: 6, From: 3_000, To: 25_000}},
			},
			NoC: NoCSpec{DropPct: 0.03, DupPct: 0.02, DelayPct: 0.05, DelayCycles: 24},
			AGB: AGBSpec{
				StallPct: 0.03, StallCycles: 120,
				Outages: []Outage{{Unit: 3, From: 2_500, To: 22_000}},
			},
		},
	}
}

// Preset returns the named preset schedule.
func Preset(name string) (Spec, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// PresetNames lists the preset schedule names, in presentation order.
func PresetNames() []string {
	var names []string
	for _, s := range Presets() {
		names = append(names, s.Name)
	}
	return names
}
