package faultplan

import "repro/internal/ckpt"

// EncodeState writes the fault plan's runtime state: the three splitmix64
// stream positions, the full injection ledger, and per-rank degradation
// flags. This is the fault-ledger state a checkpoint must preserve —
// restoring mid-outage with reset RNG streams would silently change every
// subsequent fault decision.
func (p *Plan) EncodeState(w *ckpt.Writer) {
	for _, s := range p.rng {
		w.U64(s)
	}
	c := p.n
	w.U64(c.NVMWriteFails)
	w.U64(c.NVMReadFails)
	w.U64(c.NVMSpikes)
	w.U64(c.NVMRetries)
	w.U64(c.NVMDegraded)
	w.U64(c.NVMAbandoned)
	w.U64(c.NoCDrops)
	w.U64(c.NoCRetransmits)
	w.U64(c.NoCEscalations)
	w.U64(c.NoCDups)
	w.U64(c.NoCDelays)
	w.U64(c.AGBStalls)
	w.U64(c.AGBOfflines)
	w.U64(c.AGBRedirects)
	w.U32(uint32(len(p.degraded)))
	for _, d := range p.degraded {
		w.Bool(d)
	}
}
