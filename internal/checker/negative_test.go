package checker

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Hand-built crash states violating each checker rule in isolation. The
// positive paths are covered by the campaign/fuzz tests; these negative
// controls prove every rule actually rejects, with the matching
// Violation.Rule — the table the mutation campaign in internal/crashmc
// re-derives end to end through the machine.

// handGroup builds one group on tr with the given dirty lines, then forces
// the lifecycle state.
func handGroup(tr *core.Tracker, lines map[mem.Line]mem.Version, st core.State) *core.Group {
	g := tr.Open()
	for l, v := range lines {
		g.AddStore(l, v, true)
	}
	if st != core.Open {
		g.Freeze(core.FreezeDrain)
		g.InjectState(st)
	}
	return g
}

func v(c int, s uint64) mem.Version { return mem.Version{Core: c, Seq: s} }

const (
	lA mem.Line = 0x100
	lB mem.Line = 0x101
	lC mem.Line = 0x102
)

func TestCheckerRejectsEachRule(t *testing.T) {
	cases := []struct {
		name string
		rule string // "" = must pass
		csFn func() *machine.CrashState
	}{
		{
			// Positive control: a complete durable pair, fully recovered.
			name: "consistent", rule: "",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g1 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1), lB: v(0, 2)}, core.Durable)
				g2 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 3)}, core.Durable)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g1, g2},
					DurableOrder: []*core.Group{g1, g2},
					Image:        map[mem.Line]mem.Version{lA: v(0, 3), lB: v(0, 2)},
					LineOrder: map[mem.Line][]mem.Version{
						lA: {v(0, 1), v(0, 3)}, lB: {v(0, 2)},
					},
				}
			},
		},
		{
			// Rule 1, atomicity: one line of a durable group missing from
			// the image — a torn (partially persisted) group.
			name: "atomicity-torn-group", rule: "atomicity",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1), lB: v(0, 2)}, core.Durable)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g},
					DurableOrder: []*core.Group{g},
					Image:        map[mem.Line]mem.Version{lA: v(0, 1)}, // lB torn off
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1)}, lB: {v(0, 2)}},
				}
			},
		},
		{
			// Rule 2, per-core prefix: the younger group of core 0 is
			// durable while the older one is not.
			name: "core-prefix-skip", rule: "core-prefix",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g1 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1)}, core.Frozen)
				g2 := handGroup(tr, map[mem.Line]mem.Version{lB: v(0, 2)}, core.Durable)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g1, g2},
					DurableOrder: []*core.Group{g2},
					Image:        map[mem.Line]mem.Version{lB: v(0, 2)},
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1)}, lB: {v(0, 2)}},
				}
			},
		},
		{
			// Rule 3, persist-before closure: core 1's durable group
			// depends (read-from) on core 0's group, which is not durable.
			name: "persist-before-skip", rule: "persist-before",
			csFn: func() *machine.CrashState {
				ids := core.NewIDSource()
				g := handGroup(core.NewTracker(0, ids), map[mem.Line]mem.Version{lA: v(0, 1)}, core.Frozen)
				h := handGroup(core.NewTracker(1, ids), map[mem.Line]mem.Version{lB: v(1, 1)}, core.Durable)
				h.DepIDs = append(h.DepIDs, g.ID)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g, h},
					DurableOrder: []*core.Group{h},
					Image:        map[mem.Line]mem.Version{lB: v(1, 1)},
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1)}, lB: {v(1, 1)}},
				}
			},
		},
		{
			// Rule 4, per-line FIFO (shadowing side): two durable groups
			// wrote lA; the recovered version is the older one, so the
			// newest durable write was shadowed during replay.
			name: "fifo-shadowed-version", rule: "atomicity",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g1 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1)}, core.Durable)
				g2 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 2)}, core.Durable)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g1, g2},
					DurableOrder: []*core.Group{g1, g2},
					Image:        map[mem.Line]mem.Version{lA: v(0, 1)}, // old version recovered
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1), v(0, 2)}},
				}
			},
		},
		{
			// Rule 4, per-line FIFO (leak side): the recovered image holds
			// a version only a non-durable group wrote.
			name: "fifo-leaked-version", rule: "leak",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g1 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1)}, core.Durable)
				g2 := handGroup(tr, map[mem.Line]mem.Version{lC: v(0, 2)}, core.Frozen)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g1, g2},
					DurableOrder: []*core.Group{g1},
					Image:        map[mem.Line]mem.Version{lA: v(0, 1), lC: v(0, 2)},
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1)}, lC: {v(0, 2)}},
				}
			},
		},
		{
			// Bookkeeping guard: the durable order lists a group that never
			// became durable.
			name: "durability-order-alien", rule: "durability-order",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g1 := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1)}, core.Durable)
				g2 := handGroup(tr, map[mem.Line]mem.Version{lB: v(0, 2)}, core.Frozen)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g1, g2},
					DurableOrder: []*core.Group{g1, g2},
					Image:        map[mem.Line]mem.Version{lA: v(0, 1), lB: v(0, 2)},
					LineOrder:    map[mem.Line][]mem.Version{lA: {v(0, 1)}, lB: {v(0, 2)}},
				}
			},
		},
		{
			// Serialization guard: the recovered version never appeared in
			// the line's directory-serialized coherence order.
			name: "coherence-order-phantom", rule: "coherence-order",
			csFn: func() *machine.CrashState {
				tr := core.NewTracker(0, core.NewIDSource())
				g := handGroup(tr, map[mem.Line]mem.Version{lA: v(0, 1)}, core.Durable)
				return &machine.CrashState{
					System:       machine.TSOPER,
					Groups:       []*core.Group{g},
					DurableOrder: []*core.Group{g},
					Image:        map[mem.Line]mem.Version{lA: v(0, 1)},
					LineOrder:    map[mem.Line][]mem.Version{lA: {}},
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := Check(tc.csFn())
			if tc.rule == "" {
				if err != nil {
					t.Fatalf("consistent state rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("violating state accepted (want rule %q)", tc.rule)
			}
			var viol *Violation
			if !errors.As(err, &viol) {
				t.Fatalf("non-Violation error: %v", err)
			}
			if viol.Rule != tc.rule {
				t.Fatalf("rule = %q, want %q (%v)", viol.Rule, tc.rule, err)
			}
		})
	}
}
