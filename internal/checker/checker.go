// Package checker validates strict TSO persistency after an injected crash
// (§II's correctness criterion): the recovered NVM image must correspond to
// a TSO-consistent cut of the pre-crash execution. Concretely, the set of
// durable atomic groups must be
//
//  1. atomic — each group's lines are all recovered at its versions or none
//     are (no partial groups);
//  2. prefix-closed per core — a durable group implies every older group of
//     the same core is durable (persist order follows program order);
//  3. closed under persist-before — a durable group implies every group it
//     depends on (read-from, write-after-write, intra-core) is durable;
//  4. per-line FIFO — the recovered version of each line is the newest one
//     written by any durable group, i.e. no durable version is shadowed and
//     no non-durable version leaked.
//
// Together these imply there is a TSO memory-order prefix whose final
// writes are exactly the recovered image.
package checker

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Violation describes a persistency violation found in a crash state.
type Violation struct {
	Rule   string
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("persistency violation (%s): %s", v.Rule, v.Detail)
}

// Check validates a crash state; nil means the image is a TSO-consistent
// cut. Only strict-persistency systems (STW, TSOPER) journal groups; Check
// refuses other systems.
func Check(cs *machine.CrashState) error {
	if cs.System != machine.STW && cs.System != machine.TSOPER {
		return fmt.Errorf("checker: %v does not claim strict TSO persistency", cs.System)
	}
	durable := map[uint64]*core.Group{}
	for _, g := range cs.Groups {
		if g.State() >= core.Durable {
			durable[g.ID] = g
		}
	}

	if err := checkCorePrefix(cs, durable); err != nil {
		return err
	}
	if err := checkDepClosure(cs, durable); err != nil {
		return err
	}
	if err := checkImage(cs, durable); err != nil {
		return err
	}
	if err := core.CheckAcyclic(cs.Groups); err != nil {
		return &Violation{Rule: "acyclic", Detail: err.Error()}
	}
	return nil
}

// checkCorePrefix: durable groups form a prefix of each core's creation
// order, and therefore the durable stores form a prefix of each core's
// program order.
func checkCorePrefix(cs *machine.CrashState, durable map[uint64]*core.Group) error {
	maxSeq := map[int]uint64{}
	for _, g := range cs.Groups {
		if _, ok := durable[g.ID]; ok && g.Seq > maxSeq[g.Core] {
			maxSeq[g.Core] = g.Seq
		}
	}
	for _, g := range cs.Groups {
		if _, ok := durable[g.ID]; !ok && g.Seq < maxSeq[g.Core] {
			return &Violation{
				Rule: "core-prefix",
				Detail: fmt.Sprintf("%v is not durable but younger group #%d of core %d is",
					g, maxSeq[g.Core], g.Core),
			}
		}
	}
	return nil
}

// checkDepClosure: every persist-before dependency of a durable group is
// itself durable.
func checkDepClosure(cs *machine.CrashState, durable map[uint64]*core.Group) error {
	for _, g := range cs.Groups {
		if _, ok := durable[g.ID]; !ok {
			continue
		}
		for _, dep := range g.DepIDs {
			if _, ok := durable[dep]; !ok {
				return &Violation{
					Rule: "persist-before",
					Detail: fmt.Sprintf("%v is durable but its dependency group %d is not",
						g, dep),
				}
			}
		}
	}
	return nil
}

// checkImage: the recovered version of each line equals the newest durable
// version in durability order (group atomicity + per-line FIFO), and lines
// written only by non-durable groups are absent.
func checkImage(cs *machine.CrashState, durable map[uint64]*core.Group) error {
	expected := map[mem.Line]mem.Version{}
	for _, g := range cs.DurableOrder {
		if _, ok := durable[g.ID]; !ok {
			return &Violation{
				Rule:   "durability-order",
				Detail: fmt.Sprintf("%v appears in durable order but is not durable", g),
			}
		}
		for l, v := range g.DirtyLines() {
			expected[l] = v
		}
	}
	for l, want := range expected {
		if got := cs.Image[l]; got != want {
			return &Violation{
				Rule:   "atomicity",
				Detail: fmt.Sprintf("line %v recovered as %v, expected %v", l, got, want),
			}
		}
	}
	for l, got := range cs.Image {
		if _, ok := expected[l]; !ok && !got.IsInitial() {
			return &Violation{
				Rule:   "leak",
				Detail: fmt.Sprintf("line %v holds %v but no durable group wrote it", l, got),
			}
		}
	}
	// The recovered version must also appear in the line's coherence order
	// (a version that was never serialized cannot be recovered).
	for l, got := range cs.Image {
		found := false
		for _, v := range cs.LineOrder[l] {
			if v == got {
				found = true
				break
			}
		}
		if !found {
			return &Violation{
				Rule:   "coherence-order",
				Detail: fmt.Sprintf("line %v recovered as %v, never in coherence order", l, got),
			}
		}
	}
	return nil
}

// Campaign runs crash injections at the given cycles for a fresh machine
// per crash, returning the first violation (nil if all pass).
type Campaign struct {
	// Crashes counts injections performed; DurableGroups accumulates the
	// durable-group count across crashes (to confirm the campaign
	// exercised non-trivial states).
	Crashes       int
	DurableGroups int
	PartialStates int
}

// Run executes a crash campaign: build is called per injection to produce a
// fresh machine and workload pair.
func (c *Campaign) Run(build func() (*machine.Machine, *trace.Workload), cycles []sim.Time) error {
	for _, at := range cycles {
		m, w := build()
		cs := m.RunWithCrash(w, at)
		c.Crashes++
		nd := 0
		for _, g := range cs.Groups {
			if g.State() >= core.Durable {
				nd++
			}
		}
		c.DurableGroups += nd
		if nd > 0 && nd < len(cs.Groups) {
			c.PartialStates++
		}
		if err := Check(cs); err != nil {
			return fmt.Errorf("crash at cycle %d: %w", at, err)
		}
	}
	return nil
}
