package checker

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzCrashConsistency is the crash-point fuzz target: arbitrary workload
// knobs, machine shapes, crash cycles, and seeds across both strict systems
// — every recovered state must pass the TSO-consistent-cut checker.
//
// Under plain `go test` only the seed corpus runs (deterministic replay);
// `go test -fuzz=FuzzCrashConsistency` explores further.
func FuzzCrashConsistency(f *testing.F) {
	// Seed corpus spanning both systems, core counts, AGB sizes, and crash
	// cycles from the warm-up prefix to past the drain horizon.
	f.Add(uint8(0), uint8(6), uint16(300), uint8(128), uint16(48), uint8(60), uint32(20000), int64(1))
	f.Add(uint8(1), uint8(2), uint16(250), uint8(40), uint16(8), uint8(0), uint32(500), int64(2))
	f.Add(uint8(0), uint8(8), uint16(450), uint8(220), uint16(120), uint8(110), uint32(60000), int64(3))
	f.Add(uint8(1), uint8(4), uint16(350), uint8(90), uint16(32), uint8(30), uint32(7000), int64(4))
	f.Add(uint8(0), uint8(3), uint16(200), uint8(255), uint16(64), uint8(90), uint32(2500), int64(5))
	f.Add(uint8(1), uint8(7), uint16(400), uint8(160), uint16(16), uint8(50), uint32(35000), int64(6))
	f.Add(uint8(0), uint8(5), uint16(300), uint8(70), uint16(96), uint8(119), uint32(90000), int64(7))
	f.Add(uint8(1), uint8(6), uint16(280), uint8(110), uint16(24), uint8(10), uint32(15000), int64(8))

	f.Fuzz(func(t *testing.T, sys, cores uint8, ops uint16, storeB uint8,
		sharedLines uint16, agbLines uint8, at uint32, seed int64) {
		kind := machine.TSOPER
		if sys%2 == 1 {
			kind = machine.STW
		}
		cfg := machine.TableI(kind)
		cfg.Cores = 2 + int(cores)%7
		cfg.AGB.LinesPerSlice = 40 + int(agbLines)%120
		if cfg.AGLimit > cfg.AGB.LinesPerSlice {
			cfg.AGLimit = cfg.AGB.LinesPerSlice
		}
		p := crashProfile()
		p.OpsPerCore = 150 + int(ops)%350
		p.StoreFrac = 0.2 + float64(storeB)/256*0.6
		p.SharedLines = 8 + int(sharedLines)%120
		crash := sim.Time(500 + uint64(at)%90000)

		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := trace.Generate(p, cfg.Cores, seed)
		cs := m.RunWithCrash(w, crash)
		if err := Check(cs); err != nil {
			t.Fatalf("%v crash at %d (seed %d): %v", kind, crash, seed, err)
		}
	})
}
