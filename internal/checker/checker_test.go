package checker

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func crashProfile() trace.Profile {
	return trace.Profile{
		Name: "crash", OpsPerCore: 400, StoreFrac: 0.5, SharedFrac: 0.5,
		SharedLines: 48, PrivateLines: 48, HotFrac: 0.5, HotLines: 6,
		Locality: 0.3, SyncPeriod: 120, CSStores: 2, ComputeMean: 2,
	}
}

func buildFor(t *testing.T, kind machine.SystemKind, seed int64) func() (*machine.Machine, *trace.Workload) {
	t.Helper()
	return func() (*machine.Machine, *trace.Workload) {
		cfg := machine.TableI(kind)
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m, trace.Generate(crashProfile(), cfg.Cores, seed)
	}
}

// The headline property test of the reproduction: crash TSOPER (and STW) at
// many points through the run; every recovered image must be a
// TSO-consistent cut.
func TestCrashConsistencyCampaign(t *testing.T) {
	for _, kind := range []machine.SystemKind{machine.TSOPER, machine.STW} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var cycles []sim.Time
			for at := sim.Time(500); at <= 40000; at += 1700 {
				cycles = append(cycles, at)
			}
			for seed := int64(1); seed <= 3; seed++ {
				c := &Campaign{}
				if err := c.Run(buildFor(t, kind, seed), cycles); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if c.PartialStates == 0 {
					t.Fatalf("seed %d: campaign never hit a partially durable state — too weak", seed)
				}
			}
		})
	}
}

func TestCheckRejectsRelaxedSystems(t *testing.T) {
	cs := &machine.CrashState{System: machine.HWRP}
	if err := Check(cs); err == nil {
		t.Fatal("HW-RP must not be accepted as strict")
	}
}

// Corrupt a genuine crash state in targeted ways; the checker must catch
// each corruption.
func TestCheckerDetectsCorruptions(t *testing.T) {
	build := buildFor(t, machine.TSOPER, 5)
	freshState := func() *machine.CrashState {
		m, w := build()
		return m.RunWithCrash(w, 20000)
	}

	base := freshState()
	if err := Check(base); err != nil {
		t.Fatalf("genuine state rejected: %v", err)
	}
	var durableWithLines *core.Group
	for _, g := range base.DurableOrder {
		if g.DirtyLen() > 0 {
			durableWithLines = g
			break
		}
	}
	if durableWithLines == nil {
		t.Fatal("campaign state has no durable group with lines; pick another crash point")
	}

	t.Run("torn-group", func(t *testing.T) {
		cs := freshState()
		// Drop one line of a durable group from the image: partial persist.
		for _, g := range cs.DurableOrder {
			if g.DirtyLen() > 0 {
				for l := range g.DirtyLines() {
					delete(cs.Image, l)
					break
				}
				break
			}
		}
		err := Check(cs)
		if err == nil || !strings.Contains(err.Error(), "atomicity") {
			t.Fatalf("torn group not detected: %v", err)
		}
	})

	t.Run("leaked-version", func(t *testing.T) {
		cs := freshState()
		// Inject a version no durable group wrote.
		cs.Image[mem.Line(0xdead)] = mem.Version{Core: 0, Seq: 999999}
		err := Check(cs)
		if err == nil {
			t.Fatal("leaked write not detected")
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		cs := freshState()
		for _, g := range cs.DurableOrder {
			if g.DirtyLen() > 0 {
				for l := range g.DirtyLines() {
					cs.Image[l] = mem.Version{Core: 7, Seq: 123456}
					break
				}
				break
			}
		}
		err := Check(cs)
		if err == nil || !strings.Contains(err.Error(), "atomicity") {
			t.Fatalf("wrong version not detected: %v", err)
		}
	})
}

func TestViolationError(t *testing.T) {
	v := &Violation{Rule: "x", Detail: "y"}
	if !strings.Contains(v.Error(), "x") || !strings.Contains(v.Error(), "y") {
		t.Fatalf("error text: %s", v.Error())
	}
}
