package program

import (
	"strings"
	"testing"
)

// A small well-formed program used across tests.
const sampleJSON = `{
  "version": 1,
  "name": "sample",
  "doc": "two cores, a bit of everything",
  "cores": [
    { "instrs": [
      { "op": "store_burst", "count": 10, "region": "private" },
      { "op": "fence" },
      { "op": "loop", "times": 3, "body": [
        { "op": "handoff", "count": 4, "line": 2 },
        { "op": "epoch" }
      ] }
    ] },
    { "instrs": [
      { "op": "lock", "line": 2, "stores": 2 },
      { "op": "rank_stream", "count": 8, "rank": 1 },
      { "op": "compute", "cycles": 100 },
      { "op": "crash" }
    ] }
  ]
}`

func mustDecode(t *testing.T, src string) *Program {
	t.Helper()
	p, err := DecodeBytes([]byte(src))
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	return p
}

func TestDecodeStrict(t *testing.T) {
	t.Parallel()
	p := mustDecode(t, sampleJSON)
	if p.Name != "sample" || len(p.Cores) != 2 {
		t.Fatalf("decoded %q with %d cores", p.Name, len(p.Cores))
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	cases := []struct {
		name, src, want string
	}{
		{"unknown field", `{"version":1,"name":"x","bogus":1,"cores":[{"instrs":[]}]}`, "bogus"},
		{"unknown instr field", `{"version":1,"name":"x","cores":[{"instrs":[{"op":"fence","frobnicate":2}]}]}`, "frobnicate"},
		{"trailing garbage", `{"version":1,"name":"x","cores":[{"instrs":[]}]} {"more":true}`, "trailing"},
		{"wrong version", `{"version":2,"name":"x","cores":[{"instrs":[]}]}`, "version"},
		{"not json", `hello`, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBytes([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		p    Program
		want string
	}{
		{"no name", Program{Version: 1, Cores: []CoreProg{{}}}, "name"},
		{"no cores", Program{Version: 1, Name: "x"}, "at least one core"},
		{"unknown op", prog1("x", Instr{Op: "warp"}), `unknown op "warp"`},
		{"extraneous field", prog1("x", Instr{Op: OpFence, Count: 3}), "does not take count"},
		{"loop field on burst", prog1("x", Instr{Op: OpStoreBurst, Count: 1, Times: 2}), "does not take times"},
		{"zero count", prog1("x", Instr{Op: OpLoadScan}), "count must be"},
		{"bad region", prog1("x", Instr{Op: OpStoreBurst, Count: 1, Region: "lunar"}), "region must be"},
		{"bad stride", prog1("x", Instr{Op: OpStoreBurst, Count: 1, Stride: "diag"}), "stride must be"},
		{"negative rank", prog1("x", Instr{Op: OpRankStream, Count: 1, Rank: -1}), "rank must be"},
		{"zero cycles", prog1("x", Instr{Op: OpCompute}), "cycles must be"},
		{"empty loop", prog1("x", Instr{Op: OpLoop, Times: 2}), "non-empty body"},
		{"zero times", prog1("x", Instr{Op: OpLoop, Body: []Instr{{Op: OpFence}}}), "times must be"},
		{"unknown profile", prog1("x", Instr{Op: OpProfile, Profile: "quake"}), `unknown profile "quake"`},
		{"huge scale", prog1("x", Instr{Op: OpProfile, Profile: "radix", Scale: 99}), "scale must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestValidateOpBudget(t *testing.T) {
	t.Parallel()
	// Nested loops that flatten to (2^16)^2 ops must be rejected without
	// the validator materializing anything.
	over := prog1("x", Instr{Op: OpLoop, Times: MaxLoopTimes, Body: []Instr{
		{Op: OpLoop, Times: MaxLoopTimes, Body: []Instr{{Op: OpFence}}},
	}})
	err := over.Validate()
	if err == nil || !strings.Contains(err.Error(), "per-core limit") {
		t.Fatalf("Validate = %v, want per-core limit error", err)
	}

	deep := Instr{Op: OpFence}
	for i := 0; i <= MaxLoopDepth; i++ {
		deep = Instr{Op: OpLoop, Times: 1, Body: []Instr{deep}}
	}
	deepProg := prog1("x", deep)
	err = deepProg.Validate()
	if err == nil || !strings.Contains(err.Error(), "nest deeper") {
		t.Fatalf("Validate = %v, want nesting error", err)
	}
}

func prog1(name string, instrs ...Instr) Program {
	return Program{Version: 1, Name: name, Cores: []CoreProg{{Instrs: instrs}}}
}

func TestCanonicalMergesAndHashes(t *testing.T) {
	t.Parallel()
	// Three surface forms of "100 sequential shared stores".
	flat := prog1("w", Instr{Op: OpStoreBurst, Count: 100})
	split := prog1("w",
		Instr{Op: OpStoreBurst, Count: 60, Region: RegionShared, Stride: StrideSeq},
		Instr{Op: OpStoreBurst, Count: 40})
	looped := prog1("w", Instr{Op: OpLoop, Times: 2, Body: []Instr{
		{Op: OpStoreBurst, Count: 50},
	}})

	want, err := flat.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	for i, p := range []Program{split, looped} {
		got, err := p.Hash()
		if err != nil {
			t.Fatalf("variant %d Hash: %v", i, err)
		}
		if got != want {
			t.Fatalf("variant %d hash %s != flat hash %s", i, got, want)
		}
	}

	// Doc is cosmetic.
	doc := flat
	doc.Doc = "an essay"
	if got, _ := doc.Hash(); got != want {
		t.Fatalf("Doc changed the hash")
	}

	// Different parameters must NOT merge.
	other := prog1("w", Instr{Op: OpStoreBurst, Count: 100, Region: RegionHot})
	if got, _ := other.Hash(); got == want {
		t.Fatalf("hot-region burst collided with shared-region burst")
	}

	// Canonical form is a fixed point.
	c, err := split.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	cc, err := c.Canonical()
	if err != nil {
		t.Fatalf("Canonical(Canonical): %v", err)
	}
	if len(cc.Cores[0].Instrs) != 1 || cc.Cores[0].Instrs[0].Count != 100 {
		t.Fatalf("canonical form = %+v, want one count-100 burst", cc.Cores[0].Instrs)
	}
}

func TestCanonicalDropsTrailingIdleCores(t *testing.T) {
	t.Parallel()
	p := Program{Version: 1, Name: "x", Cores: []CoreProg{
		{Instrs: []Instr{{Op: OpFence}}},
		{},
		{},
	}}
	c, err := p.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if len(c.Cores) != 1 {
		t.Fatalf("canonical kept %d cores, want 1", len(c.Cores))
	}
}

func TestEstimate(t *testing.T) {
	t.Parallel()
	p := mustDecode(t, sampleJSON)
	est, err := p.Estimate(DefaultEnv())
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	// Core 0: 10 + 1 + 3*(4+1) = 26; core 1: (2+2) + 8 + 1 + 1 = 14.
	if est.Ops != 40 {
		t.Fatalf("Ops = %d, want 40", est.Ops)
	}
	if est.Syncs != 1+2 {
		t.Fatalf("Syncs = %d, want 3", est.Syncs)
	}
	if est.Markers != 3+1 {
		t.Fatalf("Markers = %d, want 4", est.Markers)
	}
	if est.Computes != 1 {
		t.Fatalf("Computes = %d, want 1", est.Computes)
	}
	if est.Cycles <= costDrainFixed {
		t.Fatalf("Cycles = %d, want > drain floor", est.Cycles)
	}

	// The estimate's op count must equal the compiled op count, exactly.
	w, err := p.Compile(DefaultEnv(), 1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	total := 0
	for _, ops := range w.Cores {
		total += len(ops)
	}
	if total != est.Ops {
		t.Fatalf("compiled %d ops but estimated %d", total, est.Ops)
	}
}

func TestEstimateMatchesCompileForLibrary(t *testing.T) {
	t.Parallel()
	for name, p := range Library() {
		est, err := p.Estimate(DefaultEnv())
		if err != nil {
			t.Fatalf("%s: Estimate: %v", name, err)
		}
		w, err := p.Compile(DefaultEnv(), 42)
		if err != nil {
			t.Fatalf("%s: Compile: %v", name, err)
		}
		total := 0
		for _, ops := range w.Cores {
			total += len(ops)
		}
		if total != est.Ops {
			t.Errorf("%s: compiled %d ops, estimated %d", name, total, est.Ops)
		}
	}
}

func TestLibraryWellFormed(t *testing.T) {
	t.Parallel()
	names := LibraryNames()
	if len(names) < 7 {
		t.Fatalf("library has %d programs, want >= 7: %v", len(names), names)
	}
	for _, name := range names {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("library file %q declares name %q", name, p.Name)
		}
		if _, err := p.Hash(); err != nil {
			t.Errorf("%s: Hash: %v", name, err)
		}
	}
	if _, err := ByName("no-such-program"); err == nil {
		t.Fatalf("ByName of a missing program succeeded")
	}
}
