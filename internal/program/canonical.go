package program

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the program's normal form. Canonicalization applies
// only rewrites that provably preserve Compile's output byte-for-byte
// (compile_test.go cross-checks this on the library), so two programs with
// the same canonical form are interchangeable workloads:
//
//   - cosmetic content is dropped (Doc) and defaults are made explicit
//     (region "shared", stride "seq", default widths, lock stores 1,
//     profile scale 1);
//   - single-iteration loops are inlined, and a loop whose body reduces to
//     one mergeable instruction collapses to that instruction with the
//     multiplied count;
//   - adjacent mergeable instructions (same op and parameters) merge with
//     summed counts — sound because each core lowers through one
//     continuous RNG/cursor stream, so "burst 60 then burst 40" draws the
//     same addresses as "burst 100";
//   - trailing empty cores are dropped (idle either way).
//
// The input is not modified.
func (p *Program) Canonical() (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := &Program{Version: Version, Name: p.Name}
	for _, cp := range p.Cores {
		q.Cores = append(q.Cores, CoreProg{Instrs: canonicalInstrs(cp.Instrs)})
	}
	for len(q.Cores) > 1 && len(q.Cores[len(q.Cores)-1].Instrs) == 0 {
		q.Cores = q.Cores[:len(q.Cores)-1]
	}
	return q, nil
}

// Hash is the program's content address: the SHA-256 of its canonical
// JSON form. Programs that lower to identical workloads share a hash.
func (p *Program) Hash() (string, error) {
	c, err := p.Canonical()
	if err != nil {
		return "", err
	}
	doc, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("program: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

func canonicalInstrs(instrs []Instr) []Instr {
	out := make([]Instr, 0, len(instrs))
	for _, in := range instrs {
		for _, c := range canonicalInstr(in) {
			out = appendMerged(out, c)
		}
	}
	return out
}

// canonicalInstr normalizes one instruction, possibly expanding to several
// (inlined loops) — always already-canonical instructions.
func canonicalInstr(in Instr) []Instr {
	switch in.Op {
	case OpStoreBurst, OpLoadScan:
		in.Region = regionOrDefault(in.Region)
		in.Lines = regionWidth(in.Region, in.Lines)
		if in.Stride == "" {
			in.Stride = StrideSeq
		}
	case OpLock:
		in.Stores = in.csStores()
	case OpProfile:
		in.Scale = in.profileScale()
	case OpCrash:
		// crash keeps its own op: it lowers like epoch but campaigns read
		// the intent, so the distinction is semantic, not cosmetic.
	case OpLoop:
		body := canonicalInstrs(in.Body)
		if in.Times == 1 {
			return body
		}
		if len(body) == 1 && mergeable(body[0]) {
			if total := body[0].Count * in.Times; total <= MaxCount {
				single := body[0]
				single.Count = total
				return []Instr{single}
			}
		}
		in.Body = body
	}
	return []Instr{in}
}

// mergeable reports whether the instruction merges with an identical
// neighbor by summing counts. Sound only for ops whose lowering draws
// Count items from a continuous per-core stream.
func mergeable(in Instr) bool {
	switch in.Op {
	case OpStoreBurst, OpLoadScan, OpHandoff, OpRankStream:
		return true
	}
	return false
}

// appendMerged appends c, merging into the previous instruction when both
// are mergeable and differ only in count.
func appendMerged(out []Instr, c Instr) []Instr {
	if n := len(out); n > 0 && mergeable(c) {
		prev := out[n-1]
		if sameParams(prev, c) && prev.Count+c.Count <= MaxCount {
			out[n-1].Count = prev.Count + c.Count
			return out
		}
	}
	return append(out, c)
}

// sameParams reports whether two mergeable instructions differ only in
// count. (Instr itself is not comparable — loops carry a Body slice — but
// mergeable ops never use Body.)
func sameParams(a, b Instr) bool {
	return a.Op == b.Op && a.Region == b.Region && a.Lines == b.Lines &&
		a.Stride == b.Stride && a.Line == b.Line && a.Rank == b.Rank
}

func regionOrDefault(r string) string {
	if r == "" {
		return RegionShared
	}
	return r
}

// Default region widths in cachelines.
const (
	DefaultSharedLines  = 512
	DefaultHotLines     = 8
	DefaultPrivateLines = 512
)

func regionWidth(region string, lines int) int {
	if lines > 0 {
		return lines
	}
	switch region {
	case RegionHot:
		return DefaultHotLines
	case RegionPrivate:
		return DefaultPrivateLines
	default:
		return DefaultSharedLines
	}
}
