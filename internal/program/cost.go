package program

import (
	"fmt"

	"repro/internal/trace"
)

// Estimate is a program's up-front cost: exact trace-op counts (the
// compiler emits precisely these many operations) and an order-of-magnitude
// simulated-cycle estimate. The cycle model is deliberately simple — fixed
// per-op costs summed per core, critical path across cores, plus a drain
// term — because its consumer is admission control, not prediction: it only
// has to rank programs by weight monotonically enough to reject the
// over-budget ones before a worker is committed.
type Estimate struct {
	// Ops is the total trace-op count across all cores (exact).
	Ops int `json:"ops"`
	// Stores, Loads, Syncs, Markers, Computes break Ops down (exact for
	// instruction programs; profile instructions use the profile's store
	// fraction, so their split is an expectation).
	Stores   int `json:"stores"`
	Loads    int `json:"loads"`
	Syncs    int `json:"syncs"`
	Markers  int `json:"markers"`
	Computes int `json:"computes"`
	// Cycles estimates the simulated execution horizon: the heaviest
	// core's summed op costs plus the end-of-run drain term.
	Cycles uint64 `json:"cycles"`
}

// Per-op cycle costs (order-of-magnitude, see PROGRAMS.md "Cost model").
// Loads block the in-order core for a round trip; stores retire through the
// buffer and mostly cost issue slots; syncs drain the store buffer; rank
// streams always miss and pay NVM-bound persists.
const (
	costLoad       = 40
	costStore      = 14
	costSharedMul  = 2 // contended shared/hot traffic costs roughly double
	costSync       = 160
	costMarker     = 14
	costRankStore  = 46
	costDrainFixed = 4000
)

// Estimate computes the program's cost for a machine shape without
// compiling it (no op slices are materialized).
func (p *Program) Estimate(env Env) (Estimate, error) {
	if err := env.check(); err != nil {
		return Estimate{}, err
	}
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	var total Estimate
	var worst uint64
	for _, cp := range p.Cores {
		var core Estimate
		estimateInstrs(cp.Instrs, &core)
		total.add(core)
		if core.Cycles > worst {
			worst = core.Cycles
		}
	}
	total.Cycles = worst + costDrainFixed
	return total, nil
}

func (e *Estimate) add(o Estimate) {
	e.Ops += o.Ops
	e.Stores += o.Stores
	e.Loads += o.Loads
	e.Syncs += o.Syncs
	e.Markers += o.Markers
	e.Computes += o.Computes
}

func (e Estimate) String() string {
	return fmt.Sprintf("%d ops (%d stores, %d loads, %d syncs, %d markers), ~%d cycles",
		e.Ops, e.Stores, e.Loads, e.Syncs, e.Markers, e.Cycles)
}

func estimateInstrs(instrs []Instr, e *Estimate) {
	for _, in := range instrs {
		estimateInstr(in, e)
	}
}

func estimateInstr(in Instr, e *Estimate) {
	shared := regionOrDefault(in.Region) != RegionPrivate
	switch in.Op {
	case OpStoreBurst:
		e.Ops += in.Count
		e.Stores += in.Count
		e.Cycles += uint64(in.Count) * mulShared(costStore, shared)
	case OpLoadScan:
		e.Ops += in.Count
		e.Loads += in.Count
		e.Cycles += uint64(in.Count) * mulShared(costLoad, shared)
	case OpHandoff:
		e.Ops += in.Count
		e.Stores += (in.Count + 1) / 2
		e.Loads += in.Count / 2
		e.Cycles += uint64(in.Count) * uint64(costLoad+costStore) / 2 * costSharedMul
	case OpFence:
		e.Ops++
		e.Syncs++
		e.Cycles += costSync
	case OpLock:
		cs := in.csStores()
		e.Ops += cs + 2
		e.Syncs += 2
		e.Stores += cs
		e.Cycles += 2*costSync + uint64(cs)*costStore*costSharedMul
	case OpRankStream:
		e.Ops += in.Count
		e.Stores += in.Count
		e.Cycles += uint64(in.Count) * costRankStore
	case OpEpoch, OpCrash:
		e.Ops++
		e.Markers++
		e.Cycles += costMarker
	case OpCompute:
		e.Ops++
		e.Computes++
		e.Cycles += uint64(in.Cycles)
	case OpLoop:
		var body Estimate
		estimateInstrs(in.Body, &body)
		e.Ops += body.Ops * in.Times
		e.Stores += body.Stores * in.Times
		e.Loads += body.Loads * in.Times
		e.Syncs += body.Syncs * in.Times
		e.Markers += body.Markers * in.Times
		e.Computes += body.Computes * in.Times
		e.Cycles += body.Cycles * uint64(in.Times)
	case OpProfile:
		prof, ok := trace.ByName(in.Profile)
		if !ok {
			return // Validate already rejected; keep estimate total-safe
		}
		prof = prof.Scale(in.profileScale())
		n := prof.OpsPerCore
		e.Ops += n
		stores := int(float64(n) * prof.StoreFrac)
		e.Stores += stores
		e.Loads += n - stores
		if prof.SyncPeriod > 0 {
			e.Syncs += n / prof.SyncPeriod
		}
		// Profiles mix compute bursts and contended traffic; the blended
		// per-op cost sits between a private store and a shared load.
		e.Cycles += uint64(n) * (costLoad + costStore)
	}
}

func mulShared(c uint64, shared bool) uint64 {
	if shared {
		return c * costSharedMul
	}
	return c
}
