package program

import (
	"fmt"

	"repro/internal/trace"
)

// Validation limits. They bound what a hostile wire program can make the
// compiler materialize, so validation alone is enough to admit a program
// into memory-bounded machinery (the fuzzer leans on this).
const (
	// MaxCores bounds the per-core program count.
	MaxCores = 64
	// MaxOpsPerCore bounds one core's flattened trace-op count.
	MaxOpsPerCore = 1 << 21
	// MaxLoopDepth bounds loop nesting.
	MaxLoopDepth = 8
	// MaxLoopTimes bounds one loop's repeat count.
	MaxLoopTimes = 1 << 16
	// MaxCount bounds one burst/scan/handoff/stream instruction.
	MaxCount = 1 << 20
	// MaxRegionLines bounds a region width.
	MaxRegionLines = 1 << 16
	// MaxComputeCycles bounds one compute burst.
	MaxComputeCycles = 1 << 20
)

// ValidationError pinpoints the offending instruction.
type ValidationError struct {
	// Path locates the problem, e.g. "cores[2].instrs[3]".
	Path string
	Msg  string
}

func (e *ValidationError) Error() string {
	if e.Path == "" {
		return "program: " + e.Msg
	}
	return fmt.Sprintf("program: %s: %s", e.Path, e.Msg)
}

func errAt(path, format string, args ...any) error {
	return &ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the whole program: name, core count, per-instruction
// field discipline (exactly the fields an op uses may be set), bounds, and
// that every core's flattened op count stays under MaxOpsPerCore.
func (p *Program) Validate() error {
	if p.Name == "" {
		return errAt("", "program needs a name")
	}
	if len(p.Name) > 128 {
		return errAt("", "name longer than 128 bytes")
	}
	if len(p.Cores) == 0 {
		return errAt("", "program needs at least one core")
	}
	if len(p.Cores) > MaxCores {
		return errAt("", "%d cores exceeds the %d-core limit", len(p.Cores), MaxCores)
	}
	for c, cp := range p.Cores {
		path := fmt.Sprintf("cores[%d]", c)
		ops, err := validateInstrs(cp.Instrs, path+".instrs", 0)
		if err != nil {
			return err
		}
		if ops > MaxOpsPerCore {
			return errAt(path, "flattens to %d trace ops, over the per-core limit %d", ops, MaxOpsPerCore)
		}
	}
	return nil
}

// validateInstrs validates a sequence and returns its flattened op count.
func validateInstrs(instrs []Instr, path string, depth int) (int, error) {
	ops := 0
	for i := range instrs {
		n, err := instrs[i].validate(fmt.Sprintf("%s[%d]", path, i), depth)
		if err != nil {
			return 0, err
		}
		ops += n
		if ops > MaxOpsPerCore {
			// Clamp: the caller reports the limit; avoid overflow on
			// pathological nesting.
			return MaxOpsPerCore + 1, nil
		}
	}
	return ops, nil
}

// fieldMask names the optional fields an instruction may set.
type fieldMask struct {
	count, region, lines, stride, line, rank, stores, cycles, loop, profile bool
}

var masks = map[string]fieldMask{
	OpStoreBurst: {count: true, region: true, lines: true, stride: true},
	OpLoadScan:   {count: true, region: true, lines: true, stride: true},
	OpHandoff:    {count: true, line: true},
	OpFence:      {},
	OpLock:       {stores: true, line: true},
	OpRankStream: {count: true, rank: true},
	OpEpoch:      {},
	OpCrash:      {},
	OpCompute:    {cycles: true},
	OpLoop:       {loop: true},
	OpProfile:    {profile: true},
}

// validate checks one instruction and returns its flattened op count.
func (in *Instr) validate(path string, depth int) (int, error) {
	mask, ok := masks[in.Op]
	if !ok {
		return 0, errAt(path, "unknown op %q", in.Op)
	}
	// Field discipline: reject any field the op does not use. A strict
	// surface keeps canonicalization honest — a stray field can never
	// silently change (or fail to change) meaning.
	switch {
	case in.Count != 0 && !mask.count:
		return 0, errAt(path, "%s does not take count", in.Op)
	case in.Region != "" && !mask.region:
		return 0, errAt(path, "%s does not take region", in.Op)
	case in.Lines != 0 && !mask.lines:
		return 0, errAt(path, "%s does not take lines", in.Op)
	case in.Stride != "" && !mask.stride:
		return 0, errAt(path, "%s does not take stride", in.Op)
	case in.Line != 0 && !mask.line:
		return 0, errAt(path, "%s does not take line", in.Op)
	case in.Rank != 0 && !mask.rank:
		return 0, errAt(path, "%s does not take rank", in.Op)
	case in.Stores != 0 && !mask.stores:
		return 0, errAt(path, "%s does not take stores", in.Op)
	case in.Cycles != 0 && !mask.cycles:
		return 0, errAt(path, "%s does not take cycles", in.Op)
	case (in.Times != 0 || in.Body != nil) && !mask.loop:
		return 0, errAt(path, "%s does not take times/body", in.Op)
	case (in.Profile != "" || in.Scale != 0) && !mask.profile:
		return 0, errAt(path, "%s does not take profile/scale", in.Op)
	}

	switch in.Op {
	case OpStoreBurst, OpLoadScan:
		if in.Count <= 0 || in.Count > MaxCount {
			return 0, errAt(path, "count must be in [1, %d], got %d", MaxCount, in.Count)
		}
		if err := checkRegion(path, in.Region); err != nil {
			return 0, err
		}
		if in.Lines < 0 || in.Lines > MaxRegionLines {
			return 0, errAt(path, "lines must be in [0, %d], got %d", MaxRegionLines, in.Lines)
		}
		if in.Stride != "" && in.Stride != StrideSeq && in.Stride != StrideRand {
			return 0, errAt(path, "stride must be %q or %q, got %q", StrideSeq, StrideRand, in.Stride)
		}
		return in.Count, nil
	case OpHandoff:
		if in.Count <= 0 || in.Count > MaxCount {
			return 0, errAt(path, "count must be in [1, %d], got %d", MaxCount, in.Count)
		}
		if in.Line < 0 || in.Line >= MaxRegionLines {
			return 0, errAt(path, "line must be in [0, %d), got %d", MaxRegionLines, in.Line)
		}
		return in.Count, nil
	case OpFence:
		return 1, nil
	case OpLock:
		if in.Stores < 0 || in.Stores > MaxCount {
			return 0, errAt(path, "stores must be in [0, %d], got %d", MaxCount, in.Stores)
		}
		if in.Line < 0 || in.Line >= MaxRegionLines {
			return 0, errAt(path, "line must be in [0, %d), got %d", MaxRegionLines, in.Line)
		}
		return in.csStores() + 2, nil
	case OpRankStream:
		if in.Count <= 0 || in.Count > MaxCount {
			return 0, errAt(path, "count must be in [1, %d], got %d", MaxCount, in.Count)
		}
		if in.Rank < 0 || in.Rank >= 64 {
			return 0, errAt(path, "rank must be in [0, 64), got %d", in.Rank)
		}
		return in.Count, nil
	case OpEpoch, OpCrash:
		return 1, nil
	case OpCompute:
		if in.Cycles <= 0 || in.Cycles > MaxComputeCycles {
			return 0, errAt(path, "cycles must be in [1, %d], got %d", MaxComputeCycles, in.Cycles)
		}
		return 1, nil
	case OpLoop:
		if depth >= MaxLoopDepth {
			return 0, errAt(path, "loops nest deeper than %d", MaxLoopDepth)
		}
		if in.Times <= 0 || in.Times > MaxLoopTimes {
			return 0, errAt(path, "times must be in [1, %d], got %d", MaxLoopTimes, in.Times)
		}
		if len(in.Body) == 0 {
			return 0, errAt(path, "loop needs a non-empty body")
		}
		body, err := validateInstrs(in.Body, path+".body", depth+1)
		if err != nil {
			return 0, err
		}
		if body > MaxOpsPerCore/in.Times {
			return MaxOpsPerCore + 1, nil
		}
		return body * in.Times, nil
	case OpProfile:
		prof, ok := trace.ByName(in.Profile)
		if !ok {
			return 0, errAt(path, "unknown profile %q", in.Profile)
		}
		if in.Scale < 0 {
			return 0, errAt(path, "scale must be non-negative, got %g", in.Scale)
		}
		if in.Scale > 16 {
			return 0, errAt(path, "scale must be at most 16, got %g", in.Scale)
		}
		return prof.Scale(in.profileScale()).OpsPerCore, nil
	}
	return 0, errAt(path, "unhandled op %q", in.Op) // unreachable: masks gate
}

// Region and stride names.
const (
	RegionShared  = "shared"
	RegionHot     = "hot"
	RegionPrivate = "private"
	StrideSeq     = "seq"
	StrideRand    = "rand"
)

func checkRegion(path, region string) error {
	switch region {
	case "", RegionShared, RegionHot, RegionPrivate:
		return nil
	}
	return errAt(path, "region must be %q, %q or %q, got %q", RegionShared, RegionHot, RegionPrivate, region)
}

// csStores is the lock's critical-section store count (default 1).
func (in *Instr) csStores() int {
	if in.Stores == 0 {
		return 1
	}
	return in.Stores
}

// profileScale is the profile instruction's scale (default 1).
func (in *Instr) profileScale() float64 {
	if in.Scale == 0 {
		return 1
	}
	return in.Scale
}
