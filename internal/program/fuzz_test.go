package program

import (
	"reflect"
	"testing"
)

// FuzzProgram throws arbitrary bytes at the wire decoder and asserts the
// package's load-bearing invariants on everything that survives
// validation:
//
//   - decode → validate never panics, whatever the input;
//   - a valid program cost-estimates, and the estimate's op count is exact:
//     compilation emits precisely Estimate.Ops trace ops;
//   - canonicalization is sound (the canonical program compiles to
//     byte-identical op streams), idempotent, and hash-stable (a program
//     and its canonical form share a content address);
//   - the canonical form of a valid program is itself valid.
//
// Validation bounds (MaxOpsPerCore et al.) are what make it safe to
// compile attacker-shaped inputs here — the fuzzer is also a test that
// those bounds actually gate materialization.
func FuzzProgram(f *testing.F) {
	for _, name := range LibraryNames() {
		b, err := libraryFS.ReadFile("library/" + name + ".json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1,"name":"tiny","cores":[{"instrs":[{"op":"store_burst","count":3}]}]}`))
	f.Add([]byte(`{"version":1,"name":"loopy","cores":[{"instrs":[{"op":"loop","times":4,"body":[{"op":"handoff","count":2,"line":5},{"op":"epoch"}]}]}]}`))
	f.Add([]byte(`{"version":1,"name":"ranky","cores":[{"instrs":[{"op":"rank_stream","count":9,"rank":3},{"op":"crash"}]}]}`))
	f.Add([]byte(`{"version":2,"name":"future","cores":[]}`))
	f.Add([]byte(`{"op":"not a program"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if p.Validate() != nil {
			return
		}

		env := DefaultEnv()
		est, err := p.Estimate(env)
		if err != nil {
			t.Fatalf("valid program failed to estimate: %v", err)
		}
		if est.Ops < 0 || est.Ops > MaxCores*MaxOpsPerCore {
			t.Fatalf("estimate out of bounds: %d ops", est.Ops)
		}
		// The breakdown is exact only for pure instruction programs: a
		// profile instruction's syncs are emitted among its OpsPerCore ops,
		// so its split is an expectation, not a partition.
		if !anyProfileInstr(p) {
			if got := est.Stores + est.Loads + est.Syncs + est.Markers + est.Computes; got != est.Ops {
				t.Fatalf("estimate breakdown sums to %d, total says %d", got, est.Ops)
			}
		}

		c, err := p.Canonical()
		if err != nil {
			t.Fatalf("valid program failed to canonicalize: %v", err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("canonical form is invalid: %v", err)
		}
		cc, err := c.Canonical()
		if err != nil {
			t.Fatalf("canonical form failed to re-canonicalize: %v", err)
		}
		h1, err := p.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := c.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h3, err := cc.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 || h2 != h3 {
			t.Fatalf("hash not stable under canonicalization: %s / %s / %s", h1, h2, h3)
		}

		// Compiling every fuzz input would let a single large-but-valid
		// program dominate the time budget; the op-count and soundness
		// invariants only need modest programs to be exercised densely.
		if len(p.Cores) > env.Cores || est.Ops > 1<<14 {
			return
		}
		w, err := p.Compile(env, 42)
		if err != nil {
			t.Fatalf("valid program failed to compile: %v", err)
		}
		total := 0
		for _, ops := range w.Cores {
			total += len(ops)
		}
		if total != est.Ops {
			t.Fatalf("compiled to %d ops, estimate promised %d", total, est.Ops)
		}
		cw, err := c.Compile(env, 42)
		if err != nil {
			t.Fatalf("canonical form failed to compile: %v", err)
		}
		if !reflect.DeepEqual(w.Cores, cw.Cores) {
			t.Fatal("canonicalization changed the compiled op streams")
		}
	})
}

// anyProfileInstr reports whether the program contains a profile
// instruction at any loop depth.
func anyProfileInstr(p *Program) bool {
	var walk func(instrs []Instr) bool
	walk = func(instrs []Instr) bool {
		for _, in := range instrs {
			if in.Op == OpProfile || walk(in.Body) {
				return true
			}
		}
		return false
	}
	for _, cp := range p.Cores {
		if walk(cp.Instrs) {
			return true
		}
	}
	return false
}
