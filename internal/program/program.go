// Package program is the simulator's workload virtual machine: typed
// instructions composed into per-core programs that are submitted *as data*
// (a JSON wire format), strictly validated, cost-estimated up front, and
// compiled deterministically onto the per-core `mem.Op` streams the machine
// already consumes.
//
// The design follows the MDM (Merklized Data Machine) shape from skyd's
// SIP-0001: a small set of typed instructions, each with a declared cost,
// batched into an atomic program. New workload scenarios become new JSON
// documents rather than new engine code; the instruction set itself is the
// only extension point. Three properties are load-bearing:
//
//   - Determinism: Compile(program, env, seed) always yields the identical
//     workload, so program results are cacheable and differential-testable
//     exactly like profile results.
//   - Canonical form: programs have a normal form (defaults made explicit,
//     trivial loops inlined, adjacent mergeable bursts merged, cosmetic
//     fields dropped) whose SHA-256 is the program's content address. Two surface programs that
//     lower to the same op streams share a hash — and therefore share a
//     service cache entry.
//   - Cost: every instruction has a static cost, so a program's trace-op
//     count and a simulated-cycle estimate are known before any simulation
//     runs. The service uses this for admission control.
//
// Persist/crash semantics: the `epoch` and `crash` instructions lower to
// §II-D marker stores (mem.OpMarker), which close the writing core's open
// atomic group. Under the Px86/"Taming x86-TSO Persistency" reading these
// are the per-thread persist-ordering points: everything sequenced before
// the marker persists before anything after it, so programs with markers
// remain valid inputs to the litmus and crashmc oracles — a crash injected
// anywhere leaves a durable image the checker can still classify.
package program

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Version is the wire-format version this package reads and writes.
const Version = 1

// Op names the instruction kinds. The set is extensible: adding a kind is a
// new case in validate/lower/cost, no protocol change.
const (
	// OpStoreBurst issues Count stores over a region (shared | hot |
	// private), walking sequentially or at random.
	OpStoreBurst = "store_burst"
	// OpLoadScan issues Count loads over a region.
	OpLoadScan = "load_scan"
	// OpHandoff alternates store/load on one fixed shared line — cores
	// that name the same line form a sharing handoff chain (the pattern
	// that grows SLC sharing lists and persist-before dependencies).
	OpHandoff = "handoff"
	// OpFence is a synchronization point (mem.OpSync): the store buffer
	// drains and relaxed systems close their SFR.
	OpFence = "fence"
	// OpLock is a lock/unlock RMW pair: sync (acquire), Stores critical-
	// section stores to the named shared line's neighborhood, sync
	// (release) — the same bracketing the synthetic profiles use.
	OpLock = "lock"
	// OpRankStream issues Count stores whose lines all map to NVM rank
	// Rank under the machine's address interleave, concentrating persist
	// traffic on one memory channel.
	OpRankStream = "rank_stream"
	// OpEpoch is a persist marker (mem.OpMarker, §II-D): it closes the
	// core's open atomic group so AG boundaries align with the program's
	// recovery epochs.
	OpEpoch = "epoch"
	// OpCrash is an epoch marker that additionally declares "a crash here
	// is interesting": it lowers identically to OpEpoch (the freeze is
	// what makes the durable frontier well-defined at this point) and
	// marks the spot for crash-point harvesting in campaign tooling.
	OpCrash = "crash"
	// OpCompute stands for Cycles non-memory cycles.
	OpCompute = "compute"
	// OpLoop repeats Body Times times. Loops are sugar: the canonical
	// form is fully flattened.
	OpLoop = "loop"
	// OpProfile generates this core's slice of a legacy synthetic profile
	// (trace.GenerateCore), byte-reproducing the pre-VM workloads.
	OpProfile = "profile"
)

// Instr is one instruction. Exactly the fields its Op uses may be set;
// Validate rejects extraneous ones so wire programs stay unambiguous.
type Instr struct {
	Op string `json:"op"`

	// Count is the op count for store_burst / load_scan / handoff /
	// rank_stream.
	Count int `json:"count,omitempty"`
	// Region targets store_burst / load_scan: "shared", "hot" (the first
	// HotLines of the shared region), or "private" (per-core). Default
	// "shared".
	Region string `json:"region,omitempty"`
	// Lines is the region width in cachelines (default 512 shared/private,
	// 8 hot).
	Lines int `json:"lines,omitempty"`
	// Stride is "seq" (default) or "rand".
	Stride string `json:"stride,omitempty"`
	// Line is the fixed shared-line index for handoff and lock.
	Line int `json:"line,omitempty"`
	// Rank is the target NVM rank for rank_stream.
	Rank int `json:"rank,omitempty"`
	// Stores is the critical-section store count for lock (default 1).
	Stores int `json:"stores,omitempty"`
	// Cycles is the compute-burst length for compute.
	Cycles int `json:"cycles,omitempty"`
	// Times and Body define loop.
	Times int     `json:"times,omitempty"`
	Body  []Instr `json:"body,omitempty"`
	// Profile names the legacy synthetic profile for profile; Scale
	// multiplies its OpsPerCore (0 or 1 = full size).
	Profile string  `json:"profile,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
}

// CoreProg is one core's instruction sequence.
type CoreProg struct {
	Instrs []Instr `json:"instrs"`
}

// Program is a complete workload program: one instruction sequence per
// core. A machine with more cores than the program leaves the extra cores
// idle; a program with more cores than the machine is a compile error.
type Program struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Doc is a human note; it is cosmetic and excluded from the canonical
	// form (two programs differing only in Doc share a content address).
	Doc   string     `json:"doc,omitempty"`
	Cores []CoreProg `json:"cores"`
}

// Decode reads one program from JSON, strictly: unknown fields and trailing
// garbage are errors, and the wire version must match.
func Decode(r io.Reader) (*Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Program
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("program: decoding: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	if p.Version != Version {
		return nil, fmt.Errorf("program: unsupported wire version %d (want %d)", p.Version, Version)
	}
	return &p, nil
}

// DecodeBytes is Decode over a byte slice.
func DecodeBytes(b []byte) (*Program, error) {
	return Decode(strings.NewReader(string(b)))
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("program: trailing data after program document")
	}
	return nil
}

// Encode writes the program as indented JSON (the library file format).
func (p *Program) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

func (p *Program) String() string {
	return fmt.Sprintf("program %q (%d cores, %d ops)", p.Name, len(p.Cores), p.mustOps())
}

// mustOps is String's best-effort op count (0 if the program is invalid).
func (p *Program) mustOps() int {
	est, err := p.Estimate(DefaultEnv())
	if err != nil {
		return 0
	}
	return est.Ops
}
