package program

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Env is the machine shape compilation targets. Both values come from the
// machine configuration, so they are already part of every result cache
// key that includes the config's canonical form.
type Env struct {
	// Cores is the machine's core count; the program may use at most this
	// many, and the compiled workload always has exactly this many streams
	// (missing cores are idle).
	Cores int
	// Ranks is the NVM rank count rank_stream instructions target
	// (line -> rank is line mod Ranks, the machine's address interleave).
	Ranks int
}

// DefaultEnv is the Table I shape: 8 cores, 8 NVM ranks.
func DefaultEnv() Env { return Env{Cores: 8, Ranks: 8} }

func (e Env) check() error {
	if e.Cores <= 0 || e.Ranks <= 0 {
		return fmt.Errorf("program: invalid env (%d cores, %d ranks)", e.Cores, e.Ranks)
	}
	return nil
}

// Address layout. Programs share the synthetic profiles' regions (so the
// profile instruction composes with the rest), with rank streams placed in
// a dedicated per-core region far above the private heaps.
const (
	rankStreamBase   mem.Addr = 0xC000_0000
	rankStreamStride mem.Addr = 0x0100_0000
)

// Compile lowers the program onto per-core op streams for the given
// machine shape, deterministically in (program, env, seed). The result is
// a plain trace.Workload: the machine, scheduler, telemetry, and checker
// run it unchanged.
func (p *Program) Compile(env Env, seed int64) (*trace.Workload, error) {
	if err := env.check(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Cores) > env.Cores {
		return nil, fmt.Errorf("program: %q uses %d cores but the machine has %d", p.Name, len(p.Cores), env.Cores)
	}
	w := &trace.Workload{
		Profile: trace.Profile{Name: p.Name},
		Cores:   make([][]mem.Op, env.Cores),
	}
	for c := range w.Cores {
		w.Cores[c] = []mem.Op{}
	}
	for c, cp := range p.Cores {
		lc := newLowerer(c, env, seed)
		if err := lc.lower(cp.Instrs); err != nil {
			return nil, err
		}
		w.Cores[c] = lc.ops
	}
	return w, nil
}

// lowerer is one core's compilation state. All cursors and the RNG are
// continuous across the instruction sequence — the property that makes the
// canonical form's burst merging sound.
type lowerer struct {
	core int
	env  Env
	seed int64
	rng  *rand.Rand
	ops  []mem.Op

	syncID  uint32
	epochID uint32
	// cursor is the per-region sequential-stride position.
	cursor map[string]int
	// handoff alternates store/load continuously across handoff instrs.
	handoff int
	// rankNext is the next sequential slot per target rank.
	rankNext map[int]int
}

func newLowerer(core int, env Env, seed int64) *lowerer {
	return &lowerer{
		core: core,
		env:  env,
		seed: seed,
		// A distinct stream family from trace.genCore's (7919/104729/+1),
		// so a program never aliases a profile's draws.
		rng:      rand.New(rand.NewSource(seed*6271 + int64(core)*31337 + 977)),
		cursor:   make(map[string]int),
		rankNext: make(map[int]int),
	}
}

func (l *lowerer) lower(instrs []Instr) error {
	for _, in := range instrs {
		if err := l.lowerInstr(in); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) lowerInstr(in Instr) error {
	switch in.Op {
	case OpStoreBurst:
		for i := 0; i < in.Count; i++ {
			l.emit(mem.Op{Kind: mem.OpStore, Addr: l.regionAddr(in)})
		}
	case OpLoadScan:
		for i := 0; i < in.Count; i++ {
			l.emit(mem.Op{Kind: mem.OpLoad, Addr: l.regionAddr(in)})
		}
	case OpHandoff:
		line := mem.LineOf(trace.SharedBase) + mem.Line(in.Line)
		addr := line.Base() + mem.Addr(l.core%8)*8
		for i := 0; i < in.Count; i++ {
			kind := mem.OpStore
			if l.handoff%2 == 1 {
				kind = mem.OpLoad
			}
			l.handoff++
			l.emit(mem.Op{Kind: kind, Addr: addr})
		}
	case OpFence:
		l.syncID++
		l.emit(mem.Op{Kind: mem.OpSync, Arg: l.syncID})
	case OpLock:
		l.syncID++
		l.emit(mem.Op{Kind: mem.OpSync, Arg: l.syncID}) // acquire
		line := mem.LineOf(trace.SharedBase) + mem.Line(in.Line)
		for i := 0; i < in.csStores(); i++ {
			off := mem.Addr(l.rng.Intn(mem.LineSize/8)) * 8
			l.emit(mem.Op{Kind: mem.OpStore, Addr: line.Base() + off})
		}
		l.syncID++
		l.emit(mem.Op{Kind: mem.OpSync, Arg: l.syncID}) // release
	case OpRankStream:
		rank := in.Rank % l.env.Ranks
		base := mem.LineOf(rankStreamBase + mem.Addr(l.core)*rankStreamStride)
		// Advance base to the first line of the target rank, then stride by
		// the rank count so every line maps to that rank.
		first := base + mem.Line((uint64(rank)+uint64(l.env.Ranks)-uint64(base)%uint64(l.env.Ranks))%uint64(l.env.Ranks))
		for i := 0; i < in.Count; i++ {
			k := l.rankNext[rank]
			l.rankNext[rank] = k + 1
			line := first + mem.Line(k*l.env.Ranks)
			l.emit(mem.Op{Kind: mem.OpStore, Addr: line.Base()})
		}
	case OpEpoch, OpCrash:
		l.epochID++
		l.emit(mem.Op{Kind: mem.OpMarker, Arg: l.epochID})
	case OpCompute:
		l.emit(mem.Op{Kind: mem.OpCompute, Arg: uint32(in.Cycles)})
	case OpLoop:
		for i := 0; i < in.Times; i++ {
			if err := l.lower(in.Body); err != nil {
				return err
			}
		}
	case OpProfile:
		prof, _ := trace.ByName(in.Profile)
		prof = prof.Scale(in.profileScale())
		l.ops = append(l.ops, trace.GenerateCore(prof, l.core, l.env.Cores, l.seedForProfile())...)
	default:
		return fmt.Errorf("program: unhandled op %q", in.Op) // Validate gates
	}
	return nil
}

// seedForProfile recovers the run seed from the core RNG's construction so
// profile instructions reproduce trace.Generate exactly.
func (l *lowerer) seedForProfile() int64 { return l.seed }

func (l *lowerer) emit(op mem.Op) { l.ops = append(l.ops, op) }

// regionAddr picks the next address of a burst/scan: sequential cursor or
// random draw over the instruction's region, with a random word offset.
func (l *lowerer) regionAddr(in Instr) mem.Addr {
	width := regionWidth(regionOrDefault(in.Region), in.Lines)
	var base mem.Line
	switch regionOrDefault(in.Region) {
	case RegionPrivate:
		base = mem.LineOf(trace.PrivateBase + mem.Addr(l.core)*trace.PrivateStride)
	default: // shared and hot share the base; hot is just a narrow width
		base = mem.LineOf(trace.SharedBase)
	}
	var idx int
	if in.Stride == StrideRand {
		idx = l.rng.Intn(width)
	} else {
		key := regionOrDefault(in.Region)
		idx = l.cursor[key] % width
		l.cursor[key]++
	}
	off := mem.Addr(l.rng.Intn(mem.LineSize/8)) * 8
	return (base + mem.Line(idx)).Base() + off
}
