package program

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestCompileDeterministic(t *testing.T) {
	t.Parallel()
	p := mustDecode(t, sampleJSON)
	a, err := p.Compile(DefaultEnv(), 7)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	b, err := p.Compile(DefaultEnv(), 7)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (program, env, seed) compiled differently")
	}
	c, err := p.Compile(DefaultEnv(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if reflect.DeepEqual(a.Cores, c.Cores) {
		t.Fatalf("different seeds compiled identically")
	}
}

// TestCompileCanonicalInvariant is the soundness proof behind the content
// address: a program and its canonical form must compile to byte-identical
// op streams, on crafted merge-heavy cases and on the whole library.
func TestCompileCanonicalInvariant(t *testing.T) {
	t.Parallel()
	crafted := []Program{
		prog1("m",
			Instr{Op: OpStoreBurst, Count: 33},
			Instr{Op: OpStoreBurst, Count: 67},
			Instr{Op: OpLoadScan, Count: 10, Region: RegionHot, Stride: StrideRand},
			Instr{Op: OpLoadScan, Count: 10, Region: RegionHot, Stride: StrideRand}),
		prog1("m", Instr{Op: OpLoop, Times: 5, Body: []Instr{
			{Op: OpHandoff, Count: 3, Line: 4},
		}}),
		prog1("m", Instr{Op: OpLoop, Times: 1, Body: []Instr{
			{Op: OpFence},
			{Op: OpRankStream, Count: 6, Rank: 2},
			{Op: OpRankStream, Count: 6, Rank: 2},
		}}),
		// Interleaved: merging must not disturb the continuous handoff
		// parity or region cursors that span the merge boundary.
		prog1("m",
			Instr{Op: OpHandoff, Count: 3, Line: 1},
			Instr{Op: OpHandoff, Count: 2, Line: 1},
			Instr{Op: OpStoreBurst, Count: 5, Region: RegionPrivate},
			Instr{Op: OpHandoff, Count: 4, Line: 1}),
	}
	for name, p := range Library() {
		crafted = append(crafted, *p)
		_ = name
	}
	for i := range crafted {
		p := &crafted[i]
		c, err := p.Canonical()
		if err != nil {
			t.Fatalf("case %d (%s): Canonical: %v", i, p.Name, err)
		}
		for _, seed := range []int64{1, 42} {
			wp, err := p.Compile(DefaultEnv(), seed)
			if err != nil {
				t.Fatalf("case %d (%s): Compile surface: %v", i, p.Name, err)
			}
			wc, err := c.Compile(DefaultEnv(), seed)
			if err != nil {
				t.Fatalf("case %d (%s): Compile canonical: %v", i, p.Name, err)
			}
			if !reflect.DeepEqual(wp, wc) {
				t.Fatalf("case %d (%s) seed %d: canonical form compiles differently", i, p.Name, seed)
			}
		}
	}
}

func TestCompileShapes(t *testing.T) {
	t.Parallel()
	p := prog1("shape", Instr{Op: OpStoreBurst, Count: 4})
	w, err := p.Compile(Env{Cores: 4, Ranks: 8}, 1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(w.Cores) != 4 {
		t.Fatalf("workload has %d cores, want the machine's 4", len(w.Cores))
	}
	for c := 1; c < 4; c++ {
		if len(w.Cores[c]) != 0 {
			t.Fatalf("unprogrammed core %d got %d ops", c, len(w.Cores[c]))
		}
	}
	if w.Profile.Name != "shape" {
		t.Fatalf("workload benchmark name %q, want program name", w.Profile.Name)
	}

	wide := Program{Version: 1, Name: "wide", Cores: make([]CoreProg, 9)}
	for i := range wide.Cores {
		wide.Cores[i] = CoreProg{Instrs: []Instr{{Op: OpFence}}}
	}
	if _, err := wide.Compile(DefaultEnv(), 1); err == nil {
		t.Fatalf("9-core program compiled for an 8-core machine")
	}
	if _, err := p.Compile(Env{}, 1); err == nil {
		t.Fatalf("zero env accepted")
	}
}

func TestRankStreamTargetsRank(t *testing.T) {
	t.Parallel()
	const ranks = 8
	for rank := 0; rank < ranks; rank++ {
		p := prog1("r", Instr{Op: OpRankStream, Count: 16, Rank: rank})
		w, err := p.Compile(Env{Cores: 2, Ranks: ranks}, 3)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		for _, op := range w.Cores[0] {
			if op.Kind != mem.OpStore {
				t.Fatalf("rank_stream emitted %v", op.Kind)
			}
			if got := uint64(mem.LineOf(op.Addr)) % ranks; got != uint64(rank) {
				t.Fatalf("line %v maps to rank %d, want %d", mem.LineOf(op.Addr), got, rank)
			}
		}
	}
}

func TestHandoffAlternates(t *testing.T) {
	t.Parallel()
	p := prog1("h",
		Instr{Op: OpHandoff, Count: 3, Line: 5},
		Instr{Op: OpHandoff, Count: 3, Line: 5})
	w, err := p.Compile(DefaultEnv(), 1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ops := w.Cores[0]
	if len(ops) != 6 {
		t.Fatalf("got %d ops, want 6", len(ops))
	}
	for i, op := range ops {
		want := mem.OpStore
		if i%2 == 1 {
			want = mem.OpLoad
		}
		if op.Kind != want {
			t.Fatalf("op %d is %v, want %v (parity must run across instruction boundaries)", i, op.Kind, want)
		}
		if op.Addr != ops[0].Addr {
			t.Fatalf("handoff wandered off its line")
		}
	}
}

// TestProfileInstructionIdentity proves the load-bearing golden property:
// a program of per-core `profile` instructions compiles to exactly the op
// streams trace.Generate produces — for every profile in the catalog.
func TestProfileInstructionIdentity(t *testing.T) {
	t.Parallel()
	const cores, seed = 8, 12345
	for _, prof := range trace.Benchmarks() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			scaled := prof.Scale(0.1)
			want := trace.Generate(scaled, cores, seed)

			p := Program{Version: 1, Name: prof.Name}
			for c := 0; c < cores; c++ {
				p.Cores = append(p.Cores, CoreProg{Instrs: []Instr{
					{Op: OpProfile, Profile: prof.Name, Scale: 0.1},
				}})
			}
			got, err := p.Compile(Env{Cores: cores, Ranks: 8}, seed)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if got.Profile.Name != want.Profile.Name {
				t.Fatalf("benchmark name %q != %q", got.Profile.Name, want.Profile.Name)
			}
			if !reflect.DeepEqual(got.Cores, want.Cores) {
				t.Fatalf("compiled op streams differ from trace.Generate")
			}
		})
	}
}

func BenchmarkProgramCompile(b *testing.B) {
	p, err := ByName("work-stealing-deque")
	if err != nil {
		b.Fatal(err)
	}
	est, err := p.Estimate(DefaultEnv())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(est.Ops))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile(DefaultEnv(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
