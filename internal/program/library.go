package program

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"
)

// The golden program library. Four entries (radix, ocean_cp, dedup,
// swaptions) byte-reproduce their legacy synthetic profiles through the
// `profile` instruction — identity_test.go proves snapshot equality — and
// the rest are scenarios the profile generator cannot express.
//
//go:embed library/*.json
var libraryFS embed.FS

// LibraryNames lists the embedded programs, sorted.
func LibraryNames() []string {
	entries, err := fs.ReadDir(libraryFS, "library")
	if err != nil {
		panic(fmt.Sprintf("program: embedded library unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Library loads every embedded program, keyed by name.
func Library() map[string]*Program {
	out := make(map[string]*Program)
	for _, name := range LibraryNames() {
		p, err := ByName(name)
		if err != nil {
			panic(fmt.Sprintf("program: embedded library: %v", err))
		}
		out[name] = p
	}
	return out
}

// ByName loads one embedded program. The name must match both the file
// stem and the program's own Name field (library_test.go enforces this).
func ByName(name string) (*Program, error) {
	b, err := libraryFS.ReadFile("library/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("program: no library program %q (have: %s)", name, strings.Join(LibraryNames(), ", "))
	}
	p, err := DecodeBytes(b)
	if err != nil {
		return nil, fmt.Errorf("program: library %q: %w", name, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program: library %q: %w", name, err)
	}
	return p, nil
}
