package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceSink records the full event stream of one simulation and renders it
// as Chrome trace-event JSON, the legacy format ui.perfetto.dev (and
// chrome://tracing) opens directly. The rendering maps the bus model onto
// the timeline UI as:
//
//   - one process per component (the TrackInfo.Process string),
//   - one thread track per row within it (core, rank, node, slice),
//   - async begin/end pairs ("b"/"e", correlated by Scope) for spans that
//     may overlap, synchronous "B"/"E" otherwise,
//   - "X" complete slices for NVM writes / NoC messages,
//   - "i" instants and "C" counter tracks.
//
// One simulation cycle is rendered as one microsecond: Perfetto has no
// native cycle unit and integer microseconds keep the JSON exact.
type TraceSink struct {
	tracks []TrackInfo
	events []Event
}

// NewTraceSink returns an empty recorder.
func NewTraceSink() *TraceSink { return &TraceSink{} }

// DefineTrack implements Sink.
func (s *TraceSink) DefineTrack(t Track, info TrackInfo) {
	for int(t) >= len(s.tracks) {
		s.tracks = append(s.tracks, TrackInfo{})
	}
	s.tracks[t] = info
}

// Emit implements Sink.
func (s *TraceSink) Emit(e Event) { s.events = append(s.events, e) }

// Len returns the number of recorded events.
func (s *TraceSink) Len() int { return len(s.events) }

// Events returns the recorded stream (emission order).
func (s *TraceSink) Events() []Event { return s.events }

// Tracks returns the registered track table, indexed by Track handle.
func (s *TraceSink) Tracks() []TrackInfo { return s.tracks }

// chromeEvent is one trace-event object. Field order fixes the serialized
// layout; json.Marshal handles escaping.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the recorded trace. Output is deterministic for a
// deterministic simulation: processes and threads are numbered in first
// registration order and events stream in emission order.
func (s *TraceSink) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}

	// Assign pids per process and tids per track, in registration order.
	pidOf := map[string]int{}
	var procs []string
	tid := make([]int, len(s.tracks))
	pid := make([]int, len(s.tracks))
	nextTid := map[string]int{}
	for i, info := range s.tracks {
		p, ok := pidOf[info.Process]
		if !ok {
			p = len(procs) + 1
			pidOf[info.Process] = p
			procs = append(procs, info.Process)
		}
		pid[i] = p
		nextTid[info.Process]++
		tid[i] = nextTid[info.Process]
	}

	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	// Metadata: process and thread names, processes sorted for a stable UI.
	for i, p := range procs {
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": p}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "process_sort_index", Ph: "M", Pid: i + 1,
			Args: map[string]any{"sort_index": i}}); err != nil {
			return err
		}
	}
	for i, info := range s.tracks {
		if info.Process == "" && info.Thread == "" {
			continue
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid[i], Tid: tid[i],
			Args: map[string]any{"name": info.Thread}}); err != nil {
			return err
		}
	}

	for _, e := range s.events {
		t := int(e.Track)
		if t >= len(s.tracks) {
			t = 0
		}
		ce := chromeEvent{Name: e.Name, Ph: "", Ts: uint64(e.At), Pid: pid[t], Tid: tid[t]}
		switch e.Type {
		case SpanBegin, SpanEnd:
			if e.Scope != 0 {
				// Async span: correlated by (cat, id) so overlapping
				// lifecycles on one track render as separate slices.
				if e.Type == SpanBegin {
					ce.Ph = "b"
				} else {
					ce.Ph = "e"
				}
				ce.Cat = s.tracks[t].Process
				ce.ID = fmt.Sprintf("0x%x", e.Scope)
			} else {
				if e.Type == SpanBegin {
					ce.Ph = "B"
				} else {
					ce.Ph = "E"
				}
			}
		case Complete:
			ce.Ph = "X"
			d := uint64(e.Dur)
			ce.Dur = &d
			if e.Scope != 0 {
				ce.Args = map[string]any{"scope": e.Scope}
			}
		case Instant:
			ce.Ph = "i"
			ce.S = "t"
			args := map[string]any{}
			if e.Scope != 0 {
				args["scope"] = e.Scope
			}
			if e.Aux != 0 {
				args["aux"] = e.Aux
			}
			if len(args) > 0 {
				ce.Args = args
			}
		case Counter:
			ce.Ph = "C"
			ce.Args = map[string]any{"value": e.Value}
		default:
			continue
		}
		if err := emit(ce); err != nil {
			return err
		}
	}

	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Summary returns per-(process, name) event counts, sorted — a quick
// text digest of what a trace contains, used by tests and the CLI.
func (s *TraceSink) Summary() []string {
	counts := map[string]int{}
	for _, e := range s.events {
		proc := "unattributed"
		if int(e.Track) < len(s.tracks) {
			proc = s.tracks[e.Track].Process
		}
		counts[proc+"/"+e.Name]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s ×%d", k, counts[k])
	}
	return out
}
