package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func sampleSet() *stats.Set {
	set := stats.NewSet()
	set.Counter("ops.loads").Add(100)
	set.Counter("ops.stores").Add(40)
	d := set.Dist("ag.size")
	for _, v := range []uint64{1, 2, 3, 4, 10} {
		d.Observe(v)
	}
	return set
}

func sampleSnapshot() *Snapshot {
	s := NewSnapshot("tsoper", "radix", 1000, 1500, sampleSet())
	bank := sim.NewBank(2)
	bank.Claim(0, 0, 100)
	bank.Claim(1, 0, 50)
	SnapshotBank(s.Resources, "nvm.rank", bank, 1000)
	return s
}

func TestSnapshotCapture(t *testing.T) {
	s := sampleSnapshot()
	if s.Counters["ops.loads"] != 100 || s.Counters["ops.stores"] != 40 {
		t.Fatalf("counters wrong: %v", s.Counters)
	}
	d := s.Dists["ag.size"]
	if d.Count != 5 || d.Sum != 20 || d.Max != 10 || d.Mean != 4 {
		t.Fatalf("dist wrong: %+v", d)
	}
	r := s.Resources["nvm.rank0"]
	if r.Claims != 1 || r.BusyCycles != 100 || r.Utilization != 0.1 {
		t.Fatalf("resource wrong: %+v", r)
	}
}

func TestSnapshotJSONDeterministicRoundTrip(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleSnapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical snapshots serialized differently")
	}
	got, err := ReadSnapshot(&a)
	if err != nil {
		t.Fatal(err)
	}
	if got.System != "tsoper" || got.Counters["ops.loads"] != 100 ||
		got.Resources["nvm.rank1"].Claims != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	a := sampleSnapshot()
	b := sampleSnapshot()
	if d := a.Diff(b); len(d) != 0 {
		t.Fatalf("identical snapshots diff: %v", d)
	}

	b.Cycles = 1100
	b.Counters["ops.loads"] = 120
	delete(b.Counters, "ops.stores")
	b.Counters["ops.flushes"] = 7
	r := b.Resources["nvm.rank0"]
	r.Utilization = 0.2
	b.Resources["nvm.rank0"] = r

	diff := a.Diff(b)
	byName := map[string]DiffEntry{}
	for _, e := range diff {
		byName[e.Name] = e
	}
	if e := byName["cycles"]; e.Old != 1000 || e.New != 1100 {
		t.Fatalf("cycles entry wrong: %+v", e)
	}
	if e := byName["counter.ops.loads"]; e.Delta() != 20 {
		t.Fatalf("loads delta wrong: %+v", e)
	}
	if e := byName["counter.ops.stores"]; e.Missing != "new" {
		t.Fatalf("removed counter not flagged: %+v", e)
	}
	if e := byName["counter.ops.flushes"]; e.Missing != "old" {
		t.Fatalf("added counter not flagged: %+v", e)
	}
	if _, ok := byName["resource.nvm.rank0.utilization"]; !ok {
		t.Fatal("resource utilization change not reported")
	}
	// Sorted by name.
	for i := 1; i < len(diff); i++ {
		if diff[i-1].Name > diff[i].Name {
			t.Fatalf("diff not sorted: %q after %q", diff[i].Name, diff[i-1].Name)
		}
	}

	text := FormatDiff(diff)
	if !strings.Contains(text, "cycles") || !strings.Contains(text, "+20%") == strings.Contains(text, "nonsense") {
		t.Fatalf("diff text suspicious:\n%s", text)
	}
	if FormatDiff(nil) != "identical\n" {
		t.Fatal("empty diff should render as identical")
	}
}
