package telemetry

import (
	"testing"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	if got := b.Track("p", "t"); got != 0 {
		t.Fatalf("nil bus Track = %d, want 0", got)
	}
	if b.Tracks() != nil {
		t.Fatal("nil bus has tracks")
	}
	// None of these may panic.
	b.Begin(0, "x", 1, 1)
	b.End(0, "x", 2, 1)
	b.Span(0, "x", 1, 2, 0)
	b.Instant(0, "x", 3, 0, 0)
	b.Count(0, "x", 4, 5)
}

func TestDisabledBusDropsEvents(t *testing.T) {
	b := NewBus(nil)
	if b.Enabled() {
		t.Fatal("sinkless bus reports enabled")
	}
	tr := b.Track("proc", "row")
	if tr == 0 {
		t.Fatal("real registration returned the reserved handle")
	}
	b.Instant(tr, "x", 1, 0, 0)
	b.Count(tr, "x", 2, 3)
	if len(b.Tracks()) != 2 { // reserved + registered
		t.Fatalf("tracks = %d, want 2", len(b.Tracks()))
	}
}

func TestEmissionIsAllocationFree(t *testing.T) {
	var nilBus *Bus
	sink := &CountingSink{}
	live := NewBus(sink)
	tr := live.Track("p", "t")

	if n := testing.AllocsPerRun(1000, func() {
		nilBus.Begin(0, "span", 1, 7)
		nilBus.Instant(0, "inst", 2, 7, 9)
		nilBus.Count(0, "ctr", 3, 4)
	}); n != 0 {
		t.Fatalf("nil bus emission allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		live.Begin(tr, "span", 1, 7)
		live.End(tr, "span", 2, 7)
		live.Span(tr, "op", 3, 4, 0)
		live.Instant(tr, "inst", 5, 7, 9)
		live.Count(tr, "ctr", 6, 4)
	}); n != 0 {
		t.Fatalf("live bus emission allocates %v/op", n)
	}
	if sink.Total() == 0 {
		t.Fatal("counting sink saw nothing")
	}
}

func TestCountingSinkAndMulti(t *testing.T) {
	a, b := &CountingSink{}, &CountingSink{}
	bus := NewBus(Multi(a, nil, b))
	tr := bus.Track("p", "t")
	bus.Begin(tr, "s", 1, 1)
	bus.End(tr, "s", 2, 1)
	bus.Instant(tr, "i", 3, 0, 0)
	bus.Count(tr, "c", 4, 9)
	bus.Span(tr, "x", 5, 6, 0)
	for _, s := range []*CountingSink{a, b} {
		if s.Total() != 5 {
			t.Fatalf("sink saw %d events, want 5", s.Total())
		}
		if s.Events[SpanBegin] != 1 || s.Events[SpanEnd] != 1 || s.Events[Instant] != 1 ||
			s.Events[Counter] != 1 || s.Events[Complete] != 1 {
			t.Fatalf("per-type counts wrong: %v", s.Events)
		}
		if s.Tracks != 2 { // reserved track 0 + registered
			t.Fatalf("sink saw %d tracks, want 2", s.Tracks)
		}
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	c := &CountingSink{}
	if Multi(nil, c) != Sink(c) {
		t.Fatal("Multi with one live sink should return it unwrapped")
	}
}
