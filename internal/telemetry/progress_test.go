package telemetry

import "testing"

func TestProgressSinkStride(t *testing.T) {
	var got []Progress
	p := NewProgressSink(10, func(pr Progress) { got = append(got, pr) })
	for i := 0; i < 35; i++ {
		p.Emit(Event{Type: Instant, At: Ticks(i * 3)})
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 samples for 35 events at stride 10, got %d", len(got))
	}
	if got[2].Events != 30 {
		t.Errorf("third sample at %d events, want 30", got[2].Events)
	}
	p.Flush()
	last := got[len(got)-1]
	if last.Events != 35 || last.Cycle != Ticks(34*3) {
		t.Errorf("flush sample = %+v, want events 35 cycle %d", last, 34*3)
	}
}

func TestProgressSinkCycleMonotonic(t *testing.T) {
	p := NewProgressSink(1, func(Progress) {})
	p.Emit(Event{At: 100})
	p.Emit(Event{At: 40}) // out-of-order timestamps must not rewind
	if c := p.Current().Cycle; c != 100 {
		t.Fatalf("cycle rewound to %d", c)
	}
}

func TestProgressSinkDefaultStride(t *testing.T) {
	calls := 0
	p := NewProgressSink(0, func(Progress) { calls++ })
	for i := 0; i < DefaultProgressStride; i++ {
		p.Emit(Event{})
	}
	if calls != 1 {
		t.Fatalf("expected exactly one sample at the default stride, got %d", calls)
	}
}

// A ProgressSink on a bus composes with other sinks via Multi.
func TestProgressSinkOnBus(t *testing.T) {
	samples := 0
	count := &CountingSink{}
	bus := NewBus(Multi(count, NewProgressSink(2, func(Progress) { samples++ })))
	tr := bus.Track("test", "row")
	for i := 0; i < 6; i++ {
		bus.Instant(tr, "tick", Ticks(i), 0, 0)
	}
	if samples != 3 {
		t.Fatalf("expected 3 samples, got %d", samples)
	}
	if count.Total() != 6 {
		t.Fatalf("counting sink saw %d events, want 6", count.Total())
	}
}
