package telemetry

// Progress is a sampled view of a running simulation, cheap enough to take
// every few tens of thousands of events: how many bus events have been
// observed and the latest simulation cycle seen on the stream. Event count
// is the service's liveness signal (it grows monotonically while the
// machine makes progress); the cycle is its position in simulated time.
type Progress struct {
	// Events is the number of bus events observed so far.
	Events uint64 `json:"events"`
	// Cycle is the latest event timestamp seen, in simulation cycles.
	Cycle Ticks `json:"cycle"`
}

// ProgressSink samples the event stream: every Stride events it hands the
// current Progress to the callback. It is the bridge between a machine's
// telemetry bus and a live consumer (the service's SSE streams subscribe
// through it). The sink itself is single-goroutine like the simulation that
// feeds it; the callback owns any cross-goroutine hand-off.
type ProgressSink struct {
	stride uint64
	fn     func(Progress)

	events uint64
	cycle  Ticks
}

// DefaultProgressStride is the sample period used when stride is not
// positive: coarse enough to be negligible against simulation cost, fine
// enough that a multi-second job reports many times.
const DefaultProgressStride = 1 << 16

// NewProgressSink creates a sink sampling every stride events (stride <= 0
// picks DefaultProgressStride). fn must be non-nil.
func NewProgressSink(stride int, fn func(Progress)) *ProgressSink {
	if stride <= 0 {
		stride = DefaultProgressStride
	}
	return &ProgressSink{stride: uint64(stride), fn: fn}
}

// DefineTrack implements Sink.
func (p *ProgressSink) DefineTrack(Track, TrackInfo) {}

// Emit implements Sink.
func (p *ProgressSink) Emit(e Event) {
	p.events++
	if e.At > p.cycle {
		p.cycle = e.At
	}
	if p.events%p.stride == 0 {
		p.fn(Progress{Events: p.events, Cycle: p.cycle})
	}
}

// Flush delivers a final sample regardless of stride alignment, so the
// consumer always sees the end-of-run position. Safe to call on a sink that
// observed nothing.
func (p *ProgressSink) Flush() {
	p.fn(Progress{Events: p.events, Cycle: p.cycle})
}

// Current returns the latest sample without delivering it.
func (p *ProgressSink) Current() Progress {
	return Progress{Events: p.events, Cycle: p.cycle}
}
