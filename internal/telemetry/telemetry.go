// Package telemetry is the machine-wide instrumentation subsystem: a typed
// event bus that simulated components emit spans, instants, and counter
// samples into, plus exporters that render one run as a Perfetto/Chrome
// timeline (perfetto.go) or as a unified, deterministic metrics snapshot
// (snapshot.go).
//
// The bus is designed so that instrumentation can stay compiled into every
// hot path permanently:
//
//   - A nil *Bus is valid. Every method no-ops on a nil receiver, so
//     components hold a possibly-nil bus and emit unconditionally.
//   - Emission is allocation-free: events are fixed-size structs passed by
//     value, names are static strings, and tracks are small integer handles
//     registered once at construction time.
//   - With no sink attached the only cost per emission site is a nil check.
//     The overhead-guard benchmark (internal/machine) asserts a full
//     simulation with no sink stays within noise of an uninstrumented run.
//
// Time on the bus is Ticks — simulation cycles as raw uint64 — so the
// package stays a leaf: it does not import internal/sim and can be consumed
// by every layer of the machine.
package telemetry

// Ticks is a timestamp in simulation cycles.
type Ticks uint64

// Type classifies an event on the bus.
type Type uint8

const (
	// SpanBegin opens a duration. A nonzero Scope makes the span
	// asynchronous (correlated by Scope, e.g. an atomic-group ID) so spans
	// on one track may overlap; Scope zero means strictly nested.
	SpanBegin Type = iota
	// SpanEnd closes the innermost (Scope zero) or Scope-matching span.
	SpanEnd
	// Complete is a self-contained span: At..At+Dur. Components that know
	// an operation's full extent at issue time (an NVM write, a NoC
	// message) emit one Complete instead of a Begin/End pair.
	Complete
	// Instant is a point event.
	Instant
	// Counter samples the value of a counter series at time At.
	Counter
)

func (t Type) String() string {
	switch t {
	case SpanBegin:
		return "span-begin"
	case SpanEnd:
		return "span-end"
	case Complete:
		return "complete"
	case Instant:
		return "instant"
	case Counter:
		return "counter"
	default:
		return "unknown"
	}
}

// Track is an interned handle for one timeline row. Tracks are registered
// once (Bus.Track) and referenced by handle on every emission.
type Track int32

// TrackInfo names a track: Process groups rows into one component
// ("cores", "agb", "nvm", "noc", "slc"); Thread is the row within it
// ("core 3", "rank 0", "occupancy").
type TrackInfo struct {
	Process string
	Thread  string
}

// Event is one emission. It is passed by value and contains no pointers
// beyond the (static) name string, so emitting never allocates.
type Event struct {
	Type  Type
	Track Track
	// Name identifies the span/instant/counter series. Emission sites pass
	// string constants; exporters may intern them.
	Name string
	// At is the event cycle; Dur is the extent of Complete events.
	At  Ticks
	Dur Ticks
	// Scope correlates async span pairs and tags instants with the entity
	// they concern (atomic-group ID, message ID). Zero means unscoped.
	Scope uint64
	// Value carries Counter samples.
	Value int64
	// Aux is an event-specific payload: the cacheline for line events, the
	// freeze reason for freeze instants, the walk length for invalidation
	// walks.
	Aux uint64
}

// Sink consumes the event stream. DefineTrack is invoked exactly once per
// track, before any event referencing it.
type Sink interface {
	DefineTrack(t Track, info TrackInfo)
	Emit(e Event)
}

// Bus is the emission hub for one simulation. Construct one per machine
// (handles are machine-local) and attach it via the machine configuration.
// A nil *Bus disables all instrumentation at the cost of one branch per
// emission site.
type Bus struct {
	sink   Sink
	tracks []TrackInfo
}

// NewBus creates a bus delivering to sink. A nil sink yields a registered
// but inert bus: tracks intern normally, emissions are dropped.
func NewBus(sink Sink) *Bus {
	// Track 0 is a reserved catch-all so that the zero Track value (what a
	// nil bus hands out) never collides with a real registration.
	b := &Bus{sink: sink}
	b.Track("unattributed", "unattributed")
	return b
}

// Enabled reports whether emissions reach a sink.
func (b *Bus) Enabled() bool { return b != nil && b.sink != nil }

// Sink returns the attached sink (nil when disabled). The machine uses it
// to interpose adapters before track registration begins.
func (b *Bus) Sink() Sink {
	if b == nil {
		return nil
	}
	return b.sink
}

// Track interns a timeline row and returns its handle. On a nil bus it
// returns the reserved zero handle.
func (b *Bus) Track(process, thread string) Track {
	if b == nil {
		return 0
	}
	t := Track(len(b.tracks))
	b.tracks = append(b.tracks, TrackInfo{Process: process, Thread: thread})
	if b.sink != nil {
		b.sink.DefineTrack(t, b.tracks[t])
	}
	return t
}

// Tracks returns the registered track table (index = handle).
func (b *Bus) Tracks() []TrackInfo {
	if b == nil {
		return nil
	}
	return b.tracks
}

// emit forwards to the sink; the enabled check keeps the disabled path to a
// pair of branches with no argument evaluation beyond the caller's struct
// literal (which the compiler keeps on the stack).
func (b *Bus) emit(e Event) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(e)
}

// Begin opens a span on track t. scope zero = nested; nonzero = async,
// correlated with the matching End.
func (b *Bus) Begin(t Track, name string, at Ticks, scope uint64) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(Event{Type: SpanBegin, Track: t, Name: name, At: at, Scope: scope})
}

// End closes a span opened with Begin.
func (b *Bus) End(t Track, name string, at Ticks, scope uint64) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(Event{Type: SpanEnd, Track: t, Name: name, At: at, Scope: scope})
}

// Span emits a complete at..at+dur span in one event.
func (b *Bus) Span(t Track, name string, at, dur Ticks, scope uint64) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(Event{Type: Complete, Track: t, Name: name, At: at, Dur: dur, Scope: scope})
}

// Instant emits a point event with an entity scope and auxiliary payload.
func (b *Bus) Instant(t Track, name string, at Ticks, scope, aux uint64) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(Event{Type: Instant, Track: t, Name: name, At: at, Scope: scope, Aux: aux})
}

// Count samples a counter series at time at.
func (b *Bus) Count(t Track, name string, at Ticks, value int64) {
	if b == nil || b.sink == nil {
		return
	}
	b.sink.Emit(Event{Type: Counter, Track: t, Name: name, At: at, Value: value})
}

// multiSink fans events out to several sinks.
type multiSink struct{ sinks []Sink }

func (m *multiSink) DefineTrack(t Track, info TrackInfo) {
	for _, s := range m.sinks {
		s.DefineTrack(t, info)
	}
}

func (m *multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// Multi combines sinks into one; nil entries are dropped. It returns nil
// when nothing remains (so Multi() composes cleanly with NewBus).
func Multi(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return &multiSink{sinks: out}
}

// CountingSink counts events per type — the cheapest possible live sink,
// used by overhead benchmarks and tests.
type CountingSink struct {
	Tracks int
	Events [5]uint64 // indexed by Type
}

// DefineTrack implements Sink.
func (c *CountingSink) DefineTrack(Track, TrackInfo) { c.Tracks++ }

// Emit implements Sink.
func (c *CountingSink) Emit(e Event) { c.Events[e.Type]++ }

// Total returns the number of events observed.
func (c *CountingSink) Total() uint64 {
	var n uint64
	for _, v := range c.Events {
		n += v
	}
	return n
}
