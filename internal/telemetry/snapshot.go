package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Snapshot is one run's unified metrics document: every counter and
// distribution of the machine's stats.Set registry plus the utilization and
// claim counts of every sim.Resource across all components, in one
// deterministic JSON object. Two same-seed runs of the deterministic
// simulator produce byte-identical snapshots, so snapshots diff cleanly
// across commits — the artifact every perf PR compares before/after.
type Snapshot struct {
	System    string `json:"system"`
	Benchmark string `json:"benchmark"`
	// Cycles is execution time; DrainCycles includes the end-of-run flush.
	Cycles      uint64 `json:"cycles"`
	DrainCycles uint64 `json:"drain_cycles"`

	Counters  map[string]uint64           `json:"counters"`
	Dists     map[string]DistSnapshot     `json:"dists"`
	Resources map[string]ResourceSnapshot `json:"resources"`
}

// DistSnapshot summarizes one stats.Dist.
type DistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
}

// ResourceSnapshot summarizes one sim.Resource at the snapshot horizon.
type ResourceSnapshot struct {
	Claims      uint64  `json:"claims"`
	BusyCycles  uint64  `json:"busy_cycles"`
	Utilization float64 `json:"utilization"`
}

// SnapshotDist converts a distribution.
func SnapshotDist(d *stats.Dist) DistSnapshot {
	return DistSnapshot{
		Count: uint64(d.Count()),
		Sum:   d.Sum(),
		Max:   d.Max(),
		Mean:  d.Mean(),
		P50:   d.Percentile(50),
		P90:   d.Percentile(90),
		P99:   d.Percentile(99),
	}
}

// SnapshotResource converts a resource, evaluated at horizon now.
func SnapshotResource(r *sim.Resource, now sim.Time) ResourceSnapshot {
	return ResourceSnapshot{
		Claims:      r.Claims,
		BusyCycles:  uint64(r.Busy),
		Utilization: r.Utilization(now),
	}
}

// SnapshotBank converts every unit of a bank under names
// "<prefix><index>", merging into dst.
func SnapshotBank(dst map[string]ResourceSnapshot, prefix string, b *sim.Bank, now sim.Time) {
	for i := 0; i < b.Len(); i++ {
		dst[fmt.Sprintf("%s%d", prefix, i)] = SnapshotResource(b.Unit(i), now)
	}
}

// NewSnapshot captures a stats registry. Resources start empty; callers add
// them with SnapshotBank / SnapshotResource.
func NewSnapshot(system, benchmark string, cycles, drainCycles uint64, set *stats.Set) *Snapshot {
	s := &Snapshot{
		System:      system,
		Benchmark:   benchmark,
		Cycles:      cycles,
		DrainCycles: drainCycles,
		Counters:    make(map[string]uint64),
		Dists:       make(map[string]DistSnapshot),
		Resources:   make(map[string]ResourceSnapshot),
	}
	for _, c := range set.Counters() {
		s.Counters[c.Name] = c.Value
	}
	for _, d := range set.Dists() {
		s.Dists[d.Name] = SnapshotDist(d)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. encoding/json serializes
// map keys sorted, so the bytes depend only on the metric values.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: parsing snapshot: %w", err)
	}
	return &s, nil
}

// DiffEntry is one metric that differs between two snapshots.
type DiffEntry struct {
	Name     string
	Old, New float64
	// Missing marks metrics present in only one snapshot ("old" or "new").
	Missing string
}

// Delta returns New - Old.
func (d DiffEntry) Delta() float64 { return d.New - d.Old }

// Ratio returns New/Old (infinity-free: 0 when Old is 0 and New is not).
func (d DiffEntry) Ratio() float64 {
	if d.Old == 0 {
		return 0
	}
	return d.New / d.Old
}

func (d DiffEntry) String() string {
	switch d.Missing {
	case "old":
		return fmt.Sprintf("%-40s (only in new) %.6g", d.Name, d.New)
	case "new":
		return fmt.Sprintf("%-40s (only in old) %.6g", d.Name, d.Old)
	}
	if d.Old != 0 {
		return fmt.Sprintf("%-40s %.6g -> %.6g (%+.2f%%)", d.Name, d.Old, d.New, (d.Ratio()-1)*100)
	}
	return fmt.Sprintf("%-40s %.6g -> %.6g", d.Name, d.Old, d.New)
}

// Diff compares two snapshots and returns every differing metric, sorted by
// name: top-level cycle counts, counters, dist means, and resource
// utilizations. Identical metrics are omitted, so an empty result means the
// runs were metrically indistinguishable.
func (s *Snapshot) Diff(other *Snapshot) []DiffEntry {
	var out []DiffEntry
	add := func(name string, oldV, newV float64, oldOK, newOK bool) {
		switch {
		case oldOK && !newOK:
			out = append(out, DiffEntry{Name: name, Old: oldV, Missing: "new"})
		case !oldOK && newOK:
			out = append(out, DiffEntry{Name: name, New: newV, Missing: "old"})
		case oldV != newV:
			out = append(out, DiffEntry{Name: name, Old: oldV, New: newV})
		}
	}

	add("cycles", float64(s.Cycles), float64(other.Cycles), true, true)
	add("drain_cycles", float64(s.DrainCycles), float64(other.DrainCycles), true, true)

	for _, name := range unionKeys(s.Counters, other.Counters) {
		a, aok := s.Counters[name]
		b, bok := other.Counters[name]
		add("counter."+name, float64(a), float64(b), aok, bok)
	}
	for _, name := range unionKeys(s.Dists, other.Dists) {
		a, aok := s.Dists[name]
		b, bok := other.Dists[name]
		add("dist."+name+".count", float64(a.Count), float64(b.Count), aok, bok)
		if aok && bok {
			add("dist."+name+".mean", a.Mean, b.Mean, true, true)
			add("dist."+name+".max", float64(a.Max), float64(b.Max), true, true)
		}
	}
	for _, name := range unionKeys(s.Resources, other.Resources) {
		a, aok := s.Resources[name]
		b, bok := other.Resources[name]
		add("resource."+name+".claims", float64(a.Claims), float64(b.Claims), aok, bok)
		if aok && bok {
			add("resource."+name+".utilization", a.Utilization, b.Utilization, true, true)
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatDiff renders a diff listing, one metric per line; "identical" when
// nothing differs.
func FormatDiff(entries []DiffEntry) string {
	if len(entries) == 0 {
		return "identical\n"
	}
	var b []byte
	for _, e := range entries {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
