package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses WriteJSON output back into generic trace events.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

func TestTraceSinkWriteJSON(t *testing.T) {
	sink := NewTraceSink()
	bus := NewBus(sink)
	cores := bus.Track("cores", "core 0")
	agb := bus.Track("agb", "occupancy")
	nvmT := bus.Track("nvm", "rank 0")

	bus.Begin(cores, "ag:open", 10, 5)
	bus.End(cores, "ag:open", 20, 5)
	bus.Instant(cores, "freeze", 20, 5, 2)
	bus.Count(agb, "agb.occupancy_lines", 25, 40)
	bus.Span(nvmT, "write", 30, 360, 0)
	bus.Begin(cores, "sync", 40, 0)
	bus.End(cores, "sync", 45, 0)

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	phases := map[string]int{}
	names := map[string]bool{}
	for _, e := range events {
		phases[e["ph"].(string)]++
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, ph := range []string{"M", "b", "e", "i", "C", "X", "B", "E"} {
		if phases[ph] == 0 {
			t.Errorf("no %q phase events in output (phases: %v)", ph, phases)
		}
	}
	for _, n := range []string{"process_name", "thread_name", "ag:open", "freeze", "agb.occupancy_lines", "write"} {
		if !names[n] {
			t.Errorf("missing event name %q", n)
		}
	}

	// Distinct processes get distinct pids; threads number within process.
	pids := map[string]float64{}
	for _, e := range events {
		if e["name"] == "process_name" {
			pids[e["args"].(map[string]any)["name"].(string)] = e["pid"].(float64)
		}
	}
	if len(pids) != 4 { // unattributed + cores + agb + nvm
		t.Fatalf("expected 4 processes, got %v", pids)
	}
	if pids["cores"] == pids["agb"] || pids["agb"] == pids["nvm"] {
		t.Fatalf("processes share a pid: %v", pids)
	}

	// Async pair correlated by id.
	var bID, eID string
	for _, e := range events {
		if e["ph"] == "b" {
			bID = e["id"].(string)
		}
		if e["ph"] == "e" {
			eID = e["id"].(string)
		}
	}
	if bID == "" || bID != eID {
		t.Fatalf("async begin/end ids differ: %q vs %q", bID, eID)
	}
}

func TestTraceSinkDeterministic(t *testing.T) {
	render := func() []byte {
		sink := NewTraceSink()
		bus := NewBus(sink)
		a := bus.Track("cores", "core 0")
		b := bus.Track("nvm", "rank 1")
		for i := 0; i < 50; i++ {
			bus.Instant(a, "freeze", Ticks(i), uint64(i), 0)
			bus.Count(b, "depth", Ticks(i), int64(i%4))
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical emission streams rendered different bytes")
	}
}

func TestTraceSinkSummary(t *testing.T) {
	sink := NewTraceSink()
	bus := NewBus(sink)
	tr := bus.Track("cores", "core 0")
	bus.Instant(tr, "freeze", 1, 0, 0)
	bus.Instant(tr, "freeze", 2, 0, 0)
	bus.Count(tr, "depth", 3, 1)
	sum := strings.Join(sink.Summary(), "\n")
	if !strings.Contains(sum, "cores/freeze ×2") || !strings.Contains(sum, "cores/depth ×1") {
		t.Fatalf("summary wrong:\n%s", sum)
	}
}
