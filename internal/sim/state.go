package sim

import (
	"sort"

	"repro/internal/ckpt"
)

// This file is the kernel's checkpoint surface. Pending events are closures
// and cannot be serialized structurally; instead the engine encodes its
// *logical* schedule — clock, sequence counter, dispatch count, and every
// queued event's (at, seq, gen) triple in dispatch order. Restore replays a
// fresh machine to the checkpoint cycle and byte-compares this encoding:
// because allocation and release of pooled event records happen at the
// engine level in dispatch order, the triples (including free-list
// generation counters) are a deterministic function of the dispatch history
// — identical across runs and across scheduler implementations. Pool
// internals (free-list linkage) are deliberately excluded: they are not
// logical state.

// forEach visits every queued event in unspecified order.
func (s *heapScheduler) forEach(fn func(*scheduledEvent)) {
	for _, ev := range s.events {
		fn(ev)
	}
}

// forEach visits every queued event: all bucket FIFO chains plus the
// overflow heap.
func (w *wheelScheduler) forEach(fn func(*scheduledEvent)) {
	for i := range w.buckets {
		for ev := w.buckets[i].head; ev != nil; ev = ev.next {
			fn(ev)
		}
	}
	for _, ev := range w.overflow {
		fn(ev)
	}
}

// EncodeState writes the engine's logical state as one section: clock,
// sequence counter, dispatch count, and the pending events sorted by
// dispatch order (at, seq) with their generation tags.
func (e *Engine) EncodeState(w *ckpt.Writer) {
	w.Section("engine")
	w.U64(uint64(e.now))
	w.U64(e.seq)
	w.U64(e.Executed)

	type triple struct {
		at  Time
		seq uint64
		gen uint32
	}
	evs := make([]triple, 0, e.sched.len())
	collect := func(ev *scheduledEvent) {
		evs = append(evs, triple{ev.at, ev.seq, ev.gen})
	}
	if e.wheel != nil {
		e.wheel.forEach(collect)
	} else {
		e.sched.(*heapScheduler).forEach(collect)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	w.U32(uint32(len(evs)))
	for _, ev := range evs {
		w.U64(uint64(ev.at))
		w.U64(ev.seq)
		w.U32(ev.gen)
	}
}

// Seq returns the engine's next event sequence number.
func (e *Engine) Seq() uint64 { return e.seq }

// EncodeState writes the watchdog's progress-tracking state. The pending
// check event itself lives in the engine's schedule; armed records whether
// one is outstanding.
func (w *Watchdog) EncodeState(cw *ckpt.Writer) {
	cw.U64(w.lastExec)
	cw.Bool(w.tripped)
	cw.Bool(w.armed)
}

// EncodeState writes every unit's occupancy state in index order.
func (b *Bank) EncodeState(w *ckpt.Writer) {
	w.U32(uint32(b.Len()))
	for i := 0; i < b.Len(); i++ {
		u := b.Unit(i)
		w.U64(uint64(u.NextFree()))
		w.U64(uint64(u.Busy))
		w.U64(u.Claims)
	}
}
