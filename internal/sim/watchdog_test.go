package sim

import "testing"

func TestWatchdogTripsOnStall(t *testing.T) {
	e := NewEngine()
	var diag StallDiag
	tripped := false
	w := NewWatchdog(e, 100, func() bool { return true }, func(d StallDiag) {
		tripped = true
		diag = d
	})
	// One lonely far-future event keeps the queue non-empty but makes no
	// progress within the first horizon.
	e.At(10_000, func() {})
	w.Arm()
	e.Run()
	if !tripped || !w.Tripped() {
		t.Fatal("watchdog must trip when outstanding work makes no progress")
	}
	if diag.Now != 100 || diag.Horizon != 100 {
		t.Fatalf("diag = %+v, want trip at first check (cycle 100)", diag)
	}
	if diag.Pending != 1 {
		t.Fatalf("diag.Pending = %d, want 1 (the far-future event)", diag.Pending)
	}
}

func TestWatchdogNoTripWithProgress(t *testing.T) {
	e := NewEngine()
	done := false
	w := NewWatchdog(e, 100, func() bool { return !done }, func(StallDiag) {
		t.Fatal("watchdog tripped despite progress")
	})
	// A busy chain of events: >1 executed per horizon until it finishes.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 50 {
			e.Schedule(10, tick)
		} else {
			done = true
			w.Disarm()
		}
	}
	e.Schedule(0, tick)
	w.Arm()
	end := e.Run()
	if w.Tripped() {
		t.Fatal("tripped")
	}
	// The final Disarm cancels the pending check, so the clock stops at the
	// last real event, not at a trailing check.
	if want := Time(49 * 10); end != want {
		t.Fatalf("run ended at %d, want %d (no trailing watchdog event)", end, want)
	}
}

func TestWatchdogStopsWhenWorkClears(t *testing.T) {
	e := NewEngine()
	outstanding := true
	w := NewWatchdog(e, 100, func() bool { return outstanding }, func(StallDiag) {
		t.Fatal("tripped after work cleared")
	})
	// Progress during the first horizon, then work completes; the second
	// check sees !outstanding and stops rescheduling.
	e.Schedule(10, func() {})
	e.Schedule(50, func() { outstanding = false })
	w.Arm()
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("%d events left queued", e.Pending())
	}
}

func TestWatchdogDisarmCancelsPendingCheck(t *testing.T) {
	e := NewEngine()
	w := NewWatchdog(e, 1_000, func() bool { return true }, nil)
	w.Arm()
	if e.Pending() != 1 {
		t.Fatalf("Arm queued %d events, want 1", e.Pending())
	}
	w.Disarm()
	w.Disarm() // idempotent
	if e.Pending() != 0 {
		t.Fatal("Disarm must cancel the queued check")
	}
	e.Schedule(5, func() {})
	if end := e.Run(); end != 5 {
		t.Fatalf("clock advanced to %d after disarm, want 5", end)
	}
}

func TestWatchdogRearm(t *testing.T) {
	e := NewEngine()
	trips := 0
	w := NewWatchdog(e, 100, func() bool { return true }, func(StallDiag) { trips++ })
	w.Arm()
	w.Arm() // re-arm replaces the pending check instead of stacking a second
	if e.Pending() != 1 {
		t.Fatalf("double Arm queued %d checks, want 1", e.Pending())
	}
	e.Run()
	if trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
	// A tripped watchdog stays quiet when re-armed work appears again.
	e.At(e.Now()+10, func() {})
	w.Arm()
	e.Run()
	if trips != 1 {
		t.Fatalf("tripped watchdog fired again: trips = %d", trips)
	}
}
