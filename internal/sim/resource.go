package sim

// Resource models a pipelined unit that can start one operation per
// occupancy period: a cache bank port, a directory slot, an NVM rank bus, or
// a NoC link. Claim returns the cycle at which a new operation may begin,
// serializing back-to-back claims. It captures queuing delay without modeling
// individual queue entries.
type Resource struct {
	// nextFree is the first cycle at which the resource can accept work.
	nextFree Time
	// Busy accumulates total occupied cycles, for utilization stats.
	Busy Time
	// Claims counts operations issued through this resource.
	Claims uint64
}

// Claim reserves the resource starting no earlier than at, for occupancy
// cycles, and returns the actual start time (>= at).
func (r *Resource) Claim(at, occupancy Time) Time {
	start := at
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + occupancy
	r.Busy += occupancy
	r.Claims++
	return start
}

// NextFree returns the first cycle the resource is idle.
func (r *Resource) NextFree() Time { return r.nextFree }

// Utilization returns busy cycles divided by the elapsed time `now`,
// counting only occupancy that falls inside [0, now): a claim whose
// occupancy extends past the query horizon contributes only the portion
// already elapsed. Without the clamp a saturated resource quizzed mid-claim
// reported utilization above 1.0. Claimed periods are disjoint and the last
// one ends at nextFree, so the busy time beyond `now` is at most
// nextFree - now; subtracting that (floored at zero) restores the invariant
// Utilization <= 1.
func (r *Resource) Utilization(now Time) float64 {
	if now == 0 {
		return 0
	}
	busy := r.Busy
	if r.nextFree > now {
		over := r.nextFree - now
		if over >= busy {
			return 0
		}
		busy -= over
	}
	return float64(busy) / float64(now)
}

// Bank is a group of independent resources selected by an index, e.g. LLC
// banks or NVM ranks.
type Bank struct {
	units []Resource
}

// NewBank creates n independent resource units.
func NewBank(n int) *Bank {
	return &Bank{units: make([]Resource, n)}
}

// Claim reserves unit i.
func (b *Bank) Claim(i int, at, occupancy Time) Time {
	return b.units[i].Claim(at, occupancy)
}

// Unit returns unit i for inspection.
func (b *Bank) Unit(i int) *Resource { return &b.units[i] }

// Len returns the number of units.
func (b *Bank) Len() int { return len(b.units) }
