package sim

import (
	"math"
	"testing"
)

func TestResourceClaimSerializesBackToBack(t *testing.T) {
	var r Resource
	// Three claims arriving at the same cycle must pipeline back-to-back.
	if got := r.Claim(10, 4); got != 10 {
		t.Fatalf("first claim starts at %d, want 10", got)
	}
	if got := r.Claim(10, 4); got != 14 {
		t.Fatalf("second claim starts at %d, want 14", got)
	}
	if got := r.Claim(10, 4); got != 18 {
		t.Fatalf("third claim starts at %d, want 18", got)
	}
	if r.NextFree() != 22 {
		t.Fatalf("nextFree %d, want 22", r.NextFree())
	}
	if r.Claims != 3 || r.Busy != 12 {
		t.Fatalf("claims=%d busy=%d, want 3/12", r.Claims, r.Busy)
	}
}

func TestResourceClaimAfterIdleGap(t *testing.T) {
	var r Resource
	r.Claim(0, 5)
	// A claim arriving after the resource went idle starts immediately: the
	// idle gap is not accumulated as busy time.
	if got := r.Claim(100, 5); got != 100 {
		t.Fatalf("post-gap claim starts at %d, want 100", got)
	}
	if r.Busy != 10 {
		t.Fatalf("busy %d, want 10 (gap must not count)", r.Busy)
	}
}

func TestResourceZeroOccupancyClaim(t *testing.T) {
	var r Resource
	r.Claim(5, 0)
	if r.NextFree() != 5 || r.Busy != 0 {
		t.Fatalf("zero-occupancy claim moved nextFree=%d busy=%d", r.NextFree(), r.Busy)
	}
	if got := r.Claim(5, 3); got != 5 {
		t.Fatalf("claim after zero-occupancy starts at %d, want 5", got)
	}
}

func TestUtilizationBounds(t *testing.T) {
	var r Resource
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("empty resource at t=0: %v", u)
	}
	if u := r.Utilization(100); u != 0 {
		t.Fatalf("idle resource: %v", u)
	}
	r.Claim(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("half-busy: %v, want 0.5", u)
	}
	if u := r.Utilization(50); u != 1.0 {
		t.Fatalf("exactly saturated: %v, want 1.0", u)
	}
}

// A saturated resource queried mid-claim must clamp to <= 1.0 — the bug the
// clamp in Utilization fixes: Busy counts whole occupancies at claim time,
// including the part that lies beyond the query horizon.
func TestUtilizationClampsMidClaim(t *testing.T) {
	var r Resource
	// Back-to-back claims pile up far past the horizon.
	for i := 0; i < 10; i++ {
		r.Claim(0, 100) // nextFree ends at 1000
	}
	for _, now := range []Time{1, 10, 500, 999, 1000} {
		u := r.Utilization(now)
		if u > 1.0 {
			t.Fatalf("Utilization(%d) = %v > 1.0", now, u)
		}
		if math.Abs(u-1.0) > 1e-12 {
			t.Fatalf("Utilization(%d) = %v, want 1.0 (fully busy up to horizon)", now, u)
		}
	}
	// Past the backlog the denominator grows: utilization decays below 1.
	if u := r.Utilization(2000); u != 0.5 {
		t.Fatalf("Utilization(2000) = %v, want 0.5", u)
	}
}

// A query horizon inside the very first claim must not go negative or panic
// (over >= busy edge).
func TestUtilizationHorizonBeforeFirstClaimEnds(t *testing.T) {
	var r Resource
	r.Claim(50, 100) // busy 50..150
	// At now=10 nothing has elapsed of the claim, and over (140) >= busy
	// (100): utilization floors at 0 rather than underflowing.
	if u := r.Utilization(10); u != 0 {
		t.Fatalf("Utilization(10) = %v, want 0", u)
	}
	// Midway through the claim only the elapsed part counts.
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("Utilization(100) = %v, want 0.5 (50 busy of 100 elapsed)", u)
	}
}

func TestBankUnitsIndependent(t *testing.T) {
	b := NewBank(4)
	if b.Len() != 4 {
		t.Fatalf("len %d", b.Len())
	}
	// Saturate unit 0; unit 1 must be unaffected.
	b.Claim(0, 0, 100)
	if got := b.Claim(0, 0, 100); got != 100 {
		t.Fatalf("unit 0 second claim at %d, want 100", got)
	}
	if got := b.Claim(1, 0, 100); got != 0 {
		t.Fatalf("unit 1 first claim at %d, want 0 (independent)", got)
	}
	if b.Unit(2).Claims != 0 || b.Unit(3).Claims != 0 {
		t.Fatal("untouched units accumulated claims")
	}
	if b.Unit(0).Claims != 2 || b.Unit(1).Claims != 1 {
		t.Fatalf("per-unit claim counts wrong: %d/%d", b.Unit(0).Claims, b.Unit(1).Claims)
	}
}
