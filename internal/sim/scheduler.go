package sim

import (
	"container/heap"
	"fmt"
)

// SchedulerKind selects the event-queue implementation behind an Engine.
type SchedulerKind int

const (
	// SchedulerWheel is the hierarchical timing wheel: O(1) push/pop for the
	// near-future deltas that dominate a machine simulation (cache and NoC
	// latencies), with an overflow heap for far-future events (watchdog
	// checks, fault-outage toggles). It is the default.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the binary-heap reference implementation the wheel is
	// differentially tested against.
	SchedulerHeap
)

func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// ParseSchedulerKind parses "wheel" or "heap".
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "wheel", "":
		return SchedulerWheel, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return SchedulerWheel, fmt.Errorf("sim: unknown scheduler %q (want wheel or heap)", s)
}

// scheduler is the pending-event queue. Both implementations dispatch in
// strict (at, seq) order, so they are observationally identical; the
// differential tests in sched_test.go hold them to that.
type scheduler interface {
	// push enqueues an event. The event's at/seq are set by the engine; the
	// scheduler owns the linkage fields.
	push(ev *scheduledEvent)
	// pop removes and returns the earliest event with at <= limit, or nil
	// if the queue is empty or the earliest event lies beyond the limit.
	pop(limit Time) *scheduledEvent
	// remove unlinks a still-queued event (cancelation).
	remove(ev *scheduledEvent) bool
	// len reports the number of queued events.
	len() int
}

// ---- binary-heap reference implementation ----

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = int32(len(*h))
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// heapScheduler is the reference queue: one global binary heap ordered by
// (at, seq).
type heapScheduler struct {
	events eventHeap
}

func (s *heapScheduler) push(ev *scheduledEvent) {
	heap.Push(&s.events, ev)
}

func (s *heapScheduler) pop(limit Time) *scheduledEvent {
	if len(s.events) == 0 || s.events[0].at > limit {
		return nil
	}
	return heap.Pop(&s.events).(*scheduledEvent)
}

func (s *heapScheduler) remove(ev *scheduledEvent) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&s.events, int(ev.index))
	ev.index = -1
	return true
}

func (s *heapScheduler) len() int { return len(s.events) }
