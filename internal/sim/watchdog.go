package sim

// Watchdog detects quiescence-without-progress: a simulation that still has
// outstanding work (stuck cores, undrained groups) but whose event chains
// have died out — a lost persist that will never complete, a dropped
// message that will never be retransmitted. Without it such a run simply
// returns from Engine.Run with the machine silently wedged (or, worse, the
// caller spins forever waiting on a callback); with it the run fails fast
// with a diagnostic.
//
// The progress heuristic is event throughput: the watchdog schedules a
// check every horizon cycles and compares Engine.Executed against the
// previous check. If only the check itself ran in a whole horizon while the
// outstanding predicate still holds, forward progress has stopped and the
// stall callback fires. Bounded retry/backoff chains (hundreds to a few
// thousand cycles) are far shorter than any sane horizon, so legitimate
// recovery in progress never trips it.
//
// The watchdog stops rescheduling itself as soon as the outstanding
// predicate clears or a stall is declared, so it never keeps the event
// queue artificially alive past the end of a run.
type Watchdog struct {
	engine  *Engine
	horizon Time
	// outstanding reports whether the simulation still has work to finish.
	outstanding func() bool
	// onStall fires (once) when a horizon passes without progress.
	onStall func(StallDiag)

	lastExec uint64
	tripped  bool
	// pending is the queued check event; armed tracks whether one exists so
	// Disarm can cancel it (a far-future check left in the heap would
	// otherwise advance the clock past the end of real work).
	pending EventID
	armed   bool
}

// StallDiag is the watchdog's view of the stall instant.
type StallDiag struct {
	// Now is the cycle of the failing check; Horizon the progress window.
	Now     Time
	Horizon Time
	// Pending counts events still queued (excluding the check itself).
	Pending int
	// Executed is the engine's total dispatched-event count at the stall.
	Executed uint64
}

// NewWatchdog creates a watchdog on the engine. It is inert until Arm.
func NewWatchdog(engine *Engine, horizon Time, outstanding func() bool, onStall func(StallDiag)) *Watchdog {
	if horizon == 0 {
		horizon = 1
	}
	return &Watchdog{engine: engine, horizon: horizon, outstanding: outstanding, onStall: onStall}
}

// Arm starts (or restarts) the check cycle from the current cycle.
func (w *Watchdog) Arm() {
	w.Disarm()
	w.lastExec = w.engine.Executed
	w.pending = w.engine.Schedule(w.horizon, w.check)
	w.armed = true
}

// Disarm cancels the pending check. Call it the moment the outstanding work
// completes, so the queued far-future check does not advance the clock.
func (w *Watchdog) Disarm() {
	if w.armed {
		w.engine.Cancel(w.pending)
		w.armed = false
	}
}

// Tripped reports whether the watchdog declared a stall.
func (w *Watchdog) Tripped() bool { return w.tripped }

func (w *Watchdog) check() {
	w.armed = false
	if w.tripped || !w.outstanding() {
		// Run complete (or already failed): let the queue drain naturally.
		return
	}
	delta := w.engine.Executed - w.lastExec
	w.lastExec = w.engine.Executed
	if delta <= 1 {
		// Nothing but this check ran in a whole horizon: the machine is
		// wedged with work outstanding.
		w.tripped = true
		if w.onStall != nil {
			w.onStall(StallDiag{
				Now:      w.engine.Now(),
				Horizon:  w.horizon,
				Pending:  w.engine.Pending(),
				Executed: w.engine.Executed,
			})
		}
		return
	}
	w.pending = w.engine.Schedule(w.horizon, w.check)
	w.armed = true
}
