package sim

import (
	"container/heap"
	"math/bits"
)

// wheelScheduler is a hierarchical timing wheel: a near wheel of wheelSize
// one-cycle buckets covering [base, base+wheelSize), plus an overflow binary
// heap for events beyond the horizon. The machine's steady-state deltas
// (cache hits, NoC hops, bank occupancies, NVM accesses) all land in the
// near wheel, making push and pop O(1); only rare far-future events
// (watchdog checks, fault-outage toggles, BSP epoch horizons) pay the heap's
// O(log n).
//
// Ordering is identical to the reference heap: events dispatch in strict
// (at, seq) order. Within a bucket the FIFO list preserves seq order because
// (a) direct pushes arrive in seq order, and (b) an overflow refill for a
// tick always happens at the base advance that first brings the tick inside
// the horizon — before any direct push to that tick is possible — and the
// overflow heap itself drains in (at, seq) order.
type wheelScheduler struct {
	// base is the wheel's lower bound: no queued event has at < base, and
	// every bucket-resident event has at < base+wheelSize. It advances to
	// each popped event's timestamp.
	base Time
	// buckets hold same-tick FIFO lists; a tick t maps to bucket t&wheelMask.
	// Within the [base, base+wheelSize) window that slot is unambiguous.
	buckets []bucketList
	// occupied is a bitmap over bucket slots for O(1) next-event search.
	occupied [wheelSize / 64]uint64
	// nearCount counts events in buckets; overflow holds the rest.
	nearCount int
	overflow  eventHeap
}

const (
	wheelBits = 10
	wheelSize = 1 << wheelBits // 1024-cycle near horizon
	wheelMask = wheelSize - 1
)

type bucketList struct {
	head, tail *scheduledEvent
}

func newWheelScheduler() *wheelScheduler {
	return &wheelScheduler{buckets: make([]bucketList, wheelSize)}
}

func (w *wheelScheduler) push(ev *scheduledEvent) {
	// Engine.At guarantees ev.at >= now >= base, so the difference cannot
	// underflow — comparing deltas also sidesteps base+wheelSize overflow
	// near MaxTime.
	if ev.at-w.base >= wheelSize {
		heap.Push(&w.overflow, ev)
		return
	}
	w.bucketAppend(ev)
}

// bucketAppend links an event at the tail of its tick's FIFO list. The
// caller must ensure ev.at lies inside the current window.
func (w *wheelScheduler) bucketAppend(ev *scheduledEvent) {
	slot := int32(ev.at & wheelMask)
	b := &w.buckets[slot]
	ev.slot = slot
	ev.prev = b.tail
	ev.next = nil
	if b.tail != nil {
		b.tail.next = ev
	} else {
		b.head = ev
		w.occupied[slot>>6] |= 1 << (uint32(slot) & 63)
	}
	b.tail = ev
	w.nearCount++
}

// advance moves the wheel's lower bound to t and migrates every overflow
// event now inside the horizon into its bucket. The heap drains in (at, seq)
// order, so bucket FIFO order is preserved.
func (w *wheelScheduler) advance(t Time) {
	w.base = t
	for len(w.overflow) > 0 && w.overflow[0].at-t < wheelSize {
		w.bucketAppend(heap.Pop(&w.overflow).(*scheduledEvent))
	}
}

func (w *wheelScheduler) pop(limit Time) *scheduledEvent {
	if w.nearCount == 0 {
		if len(w.overflow) == 0 {
			return nil
		}
		// The near wheel is dry: jump the window to the overflow's earliest
		// tick. Every overflow event is at or beyond it, so nothing is
		// skipped.
		next := w.overflow[0].at
		if next > limit {
			return nil
		}
		w.advance(next)
	}
	slot := w.nextOccupied()
	b := &w.buckets[slot]
	ev := b.head
	if ev.at > limit {
		return nil
	}
	b.head = ev.next
	if b.head != nil {
		b.head.prev = nil
	} else {
		b.tail = nil
		w.occupied[slot>>6] &^= 1 << (uint32(slot) & 63)
	}
	ev.next, ev.prev, ev.slot = nil, nil, -1
	w.nearCount--
	if ev.at != w.base {
		// Advancing refills the window from the overflow heap. Refilled
		// events are strictly later than ev (they were beyond the previous
		// horizon), so dispatch order is unaffected.
		w.advance(ev.at)
	}
	return ev
}

// nextOccupied returns the occupied bucket slot holding the smallest tick in
// [base, base+wheelSize). It must only be called with nearCount > 0. Slots
// are circular starting at base&wheelMask: the first partial word is
// checked, then full words wrapping around, then the first word's low bits.
func (w *wheelScheduler) nextOccupied() int32 {
	start := uint32(w.base) & wheelMask
	wi := start >> 6
	if word := w.occupied[wi] &^ (1<<(start&63) - 1); word != 0 {
		return int32(wi<<6) + int32(bits.TrailingZeros64(word))
	}
	for i := uint32(1); i < wheelSize/64; i++ {
		j := (wi + i) & (wheelSize/64 - 1)
		if word := w.occupied[j]; word != 0 {
			return int32(j<<6) + int32(bits.TrailingZeros64(word))
		}
	}
	if word := w.occupied[wi] & (1<<(start&63) - 1); word != 0 {
		return int32(wi<<6) + int32(bits.TrailingZeros64(word))
	}
	panic("sim: wheel bitmap empty with nearCount > 0")
}

func (w *wheelScheduler) remove(ev *scheduledEvent) bool {
	if ev.slot >= 0 {
		b := &w.buckets[ev.slot]
		if ev.prev != nil {
			ev.prev.next = ev.next
		} else {
			b.head = ev.next
		}
		if ev.next != nil {
			ev.next.prev = ev.prev
		} else {
			b.tail = ev.prev
		}
		if b.head == nil {
			w.occupied[ev.slot>>6] &^= 1 << (uint32(ev.slot) & 63)
		}
		ev.next, ev.prev, ev.slot = nil, nil, -1
		w.nearCount--
		return true
	}
	if ev.index >= 0 {
		heap.Remove(&w.overflow, int(ev.index))
		ev.index = -1
		return true
	}
	return false
}

func (w *wheelScheduler) len() int { return w.nearCount + len(w.overflow) }
