package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// schedKinds enumerates both queue implementations for differential tests.
var schedKinds = []SchedulerKind{SchedulerHeap, SchedulerWheel}

func TestParseSchedulerKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SchedulerKind
		err  bool
	}{
		{"wheel", SchedulerWheel, false},
		{"heap", SchedulerHeap, false},
		{"", SchedulerWheel, false},
		{"fifo", SchedulerWheel, true},
	} {
		got, err := ParseSchedulerKind(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSchedulerKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SchedulerWheel.String() != "wheel" || SchedulerHeap.String() != "heap" {
		t.Error("SchedulerKind strings wrong")
	}
}

func TestEngineSchedulerReported(t *testing.T) {
	if k := NewEngine().Scheduler(); k != SchedulerWheel {
		t.Fatalf("default scheduler = %v, want wheel", k)
	}
	if k := NewEngineWithScheduler(SchedulerHeap).Scheduler(); k != SchedulerHeap {
		t.Fatalf("heap engine reports %v", k)
	}
}

// runKindMatrix runs the sim-package ordering tests against both queue
// implementations.
func runKindMatrix(t *testing.T, fn func(t *testing.T, e *Engine)) {
	for _, k := range schedKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) { fn(t, NewEngineWithScheduler(k)) })
	}
}

func TestBothKindsOrdering(t *testing.T) {
	runKindMatrix(t, func(t *testing.T, e *Engine) {
		var order []int
		e.Schedule(10, func() { order = append(order, 2) })
		e.Schedule(5, func() { order = append(order, 1) })
		e.Schedule(5000, func() { order = append(order, 4) }) // overflow horizon
		e.Schedule(20, func() { order = append(order, 3) })
		e.Run()
		for i, v := range order {
			if v != i+1 {
				t.Fatalf("wrong order: %v", order)
			}
		}
	})
}

func TestBothKindsSameTickFIFO(t *testing.T) {
	runKindMatrix(t, func(t *testing.T, e *Engine) {
		var order []int
		// Same-tick burst straddling the overflow horizon: events land at
		// tick 2000 both via the overflow heap (scheduled from cycle 0) and
		// via direct bucket pushes (scheduled after the window advances).
		for i := 0; i < 8; i++ {
			i := i
			e.Schedule(2000, func() { order = append(order, i) })
		}
		e.Schedule(1999, func() {
			for i := 8; i < 16; i++ {
				i := i
				e.Schedule(1, func() { order = append(order, i) })
			}
		})
		e.Run()
		if len(order) != 16 {
			t.Fatalf("ran %d events", len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("same-tick FIFO violated: %v", order)
			}
		}
	})
}

// schedOp is one step of a scripted scheduler workload.
type schedOp struct {
	kind  byte // 0 = schedule, 1 = cancel, 2 = step, 3 = run-until
	delay Time
	pick  int // which outstanding ID to cancel (cancel may be stale)
}

// replay drives an engine through a scripted workload and returns the
// dispatch log: (time, label) per dispatched event, plus each Cancel result.
func replay(kind SchedulerKind, ops []schedOp) (log []string) {
	e := NewEngineWithScheduler(kind)
	var ids []EventID
	label := 0
	for _, op := range ops {
		switch op.kind % 4 {
		case 0:
			l := label
			label++
			ids = append(ids, e.Schedule(op.delay, func() {
				log = append(log, fmt.Sprintf("run %d @%d", l, e.Now()))
			}))
		case 1:
			if len(ids) == 0 {
				continue
			}
			id := ids[op.pick%len(ids)]
			log = append(log, fmt.Sprintf("cancel=%v", e.Cancel(id)))
		case 2:
			log = append(log, fmt.Sprintf("step=%v pending=%d", e.Step(), e.Pending()))
		case 3:
			at := e.RunUntil(e.Now() + op.delay)
			log = append(log, fmt.Sprintf("until=%d pending=%d", at, e.Pending()))
		}
	}
	e.Run()
	log = append(log, fmt.Sprintf("end @%d executed=%d", e.Now(), e.Executed))
	return log
}

// TestPropertySchedulerEquivalence drives both implementations through
// randomized interleaved Schedule/Cancel/Step/RunUntil sequences — including
// same-tick bursts, far-future horizons, double cancels, and cancels of
// already-dispatched events — and requires identical observable behavior.
func TestPropertySchedulerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(120)
		ops := make([]schedOp, n)
		for i := range ops {
			var delay Time
			switch rng.Intn(4) {
			case 0:
				delay = 0 // same-cycle burst
			case 1:
				delay = Time(rng.Intn(16))
			case 2:
				delay = Time(rng.Intn(1024))
			case 3:
				delay = Time(rng.Intn(100_000)) // deep overflow
			}
			ops[i] = schedOp{kind: byte(rng.Intn(4)), delay: delay, pick: rng.Intn(1 << 16)}
		}
		want := replay(SchedulerHeap, ops)
		got := replay(SchedulerWheel, ops)
		if len(want) != len(got) {
			t.Fatalf("seed %d: log lengths differ: heap %d wheel %d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: log[%d] differs:\nheap:  %s\nwheel: %s", seed, i, want[i], got[i])
			}
		}
	}
}

// FuzzScheduler feeds arbitrary op streams to both implementations and
// requires identical pop order, identical Cancel results, and no panics.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 5, 0, 5, 1, 0, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{0, 255, 3, 100, 1, 1, 1, 1, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []schedOp
		for i := 0; i+1 < len(data) && len(ops) < 512; i += 2 {
			delay := Time(data[i+1])
			if data[i]&0x80 != 0 {
				delay *= 997 // stretch some delays past the wheel horizon
			}
			ops = append(ops, schedOp{kind: data[i] & 3, delay: delay, pick: int(data[i] >> 2)})
		}
		want := replay(SchedulerHeap, ops)
		got := replay(SchedulerWheel, ops)
		if len(want) != len(got) {
			t.Fatalf("log lengths differ: heap %d wheel %d", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("log[%d]: heap %q wheel %q", i, want[i], got[i])
			}
		}
	})
}

// TestCancelTwiceAfterRecycle is the double-cancel regression: a stale
// EventID whose record has been recycled for a newer event must not cancel
// (or corrupt) that newer event.
func TestCancelTwiceAfterRecycle(t *testing.T) {
	runKindMatrix(t, func(t *testing.T, e *Engine) {
		ran := false
		id := e.Schedule(4, func() { t.Error("canceled event ran") })
		if !e.Cancel(id) {
			t.Fatal("first cancel failed")
		}
		// The record is now on the free list; this reuses it.
		id2 := e.Schedule(6, func() { ran = true })
		if e.Cancel(id) {
			t.Fatal("stale cancel claimed success")
		}
		e.Run()
		if !ran {
			t.Fatal("recycled event was killed by a stale cancel")
		}
		if e.Cancel(id2) {
			t.Fatal("cancel after dispatch claimed success")
		}
	})
}

// TestCancelAfterDispatchRecycle covers the dispatch-side recycle: an ID for
// an event that already ran must stay inert after its record is reused.
func TestCancelAfterDispatchRecycle(t *testing.T) {
	runKindMatrix(t, func(t *testing.T, e *Engine) {
		var stale EventID
		ran := 0
		stale = e.Schedule(1, func() {})
		e.Run()
		id2 := e.Schedule(3, func() { ran++ }) // reuses the record
		if e.Cancel(stale) {
			t.Fatal("stale post-dispatch cancel claimed success")
		}
		_ = id2
		e.Run()
		if ran != 1 {
			t.Fatalf("recycled event ran %d times", ran)
		}
	})
}

// TestCancelSelfInsideCallback: canceling your own (currently dispatching)
// event must be a no-op — the record is already released.
func TestCancelSelfInsideCallback(t *testing.T) {
	runKindMatrix(t, func(t *testing.T, e *Engine) {
		var id EventID
		id = e.Schedule(2, func() {
			if e.Cancel(id) {
				t.Error("self-cancel inside callback claimed success")
			}
		})
		e.Run()
	})
}

// TestSteadyStateZeroAlloc verifies the wheel hot path allocates nothing in
// steady state: pooled event records, no interface-dispatch escapes, no
// per-tick garbage — for near-wheel deltas, same-tick bursts, and the
// overflow horizon alike.
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	cases := []struct {
		name  string
		delay Time
	}{
		{"near", 5},
		{"sametick", 0},
		{"overflow", 5000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the pool and the overflow heap's capacity.
			for i := 0; i < 64; i++ {
				e.Schedule(tc.delay, fn)
			}
			for e.Step() {
			}
			avg := testing.AllocsPerRun(200, func() {
				e.Schedule(tc.delay, fn)
				e.Schedule(tc.delay, fn)
				e.Step()
				e.Step()
			})
			if avg != 0 {
				t.Fatalf("steady-state schedule+step allocates %.1f objects", avg)
			}
		})
	}
}

// TestWatchdogDisarmStale exercises the watchdog double-cancel hazard: Disarm
// after the check already fired (stale pending ID), double Disarm, and
// re-Arm cycles must never kill an unrelated recycled event.
func TestWatchdogDisarmStale(t *testing.T) {
	e := NewEngine()
	outstanding := true
	w := NewWatchdog(e, 10, func() bool { return outstanding }, nil)
	w.Arm()
	// Keep progress flowing so the check keeps re-arming (recycling its
	// event record each firing), then disarm twice with work interleaved.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 50 {
			e.Schedule(3, tick)
		}
	}
	e.Schedule(3, tick)
	e.RunUntil(60)
	w.Disarm()
	victim := false
	e.Schedule(100, func() { victim = true }) // may reuse the check's record
	w.Disarm()                                // stale: must not cancel victim
	outstanding = false
	e.Run()
	if !victim {
		t.Fatal("stale watchdog Disarm canceled an unrelated event")
	}
	if w.Tripped() {
		t.Fatal("watchdog tripped despite steady progress")
	}
}

// BenchmarkSchedulerOnly measures the queue alone: a standing population of
// self-rescheduling events, no model code. Horizon shapes: uniform near
// deltas (the machine's common case), same-tick bursts, bursty mixes that
// straddle the wheel horizon, and far-future overflow traffic.
func BenchmarkSchedulerOnly(b *testing.B) {
	shapes := []struct {
		name  string
		delay func(i int) Time
	}{
		{"uniform", func(i int) Time { return Time(1 + i%64) }},
		{"sametick", func(i int) Time { return 0 }},
		{"bursty", func(i int) Time {
			if i%16 == 0 {
				return Time(1 + (i%8)*700) // periodically straddle the horizon
			}
			return Time(i % 8)
		}},
		{"farfuture", func(i int) Time { return Time(2048 + i%4096) }},
	}
	for _, kind := range schedKinds {
		for _, sh := range shapes {
			b.Run(fmt.Sprintf("%s/%s", kind, sh.name), func(b *testing.B) {
				e := NewEngineWithScheduler(kind)
				i := 0
				var fn func()
				fn = func() {
					e.Schedule(sh.delay(i), fn)
					i++
				}
				for j := 0; j < 512; j++ {
					e.Schedule(sh.delay(i), fn)
					i++
				}
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					e.Step()
				}
			})
		}
	}
}
