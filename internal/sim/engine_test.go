package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("nested schedule times: %v", hits)
	}
}

func TestZeroDelayRunsThisCycle(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(0, func() { ran = true })
		if ran {
			t.Fatal("zero-delay event ran during scheduling")
		}
	})
	e.Run()
	if !ran || e.Now() != 5 {
		t.Fatalf("ran=%v now=%d", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, d := range []Time{3, 6, 9} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(6)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 3 and 6", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("final ran %v", ran)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(4, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(id) {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var ran []int
	var ids []EventID
	for i := 0; i < 5; i++ {
		i := i
		ids = append(ids, e.Schedule(Time(i+1), func() { ran = append(ran, i) }))
	}
	e.Cancel(ids[2])
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran=%v", ran)
	}
	for _, v := range ran {
		if v == 2 {
			t.Fatal("canceled event 2 ran")
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending=%d, want 7", e.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("step 1: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("step 2: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

// Property: regardless of insertion order, events dispatch in nondecreasing
// time order and ties dispatch in insertion order.
func TestPropertyDispatchOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d)
			e.Schedule(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1 := r.Claim(100, 10)
	s2 := r.Claim(100, 10)
	s3 := r.Claim(105, 10)
	if s1 != 100 || s2 != 110 || s3 != 120 {
		t.Fatalf("starts = %d %d %d", s1, s2, s3)
	}
	if r.Claims != 3 || r.Busy != 30 {
		t.Fatalf("claims=%d busy=%d", r.Claims, r.Busy)
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Claim(10, 5)
	s := r.Claim(100, 5)
	if s != 100 {
		t.Fatalf("start=%d, want 100 (resource was idle)", s)
	}
}

func TestBankIndependence(t *testing.T) {
	b := NewBank(4)
	s0 := b.Claim(0, 10, 20)
	s1 := b.Claim(1, 10, 20)
	if s0 != 10 || s1 != 10 {
		t.Fatalf("banks not independent: %d %d", s0, s1)
	}
	s0b := b.Claim(0, 10, 20)
	if s0b != 30 {
		t.Fatalf("same bank did not serialize: %d", s0b)
	}
	if b.Len() != 4 {
		t.Fatalf("len=%d", b.Len())
	}
}

func TestUtilization(t *testing.T) {
	var r Resource
	r.Claim(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization=%f", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization at t=0 should be 0, got %f", u)
	}
}

// Property: Resource.Claim never returns a start before the request time and
// never overlaps the previous occupancy.
func TestPropertyResourceNoOverlap(t *testing.T) {
	f := func(reqs []uint8) bool {
		var r Resource
		at := Time(0)
		var lastEnd Time
		for _, q := range reqs {
			at += Time(q % 16)
			occ := Time(q%8) + 1
			start := r.Claim(at, occ)
			if start < at || start < lastEnd {
				return false
			}
			lastEnd = start + occ
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
