// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally small: a time-ordered event heap, a clock, and
// helpers for modeling contended resources (ports, banks, links). All
// simulated components in this repository — cores, cache controllers, the
// directory, the atomic group buffer, and the NVM ranks — are driven by one
// Engine. Determinism is guaranteed by breaking time ties with a
// monotonically increasing sequence number, so two runs with the same inputs
// produce identical schedules.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is the simulation clock in cycles.
type Time uint64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxUint64)

// Event is a closure scheduled to run at a specific cycle.
type Event func()

type scheduledEvent struct {
	at    Time
	seq   uint64
	fn    Event
	index int // heap index; -1 once popped or canceled
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	ev *scheduledEvent
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events dispatched since construction.
	Executed uint64
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle, after already-scheduled same-cycle events.
func (e *Engine) Schedule(delay Time, fn Event) EventID {
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle t. Scheduling in the past panics: it is
// always a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn Event) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	ev := &scheduledEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev: ev}
}

// Cancel removes a pending event. Canceling an already-run or already-canceled
// event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.events, id.ev.index)
	id.ev.index = -1
	return true
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes Run and RunUntil return after the currently dispatching event.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue is empty or Stop is called.
// It returns the final simulation time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil dispatches events with time <= limit. Events scheduled beyond the
// limit remain queued. The clock is left at the time of the last dispatched
// event (or at limit if nothing at all was run past it).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > limit {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.Executed++
		next.fn()
	}
	return e.now
}

// Step dispatches exactly one event if any is pending, returning true if an
// event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*scheduledEvent)
	e.now = next.at
	e.Executed++
	next.fn()
	return true
}
