// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally small: a time-ordered event queue, a clock,
// and helpers for modeling contended resources (ports, banks, links). All
// simulated components in this repository — cores, cache controllers, the
// directory, the atomic group buffer, and the NVM ranks — are driven by one
// Engine. Determinism is guaranteed by breaking time ties with a
// monotonically increasing sequence number, so two runs with the same inputs
// produce identical schedules.
//
// Two queue implementations sit behind the Scheduler selection: a
// hierarchical timing wheel (the default — O(1) for the near-future deltas
// that dominate the machine model) and the binary heap it is differentially
// verified against. Event records are pooled on a free list and recycled on
// dispatch and cancelation, so steady-state stepping allocates nothing;
// EventIDs carry a generation tag so a stale handle (double cancel, cancel
// after dispatch) can never corrupt a recycled record.
package sim

import (
	"fmt"
	"math"
)

// Time is the simulation clock in cycles.
type Time uint64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxUint64)

// Event is a closure scheduled to run at a specific cycle.
type Event func()

// scheduledEvent is one queued event. Records are pooled: the gen counter
// increments every time a record returns to the free list, invalidating any
// EventID still pointing at it. The linkage fields belong to whichever
// scheduler currently holds the record (heap index, or wheel bucket list
// pointers plus slot).
type scheduledEvent struct {
	at  Time
	seq uint64
	fn  Event
	gen uint32

	index      int32 // heap/overflow index; -1 when not heap-resident
	slot       int32 // wheel bucket slot; -1 when not bucket-resident
	next, prev *scheduledEvent
}

// EventID identifies a scheduled event so it can be canceled. The zero
// value is valid and cancels nothing. An EventID goes stale the moment its
// event dispatches or is canceled; using a stale ID is always a safe no-op,
// even after the underlying record has been recycled for a newer event.
type EventID struct {
	ev  *scheduledEvent
	gen uint32
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now Time
	seq uint64

	// wheel is the devirtualized fast path: non-nil iff the engine runs the
	// timing wheel, in which case sched points at the same object. Schedule,
	// At, and the run loop call it directly so steady-state stepping pays no
	// interface dispatch.
	wheel *wheelScheduler
	sched scheduler

	// free is the recycled-event list, chained through next.
	free    *scheduledEvent
	stopped bool

	// Executed counts events dispatched since construction.
	Executed uint64
}

// NewEngine returns an engine with the clock at cycle 0, running the
// default timing-wheel scheduler.
func NewEngine() *Engine {
	return NewEngineWithScheduler(SchedulerWheel)
}

// NewEngineWithScheduler returns an engine using the given queue
// implementation. SchedulerHeap is the reference the wheel is tested
// against; prefer the default elsewhere.
func NewEngineWithScheduler(kind SchedulerKind) *Engine {
	e := &Engine{}
	if kind == SchedulerHeap {
		e.sched = &heapScheduler{}
	} else {
		e.wheel = newWheelScheduler()
		e.sched = e.wheel
	}
	return e
}

// Scheduler reports which queue implementation the engine runs.
func (e *Engine) Scheduler() SchedulerKind {
	if e.wheel != nil {
		return SchedulerWheel
	}
	return SchedulerHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an event record from the free list (or mints one) and stamps
// it with the next sequence number.
func (e *Engine) alloc(t Time, fn Event) *scheduledEvent {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &scheduledEvent{index: -1, slot: -1}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	return ev
}

// release recycles a dispatched or canceled record. Bumping gen invalidates
// every outstanding EventID for it; dropping fn releases the closure.
func (e *Engine) release(ev *scheduledEvent) {
	ev.fn = nil
	ev.gen++
	ev.prev = nil
	ev.next = e.free
	e.free = ev
}

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle, after already-scheduled same-cycle events.
func (e *Engine) Schedule(delay Time, fn Event) EventID {
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle t. Scheduling in the past panics: it is
// always a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn Event) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	ev := e.alloc(t, fn)
	if w := e.wheel; w != nil {
		w.push(ev)
	} else {
		e.sched.push(ev)
	}
	return EventID{ev: ev, gen: ev.gen}
}

// Cancel removes a pending event. Canceling an already-run or already-
// canceled event is a no-op and returns false — the generation tag makes
// this safe even when the event record has since been recycled, so callers
// may hold (and re-cancel) stale IDs freely.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen {
		return false
	}
	if !e.sched.remove(ev) {
		return false
	}
	e.release(ev)
	return true
}

// popNext dequeues the earliest event with at <= limit, if any.
func (e *Engine) popNext(limit Time) *scheduledEvent {
	if w := e.wheel; w != nil {
		return w.pop(limit)
	}
	return e.sched.pop(limit)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return e.sched.len() }

// Stop makes Run and RunUntil return after the currently dispatching event.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue is empty or Stop is called.
// It returns the final simulation time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil dispatches events with time <= limit. Events scheduled beyond the
// limit remain queued. The clock is left at the time of the last dispatched
// event.
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		ev := e.popNext(limit)
		if ev == nil {
			break
		}
		e.now = ev.at
		fn := ev.fn
		e.release(ev)
		e.Executed++
		fn()
	}
	return e.now
}

// Step dispatches exactly one event if any is pending, returning true if an
// event ran.
func (e *Engine) Step() bool {
	ev := e.popNext(MaxTime)
	if ev == nil {
		return false
	}
	e.now = ev.at
	fn := ev.fn
	e.release(ev)
	e.Executed++
	fn()
	return true
}
