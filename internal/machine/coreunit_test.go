package machine

import (
	"testing"

	"repro/internal/mem"
)

// Store buffer capacity of one still makes forward progress (fully
// serialized drain).
func TestStoreBufferDepthOne(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.StoreBufferEntries = 1
	var ops []mem.Op
	for i := uint64(0); i < 30; i++ {
		ops = append(ops, st(addr(i)), ld(addr(i)))
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops))
	if r.Stores != 30 || r.Loads != 30 {
		t.Fatalf("ops: %d stores %d loads", r.Stores, r.Loads)
	}
}

// A trace ending with buffered stores must still retire them before the
// core counts as done (TSO end-of-trace drain).
func TestEndOfTraceDrains(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(1)), st(addr(2)), st(addr(3))},
	)
	if r.Stores != 3 {
		t.Fatalf("stores=%d", r.Stores)
	}
	for i := uint64(1); i <= 3; i++ {
		if r.Durable[mem.Line(i)].IsInitial() {
			t.Fatalf("line %d lost at end of trace", i)
		}
	}
}

// Back-to-back syncs and syncs with nothing buffered are harmless.
func TestSyncEdgeCases(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{sy(1), sy(2), st(addr(1)), sy(3), sy(4), ld(addr(1))},
	)
	if r.SyncOps != 4 || r.Stores != 1 || r.Loads != 1 {
		t.Fatalf("ops: %+v", r)
	}
}

// Loads to the same line as an in-flight buffered store forward from the
// buffer even when the buffer holds multiple stores to that line.
func TestMultipleBufferedStoresForward(t *testing.T) {
	cfg := TableI(Baseline)
	cfg.StoreBufferEntries = 8
	ops := []mem.Op{
		st(addr(5)), st(addr(5)), st(addr(5)), ld(addr(5)),
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops))
	if r.Stores != 3 || r.Loads != 1 {
		t.Fatalf("ops: %+v", r)
	}
	// The line's coherence order must show all three versions in order.
	order := r.LineOrder[mem.Line(5)]
	if len(order) != 3 {
		t.Fatalf("order: %v", order)
	}
	for i, v := range order {
		if v.Seq != uint64(i+1) {
			t.Fatalf("order: %v", order)
		}
	}
}

// Compute bursts advance time without touching memory.
func TestComputeOnlyCore(t *testing.T) {
	r := runDirected(t, Baseline,
		[]mem.Op{cp(100), cp(200), cp(300)},
	)
	if r.Stores != 0 || r.Loads != 0 {
		t.Fatalf("memory ops on compute-only trace: %+v", r)
	}
	if r.Cycles < 600 {
		t.Fatalf("compute time not modeled: %d cycles", r.Cycles)
	}
}
