package machine

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// coreUnit is one in-order core: it executes its trace sequentially,
// blocking on loads, and retires stores through a FIFO TSO store buffer
// that drains in the background.
type coreUnit struct {
	m   *Machine
	id  int
	ops []mem.Op
	pc  int

	// sb is the FIFO store buffer; each entry is a line with the version
	// the store will install (stores to the same line do NOT collapse in
	// the buffer — TSO allows it, but keeping them distinct preserves the
	// per-line version order for the checker). Marker stores (§II-D) flow
	// through the buffer in program order like any other store.
	sb       []pendingStore
	draining bool
	// sbWait marks the core blocked on a full store buffer.
	sbWait bool
	// syncWait marks the core blocked at a sync waiting for SB empty.
	syncWait bool

	storeSeq uint64
	done     bool

	// Bound continuations, created once: an in-order core has at most one
	// outstanding load, one draining store, and one pending sync, so the hot
	// paths reuse these instead of allocating a closure per operation.
	stepFn      func()
	loadDoneFn  func()
	drainDoneFn func()
	syncDoneFn  func()

	// rd and wr are the core's pooled coherence transactions (txn.go);
	// rn is the pooled Tardis lease renewal (backend.go).
	rd *readTxn
	wr *writeTxn
	rn *renewTxn
}

type pendingStore struct {
	line   mem.Line
	ver    mem.Version
	marker bool
}

func newCoreUnit(m *Machine, id int, ops []mem.Op) *coreUnit {
	c := &coreUnit{m: m, id: id, ops: ops,
		sb: make([]pendingStore, 0, m.cfg.StoreBufferEntries)}
	c.stepFn = c.step
	c.loadDoneFn = func() {
		c.pc++
		c.m.engine.Schedule(1, c.stepFn)
	}
	c.drainDoneFn = func() {
		c.sb = c.sb[:copy(c.sb, c.sb[1:])]
		c.draining = false
		if c.sbWait {
			c.sbWait = false
			c.m.engine.Schedule(0, c.stepFn)
		}
		c.kickDrain()
	}
	c.syncDoneFn = func() {
		c.pc++
		c.m.engine.Schedule(c.m.cfg.SyncLatency, c.stepFn)
	}
	c.rd = newReadTxn(m, c)
	c.wr = newWriteTxn(m, c)
	c.rn = newRenewTxn(m, c)
	return c
}

// step executes trace operations until the core blocks or finishes.
func (c *coreUnit) step() {
	if c.done {
		return
	}
	if c.pc >= len(c.ops) {
		// The trace is done, but TSO requires the buffered stores to
		// retire before the core counts as finished.
		if len(c.sb) > 0 {
			c.syncWait = true
			c.kickDrain()
			return
		}
		c.done = true
		c.m.coreDone(c)
		return
	}
	op := c.ops[c.pc]
	switch op.Kind {
	case mem.OpCompute:
		c.pc++
		c.m.engine.Schedule(sim.Time(op.Arg), c.stepFn)

	case mem.OpLoad:
		line := mem.LineOf(op.Addr)
		c.m.loads.Inc()
		// TSO store-to-load forwarding from the store buffer.
		if c.sbHolds(line) {
			c.pc++
			c.m.engine.Schedule(1, c.stepFn)
			return
		}
		c.m.load(c, line, c.loadDoneFn)

	case mem.OpStore:
		if len(c.sb) >= c.m.cfg.StoreBufferEntries {
			c.sbWait = true
			c.kickDrain()
			return
		}
		c.storeSeq++
		c.sb = append(c.sb, pendingStore{
			line: mem.LineOf(op.Addr),
			ver:  mem.Version{Core: c.id, Seq: c.storeSeq},
		})
		c.m.stores.Inc()
		c.pc++
		c.kickDrain()
		c.m.engine.Schedule(1, c.stepFn)

	case mem.OpMarker:
		if len(c.sb) >= c.m.cfg.StoreBufferEntries {
			c.sbWait = true
			c.kickDrain()
			return
		}
		c.sb = append(c.sb, pendingStore{marker: true})
		c.pc++
		c.kickDrain()
		c.m.engine.Schedule(1, c.stepFn)

	case mem.OpSync:
		c.m.syncs.Inc()
		// A sync (lock op / barrier) drains the store buffer, then runs
		// the system's persist hook (HW-RP's SFR boundary), then costs
		// the fixed synchronization latency.
		c.syncWait = true
		c.kickDrain()
		c.trySyncComplete()
	}
}

// sbHolds reports whether the store buffer has a pending store to line.
func (c *coreUnit) sbHolds(line mem.Line) bool {
	for i := len(c.sb) - 1; i >= 0; i-- {
		if c.sb[i].line == line {
			return true
		}
	}
	return false
}

// kickDrain starts the store-buffer drain engine if idle. Stores retire
// strictly in FIFO order (TSO).
func (c *coreUnit) kickDrain() {
	if c.draining || len(c.sb) == 0 {
		c.trySyncComplete()
		return
	}
	c.draining = true
	st := c.sb[0]
	if st.marker {
		// A marker store reaches the cache in program order and closes
		// the current atomic group (§II-D); it writes nothing.
		c.m.sys.marker(c)
		c.sb = c.sb[:copy(c.sb, c.sb[1:])]
		c.draining = false
		if c.sbWait {
			c.sbWait = false
			c.m.engine.Schedule(0, c.stepFn)
		}
		c.kickDrain()
		return
	}
	c.m.store(c, st.line, st.ver, c.drainDoneFn)
}

// trySyncComplete finishes a pending sync once the store buffer is empty.
func (c *coreUnit) trySyncComplete() {
	if !c.syncWait || len(c.sb) > 0 || c.draining {
		return
	}
	c.syncWait = false
	if c.pc >= len(c.ops) {
		// End-of-trace drain completed.
		c.m.engine.Schedule(0, c.stepFn)
		return
	}
	c.m.sys.sync(c, c.syncDoneFn)
}
