package machine

import (
	"repro/internal/ckpt"
	"repro/internal/coherence/slc"
	"repro/internal/coherence/tardis"
	"repro/internal/mem"
	"repro/internal/sim"
)

// cohBackend is the coherence-protocol seam: everything the machine needs
// from a protocol beyond the directory-serialized version bookkeeping it
// owns itself. A backend supplies (a) the timing discipline of write-
// permission acquisition and private hits, and (b) the persist-ordering
// metadata the strict systems consume — line clearance, persist-before
// edge sources, and version retirement. The sharing list stays the
// universal retention structure (the persistency systems and the crash
// checker are built on it); a backend may answer the ordering queries from
// its own state instead of the list, and the SLC/tardis agreement on every
// such answer is pinned by TestTardisAgreesWithSharingList.
//
// Every hook runs at a directory-serialization instant (or, for
// needsRenewal, at a private-hit instant), so backends never see protocol
// races — matching the single point of serialization the real directory
// provides.
type cohBackend interface {
	// invalDelay is the extra delay a write's invalidation round imposes
	// for nInval remote valid copies: SLC walks the list serially, MESI
	// multicasts in parallel, tardis sends nothing at all.
	invalDelay(nInval int) sim.Time
	// needsRenewal reports whether a private-cache hit on node n must
	// renew an expired lease at the home bank before it can be served
	// (always false outside tardis).
	needsRenewal(c int, line mem.Line, n *slc.Node) bool
	// renewed runs at the directory instant of a lease renewal.
	renewed(c int, line mem.Line)
	// dirRead runs at the directory instant of a read miss/fill.
	dirRead(c int, line mem.Line)
	// dirWrite runs at the directory instant of an exclusive acquisition
	// (full miss or upgrade) that installed node n's new version.
	dirWrite(c int, n *slc.Node)
	// coalesced runs when a store hit cache c's own dirty copy and
	// replaced its version in place.
	coalesced(c int, n *slc.Node)
	// storeClear reports whether just-committed store node n is already
	// clear for persist (no older unpersisted version of its line).
	storeClear(n *slc.Node) bool
	// readClear reports whether just-added reader node n is clear (its
	// line has no unpersisted versions).
	readClear(n *slc.Node) bool
	// persistPredAG returns the atomic group that is the persist-before
	// edge source for store node n; prevDirty is the line's newest valid
	// dirty predecessor (never nil when called).
	persistPredAG(n *slc.Node, prevDirty *slc.Node) uint64
	// producerAG returns the atomic group of the dirty producer a fresh
	// reader observed.
	producerAG(producer *slc.Node) uint64
	// tagAG runs after the system assigned node n its atomic group.
	tagAG(n *slc.Node)
	// persisted runs when node n's version enters the persistent domain
	// in persist order (the AGB buffered it).
	persisted(n *slc.Node)
	// discarded runs when a dirty node leaves coherence without
	// persisting (destructive invalidation or eviction).
	discarded(n *slc.Node)
	// encodeState serializes backend state into a checkpoint section
	// (no-op for the stateless backends).
	encodeState(w *ckpt.Writer)
}

// newCohBackend instantiates the configured backend.
func (m *Machine) newCohBackend() cohBackend {
	switch m.cfg.Coherence {
	case CoherenceMESI:
		return &mesiBackend{hop: m.cfg.NoC.HopLatency}
	case CoherenceTardis:
		m.tardis = tardis.New(tardis.Config{Caches: m.cfg.Cores, Lease: m.cfg.TardisLease}, m.set)
		return &tardisBackend{ts: m.tardis}
	default:
		return &slcBackend{hop: m.cfg.NoC.HopLatency}
	}
}

// slcBackend is the sharing-list protocol: serial invalidation walk,
// persist ordering from the list itself.
type slcBackend struct{ hop sim.Time }

func (b *slcBackend) invalDelay(n int) sim.Time                 { return sim.Time(n) * b.hop }
func (*slcBackend) needsRenewal(int, mem.Line, *slc.Node) bool  { return false }
func (*slcBackend) renewed(int, mem.Line)                       {}
func (*slcBackend) dirRead(int, mem.Line)                       {}
func (*slcBackend) dirWrite(int, *slc.Node)                     {}
func (*slcBackend) coalesced(int, *slc.Node)                    {}
func (*slcBackend) storeClear(n *slc.Node) bool                 { return n.Clear() }
func (*slcBackend) readClear(n *slc.Node) bool                  { return n.Clear() }
func (*slcBackend) persistPredAG(_, prev *slc.Node) uint64      { return prev.AGID }
func (*slcBackend) producerAG(p *slc.Node) uint64               { return p.AGID }
func (*slcBackend) tagAG(*slc.Node)                             {}
func (*slcBackend) persisted(*slc.Node)                         {}
func (*slcBackend) discarded(*slc.Node)                         {}
func (*slcBackend) encodeState(*ckpt.Writer)                    {}

// mesiBackend is the conventional bit-vector directory: invalidations
// multicast in parallel (one hop regardless of sharer count); persist
// ordering still rides the retention list the system maintains.
type mesiBackend struct{ hop sim.Time }

func (b *mesiBackend) invalDelay(n int) sim.Time {
	if n > 0 {
		return b.hop
	}
	return 0
}
func (*mesiBackend) needsRenewal(int, mem.Line, *slc.Node) bool { return false }
func (*mesiBackend) renewed(int, mem.Line)                      {}
func (*mesiBackend) dirRead(int, mem.Line)                      {}
func (*mesiBackend) dirWrite(int, *slc.Node)                    {}
func (*mesiBackend) coalesced(int, *slc.Node)                   {}
func (*mesiBackend) storeClear(n *slc.Node) bool                { return n.Clear() }
func (*mesiBackend) readClear(n *slc.Node) bool                 { return n.Clear() }
func (*mesiBackend) persistPredAG(_, prev *slc.Node) uint64     { return prev.AGID }
func (*mesiBackend) producerAG(p *slc.Node) uint64              { return p.AGID }
func (*mesiBackend) tagAG(*slc.Node)                            {}
func (*mesiBackend) persisted(*slc.Node)                        {}
func (*mesiBackend) discarded(*slc.Node)                        {}
func (*mesiBackend) encodeState(*ckpt.Writer)                   {}

// tardisBackend layers the Tardis timestamp protocol over the machine's
// version bookkeeping: writes send no invalidations (logical time jumps
// past the lease frontier instead), clean private hits pay a renewal round
// trip once their lease expires, and every persist-ordering query is
// answered from write-timestamp order.
type tardisBackend struct{ ts *tardis.State }

func (*tardisBackend) invalDelay(int) sim.Time { return 0 }

func (b *tardisBackend) needsRenewal(c int, line mem.Line, n *slc.Node) bool {
	if n.Dirty {
		// The owner reads its exclusive copy freely (pts == wts).
		return false
	}
	return b.ts.NeedsRenewal(c, line)
}
func (b *tardisBackend) renewed(c int, line mem.Line) { b.ts.Renew(c, line) }
func (b *tardisBackend) dirRead(c int, line mem.Line) { b.ts.Read(c, line) }
func (b *tardisBackend) dirWrite(c int, n *slc.Node)  { b.ts.Write(c, n.Line, n.Version) }
func (b *tardisBackend) coalesced(c int, n *slc.Node) { b.ts.Coalesce(c, n.Line, n.Version) }
func (b *tardisBackend) storeClear(n *slc.Node) bool  { return b.ts.StoreClear(n.Line, n.Version) }
func (b *tardisBackend) readClear(n *slc.Node) bool   { return b.ts.ReadClear(n.Line) }
func (b *tardisBackend) persistPredAG(n *slc.Node, _ *slc.Node) uint64 {
	return b.ts.PrevPendingAG(n.Line, n.Version)
}
func (b *tardisBackend) producerAG(p *slc.Node) uint64 { return b.ts.NewestPendingAG(p.Line) }
func (b *tardisBackend) tagAG(n *slc.Node)             { b.ts.TagAG(n.Line, n.Version, n.AGID) }
func (b *tardisBackend) persisted(n *slc.Node)         { b.ts.Persisted(n.Line, n.Version) }
func (b *tardisBackend) discarded(n *slc.Node)         { b.ts.Discard(n.Line, n.Version) }
func (b *tardisBackend) encodeState(w *ckpt.Writer)    { b.ts.EncodeState(w) }

// renewTxn is a core's Tardis lease renewal in flight: a round trip to the
// home bank that re-extends the lease, with no data transfer and no list
// change. Pooled per core like readTxn/writeTxn — loads block the core, so
// at most one renewal is outstanding per core.
type renewTxn struct {
	m    *Machine
	c    *coreUnit
	line mem.Line
	done func()

	src, bnode int

	dirFn, backFn func()
}

func newRenewTxn(m *Machine, c *coreUnit) *renewTxn {
	t := &renewTxn{m: m, c: c}
	t.dirFn = t.dir
	t.backFn = t.back
	return t
}

// start issues the renewal request to the line's home bank.
func (t *renewTxn) start() {
	m := t.m
	t.src = m.coreNode(t.c.id)
	bank := m.bankOf(t.line)
	t.bnode = m.bankNode(bank)
	reqArrive := m.net.Send(t.src, t.bnode, nil)
	begin := m.banks.Claim(bank, reqArrive, m.cfg.BankOccupancy)
	m.engine.At(begin+m.cfg.LLCLatency, t.dirFn)
}

// dir is the directory-serialization instant of the renewal.
func (t *renewTxn) dir() {
	t.m.coh.renewed(t.c.id, t.line)
	arrive := t.m.net.Send(t.bnode, t.src, nil)
	t.m.engine.At(arrive, t.backFn)
}

// back serves the (now lease-valid) private hit.
func (t *renewTxn) back() {
	t.m.engine.Schedule(t.m.cfg.PrivHit, t.done)
}
