// Package machine wires the full simulated system of Table I: eight in-order
// cores with TSO FIFO store buffers, private caches running the SLC
// sharing-list protocol, a banked shared LLC with its directory, the atomic
// group buffer, a mesh NoC, and NVM ranks — and runs a workload under one of
// the persistency systems compared in §V (Baseline, HW-RP, BSP, BSP+SLC,
// BSP+SLC+AGB, STW, TSOPER).
package machine

import (
	"fmt"

	"repro/internal/agb"
	"repro/internal/cache"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// SystemKind selects the persistency system under evaluation.
type SystemKind int

const (
	// Baseline is SLC coherence with no persistency support (§V "Systems" 1).
	Baseline SystemKind = iota
	// HWRP is the hypothetical hardware relaxed-persistency model (§V 2):
	// no order within synchronization-free regions, order across them.
	HWRP
	// BSP is Buffered Strict Persistency after Joshi et al. (§V 3):
	// hardware epochs persisting through the LLC with L1 and LLC exclusion.
	BSP
	// BSPSLC replaces BSP's coherence with SLC, removing L1 exclusion
	// (§V-B stepping stone).
	BSPSLC
	// BSPSLCAGB further persists epochs through an idealized unbounded AGB,
	// removing LLC exclusion (§V-B stepping stone).
	BSPSLCAGB
	// STW is the stop-the-world strict TSO persistency of §III.
	STW
	// TSOPER is the full proposal.
	TSOPER
)

func (k SystemKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case HWRP:
		return "hw-rp"
	case BSP:
		return "bsp"
	case BSPSLC:
		return "bsp+slc"
	case BSPSLCAGB:
		return "bsp+slc+agb"
	case STW:
		return "stw"
	case TSOPER:
		return "tsoper"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// Systems lists every system in the order the figures present them.
func Systems() []SystemKind {
	return []SystemKind{Baseline, HWRP, BSP, BSPSLC, BSPSLCAGB, STW, TSOPER}
}

// CoherenceKind selects the coherence protocol backend: the timing
// discipline of write-permission acquisition and the source of the
// persist-ordering metadata. Version retention (multiversioning) is
// governed by the persistency system, not the backend, so every system
// runs under every backend — that is what makes the protocol bake-off
// (EXPERIMENTS.md) a like-for-like comparison.
type CoherenceKind int

const (
	// CoherenceSLC is the sharing-list protocol: invalidations walk the
	// list serially, one hop per valid copy; persist ordering rides the
	// list's token passing (§IV).
	CoherenceSLC CoherenceKind = iota
	// CoherenceMESI models a conventional bit-vector directory: the
	// directory multicasts invalidations in parallel (one hop regardless
	// of sharer count). The paper uses it to quantify SLC's ~3% coherence
	// overhead (§V); under the strict systems it stands for strict
	// persistency over a conventional directory.
	CoherenceMESI
	// CoherenceTardis is the Tardis timestamp protocol (PAPERS.md): no
	// invalidation traffic at all — writes bump logical time past the
	// lease frontier, and reads hold leases that private hits must renew
	// once expired. Persist ordering derives from write-timestamp order
	// (internal/coherence/tardis).
	CoherenceTardis
)

func (k CoherenceKind) String() string {
	switch k {
	case CoherenceMESI:
		return "mesi"
	case CoherenceTardis:
		return "tardis"
	default:
		return "slc"
	}
}

// Coherences lists every coherence backend in bake-off order.
func Coherences() []CoherenceKind {
	return []CoherenceKind{CoherenceMESI, CoherenceSLC, CoherenceTardis}
}

// ParseCoherenceKind resolves a backend by name ("" and "slc" are the
// sharing-list default).
func ParseCoherenceKind(s string) (CoherenceKind, error) {
	switch s {
	case "", "slc":
		return CoherenceSLC, nil
	case "mesi":
		return CoherenceMESI, nil
	case "tardis":
		return CoherenceTardis, nil
	default:
		return CoherenceSLC, fmt.Errorf("machine: unknown coherence protocol %q (have mesi, slc, tardis)", s)
	}
}

// Config describes the simulated machine.
type Config struct {
	// System selects the persistency model.
	System SystemKind
	// Coherence selects the protocol backend (default SLC).
	Coherence CoherenceKind
	// TardisLease is the logical read-lease length under CoherenceTardis
	// (0 picks tardis.DefaultLease); ignored by the other backends.
	TardisLease uint64
	// Scheduler selects the engine's event-queue implementation (default
	// the timing wheel; the heap is the differential-testing reference).
	Scheduler sim.SchedulerKind

	// Cores is the number of cores/private caches (Table I: 8).
	Cores int
	// StoreBufferEntries is the TSO store buffer depth per core.
	StoreBufferEntries int

	// PrivGeom sizes each private cache (Table I: 512 KB 16-way L2; the L1
	// is folded into the private hit latency).
	PrivGeom cache.Geometry
	// LLCGeom sizes the shared LLC (Table I: 16 MB, 16-way, 8 banks).
	LLCGeom  cache.Geometry
	LLCBanks int

	// PrivHit is the private cache hit latency; LLCLatency the LLC/
	// directory bank access latency; BankOccupancy the per-access bank
	// busy time; SyncLatency the cost of a synchronization operation.
	PrivHit       sim.Time
	LLCLatency    sim.Time
	BankOccupancy sim.Time
	SyncLatency   sim.Time

	// AGLimit caps atomic-group size in cachelines (§V: 80 for STW/TSOPER).
	AGLimit int
	// EvictBufEntries sizes the per-cache eviction buffer (§III-B: 16).
	EvictBufEntries int

	// BSPEpochStores is BSP's hardware epoch length (§V-B: 10,000 stores).
	BSPEpochStores int
	// WPQDepth bounds HW-RP's outstanding persists per core before a sync
	// must stall (double-buffered SFR batches).
	WPQDepth int

	// PersistFilter, when non-nil, restricts persistency to the lines it
	// accepts — the WHISPER-style hybrid sketched in §V's baseline
	// discussion: the sharing-list persistency machinery applies only to
	// persistent addresses, everything else behaves like a conventional
	// protocol. nil persists everything (the paper's evaluated mode).
	PersistFilter func(l mem.Line) bool

	// Telemetry, when non-nil and carrying a sink, receives the machine's
	// full instrumentation stream: atomic-group lifecycle spans per core,
	// coherence/persistency instants, AGB and eviction-buffer occupancy
	// counters, NVM queue depths, and NoC message spans. Track handles are
	// machine-local, so give each machine a freshly constructed bus.
	Telemetry *telemetry.Bus

	// Probe, when non-nil, observes every persistency transition (group
	// freeze, AGB ingress/egress, persist-token hand-off, eviction-buffer
	// drain). Crash campaigns harvest the event cycles as targeted crash
	// points. Internally the probe is a sink on the telemetry bus.
	Probe func(Event)

	// CrashFault, when not FaultNone, deliberately corrupts the recovered
	// state RunWithCrash returns — checker mutation testing only.
	CrashFault CrashFault

	// Faults, when non-nil and non-empty, compiles into a runtime
	// fault-injection plan: scheduled NVM rank failures and latency spikes,
	// NoC drops/duplicates/delays, and AGB slice stalls and outages, all
	// recovered by the components' resilience machinery (retry/backoff,
	// ack/retransmit, arbiter rerouting). With Faults nil the hot paths pay
	// one nil check and allocate nothing.
	Faults *faultplan.Spec
	// WatchdogHorizon arms the stall watchdog: a run that makes no event
	// progress across a whole horizon while work is outstanding fails with a
	// StallError instead of wedging. 0 picks DefaultWatchdogHorizon when
	// Faults is set and leaves the watchdog off otherwise.
	WatchdogHorizon sim.Time

	NoC noc.Config
	NVM nvm.Config
	AGB agb.Config
}

// DefaultWatchdogHorizon is the progress window armed for fault-plan runs
// when WatchdogHorizon is 0. Bounded retry/backoff chains span at most a few
// thousand cycles, so a horizon this wide never trips on legitimate
// recovery.
const DefaultWatchdogHorizon sim.Time = 200_000

// TableI returns the paper's evaluated configuration for the given system.
func TableI(system SystemKind) Config {
	cfg := Config{
		System:             system,
		Cores:              8,
		StoreBufferEntries: 56,
		// The cache geometry is Table I's, scaled down with the synthetic
		// traces (which are orders of magnitude shorter than the paper's
		// regions of interest) so that capacity behavior — evictions,
		// writebacks, eviction-buffer pressure — is exercised at the same
		// working-set-to-cache ratio the real workloads see.
		PrivGeom:        cache.Geometry{SizeBytes: 64 * 1024, Ways: 16},
		LLCGeom:         cache.Geometry{SizeBytes: 2 * 1024 * 1024, Ways: 16},
		LLCBanks:        8,
		PrivHit:         4,
		LLCLatency:      20,
		BankOccupancy:   4,
		SyncLatency:     30,
		AGLimit:         80,
		EvictBufEntries: 16,
		BSPEpochStores:  10000,
		WPQDepth:        64,
		NoC:             noc.DefaultConfig(),
		NVM:             nvm.DefaultConfig(),
		AGB:             agb.DefaultConfig(),
	}
	if system == BSPSLCAGB {
		// §V-B: an idealized unbounded AGB able to fit BSP's huge epochs.
		cfg.AGB.LinesPerSlice = 1 << 20
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: cores must be positive")
	}
	if c.StoreBufferEntries <= 0 {
		return fmt.Errorf("machine: store buffer must be positive")
	}
	if c.AGLimit <= 0 {
		return fmt.Errorf("machine: AG limit must be positive")
	}
	if c.AGLimit > c.AGB.LinesPerSlice {
		return fmt.Errorf("machine: AG limit %d exceeds AGB slice capacity %d (atomicity unguaranteeable)",
			c.AGLimit, c.AGB.LinesPerSlice)
	}
	if c.LLCBanks <= 0 {
		return fmt.Errorf("machine: LLC banks must be positive")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("machine: fault plan: %w", err)
		}
	}
	switch c.Coherence {
	case CoherenceSLC, CoherenceMESI, CoherenceTardis:
		// Every persistency system runs under every backend: version
		// retention is the system's job (destructive()), the backend only
		// supplies timing and persist-ordering metadata.
	default:
		return fmt.Errorf("machine: unknown coherence backend %v", c.Coherence)
	}
	return nil
}
