package machine

import (
	"sort"

	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// bspSys models Buffered Strict Persistency (Joshi et al.) and the two
// stepping stones of §V-B. BSP collects each core's stores into large
// hardware epochs (10,000 stores) that persist *through the LLC*: every
// epoch line is first written to the LLC and from there to NVM. Two
// serializations follow (Fig. 1):
//
//   - L1 exclusion: a remote request for a dirty line waits until that
//     line's epoch flush reaches the LLC. BSP+SLC eliminates this via
//     sharing-list multiversioning (the requester gets the data
//     immediately).
//   - LLC exclusion: the LLC accepts a newer version of a line only after
//     its older version has persisted to NVM. BSP+SLC+AGB eliminates this
//     by persisting epochs into an idealized unbounded AGB instead.
//
// In all variants, a local store to a line belonging to a still-flushing
// epoch waits for that line's flush write — with 10,000-store epochs this
// residual serialization is what keeps BSP+SLC+AGB a few percent behind
// TSOPER (§V-B).
type bspSys struct {
	m *Machine
	// slcMode removes L1 exclusion; agbMode removes LLC exclusion.
	slcMode, agbMode bool

	epochs []*bspEpoch
	// lineAvail is, per line, when its most recent flush write lands in
	// the persist path (LLC or AGB) — both the L1-exclusion wait for
	// remote requesters (plain BSP) and the local flushing-epoch gate.
	lineAvail map[mem.Line]sim.Time
	// llcPersistDone is, per line, when the LLC's current version finishes
	// persisting to NVM — the LLC-exclusion gate for the next flush write.
	llcPersistDone map[mem.Line]sim.Time

	liveFlushes int
	drainDone   func()
}

type bspEpoch struct {
	core   int
	stores int
	dirty  map[mem.Line]mem.Version
}

func newBSPSys(m *Machine) *bspSys {
	s := &bspSys{
		m:              m,
		slcMode:        m.cfg.System == BSPSLC || m.cfg.System == BSPSLCAGB,
		agbMode:        m.cfg.System == BSPSLCAGB,
		lineAvail:      make(map[mem.Line]sim.Time),
		llcPersistDone: make(map[mem.Line]sim.Time),
	}
	for i := 0; i < m.cfg.Cores; i++ {
		s.epochs = append(s.epochs, &bspEpoch{core: i, dirty: make(map[mem.Line]mem.Version)})
	}
	return s
}

// The BSP variants are timing models over conventional (destructive)
// invalidation; multiversioning's timing benefit is captured by zeroing the
// L1 exclusion delay rather than by keeping invalid versions resident.
func (s *bspSys) destructive(mem.Line) bool { return true }

// gateStore delays a store to a line whose flush write has not completed.
func (s *bspSys) gateStore(c *coreUnit, line mem.Line, proceed func()) {
	if avail, ok := s.lineAvail[line]; ok && avail > s.m.engine.Now() {
		s.m.engine.At(avail, func() { s.gateStore(c, line, proceed) })
		return
	}
	proceed()
}

func (s *bspSys) storeCommitted(c *coreUnit, node *slc.Node, _ *slc.Node) {
	ep := s.epochs[c.id]
	ep.dirty[node.Line] = node.Version
	ep.stores++
	if ep.stores >= s.m.cfg.BSPEpochStores {
		s.flushEpoch(c.id)
	}
}

func (s *bspSys) loadObservedDirty(*coreUnit, *slc.Node, *slc.Node) {}

// exposed breaks and flushes the owner's epoch (BSP's conflict handling).
// Plain BSP makes the requester wait for the requested line's LLC write —
// the L1 exclusion time; the SLC variants return zero.
func (s *bspSys) exposed(n *slc.Node, _ bool) sim.Time {
	if _, inEpoch := s.epochs[n.Cache].dirty[n.Line]; inEpoch {
		s.flushEpoch(n.Cache)
	}
	if s.slcMode {
		return 0
	}
	if avail, ok := s.lineAvail[n.Line]; ok && avail > s.m.engine.Now() {
		return avail - s.m.engine.Now()
	}
	return 0
}

func (s *bspSys) evictedDirty(n *slc.Node) {
	if _, inEpoch := s.epochs[n.Cache].dirty[n.Line]; inEpoch {
		s.flushEpoch(n.Cache)
	}
}

func (s *bspSys) nodeCleared(*slc.Node) {}

// marker closes the current epoch (the closest BSP analogue of an AG
// boundary), flushing it in the background.
func (s *bspSys) marker(c *coreUnit) { s.flushEpoch(c.id) }

// dirEvicted: BSP keeps epoch information alongside LLC lines, so losing
// the entry forces the epoch out (the complication §III-B contrasts with).
func (s *bspSys) dirEvicted(n *slc.Node) {
	if _, inEpoch := s.epochs[n.Cache].dirty[n.Line]; inEpoch {
		s.flushEpoch(n.Cache)
	}
}

// flushEpoch writes the epoch's lines into the persist path. Through the
// LLC each write claims the line's home bank and waits out LLC exclusion;
// through the idealized AGB it only claims an ingress port. The epoch's
// lines stay unavailable to new stores until their flush write lands.
func (s *bspSys) flushEpoch(coreID int) {
	ep := s.epochs[coreID]
	if len(ep.dirty) == 0 {
		ep.stores = 0
		return
	}
	s.m.set.Dist("ag.size").Observe(uint64(len(ep.dirty)))
	lines := make([]sfrLine, 0, len(ep.dirty))
	for l, v := range ep.dirty {
		lines = append(lines, sfrLine{l, v})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].line < lines[j].line })
	s.epochs[coreID] = &bspEpoch{core: coreID, dirty: make(map[mem.Line]mem.Version)}

	s.liveFlushes++
	remaining := len(lines)
	// The flush streams serially out of the private cache's single port:
	// line i cannot issue before line i-1. A remote requester therefore
	// waits, on average, half the epoch flush for its line (Fig. 1a's
	// "worst case L1 exclusion time is a function of epoch size").
	cursor := s.m.engine.Now()
	for _, lv := range lines {
		lv := lv
		var flushedAt sim.Time
		s.m.persistWrites.Inc()
		if s.agbMode {
			// Idealized unbounded AGB: ingress port serialization only.
			slice := int(uint64(lv.line) % uint64(s.m.cfg.AGB.Slices))
			start := s.m.buffer.PortClaim(slice, cursor, s.m.cfg.AGB.TransferLatency)
			flushedAt = start + s.m.cfg.AGB.TransferLatency
			cursor = start + s.m.cfg.AGB.TransferLatency
			s.m.engine.At(flushedAt, func() {
				s.m.memory.Write(lv.line, lv.ver, nil)
			})
		} else {
			// Through the LLC: serial L1 egress, bank occupancy, and LLC
			// exclusion (the older version must persist to NVM first).
			bank := s.m.bankOf(lv.line)
			at := cursor
			if pd, ok := s.llcPersistDone[lv.line]; ok && pd > at {
				at = pd
			}
			start := s.m.banks.Claim(bank, at, s.m.cfg.BankOccupancy)
			flushedAt = start + s.m.cfg.LLCLatency
			cursor = start + s.m.cfg.BankOccupancy
			s.m.engine.At(flushedAt, func() {
				// The epoch flush lands in the LLC (a coherence writeback)
				// and persists from there to NVM.
				s.m.llcFill(lv.line, lv.ver)
				s.m.coherenceWrites.Inc()
				nvmDone := s.m.memory.Write(lv.line, lv.ver, nil)
				s.llcPersistDone[lv.line] = nvmDone
			})
		}
		if cur, ok := s.lineAvail[lv.line]; !ok || flushedAt > cur {
			s.lineAvail[lv.line] = flushedAt
		}
		s.m.engine.At(flushedAt, func() {
			remaining--
			if remaining == 0 {
				s.liveFlushes--
				s.checkDrainDone()
			}
		})
	}
}

func (s *bspSys) sync(_ *coreUnit, done func()) { done() }

func (s *bspSys) drain(done func()) {
	s.drainDone = done
	for id := range s.epochs {
		s.flushEpoch(id)
	}
	s.checkDrainDone()
}

func (s *bspSys) checkDrainDone() {
	if s.drainDone != nil && s.liveFlushes == 0 {
		cb := s.drainDone
		s.drainDone = nil
		cb()
	}
}
