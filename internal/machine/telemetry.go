package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file wires the machine onto the telemetry bus (internal/telemetry).
//
// The machine owns the per-core timeline: atomic-group lifecycle spans
// (open -> frozen -> draining -> durable, closed at retirement), the
// persistency-transition instants that double as the crash-campaign probe
// stream, and per-core eviction-buffer occupancy counters. Sub-components
// (AGB, NVM, NoC, SLC directory) register their own tracks through the same
// bus in New.
//
// Config.Probe is implemented as a sink *on* this bus: the machine always
// emits telemetry; a configured probe attaches an adapter sink that
// translates the persistency-transition instants back into machine.Events.
// This keeps exactly one instrumentation channel while crashmc's Harvest
// keeps working unchanged.

// machineTel is the machine's own track state on the bus.
type machineTel struct {
	bus       *telemetry.Bus
	coreTrack []telemetry.Track
	evbufName []string
	// coreOfTrack inverts coreTrack for the probe adapter.
	coreOfTrack map[telemetry.Track]int
}

// initTelemetry builds the effective bus for this machine. A configured
// Probe becomes an adapter sink composed with any caller-provided sink.
// Each machine needs a freshly constructed bus (handles are machine-local);
// Config.Validate enforces nothing here because a shared bus still works —
// it just interleaves two machines' tracks.
func (m *Machine) initTelemetry() {
	bus := m.cfg.Telemetry
	if m.cfg.Probe != nil {
		bus = telemetry.NewBus(telemetry.Multi(bus.Sink(), &probeSink{m: m, fn: m.cfg.Probe}))
	}
	if !bus.Enabled() {
		// No sink anywhere: leave m.tel nil so every emission site reduces
		// to one branch (the overhead-guard benchmark pins this down).
		return
	}
	t := &machineTel{bus: bus, coreOfTrack: make(map[telemetry.Track]int)}
	for i := 0; i < m.cfg.Cores; i++ {
		tr := bus.Track("cores", fmt.Sprintf("core %d", i))
		t.coreTrack = append(t.coreTrack, tr)
		t.coreOfTrack[tr] = i
		t.evbufName = append(t.evbufName, fmt.Sprintf("core%d.evictbuf", i))
	}
	m.tel = t
}

// instrumentComponents attaches the bus to every sub-component; called
// after construction, before the workload starts.
func (m *Machine) instrumentComponents() {
	if m.tel == nil {
		return
	}
	bus := m.tel.bus
	m.net.Instrument(bus)
	m.memory.Instrument(bus)
	m.buffer.Instrument(bus)
	m.dir.Instrument(bus, func() telemetry.Ticks { return telemetry.Ticks(m.engine.Now()) })
}

// now returns the current cycle as bus time.
func (t *machineTel) nowTicks(m *Machine) telemetry.Ticks {
	return telemetry.Ticks(m.engine.Now())
}

// agPhase are the lifecycle span names; each phase is an async span scoped
// by the group ID so overlapping groups on one core render separately.
const (
	agPhaseOpen     = "ag:open"
	agPhaseFrozen   = "ag:frozen"
	agPhaseDraining = "ag:draining"
	agPhaseDurable  = "ag:durable"
)

// agBegin opens a lifecycle phase span for group g on its core's track.
func (m *Machine) agBegin(g *core.Group, phase string) {
	if m.tel == nil {
		return
	}
	m.tel.bus.Begin(m.tel.coreTrack[g.Core], phase, m.tel.nowTicks(m), g.ID)
}

// agEnd closes a lifecycle phase span.
func (m *Machine) agEnd(g *core.Group, phase string) {
	if m.tel == nil {
		return
	}
	m.tel.bus.End(m.tel.coreTrack[g.Core], phase, m.tel.nowTicks(m), g.ID)
}

// evbufSample refreshes core's eviction-buffer occupancy counter track.
func (m *Machine) evbufSample(cacheID int) {
	if m.tel == nil {
		return
	}
	m.tel.bus.Count(m.tel.coreTrack[cacheID], m.tel.evbufName[cacheID],
		m.tel.nowTicks(m), int64(m.priv[cacheID].evbuf.Len()))
}

// probeSink adapts the bus back into the legacy Probe callback: it filters
// the persistency-transition instants the machine emits on core tracks and
// synthesizes machine.Events from them. Harvest and the crash campaigns
// consume exactly the stream they did before the bus existed.
type probeSink struct {
	m  *Machine
	fn func(Event)
}

// kindOfName inverts EventKind.String for the adapter.
var kindOfName = func() map[string]EventKind {
	kinds := []EventKind{EvFreeze, EvDrainStart, EvLineBuffered, EvDurable, EvRetired, EvEvictDrain}
	out := make(map[string]EventKind, len(kinds))
	for _, k := range kinds {
		out[k.String()] = k
	}
	return out
}()

// DefineTrack implements telemetry.Sink.
func (p *probeSink) DefineTrack(telemetry.Track, telemetry.TrackInfo) {}

// Emit implements telemetry.Sink.
func (p *probeSink) Emit(e telemetry.Event) {
	if e.Type != telemetry.Instant {
		return
	}
	kind, ok := kindOfName[e.Name]
	if !ok {
		return
	}
	coreID, ok := p.m.tel.coreOfTrack[e.Track]
	if !ok {
		return
	}
	ev := Event{Kind: kind, At: sim.Time(e.At), Core: coreID, Group: e.Scope}
	switch kind {
	case EvLineBuffered:
		ev.Line = mem.Line(e.Aux)
	case EvFreeze:
		ev.Reason = core.FreezeReason(e.Aux)
	}
	p.fn(ev)
}

// collectResources snapshots every contended resource in the machine for
// the unified metrics document, evaluated at the end-of-run horizon.
func (m *Machine) collectResources(now sim.Time) map[string]telemetry.ResourceSnapshot {
	out := make(map[string]telemetry.ResourceSnapshot)
	telemetry.SnapshotBank(out, "llc.bank", m.banks, now)
	telemetry.SnapshotBank(out, "noc.node", m.net.Ports(), now)
	telemetry.SnapshotBank(out, "nvm.rank", m.memory.RankPorts(), now)
	telemetry.SnapshotBank(out, "agb.slice", m.buffer.Ports(), now)
	return out
}
