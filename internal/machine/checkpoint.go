package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Checkpointing is replay-verified: pending events are closures and cannot
// be serialized structurally, so a checkpoint records the machine's
// *logical* state (every component's observable bookkeeping plus the
// engine's (at, seq, gen) schedule) and Restore rebuilds a fresh machine
// from the same config + workload, replays it deterministically to the
// checkpoint cycle, re-serializes, and byte-compares against the blob. The
// replay is the restore; the byte-compare is the proof it landed in the
// same state.
//
// Format invariants (version bumps when any changes):
//   - every map is emitted in sorted key order; slices in index order;
//     stats in registration order, distribution samples in insertion order;
//   - allocation pools (engine event free list, txn records, line-version
//     and list-node slabs) are excluded — they are reuse machinery, not
//     logical state. In-flight pooled records are pinned by the pending
//     continuations captured as engine (at, seq, gen) triples;
//   - scratch buffers (vnScratch) and pure observers (telemetry) are
//     excluded;
//   - the config participates via its canonical hash (hard gate); the
//     workload via an advisory digest — a prefix warm-start legitimately
//     restores under an extended workload, and the state byte-compare is
//     the real gate.

// CheckpointPhase values as stored in a blob header.
const (
	CheckpointPhaseExec  = uint8(phaseExec)
	CheckpointPhaseDrain = uint8(phaseDrain)
	CheckpointPhaseDone  = uint8(phaseDone)
)

// Checkpoint serializes the machine's complete logical state at the
// current cycle. Call it only between Start/Advance calls (never from
// inside a simulated event) — the engine must be at an event boundary.
// It fails on a config with no canonical form (PersistFilter) and on a
// machine that has not Started.
func (m *Machine) Checkpoint() ([]byte, error) {
	if m.phase == phaseIdle {
		return nil, fmt.Errorf("machine: checkpoint before Start")
	}
	hash, err := m.cfg.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("machine: checkpoint: %v", err)
	}
	h := ckpt.Header{
		Version:        ckpt.Version,
		ConfigHash:     hash,
		Scheduler:      uint8(m.engine.Scheduler()),
		Phase:          uint8(m.phase),
		Cycle:          uint64(m.engine.Now()),
		Seq:            m.engine.Seq(),
		Executed:       m.engine.Executed,
		WorkloadDigest: workloadDigest(m.workload),
	}
	return ckpt.EncodeBlob(h, m.encodeState()), nil
}

// Restore rebuilds a machine in the checkpointed state: it validates the
// blob envelope (ckpt.ErrFormat / ckpt.ErrVersion), requires cfg's
// canonical hash to match the checkpoint's (ckpt.ErrConfigMismatch),
// replays a fresh machine over w to the checkpoint cycle, and byte-compares
// the replayed state against the blob (ckpt.ErrDivergence names the first
// differing section). On success the machine is indistinguishable from the
// one that produced the checkpoint — continue it with Advance.
//
// w need not be the exact checkpointed workload: a workload whose per-core
// op streams extend the checkpointed one replays identically up to the
// checkpoint cycle (the digest in the header is advisory). Any other
// mismatch fails the byte-compare.
func Restore(cfg Config, w *trace.Workload, blob []byte) (*Machine, error) {
	h, state, err := ckpt.DecodeBlob(blob)
	if err != nil {
		return nil, err
	}
	hash, err := cfg.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("machine: restore: %v", err)
	}
	if hash != h.ConfigHash {
		return nil, fmt.Errorf("%w: machine %s.., checkpoint %s..",
			ckpt.ErrConfigMismatch, prefix12(hash), prefix12(h.ConfigHash))
	}
	if h.Phase < uint8(phaseExec) || h.Phase > uint8(phaseDone) {
		return nil, fmt.Errorf("%w: phase byte %d out of range", ckpt.ErrFormat, h.Phase)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	m.Start(w)
	if _, err := m.Advance(sim.Time(h.Cycle)); err != nil {
		return nil, fmt.Errorf("machine: restore replay failed: %w", err)
	}
	if err := ckpt.CompareState(state, m.encodeState()); err != nil {
		return nil, err
	}
	return m, nil
}

// prefix12 truncates a hash for error messages; a corrupted blob may carry
// an arbitrarily short string.
func prefix12(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// workloadDigest content-addresses a workload via its serialized form.
func workloadDigest(w *trace.Workload) string {
	if w == nil {
		return ""
	}
	h := sha256.New()
	if err := w.Save(h); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeState serializes every component's logical state as named
// sections. The section order and contents are the format; see the
// invariants at the top of this file.
func (m *Machine) encodeState() []byte {
	w := &ckpt.Writer{}

	m.engine.EncodeState(w)

	w.Section("cores")
	w.U32(uint32(len(m.cores)))
	for _, c := range m.cores {
		w.Int(c.pc)
		w.Bool(c.done)
		w.Bool(c.draining)
		w.Bool(c.sbWait)
		w.Bool(c.syncWait)
		w.U64(c.storeSeq)
		w.U32(uint32(len(c.sb)))
		for _, st := range c.sb {
			w.U64(uint64(st.line))
			w.Int(st.ver.Core)
			w.U64(st.ver.Seq)
			w.Bool(st.marker)
		}
	}

	w.Section("priv")
	for _, pc := range m.priv {
		pc.arr.EncodeState(w, encodeNodeRef)
		pc.evbuf.EncodeState(w, encodeNodeRef)
	}

	w.Section("llc")
	m.llc.EncodeState(w, func(w *ckpt.Writer, v mem.Version) {
		w.Int(v.Core)
		w.U64(v.Seq)
	})
	m.banks.EncodeState(w)

	w.Section("dir")
	m.dir.EncodeState(w)

	// Timestamp-coherence state exists only under the tardis backend; gating
	// the section keeps slc/mesi checkpoint blobs byte-identical to before.
	if m.tardis != nil {
		w.Section("tardis")
		m.coh.encodeState(w)
	}

	w.Section("machine")
	encodeVersionMap(w, m.current)
	lines := make([]uint64, 0, len(m.lineOrder))
	for l := range m.lineOrder {
		lines = append(lines, uint64(l))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, l := range lines {
		vs := m.lineOrder[mem.Line(l)]
		w.U64(l)
		w.U32(uint32(len(vs)))
		for _, v := range vs {
			w.Int(v.Core)
			w.U64(v.Seq)
		}
	}
	keys := make([]waitKey, 0, len(m.waiters))
	for k := range m.waiters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cache != keys[j].cache {
			return keys[i].cache < keys[j].cache
		}
		return keys[i].line < keys[j].line
	})
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.Int(k.cache)
		w.U64(uint64(k.line))
		w.U32(uint32(len(m.waiters[k])))
	}
	w.U32(uint32(len(m.evbufWaiters)))
	for _, ws := range m.evbufWaiters {
		w.U32(uint32(len(ws)))
	}
	w.Int(m.running)
	w.U8(uint8(m.phase))
	w.Bool(m.drainPending)
	w.Bool(m.flushed)
	w.Bool(m.stall != nil)
	w.U64(uint64(m.execDone))
	w.U64(uint64(m.drainDone))
	w.U64(m.execCoherenceWrites)
	w.U64(m.execPersistWrites)
	w.U64(m.execNVMWrites)

	w.Section("journal")
	w.U32(uint32(len(m.journal)))
	for _, g := range m.journal {
		g.EncodeState(w)
	}
	w.U32(uint32(len(m.durableOrder)))
	for _, g := range m.durableOrder {
		w.U64(g.ID)
	}

	w.Section("sys")
	m.encodeSystemState(w)

	w.Section("nvm")
	m.memory.EncodeState(w)

	w.Section("agb")
	m.buffer.EncodeState(w)

	w.Section("noc")
	m.net.EncodeState(w)

	w.Section("faults")
	if m.plan != nil {
		w.Bool(true)
		m.plan.EncodeState(w)
	} else {
		w.Bool(false)
	}
	if m.wd != nil {
		w.Bool(true)
		m.wd.EncodeState(w)
	} else {
		w.Bool(false)
	}

	w.Section("stats")
	m.set.EncodeState(w)
	m.timeline.EncodeState(w)

	return w.State()
}

// encodeNodeRef encodes a sharing-list node held by a private cache frame
// or eviction-buffer slot. The node's full state also appears in the
// directory section; repeating it here ties the frame to the specific
// version it holds.
func encodeNodeRef(w *ckpt.Writer, n *slc.Node) {
	if n == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U64(uint64(n.Line))
	w.Int(n.Cache)
	w.Bool(n.Valid)
	w.Bool(n.Dirty)
	w.Int(n.Version.Core)
	w.U64(n.Version.Seq)
	w.U64(n.AGID)
}

func encodeVersionMap(w *ckpt.Writer, m map[mem.Line]mem.Version) {
	lines := make([]uint64, 0, len(m))
	for l := range m {
		lines = append(lines, uint64(l))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, l := range lines {
		v := m[mem.Line(l)]
		w.U64(l)
		w.Int(v.Core)
		w.U64(v.Seq)
	}
}

func encodeTimeMap(w *ckpt.Writer, m map[mem.Line]sim.Time) {
	lines := make([]uint64, 0, len(m))
	for l := range m {
		lines = append(lines, uint64(l))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, l := range lines {
		w.U64(l)
		w.U64(uint64(m[mem.Line(l)]))
	}
}

// encodeSystemState dispatches on the persistency model. Each encoder
// writes a distinguishing tag first so a cross-system comparison fails on
// the tag, not mid-stream.
func (m *Machine) encodeSystemState(w *ckpt.Writer) {
	switch s := m.sys.(type) {
	case *tsoperSys:
		w.U8(1)
		w.Bool(s.stw)
		w.Int(s.liveCount)
		w.Bool(s.drainDone != nil)
		w.Int(s.stallRefs)
		w.U32(uint32(len(s.stallWaiters)))
		ids := make([]uint64, 0, len(s.groups))
		for id := range s.groups {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.U32(uint32(len(ids)))
		for _, id := range ids {
			w.U64(id)
		}
		w.U32(uint32(len(s.trackers)))
		for _, tr := range s.trackers {
			tr.EncodeState(w)
		}
		if len(s.trackers) > 0 {
			w.U64(s.trackers[0].Source().Next())
		}

	case *bspSys:
		w.U8(2)
		w.Bool(s.slcMode)
		w.Bool(s.agbMode)
		w.Int(s.liveFlushes)
		w.Bool(s.drainDone != nil)
		w.U32(uint32(len(s.epochs)))
		for _, ep := range s.epochs {
			w.Int(ep.core)
			w.Int(ep.stores)
			encodeVersionMap(w, ep.dirty)
		}
		encodeTimeMap(w, s.lineAvail)
		encodeTimeMap(w, s.llcPersistDone)

	case *hwrpSys:
		w.U8(3)
		w.U32(uint32(len(s.sfr)))
		for i := range s.sfr {
			encodeVersionMap(w, s.sfr[i])
			w.Int(s.sfrStores[i])
			w.Int(s.outstanding[i])
			w.U32(uint32(len(s.syncWaiters[i])))
		}

	default:
		w.U8(0)
	}
}
