package machine

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/faultplan"
	"repro/internal/sim"
	"repro/internal/trace"
)

func ckptWorkload(t *testing.T, seed int64) *trace.Workload {
	t.Helper()
	p := trace.Profile{
		Name: "ckpt-smoke", OpsPerCore: 400, StoreFrac: 0.45,
		SharedFrac: 0.4, SharedLines: 64, PrivateLines: 128,
		HotFrac: 0.5, HotLines: 4, Locality: 0.3,
		SyncPeriod: 60, CSStores: 3, ComputeMean: 2,
	}
	return trace.Generate(p, 4, seed)
}

func ckptConfig(system SystemKind) Config {
	cfg := TableI(system)
	cfg.Cores = 4
	return cfg
}

// runStraight runs cfg over the workload to completion, returning results.
func runStraight(t *testing.T, cfg Config, w *trace.Workload) *Results {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunChecked(w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCheckpointRestoreMidExec checkpoints mid-execution, restores, finishes
// the run, and requires results identical to a straight-through run.
func TestCheckpointRestoreMidExec(t *testing.T) {
	for _, system := range []SystemKind{TSOPER, STW, BSPSLCAGB, HWRP} {
		t.Run(system.String(), func(t *testing.T) {
			cfg := ckptConfig(system)
			w := ckptWorkload(t, 11)
			want := runStraight(t, cfg, w)

			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.Start(w)
			mid := want.Cycles / 2
			if done, err := m.Advance(mid); err != nil {
				t.Fatal(err)
			} else if done {
				t.Fatalf("run finished before midpoint %d", mid)
			}
			blob, err := m.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			r, err := Restore(cfg, w, blob)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if got := sim.Time(0); r.Now() > mid {
				_ = got
				t.Fatalf("restored machine at cycle %d, want <= %d", r.Now(), mid)
			}
			if done, err := r.Advance(sim.MaxTime); err != nil || !done {
				t.Fatalf("resume: done=%v err=%v", done, err)
			}
			got := r.Results()
			assertSameResults(t, want, got)
		})
	}
}

// TestCheckpointRestoreMidDrain lands a checkpoint inside the end-of-run
// drain phase and requires the resumed run to finish identically.
func TestCheckpointRestoreMidDrain(t *testing.T) {
	cfg := ckptConfig(TSOPER)
	w := ckptWorkload(t, 7)
	want := runStraight(t, cfg, w)
	if want.DrainCycles <= want.Cycles {
		t.Fatalf("no drain window: exec %d drain %d", want.Cycles, want.DrainCycles)
	}

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(w)
	at := want.Cycles + (want.DrainCycles-want.Cycles)/2
	done, err := m.Advance(at)
	if err != nil {
		t.Fatal(err)
	}
	blob, errC := m.Checkpoint()
	if errC != nil {
		t.Fatal(errC)
	}
	if !done && m.Phase() != "drain" {
		t.Logf("phase at %d: %s", at, m.Phase())
	}

	r, err := Restore(cfg, w, blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if done, err := r.Advance(sim.MaxTime); err != nil || !done {
		t.Fatalf("resume: done=%v err=%v", done, err)
	}
	assertSameResults(t, want, r.Results())
}

// TestRestoreRejectsConfigMismatch restores into a machine whose canonical
// config hash differs and requires a typed rejection.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	cfg := ckptConfig(TSOPER)
	w := ckptWorkload(t, 3)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(w)
	if _, err := m.Advance(2000); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.AGLimit = cfg.AGLimit + 1
	if _, err := Restore(other, w, blob); !errors.Is(err, ckpt.ErrConfigMismatch) {
		t.Fatalf("got %v, want ErrConfigMismatch", err)
	}
	otherSys := ckptConfig(HWRP)
	if _, err := Restore(otherSys, w, blob); !errors.Is(err, ckpt.ErrConfigMismatch) {
		t.Fatalf("got %v, want ErrConfigMismatch", err)
	}
}

// TestRestoreRejectsWrongWorkload verifies the divergence oracle: replaying
// a checkpoint under a workload that is not an extension of the original
// must fail the byte-compare, not silently produce a wrong machine.
func TestRestoreRejectsWrongWorkload(t *testing.T) {
	cfg := ckptConfig(TSOPER)
	w := ckptWorkload(t, 3)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(w)
	if _, err := m.Advance(4000); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(cfg, ckptWorkload(t, 4), blob); !errors.Is(err, ckpt.ErrDivergence) {
		t.Fatalf("got %v, want ErrDivergence", err)
	}
}

// TestCheckpointCrossScheduler checkpoints under one scheduler and restores
// under the other: the blob's state section is scheduler-independent, so
// both directions must succeed and finish identically.
func TestCheckpointCrossScheduler(t *testing.T) {
	base := ckptConfig(TSOPER)
	w := ckptWorkload(t, 5)
	want := runStraight(t, base, w)

	for _, dir := range []struct {
		name     string
		from, to sim.SchedulerKind
	}{
		{"wheel-to-heap", sim.SchedulerWheel, sim.SchedulerHeap},
		{"heap-to-wheel", sim.SchedulerHeap, sim.SchedulerWheel},
	} {
		t.Run(dir.name, func(t *testing.T) {
			cfg := base
			cfg.Scheduler = dir.from
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.Start(w)
			if _, err := m.Advance(want.Cycles / 2); err != nil {
				t.Fatal(err)
			}
			blob, err := m.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Scheduler = dir.to
			r, err := Restore(cfg, w, blob)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if done, err := r.Advance(sim.MaxTime); err != nil || !done {
				t.Fatalf("resume: done=%v err=%v", done, err)
			}
			assertSameResults(t, want, r.Results())
		})
	}
}

// assertSameResults requires the observable outcome of two runs to match:
// cycle counts, traffic, the durable image, and the per-line store order.
func assertSameResults(t *testing.T, want, got *Results) {
	t.Helper()
	if want.Cycles != got.Cycles || want.DrainCycles != got.DrainCycles {
		t.Fatalf("cycles: want (%d,%d), got (%d,%d)",
			want.Cycles, want.DrainCycles, got.Cycles, got.DrainCycles)
	}
	if want.CoherenceWrites != got.CoherenceWrites ||
		want.PersistWrites != got.PersistWrites ||
		want.NVMWrites != got.NVMWrites ||
		want.Stores != got.Stores || want.Loads != got.Loads {
		t.Fatalf("traffic diverged: want %+v stores=%d, got %+v stores=%d",
			want.CoherenceWrites, want.Stores, got.CoherenceWrites, got.Stores)
	}
	if len(want.Durable) != len(got.Durable) {
		t.Fatalf("durable image size: want %d, got %d", len(want.Durable), len(got.Durable))
	}
	for l, v := range want.Durable {
		if got.Durable[l] != v {
			t.Fatalf("durable[%v]: want %v, got %v", l, v, got.Durable[l])
		}
	}
	if len(want.LineOrder) != len(got.LineOrder) {
		t.Fatalf("line order size: want %d, got %d", len(want.LineOrder), len(got.LineOrder))
	}
	for l, vs := range want.LineOrder {
		gvs := got.LineOrder[l]
		if len(vs) != len(gvs) {
			t.Fatalf("line order[%v] length: want %d, got %d", l, len(vs), len(gvs))
		}
		for i := range vs {
			if vs[i] != gvs[i] {
				t.Fatalf("line order[%v][%d]: want %v, got %v", l, i, vs[i], gvs[i])
			}
		}
	}
}

// TestCheckpointRestoreUnderFaultPresets lands a checkpoint in the drain
// window of a faulty run, for every faultplan preset. Restore's state
// byte-compare covers the fault schedule's RNG cursors, the injection
// ledger, per-rank degradation flags, and the re-armed drain watchdog —
// a restore that succeeds *and* finishes with an identical ledger proves
// all of that survived the round trip.
func TestCheckpointRestoreUnderFaultPresets(t *testing.T) {
	for _, name := range faultplan.PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := faultplan.Preset(name)
			if !ok {
				t.Fatalf("preset %q vanished", name)
			}
			cfg := ckptConfig(TSOPER)
			cfg.Faults = &spec
			w := ckptWorkload(t, 11)
			want := runStraight(t, cfg, w)
			if want.Faults == nil {
				t.Fatal("faulty run produced no ledger")
			}

			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.Start(ckptWorkload(t, 11))
			at := want.Cycles + (want.DrainCycles-want.Cycles)/2
			if _, err := m.Advance(at); err != nil {
				t.Fatal(err)
			}
			blob, err := m.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			r, err := Restore(cfg, ckptWorkload(t, 11), blob)
			if err != nil {
				t.Fatalf("restore mid-drain under %s: %v", name, err)
			}
			if done, err := r.Advance(sim.MaxTime); err != nil || !done {
				t.Fatalf("resume under %s: done=%v err=%v", name, done, err)
			}
			got := r.Results()
			assertSameResults(t, want, got)
			if got.Faults == nil {
				t.Fatal("resumed run lost the fault ledger")
			}
			if *got.Faults != *want.Faults {
				t.Fatalf("fault ledger diverged after resume:\nwant %+v\ngot  %+v", *want.Faults, *got.Faults)
			}
		})
	}
}
