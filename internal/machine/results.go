package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Results summarizes one simulation run.
type Results struct {
	System    SystemKind
	Benchmark string

	// Cycles is the execution time: the cycle at which the last core
	// finished its trace (persists may still be trailing).
	Cycles sim.Time
	// DrainCycles is when the final persist completed (end-of-run flush).
	DrainCycles sim.Time

	// CoherenceWrites counts downgrades/writebacks into the LLC;
	// PersistWrites counts writes entering the persistent domain
	// (AGB buffering, BSP LLC->NVM persists, HW-RP flushes). These are the
	// two bar segments of Fig. 14.
	CoherenceWrites uint64
	PersistWrites   uint64
	// NVMWrites counts line writes reaching the NVM ranks.
	NVMWrites uint64
	// TotalPersistWrites additionally includes the end-of-run flush.
	TotalPersistWrites uint64

	// Stores and Loads executed.
	Stores, Loads uint64
	// SyncOps executed.
	SyncOps uint64

	// Groups is the full atomic-group journal (TSOPER/STW; nil otherwise).
	Groups []*core.Group
	// AGSizes is the atomic-group (or SFR/epoch) size distribution in
	// cachelines — Fig. 13 for TSOPER, Fig. 15 for HW-RP's SFRs.
	AGSizes *stats.Dist
	// SFRStores is HW-RP's stores-per-SFR distribution (Fig. 15 histogram).
	SFRStores *stats.Dist
	// SizeTimeline samples group/region size over time (Fig. 15 timelines).
	SizeTimeline *stats.Series

	// CoherenceListLen and PersistListLen are the mean sharing-list lengths
	// (§V-B: ~2 coherence vs ~4 persist).
	CoherenceListLen float64
	PersistListLen   float64

	// EvictBufMax is the eviction-buffer high-water mark across caches.
	EvictBufMax int
	// EvictBufStalls counts eviction-buffer-full stalls.
	EvictBufStalls uint64
	// AGBStalls counts AGB reservation stalls.
	AGBStalls uint64

	// Durable is the NVM image at the end of the run (after drain).
	Durable map[mem.Line]mem.Version
	// LineOrder is the directory-serialized store-version order per line
	// (the coherence order the crash checker validates against).
	LineOrder map[mem.Line][]mem.Version

	// Faults is the fault-injection and recovery ledger (nil unless the run
	// carried a fault plan).
	Faults *faultplan.Counts

	// Set is the full raw metric registry.
	Set *stats.Set

	// Resources snapshots every contended sim.Resource (LLC banks, NoC
	// ports, NVM ranks, AGB slices) at the end-of-run horizon.
	Resources map[string]telemetry.ResourceSnapshot
}

// Snapshot renders the results as a unified, deterministic metrics document
// (every registry counter and distribution plus resource utilization).
func (r *Results) Snapshot() *telemetry.Snapshot {
	s := telemetry.NewSnapshot(r.System.String(), r.Benchmark,
		uint64(r.Cycles), uint64(r.DrainCycles), r.Set)
	for name, rs := range r.Resources {
		s.Resources[name] = rs
	}
	return s
}

func (r *Results) String() string {
	return fmt.Sprintf("%s/%s: %d cycles, %d stores, %d coherence writes, %d persist writes, %d NVM writes",
		r.Benchmark, r.System, r.Cycles, r.Stores, r.CoherenceWrites, r.PersistWrites, r.NVMWrites)
}
