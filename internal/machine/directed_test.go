package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// directed builds a workload from hand-written per-core op lists, padding
// with idle cores up to the machine's core count.
func directed(cfg Config, cores ...[]mem.Op) *trace.Workload {
	w := &trace.Workload{
		Profile: trace.Profile{Name: "directed", OpsPerCore: 0},
		Cores:   make([][]mem.Op, cfg.Cores),
	}
	for i, ops := range cores {
		w.Cores[i] = ops
	}
	return w
}

func st(a mem.Addr) mem.Op      { return mem.Op{Kind: mem.OpStore, Addr: a} }
func ld(a mem.Addr) mem.Op      { return mem.Op{Kind: mem.OpLoad, Addr: a} }
func cp(n uint32) mem.Op        { return mem.Op{Kind: mem.OpCompute, Arg: n} }
func sy(id uint32) mem.Op       { return mem.Op{Kind: mem.OpSync, Arg: id} }
func addr(line uint64) mem.Addr { return mem.Addr(line << mem.LineShift) }

func runDirected(t *testing.T, kind SystemKind, cores ...[]mem.Op) *Results {
	t.Helper()
	cfg := TableI(kind)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(directed(cfg, cores...))
}

// A remote read must freeze the writer's open group (§II-A trigger 3), and
// a subsequent local store to the same line must still complete, landing in
// a younger group.
func TestDirectedRemoteReadFreezes(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(1)), st(addr(2)), cp(2000), st(addr(1))},
		[]mem.Op{cp(300), ld(addr(1))},
	)
	var frozen *core.Group
	for _, g := range r.Groups {
		if g.Core == 0 && g.Reason() == core.FreezeRemoteRead {
			frozen = g
			break
		}
	}
	if frozen == nil {
		t.Fatal("no group frozen by the remote read")
	}
	if !frozen.HasDirty(mem.Line(1)) || !frozen.HasDirty(mem.Line(2)) {
		t.Fatalf("frozen group should hold both coalesced lines: %v", frozen)
	}
	// The second store to line 1 must be in a younger group.
	var younger bool
	for _, g := range r.Groups {
		if g.Core == 0 && g != frozen && g.HasDirty(mem.Line(1)) {
			if g.Seq <= frozen.Seq {
				t.Fatalf("re-store landed in older group %v", g)
			}
			younger = true
		}
	}
	if !younger {
		t.Fatal("second store to the frozen line has no younger group")
	}
	// Final durable version is core 0's second store to line 1.
	if got := r.Durable[mem.Line(1)]; got != (mem.Version{Core: 0, Seq: 3}) {
		t.Fatalf("durable version of line 1: %v", got)
	}
}

// A reader of an unpersisted remote version must record a persist-before
// dependency on the producer's group (§III-A read inclusion).
func TestDirectedReadInclusionDependency(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(10))},
		[]mem.Op{cp(400), ld(addr(10)), st(addr(20))},
	)
	var producer, consumer *core.Group
	for _, g := range r.Groups {
		if g.Core == 0 && g.HasDirty(mem.Line(10)) {
			producer = g
		}
		if g.Core == 1 && g.HasDirty(mem.Line(20)) {
			consumer = g
		}
	}
	if producer == nil || consumer == nil {
		t.Fatalf("missing groups: producer=%v consumer=%v", producer, consumer)
	}
	if !consumer.Has(mem.Line(10)) {
		t.Fatal("reader's group does not include the read line (§III-A)")
	}
	found := false
	for _, dep := range consumer.DepIDs {
		if dep == producer.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("consumer %v lacks pb dependency on producer %v (deps %v)",
			consumer, producer, consumer.DepIDs)
	}
}

// Writer-after-writer: the second writer's group depends on the first's,
// and the durable image ends with the second version.
func TestDirectedWriteAfterWriteDependency(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(5))},
		[]mem.Op{cp(500), st(addr(5))},
	)
	var g0, g1 *core.Group
	for _, g := range r.Groups {
		if g.HasDirty(mem.Line(5)) {
			if g.Core == 0 {
				g0 = g
			} else if g.Core == 1 {
				g1 = g
			}
		}
	}
	if g0 == nil || g1 == nil {
		t.Fatal("missing writer groups")
	}
	dep := false
	for _, d := range g1.DepIDs {
		if d == g0.ID {
			dep = true
		}
	}
	if !dep {
		t.Fatalf("second writer lacks dependency on first (deps %v)", g1.DepIDs)
	}
	if got := r.Durable[mem.Line(5)]; got != (mem.Version{Core: 1, Seq: 1}) {
		t.Fatalf("durable: %v", got)
	}
	if g0.Reason() != core.FreezeRemoteWrite {
		t.Fatalf("first writer frozen by %v, want remote-write", g0.Reason())
	}
}

// Stores to lines of a frozen group stall but never deadlock, even when the
// same line ping-pongs between two cores.
func TestDirectedPingPong(t *testing.T) {
	var ops0, ops1 []mem.Op
	for i := 0; i < 30; i++ {
		ops0 = append(ops0, st(addr(7)), cp(50))
		ops1 = append(ops1, cp(30), st(addr(7)))
	}
	r := runDirected(t, TSOPER, ops0, ops1)
	if r.Stores != 60 {
		t.Fatalf("stores=%d", r.Stores)
	}
	order := r.LineOrder[mem.Line(7)]
	if len(order) != 60 {
		t.Fatalf("line 7 order has %d entries", len(order))
	}
	if got := r.Durable[mem.Line(7)]; got != order[len(order)-1] {
		t.Fatalf("durable %v, want %v", got, order[len(order)-1])
	}
}

// Capacity evictions of dirty lines freeze groups with the eviction reason
// and everything still persists (§II-A trigger 1, §III-B buffers).
func TestDirectedEvictionFreeze(t *testing.T) {
	cfg := TableI(TSOPER)
	// Raise the AG size limit (and the AGB slice that guarantees its
	// atomicity) so the group is still open when capacity evictions start;
	// otherwise every group freezes at the size limit first.
	cfg.AGLimit = 4096
	cfg.AGB.LinesPerSlice = 8192
	var ops []mem.Op
	// March far beyond the private cache capacity (64 KB = 1024 lines).
	for i := uint64(0); i < 3000; i++ {
		ops = append(ops, st(addr(100+i)))
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops))
	sawEvict := false
	for _, g := range r.Groups {
		if g.Reason() == core.FreezeEviction {
			sawEvict = true
			break
		}
	}
	if !sawEvict {
		t.Fatal("capacity march produced no eviction freezes")
	}
	for i := uint64(0); i < 3000; i++ {
		if r.Durable[mem.Line(100+i)].IsInitial() {
			t.Fatalf("line %d never persisted", 100+i)
		}
	}
}

// A tiny AGB back-pressures group drains without deadlock, and the stall
// counter reports it.
func TestDirectedAGBBackpressure(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.AGB.Slices = 1
	cfg.AGB.LinesPerSlice = 8
	cfg.AGLimit = 4
	var ops0, ops1 []mem.Op
	for i := uint64(0); i < 400; i++ {
		ops0 = append(ops0, st(addr(i%64)))
		ops1 = append(ops1, st(addr(64+i%64)))
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops0, ops1))
	if r.AGBStalls == 0 {
		t.Fatal("tiny AGB should have stalled reservations")
	}
	if r.AGSizes.Max() > 4 {
		t.Fatalf("AG exceeded limit: %d", r.AGSizes.Max())
	}
}

// STW must be strictly slower than TSOPER on a conflict-heavy directed
// trace (it stops the world per freeze).
func TestDirectedSTWCost(t *testing.T) {
	mk := func() ([]mem.Op, []mem.Op) {
		var a, b []mem.Op
		for i := uint64(0); i < 50; i++ {
			a = append(a, st(addr(i%8)), cp(20))
			b = append(b, cp(10), st(addr(i%8)))
		}
		return a, b
	}
	a, b := mk()
	stw := runDirected(t, STW, a, b)
	a, b = mk()
	ts := runDirected(t, TSOPER, a, b)
	if stw.Cycles <= ts.Cycles {
		t.Fatalf("STW (%d) not slower than TSOPER (%d)", stw.Cycles, ts.Cycles)
	}
}

// HW-RP: syncs delimit SFRs; each sync flushes the region's dirty lines.
func TestDirectedHWRPSFRs(t *testing.T) {
	r := runDirected(t, HWRP,
		[]mem.Op{st(addr(1)), st(addr(2)), sy(1), st(addr(3)), sy(2), st(addr(1))},
	)
	if r.SFRStores.Count() < 2 {
		t.Fatalf("expected >=2 SFR samples, got %d", r.SFRStores.Count())
	}
	// Two persists of line 1 (one per SFR) plus lines 2 and 3: >= 4 total.
	if r.TotalPersistWrites < 4 {
		t.Fatalf("persist writes %d, want >= 4 (line 1 persists twice)", r.TotalPersistWrites)
	}
	for _, l := range []uint64{1, 2, 3} {
		if r.Durable[mem.Line(l)].IsInitial() {
			t.Fatalf("line %d not durable", l)
		}
	}
}

// BSP: epochs flush at the configured store count.
func TestDirectedBSPEpochBoundary(t *testing.T) {
	cfg := TableI(BSP)
	cfg.BSPEpochStores = 10
	var ops []mem.Op
	for i := uint64(0); i < 100; i++ {
		ops = append(ops, st(addr(i)))
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops))
	if r.AGSizes.Count() < 9 {
		t.Fatalf("expected ~10 epoch flushes, got %d", r.AGSizes.Count())
	}
	if r.AGSizes.Max() > 10 {
		t.Fatalf("epoch exceeded 10 stores' worth of lines: %d", r.AGSizes.Max())
	}
}

// TSO store buffer: a full buffer blocks the core, a sync drains it, and
// store-to-load forwarding serves buffered lines without a miss.
func TestDirectedStoreBufferBehavior(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.StoreBufferEntries = 4
	var ops []mem.Op
	for i := uint64(0); i < 40; i++ {
		ops = append(ops, st(addr(i)))
	}
	ops = append(ops, sy(1))
	ops = append(ops, ld(addr(39)))
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops))
	if r.Stores != 40 || r.SyncOps != 1 {
		t.Fatalf("ops: %d stores %d syncs", r.Stores, r.SyncOps)
	}
}

// Store-to-load forwarding: a load of a line still in the store buffer must
// not consult the cache hierarchy at all.
func TestDirectedForwarding(t *testing.T) {
	fwd := runDirected(t, Baseline,
		[]mem.Op{st(addr(77)), ld(addr(77))},
	)
	if fwd.Loads != 1 || fwd.Stores != 1 {
		t.Fatalf("ops: %+v", fwd)
	}
	// The forwarded load must not issue a second memory transaction: a run
	// loading an unrelated cold line pays a second NVM fetch and is
	// measurably slower.
	miss := runDirected(t, Baseline,
		[]mem.Op{st(addr(77)), ld(addr(99))},
	)
	if fwd.Cycles >= miss.Cycles {
		t.Fatalf("forwarding (%d cycles) not faster than a second miss (%d cycles)",
			fwd.Cycles, miss.Cycles)
	}
}

// A capacity march of dirty lines must complete on every system: the
// destructive systems write victims back and unlink them, the
// multiversioned ones stage them through the eviction buffer. (Regression
// test: baseline once parked dirty victims in the eviction buffer forever.)
func TestDirectedCapacityMarchAllSystems(t *testing.T) {
	for _, kind := range Systems() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := TableI(kind)
			var ops []mem.Op
			for i := uint64(0); i < 2500; i++ {
				ops = append(ops, st(addr(1000+i)))
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := m.Run(directed(cfg, ops))
			if r.Stores != 2500 {
				t.Fatalf("stores=%d", r.Stores)
			}
			if r.CoherenceWrites == 0 {
				t.Fatal("capacity march produced no writebacks")
			}
		})
	}
}

// Empty and trivial workloads complete cleanly on every system.
func TestDirectedTrivialWorkloads(t *testing.T) {
	for _, kind := range Systems() {
		r := runDirected(t, kind) // all cores idle
		if r.Stores != 0 {
			t.Fatalf("%v: phantom stores", kind)
		}
		r = runDirected(t, kind, []mem.Op{st(addr(1))})
		if r.Stores != 1 {
			t.Fatalf("%v: single store lost", kind)
		}
	}
}
