package machine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Acceptance gate: with Config.Faults nil the fault hooks cost one nil
// check and zero allocations on the component hot paths.
func TestNoPlanZeroAlloc(t *testing.T) {
	m, err := New(TableI(TSOPER))
	if err != nil {
		t.Fatal(err)
	}
	if m.plan != nil || m.wd != nil {
		t.Fatal("plan-free machine must not build a plan or watchdog")
	}
	// Read and Send with no completion callback touch only counters and
	// resource claims; Write is excluded because its durable-commit event is
	// an allocation the clean path makes too.
	var l uint64
	allocs := testing.AllocsPerRun(1000, func() {
		m.memory.Read(mem.Line(l), nil)
		m.net.Send(int(l)%m.net.Nodes(), int(l+1)%m.net.Nodes(), nil)
		l++
	})
	if allocs != 0 {
		t.Fatalf("plan-free NVM/NoC paths allocated %.1f/op, want 0", allocs)
	}
	if m.FaultCounts() != (faultplan.Counts{}) {
		t.Fatal("plan-free machine must report a zero ledger")
	}
}

func faultedConfig(spec faultplan.Spec) Config {
	cfg := TableI(TSOPER)
	cfg.Faults = &spec
	return cfg
}

func runFaulted(t *testing.T, spec faultplan.Spec, ops int, seed int64) *Results {
	t.Helper()
	cfg := faultedConfig(spec)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(ops), cfg.Cores, seed)
	r, err := m.RunChecked(w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Under every preset schedule the run completes, every fault recovers, and
// the drained durable image still matches the coherence order's final
// versions — strict persistency survives the fault plan.
func TestFaultedRunRecoversClean(t *testing.T) {
	for _, spec := range faultplan.Presets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			r := runFaulted(t, spec, 250, 3)
			if r.Faults == nil {
				t.Fatal("faulted run must report its ledger")
			}
			if r.Faults.Injected() == 0 {
				t.Fatalf("schedule %s injected nothing", spec.Name)
			}
			if r.Faults.Lost() != 0 {
				t.Fatalf("lost persists: %s", r.Faults)
			}
			for line, order := range r.LineOrder {
				want := order[len(order)-1]
				if got := r.Durable[line]; got != want {
					t.Fatalf("line %v durable %v, want final version %v", line, got, want)
				}
			}
		})
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	spec, _ := faultplan.Preset("storm")
	r1 := runFaulted(t, spec, 200, 7)
	r2 := runFaulted(t, spec, 200, 7)
	if r1.Cycles != r2.Cycles || r1.DrainCycles != r2.DrainCycles {
		t.Fatalf("cycles diverged: %d/%d vs %d/%d",
			r1.Cycles, r1.DrainCycles, r2.Cycles, r2.DrainCycles)
	}
	if *r1.Faults != *r2.Faults {
		t.Fatalf("ledgers diverged: %s vs %s", r1.Faults, r2.Faults)
	}
}

// A fault schedule slows the machine but must not change what was executed.
func TestFaultedRunSameWorkDifferentCycles(t *testing.T) {
	clean := runSmall(t, TSOPER, 200, 7)
	spec, _ := faultplan.Preset("storm")
	faulted := runFaulted(t, spec, 200, 7)
	if faulted.Stores != clean.Stores || faulted.Loads != clean.Loads {
		t.Fatalf("op counts diverged: %d/%d vs %d/%d",
			faulted.Stores, faulted.Loads, clean.Stores, clean.Loads)
	}
	if faulted.DrainCycles < clean.DrainCycles {
		t.Fatalf("faulted drain (%d) faster than clean (%d)?",
			faulted.DrainCycles, clean.DrainCycles)
	}
}

// The test-only abandonment mode wedges the machine; the watchdog must
// convert that into a StallError instead of a silent hang.
func TestDisableDegradationTripsWatchdog(t *testing.T) {
	cfg := faultedConfig(faultplan.Spec{
		Name: "abandon", Seed: 1,
		NVM: faultplan.NVMSpec{WriteFailPct: 1},
		Resilience: faultplan.Resilience{
			NVMRetryLimit: 1, NVMBackoff: 16, DisableDegradation: true,
		},
	})
	cfg.WatchdogHorizon = 20_000
	// A small AGB makes the lost persists bite: retirement never frees
	// space, reservations back up, and the machine wedges mid-run.
	cfg.AGB.LinesPerSlice = 16
	cfg.AGLimit = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(200), cfg.Cores, 5)
	_, err = m.RunChecked(w)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("RunChecked = %v, want *StallError", err)
	}
	if se.Diag.Horizon != 20_000 {
		t.Fatalf("diag horizon %d, want 20000", se.Diag.Horizon)
	}
	if !strings.Contains(se.Error(), "cores stuck") || !strings.Contains(se.Error(), "faults:") {
		t.Fatalf("diagnostic missing machine detail: %s", se.Error())
	}
	if m.FaultCounts().Lost() == 0 {
		t.Fatal("abandonment mode must report lost persists")
	}
}

// With a roomy AGB an abandonment run can quiesce cleanly — every group
// fits and buffers, so nothing is outstanding — yet the NVM image is
// silently incomplete. RunChecked must still refuse to call that success.
func TestLostPersistsFailEvenWithoutStall(t *testing.T) {
	cfg := faultedConfig(faultplan.Spec{
		Name: "abandon-roomy", Seed: 1,
		NVM: faultplan.NVMSpec{WriteFailPct: 1},
		Resilience: faultplan.Resilience{
			NVMRetryLimit: 1, NVMBackoff: 16, DisableDegradation: true,
		},
	})
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(200), cfg.Cores, 5)
	_, err = m.RunChecked(w)
	if err == nil || !strings.Contains(err.Error(), "permanently lost") {
		t.Fatalf("RunChecked = %v, want lost-persist failure", err)
	}
}

func TestWatchdogArmedOnlyWhenAsked(t *testing.T) {
	// Explicit horizon, no fault plan: watchdog armed, no plan compiled.
	cfg := TableI(TSOPER)
	cfg.WatchdogHorizon = 1_000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.wd == nil || m.plan != nil {
		t.Fatal("explicit horizon must arm the watchdog without a plan")
	}
	// An empty (inject-nothing) spec compiles no plan and arms no watchdog.
	cfg = TableI(TSOPER)
	cfg.Faults = &faultplan.Spec{}
	m, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.plan != nil || m.wd != nil {
		t.Fatal("empty spec must stay inert")
	}
	// A healthy watchdog-armed run completes without tripping.
	cfg = TableI(TSOPER)
	cfg.WatchdogHorizon = 50_000
	m, _ = New(cfg)
	w := trace.Generate(smallProfile(100), cfg.Cores, 2)
	if _, err := m.RunChecked(w); err != nil {
		t.Fatalf("healthy run tripped: %v", err)
	}
}

// The invalid-schedule gate: Config.Validate must surface faultplan errors.
func TestInvalidFaultSpecRejected(t *testing.T) {
	cfg := faultedConfig(faultplan.Spec{NVM: faultplan.NVMSpec{WriteFailPct: 2}})
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid fault spec must be rejected")
	}
}

// Crash states under a fault plan carry the ledger and the stall verdict.
func TestCrashStateCarriesFaultLedger(t *testing.T) {
	spec, _ := faultplan.Preset("nvm-transient")
	cfg := faultedConfig(spec)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(200), cfg.Cores, 11)
	cs := m.RunWithCrash(w, 20_000)
	if cs.Stalled {
		t.Fatalf("healthy faulted run flagged stalled: %v", cs.Stall)
	}
	if cs.FaultCounts.Injected() == 0 {
		t.Fatal("crash state must carry the injection ledger")
	}
}
