package machine

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fuzzSystems is the system roster the fuzzer picks from.
var fuzzSystems = [...]SystemKind{TSOPER, STW, BSPSLCAGB, HWRP}

// FuzzCheckpoint fuzzes both halves of the checkpoint contract on one
// small workload family:
//
//   - round trip: checkpoint a machine at an arbitrary cycle, restore the
//     blob, finish the run, and demand results identical to a
//     straight-through run of the same workload;
//   - robustness: a blob with one byte flipped, or truncated, must fail
//     Restore with one of the typed ckpt errors — never panic, never
//     silently succeed with the mutation in a load-bearing position.
func FuzzCheckpoint(f *testing.F) {
	f.Add(int64(1), uint16(0), uint8(0), uint32(0), uint8(0), uint16(0))
	f.Add(int64(7), uint16(300), uint8(1), uint32(9), uint8(0xFF), uint16(0))
	f.Add(int64(42), uint16(65535), uint8(2), uint32(11), uint8(0), uint16(40))
	f.Add(int64(13), uint16(800), uint8(3), uint32(1<<20), uint8(1), uint16(9999))
	// High nibble of sysPick selects the coherence backend — these seeds put
	// the tardis timestamp section into the mutated-blob corpus.
	f.Add(int64(5), uint16(20000), uint8(0x20), uint32(500), uint8(0x80), uint16(200))
	f.Add(int64(23), uint16(50000), uint8(0x21), uint32(1200), uint8(3), uint16(0))

	f.Fuzz(func(t *testing.T, seed int64, cycleFrac uint16, sysPick uint8,
		mutPos uint32, mutXor uint8, truncTo uint16) {
		cfg := ckptConfig(fuzzSystems[int(sysPick&0x0F)%len(fuzzSystems)])
		cohs := Coherences()
		cfg.Coherence = cohs[int(sysPick>>4)%len(cohs)]
		p := trace.Profile{
			Name: "ckpt-fuzz", OpsPerCore: 120, StoreFrac: 0.5,
			SharedFrac: 0.4, SharedLines: 32, PrivateLines: 64,
			HotFrac: 0.5, HotLines: 4, Locality: 0.3,
			SyncPeriod: 40, CSStores: 3, ComputeMean: 2,
		}
		w := trace.Generate(p, cfg.Cores, seed)
		straight := runStraight(t, cfg, w)

		// Checkpoint at an arbitrary point of the run, including the drain
		// window and past the end.
		at := sim.Time(uint64(straight.DrainCycles+100) * uint64(cycleFrac) / 65535)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Start(trace.Generate(p, cfg.Cores, seed))
		if _, err := m.Advance(at); err != nil {
			t.Fatal(err)
		}
		blob, err := m.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}

		// Round trip: restore, finish, compare.
		r, err := Restore(cfg, trace.Generate(p, cfg.Cores, seed), blob)
		if err != nil {
			t.Fatalf("restore of a pristine blob at cycle %d: %v", at, err)
		}
		for {
			done, err := r.Advance(sim.MaxTime)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		got := r.Results()
		if got.Cycles != straight.Cycles || got.DrainCycles != straight.DrainCycles {
			t.Fatalf("resumed run cycles (%d, %d) != straight (%d, %d)",
				got.Cycles, got.DrainCycles, straight.Cycles, straight.DrainCycles)
		}
		for line, vs := range straight.LineOrder {
			rvs := got.LineOrder[line]
			if len(rvs) != len(vs) {
				t.Fatalf("line %v order length %d != %d", line, len(rvs), len(vs))
			}
			for i := range vs {
				if rvs[i] != vs[i] {
					t.Fatalf("line %v order[%d] %v != %v", line, i, rvs[i], vs[i])
				}
			}
		}

		// Robustness: mutations must yield typed errors, never panics. A
		// mutation may also leave the blob semantically intact (a byte in a
		// section name length that still parses, xor 0) — restoring
		// successfully is fine; panicking or hanging is not.
		mutated := append([]byte(nil), blob...)
		mutated[int(mutPos)%len(mutated)] ^= mutXor
		if _, err := Restore(cfg, trace.Generate(p, cfg.Cores, seed), mutated); err != nil {
			requireTypedCkptErr(t, err)
		}
		truncated := blob[:int(truncTo)%(len(blob)+1)]
		if _, err := Restore(cfg, trace.Generate(p, cfg.Cores, seed), truncated); err != nil {
			requireTypedCkptErr(t, err)
		} else if len(truncated) < len(blob) {
			t.Fatalf("restore accepted a blob truncated to %d of %d bytes", len(truncated), len(blob))
		}
	})
}

// requireTypedCkptErr asserts err belongs to the typed checkpoint failure
// classes (possibly wrapped by the restore-replay path).
func requireTypedCkptErr(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, ckpt.ErrFormat) || errors.Is(err, ckpt.ErrVersion) ||
		errors.Is(err, ckpt.ErrConfigMismatch) || errors.Is(err, ckpt.ErrDivergence) {
		return
	}
	t.Fatalf("restore failed with an untyped error: %v", err)
}
