package machine

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// The telemetry overhead guard: instrumentation is compiled into every hot
// path, so the no-sink configuration must stay essentially free — each
// emission site reduces to one nil check and the machine allocates no
// telemetry state at all.

// TestNoSinkEmissionZeroAlloc pins the per-emission cost without a sink to
// zero allocations on every machine-side emission helper.
func TestNoSinkEmissionZeroAlloc(t *testing.T) {
	m, err := New(TableI(TSOPER))
	if err != nil {
		t.Fatal(err)
	}
	g := m.sys.(*tsoperSys).trackers[0].Open()
	checks := map[string]func(){
		"emit":        func() { m.emit(Event{Kind: EvFreeze, Core: 0, Group: 1}) },
		"agBegin":     func() { m.agBegin(g, agPhaseOpen) },
		"agEnd":       func() { m.agEnd(g, agPhaseOpen) },
		"evbufSample": func() { m.evbufSample(0) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call without a sink", name, allocs)
		}
	}
}

// The benchmark triple tracked by the CI bench job (results/bench.json):
// regressions in the no-sink number mean the disabled-telemetry path grew.

func benchmarkRun(b *testing.B, mkBus func() *telemetry.Bus) {
	for i := 0; i < b.N; i++ {
		cfg := TableI(TSOPER)
		cfg.Telemetry = mkBus()
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w := trace.Generate(smallProfile(400), cfg.Cores, 17)
		m.Run(w)
	}
}

func BenchmarkRunTelemetryOff(b *testing.B) {
	benchmarkRun(b, func() *telemetry.Bus { return nil })
}

func BenchmarkRunTelemetryCounting(b *testing.B) {
	benchmarkRun(b, func() *telemetry.Bus { return telemetry.NewBus(&telemetry.CountingSink{}) })
}

func BenchmarkRunTelemetryTrace(b *testing.B) {
	benchmarkRun(b, func() *telemetry.Bus { return telemetry.NewBus(telemetry.NewTraceSink()) })
}

// BenchmarkEmitNoSink isolates one emission site with telemetry disabled:
// the per-call cost the "within ~5% of baseline" budget rests on.
func BenchmarkEmitNoSink(b *testing.B) {
	m, err := New(TableI(TSOPER))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.emit(Event{Kind: EvFreeze, Core: 0, Group: 1})
	}
}
