package machine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// Randomized robustness: random small workload profiles and random machine
// configurations across every system must complete without deadlock, and
// the strict systems must always leave a complete, ordered durable image
// and an acyclic persist-before graph.
func TestFuzzConfigurationsAndWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 24; trial++ {
		p := trace.Profile{
			Name:         "fuzz",
			OpsPerCore:   150 + rng.Intn(250),
			StoreFrac:    0.15 + rng.Float64()*0.5,
			SharedFrac:   rng.Float64() * 0.8,
			SharedLines:  8 + rng.Intn(256),
			PrivateLines: 8 + rng.Intn(256),
			HotFrac:      rng.Float64() * 0.7,
			HotLines:     1 + rng.Intn(12),
			Locality:     rng.Float64() * 0.8,
			SyncPeriod:   40 + rng.Intn(300),
			CSStores:     1 + rng.Intn(3),
			CSBurst:      1 + rng.Intn(4),
			ComputeMean:  rng.Intn(5),
			FalseSharing: rng.Float64() * 0.5,
		}
		kind := Systems()[rng.Intn(len(Systems()))]
		cfg := TableI(kind)
		cfg.Cores = 2 + rng.Intn(7)
		cfg.StoreBufferEntries = 2 + rng.Intn(56)
		cfg.EvictBufEntries = 2 + rng.Intn(16)
		if kind != BSPSLCAGB {
			cfg.AGB.LinesPerSlice = 20 + rng.Intn(160)
		}
		if cfg.AGLimit > cfg.AGB.LinesPerSlice {
			cfg.AGLimit = cfg.AGB.LinesPerSlice
		}
		cfg.BSPEpochStores = 20 + rng.Intn(2000)

		m, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, kind, err)
		}
		w := trace.Generate(p, cfg.Cores, int64(trial))
		r := m.Run(w) // panics on deadlock

		if r.Stores == 0 {
			t.Fatalf("trial %d (%v): no stores ran", trial, kind)
		}
		if kind == STW || kind == TSOPER {
			for line, order := range r.LineOrder {
				if got := r.Durable[line]; got != order[len(order)-1] {
					t.Fatalf("trial %d (%v): line %v durable %v want %v",
						trial, kind, line, got, order[len(order)-1])
				}
			}
			for _, g := range r.Groups {
				if g.State() != core.Retired {
					t.Fatalf("trial %d (%v): group %v not retired", trial, kind, g)
				}
				if g.Size() > cfg.AGLimit {
					t.Fatalf("trial %d (%v): group %v over limit %d", trial, kind, g, cfg.AGLimit)
				}
			}
			if err := core.CheckAcyclic(r.Groups); err != nil {
				t.Fatalf("trial %d (%v): %v", trial, kind, err)
			}
		}
	}
}

// Crash-point fuzzing lives in internal/checker (which can import this
// package); see checker.TestFuzzCrashPoints.
