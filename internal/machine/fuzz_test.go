package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// pct maps a fuzzed byte onto [0, 1).
func pct(b uint8) float64 { return float64(b) / 256 }

// FuzzMachineInvariants is the native fuzz form of the old hand-rolled
// randomized robustness loop: arbitrary small workload profiles and machine
// configurations across every system must complete without deadlock, and
// the strict systems must always leave a complete, ordered durable image
// and an acyclic persist-before graph.
//
// Under plain `go test` only the seed corpus below runs (deterministic
// replay); `go test -fuzz=FuzzMachineInvariants` explores further.
func FuzzMachineInvariants(f *testing.F) {
	// Seed corpus: one entry per system kind plus contended/eviction-heavy
	// shapes, standing in for the 24 trials of the old loop.
	f.Add(uint8(0), uint8(4), uint16(200), uint8(90), uint8(120), uint16(64), uint16(64), uint8(80), uint8(4), uint8(100), uint16(120), uint8(2), uint8(2), uint8(40), uint8(24), uint8(4), uint8(80), int64(1))
	f.Add(uint8(1), uint8(8), uint16(300), uint8(200), uint8(220), uint16(16), uint16(16), uint8(230), uint8(2), uint8(30), uint16(60), uint8(3), uint8(4), uint8(120), uint8(8), uint8(2), uint8(30), int64(2))
	f.Add(uint8(2), uint8(2), uint16(150), uint8(40), uint8(10), uint16(200), uint16(200), uint8(10), uint8(11), uint8(200), uint16(280), uint8(1), uint8(1), uint8(0), uint8(50), uint8(15), uint8(150), int64(3))
	f.Add(uint8(3), uint8(6), uint16(250), uint8(130), uint8(90), uint16(100), uint16(30), uint8(120), uint8(6), uint8(60), uint16(200), uint8(2), uint8(3), uint8(90), uint8(30), uint8(8), uint8(100), int64(4))
	f.Add(uint8(4), uint8(3), uint16(350), uint8(255), uint8(180), uint16(40), uint16(120), uint8(180), uint8(1), uint8(0), uint16(90), uint8(3), uint8(2), uint8(255), uint8(16), uint8(6), uint8(60), int64(5))
	f.Add(uint8(2), uint8(7), uint16(400), uint8(170), uint8(255), uint16(8), uint16(8), uint8(255), uint8(2), uint8(128), uint16(40), uint8(3), uint8(4), uint8(128), uint8(4), uint8(2), uint8(0), int64(6))

	f.Fuzz(func(t *testing.T, sys, cores uint8, ops uint16, storeB, sharedB uint8,
		sharedLines, privateLines uint16, hotB, hotLines, localB uint8, syncPeriod uint16,
		csStores, csBurst, fsB, sbEntries, evEntries, agbLines uint8, seed int64) {
		p := trace.Profile{
			Name:         "fuzz",
			OpsPerCore:   150 + int(ops)%251,
			StoreFrac:    0.15 + pct(storeB)*0.5,
			SharedFrac:   pct(sharedB) * 0.8,
			SharedLines:  8 + int(sharedLines)%256,
			PrivateLines: 8 + int(privateLines)%256,
			HotFrac:      pct(hotB) * 0.7,
			HotLines:     1 + int(hotLines)%12,
			Locality:     pct(localB) * 0.8,
			SyncPeriod:   40 + int(syncPeriod)%300,
			CSStores:     1 + int(csStores)%3,
			CSBurst:      1 + int(csBurst)%4,
			ComputeMean:  int(uint64(seed) % 5),
			FalseSharing: pct(fsB) * 0.5,
		}
		kind := Systems()[int(sys)%len(Systems())]
		cfg := TableI(kind)
		cfg.Cores = 2 + int(cores)%7
		cfg.StoreBufferEntries = 2 + int(sbEntries)%56
		cfg.EvictBufEntries = 2 + int(evEntries)%16
		if kind != BSPSLCAGB {
			cfg.AGB.LinesPerSlice = 20 + int(agbLines)%160
		}
		if cfg.AGLimit > cfg.AGB.LinesPerSlice {
			cfg.AGLimit = cfg.AGB.LinesPerSlice
		}
		cfg.BSPEpochStores = 20 + int(ops)%2000

		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		w := trace.Generate(p, cfg.Cores, seed)
		r := m.Run(w) // panics on deadlock

		if r.Stores == 0 {
			t.Fatalf("%v: no stores ran", kind)
		}
		if kind == STW || kind == TSOPER {
			for line, order := range r.LineOrder {
				if got := r.Durable[line]; got != order[len(order)-1] {
					t.Fatalf("%v: line %v durable %v want %v", kind, line, got, order[len(order)-1])
				}
			}
			for _, g := range r.Groups {
				if g.State() != core.Retired {
					t.Fatalf("%v: group %v not retired", kind, g)
				}
				if g.Size() > cfg.AGLimit {
					t.Fatalf("%v: group %v over limit %d", kind, g, cfg.AGLimit)
				}
			}
			if err := core.CheckAcyclic(r.Groups); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
	})
}

// Crash-point fuzzing lives in internal/checker (which can import this
// package); see checker.FuzzCrashConsistency.
