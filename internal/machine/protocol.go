package machine

import (
	"fmt"

	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// This file implements the coherence transaction paths. All protocol and
// persistency state mutates atomically at the directory-serialization
// instant (the home LLC bank's access event); the latencies computed there
// only delay when the requesting core resumes. The single-threaded event
// engine makes the serialization order identical to the event order, so no
// transient protocol races need modeling — matching the role the directory
// plays in the real protocol, where it orders all operations per line.

// nodeOf returns cacheID's sharing-list node for line, if any.
func (m *Machine) nodeOf(cacheID int, line mem.Line) *slc.Node {
	if lst := m.dir.Peek(line); lst != nil {
		return lst.NodeOf(cacheID)
	}
	return nil
}

// load services a core's load. done runs when the value is available.
func (m *Machine) load(c *coreUnit, line mem.Line, done func()) {
	node := m.nodeOf(c.id, line)
	if node != nil && node.Valid {
		// Private hit (cache frame or eviction buffer, same latency).
		if pc := m.priv[c.id]; pc.arr.Peek(line) != nil {
			pc.arr.Lookup(line) // LRU touch
		}
		m.engine.Schedule(m.cfg.PrivHit, done)
		return
	}
	if node != nil {
		// Invalid copy pending persist: the frame is unusable until the
		// version leaves for the persistent domain (§II-A multiversioning).
		m.waitLineFree(c.id, line, func() { m.load(c, line, done) })
		return
	}
	m.readTransaction(c, line, done)
}

// store retires one store-buffer entry. done runs when the store has
// committed to the private cache (TSO: the store buffer may then pop it).
func (m *Machine) store(c *coreUnit, line mem.Line, ver mem.Version, done func()) {
	m.sys.gateStore(c, line, func() { m.storeAttempt(c, line, ver, done) })
}

func (m *Machine) storeAttempt(c *coreUnit, line mem.Line, ver mem.Version, done func()) {
	node := m.nodeOf(c.id, line)
	if node != nil {
		if !node.Valid {
			m.waitLineFree(c.id, line, func() { m.store(c, line, ver, done) })
			return
		}
		if node.Dirty {
			// Write hit on our own dirty copy: coalesce in place. The
			// gate guaranteed the owning group is still open.
			m.priv[c.id].arr.Lookup(line)
			m.dir.List(line).MarkDirty(node, ver)
			m.recordStore(line, ver)
			m.sys.storeCommitted(c, node, nil)
			m.engine.Schedule(m.cfg.PrivHit, done)
			return
		}
		// Clean valid copy: upgrade (invalidation round, no data fetch).
		m.writeTransaction(c, line, ver, node, done)
		return
	}
	m.writeTransaction(c, line, ver, nil, done)
}

// readTransaction is a GetS miss: request to the home bank, data from the
// current owner, the LLC, or NVM.
func (m *Machine) readTransaction(c *coreUnit, line mem.Line, done func()) {
	src := m.coreNode(c.id)
	bank := m.bankOf(line)
	bnode := m.bankNode(bank)
	reqArrive := m.net.Send(src, bnode, nil)
	start := m.banks.Claim(bank, reqArrive, m.cfg.BankOccupancy)
	dirAt := start + m.cfg.LLCLatency
	m.engine.At(dirAt, func() {
		lst := m.dir.List(line)
		vd := lst.DirtyNewest()
		if vd != nil && !vd.Valid {
			// The producing version is invalid-pending; the newest valid
			// data is in the LLC (it was written back at invalidation).
			vd = nil
		}
		var extra sim.Time
		if vd != nil {
			extra = m.sys.exposed(vd, false)
			// Downgrade writeback: the LLC is kept current (§II-B).
			m.llcFill(line, vd.Version)
			m.coherenceWrites.Inc()
		}
		observed := m.current[line]
		agid := uint64(0)
		node := lst.AddHead(c.id, true, false, observed, agid)
		if vd != nil {
			// Read of an unpersisted version: include the line in the
			// reader's group and record the dependency (§III-A).
			m.sys.loadObservedDirty(c, node, vd)
		}
		m.dir.Sample(line)

		finish := func(dataReady sim.Time) {
			m.insertFrame(c.id, line, node, func() {
				m.engine.At(maxTime(dataReady, m.engine.Now()), done)
			})
		}
		switch {
		case vd != nil:
			// Forward: bank -> owner -> requester.
			owner := m.coreNode(vd.Cache)
			fwdArrive := m.net.Send(bnode, owner, nil)
			m.engine.At(fwdArrive+m.cfg.PrivHit+extra, func() {
				arrive := m.net.Send(owner, src, nil)
				finish(arrive)
			})
		case m.llc.Lookup(line) != nil:
			arrive := m.net.Send(bnode, src, nil)
			finish(arrive + extra)
		default:
			if _, inAGB := m.buffer.Lookup(line); inAGB {
				// AGB search under the LLC-miss shadow (§II-B): the line
				// was evicted from the LLC but a newer version still sits
				// in the persist buffer; serve it at buffer latency.
				m.set.Counter("agb.search_hits").Inc()
				arrive := m.net.Send(bnode, src, nil)
				finish(arrive + m.cfg.AGB.TransferLatency + extra)
				return
			}
			memDone := m.memory.Read(line, nil)
			m.llcFill(line, observed)
			m.engine.At(memDone, func() {
				arrive := m.net.Send(bnode, src, nil)
				finish(arrive + extra)
			})
		}
	})
}

// writeTransaction is a GetX miss or an upgrade of a clean valid copy
// (upgrade != nil). All other valid copies are invalidated with a serial
// sharing-list walk; data comes from the owner, the LLC, or NVM.
func (m *Machine) writeTransaction(c *coreUnit, line mem.Line, ver mem.Version, upgrade *slc.Node, done func()) {
	src := m.coreNode(c.id)
	bank := m.bankOf(line)
	bnode := m.bankNode(bank)
	reqArrive := m.net.Send(src, bnode, nil)
	start := m.banks.Claim(bank, reqArrive, m.cfg.BankOccupancy)
	dirAt := start + m.cfg.LLCLatency
	m.engine.At(dirAt, func() {
		lst := m.dir.List(line)
		if upgrade != nil && (!upgrade.Valid || upgrade.Dirty) {
			// Our copy changed while the upgrade was in flight (another
			// writer invalidated it): restart as a full miss.
			m.store(c, line, ver, done)
			return
		}
		vd := lst.DirtyNewest()
		if vd != nil && !vd.Valid {
			vd = nil
		}
		var extra sim.Time
		needData := upgrade == nil
		llcHit := m.llc.Lookup(line) != nil
		if vd != nil {
			extra = m.sys.exposed(vd, true)
			m.llcFill(line, vd.Version)
			m.coherenceWrites.Inc()
		}

		// Serial invalidation walk over the remaining valid copies.
		nInval := 0
		destructive := m.sys.destructive(line)
		for _, n := range lst.ValidNodes() {
			if n.Cache == c.id {
				continue
			}
			nInval++
			if destructive {
				if n.Dirty {
					m.llcFill(line, n.Version)
				}
				m.applyUpdate(lst.RemoveDestructive(n))
			} else {
				m.applyUpdate(lst.Invalidate(n))
			}
		}
		m.invalWalks.Observe(uint64(nInval))
		// SLC walks the sharing list serially (one hop per valid copy);
		// a conventional directory multicasts invalidations in parallel.
		walk := sim.Time(nInval) * m.cfg.NoC.HopLatency
		if m.cfg.Coherence == CoherenceMESI && nInval > 0 {
			walk = m.cfg.NoC.HopLatency
		}

		// Install the new version at the head of the list.
		var node *slc.Node
		if upgrade != nil {
			m.applyUpdate(lst.MoveToHead(upgrade))
			lst.MarkDirty(upgrade, ver)
			node = upgrade
		} else {
			node = lst.AddHead(c.id, true, true, ver, 0)
		}
		m.recordStore(line, ver)
		m.sys.storeCommitted(c, node, vd)
		m.dir.Sample(line)

		finish := func(dataReady sim.Time) {
			m.insertFrame(c.id, line, node, func() {
				m.engine.At(maxTime(dataReady, m.engine.Now()), done)
			})
		}
		switch {
		case !needData:
			arrive := m.net.Send(bnode, src, nil)
			finish(arrive + walk + extra)
		case vd != nil:
			owner := m.coreNode(vd.Cache)
			fwdArrive := m.net.Send(bnode, owner, nil)
			m.engine.At(fwdArrive+m.cfg.PrivHit+extra, func() {
				arrive := m.net.Send(owner, src, nil)
				finish(arrive + walk)
			})
		case llcHit:
			arrive := m.net.Send(bnode, src, nil)
			finish(arrive + walk + extra)
		default:
			memDone := m.memory.Read(line, nil)
			m.llcFill(line, ver)
			m.engine.At(memDone, func() {
				arrive := m.net.Send(bnode, src, nil)
				finish(arrive + walk + extra)
			})
		}
	})
}

// recordStore logs the directory-serialized version order per line (the
// coherence order the crash checker validates against) and the current
// coherent version.
func (m *Machine) recordStore(line mem.Line, ver mem.Version) {
	m.lineOrder[line] = append(m.lineOrder[line], ver)
	m.current[line] = ver
}

// llcFill installs or refreshes a line in the LLC. The directory lives with
// the LLC banks, so an LLC eviction is also a directory eviction (§III-B):
// if the victim line has an unpersisted dirty copy, its group freezes and
// persists; the line's data survives in the private caches / AGB, and
// correctness is version-tracked independently of LLC residency.
func (m *Machine) llcFill(line mem.Line, ver mem.Version) {
	if e := m.llc.Peek(line); e != nil {
		e.Data = ver
		return
	}
	_, victim := m.llc.Insert(line, ver)
	if victim == nil {
		return
	}
	if lst := m.dir.Peek(victim.Line); lst != nil {
		if vd := lst.DirtyNewest(); vd != nil {
			m.set.Counter("dir.evictions").Inc()
			m.sys.dirEvicted(vd)
		}
	}
}

// insertFrame secures a private-cache frame for node, relocating or
// dropping a victim first. If the victim must be retained for persistency
// (dirty, or invalid-pending) and the eviction buffer is full, the fill
// stalls until space frees (§III-B).
func (m *Machine) insertFrame(cacheID int, line mem.Line, node *slc.Node, then func()) {
	pc := m.priv[cacheID]
	if !node.OnList() {
		// The node resolved (e.g. persisted and collapsed) before the fill
		// completed; no frame needed.
		then()
		return
	}
	if e := pc.arr.Peek(line); e != nil {
		// Frame already present (e.g. re-dirtying an existing copy).
		e.Data = node
		then()
		return
	}
	if v := pc.arr.Victim(line); v != nil {
		vnode := v.Data
		if m.sys.destructive(v.Line) {
			// Conventional protocols: dirty victims write back and leave
			// the list; persistency reacts via the eviction hook (HW-RP's
			// spontaneous persist, BSP's epoch flush).
			if vnode.Dirty && vnode.Valid {
				m.llcFill(v.Line, vnode.Version)
				m.coherenceWrites.Inc()
				m.sys.evictedDirty(vnode)
			}
			pc.arr.Remove(v.Line)
			m.applyUpdate(m.dir.List(v.Line).RemoveDestructive(vnode))
		} else if vnode.Dirty || !vnode.Valid {
			// Must be retained until persisted: move to eviction buffer.
			if !pc.evbuf.Put(v.Line, vnode) {
				m.evbufWait(cacheID, func() { m.insertFrame(cacheID, line, node, then) })
				return
			}
			m.evbufSample(cacheID)
			pc.arr.Remove(v.Line)
			if vnode.Dirty && vnode.Valid {
				// Exposing a dirty line to the LLC: writeback + the
				// system's eviction persist policy (§II-A trigger 1).
				m.llcFill(v.Line, vnode.Version)
				m.coherenceWrites.Inc()
				m.sys.evictedDirty(vnode)
			}
		} else {
			// Clean valid: silent drop, leave the sharing list.
			pc.arr.Remove(v.Line)
			m.applyUpdate(m.dir.List(v.Line).RemoveClean(vnode))
		}
	}
	if e, _ := pc.arr.Insert(line, node); e == nil {
		panic(fmt.Sprintf("machine: cache %d set for %v unexpectedly unfillable", cacheID, line))
	}
	then()
}

// evbufWait parks a continuation until cacheID's eviction buffer releases
// an entry.
func (m *Machine) evbufWait(cacheID int, fn func()) {
	m.evbufWaiters[cacheID] = append(m.evbufWaiters[cacheID], fn)
}

// evbufReleased wakes eviction-buffer waiters for cacheID.
func (m *Machine) evbufReleased(cacheID int) {
	m.emit(Event{Kind: EvEvictDrain, Core: cacheID})
	m.evbufSample(cacheID)
	ws := m.evbufWaiters[cacheID]
	if len(ws) == 0 {
		return
	}
	m.evbufWaiters[cacheID] = nil
	for _, fn := range ws {
		fn := fn
		m.engine.Schedule(0, fn)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
