package machine

import (
	"fmt"

	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// This file implements the coherence transaction paths. All protocol and
// persistency state mutates atomically at the directory-serialization
// instant (the home LLC bank's access event); the latencies computed there
// only delay when the requesting core resumes. The single-threaded event
// engine makes the serialization order identical to the event order, so no
// transient protocol races need modeling — matching the role the directory
// plays in the real protocol, where it orders all operations per line.

// nodeOf returns cacheID's sharing-list node for line, if any.
func (m *Machine) nodeOf(cacheID int, line mem.Line) *slc.Node {
	if lst := m.dir.Peek(line); lst != nil {
		return lst.NodeOf(cacheID)
	}
	return nil
}

// load services a core's load. done runs when the value is available. A
// miss runs on the core's pooled readTxn (txn.go) — cores block on loads,
// so at most one is in flight per core.
func (m *Machine) load(c *coreUnit, line mem.Line, done func()) {
	node := m.nodeOf(c.id, line)
	if node != nil && node.Valid {
		// Private hit (cache frame or eviction buffer, same latency).
		if pc := m.priv[c.id]; pc.arr.Peek(line) != nil {
			pc.arr.Lookup(line) // LRU touch
		}
		if m.coh.needsRenewal(c.id, line, node) {
			// Tardis lease expiry: the copy is valid but logically stale —
			// a renewal round trip to the home bank re-extends the lease
			// before the hit is served (the cost the timestamp protocol
			// pays instead of invalidation traffic).
			t := c.rn
			t.line, t.done = line, done
			t.start()
			return
		}
		m.engine.Schedule(m.cfg.PrivHit, done)
		return
	}
	t := c.rd
	t.line, t.done = line, done
	if node != nil {
		// Invalid copy pending persist: the frame is unusable until the
		// version leaves for the persistent domain (§II-A multiversioning).
		m.waitLineFree(c.id, line, t.retryFn)
		return
	}
	t.start()
}

// store retires one store-buffer entry. done runs when the store has
// committed to the private cache (TSO: the store buffer may then pop it).
// It runs on the core's pooled writeTxn (txn.go) — the store buffer drains
// serially, so at most one is in flight per core.
func (m *Machine) store(c *coreUnit, line mem.Line, ver mem.Version, done func()) {
	t := c.wr
	t.line, t.ver, t.done = line, ver, done
	m.sys.gateStore(c, line, t.attemptFn)
}

// recordStore logs the directory-serialized version order per line (the
// coherence order the crash checker validates against) and the current
// coherent version.
func (m *Machine) recordStore(line mem.Line, ver mem.Version) {
	s, ok := m.lineOrder[line]
	if !ok {
		// Carve the per-line log's initial capacity from a shared slab: most
		// lines never outgrow it, so this collapses one allocation per touched
		// line into one per 256 lines. A log that does outgrow its 16 slots
		// escapes to the heap via append's usual doubling.
		if len(m.verSlab) < 16 {
			m.verSlab = make([]mem.Version, 4096)
		}
		s = m.verSlab[0:0:16]
		m.verSlab = m.verSlab[16:]
	}
	m.lineOrder[line] = append(s, ver)
	m.current[line] = ver
}

// llcFill installs or refreshes a line in the LLC. The directory lives with
// the LLC banks, so an LLC eviction is also a directory eviction (§III-B):
// if the victim line has an unpersisted dirty copy, its group freezes and
// persists; the line's data survives in the private caches / AGB, and
// correctness is version-tracked independently of LLC residency.
func (m *Machine) llcFill(line mem.Line, ver mem.Version) {
	if e := m.llc.Peek(line); e != nil {
		e.Data = ver
		return
	}
	_, victim := m.llc.Insert(line, ver)
	if victim == nil {
		return
	}
	if lst := m.dir.Peek(victim.Line); lst != nil {
		if vd := lst.DirtyNewest(); vd != nil {
			m.set.Counter("dir.evictions").Inc()
			m.sys.dirEvicted(vd)
		}
	}
}

// insertFrame secures a private-cache frame for node, relocating or
// dropping a victim first. If the victim must be retained for persistency
// (dirty, or invalid-pending) and the eviction buffer is full, the fill
// stalls until space frees (§III-B).
func (m *Machine) insertFrame(cacheID int, line mem.Line, node *slc.Node, then func()) {
	pc := m.priv[cacheID]
	if !node.OnList() {
		// The node resolved (e.g. persisted and collapsed) before the fill
		// completed; no frame needed.
		then()
		return
	}
	if e := pc.arr.Peek(line); e != nil {
		// Frame already present (e.g. re-dirtying an existing copy).
		e.Data = node
		then()
		return
	}
	if v := pc.arr.Victim(line); v != nil {
		vnode := v.Data
		if m.sys.destructive(v.Line) {
			// Conventional protocols: dirty victims write back and leave
			// the list; persistency reacts via the eviction hook (HW-RP's
			// spontaneous persist, BSP's epoch flush).
			if vnode.Dirty && vnode.Valid {
				m.llcFill(v.Line, vnode.Version)
				m.coherenceWrites.Inc()
				m.sys.evictedDirty(vnode)
			}
			pc.arr.Remove(v.Line)
			m.applyUpdate(m.dir.List(v.Line).RemoveDestructive(vnode))
		} else if vnode.Dirty || !vnode.Valid {
			// Must be retained until persisted: move to eviction buffer.
			if !pc.evbuf.Put(v.Line, vnode) {
				m.evbufWait(cacheID, func() { m.insertFrame(cacheID, line, node, then) })
				return
			}
			m.evbufSample(cacheID)
			pc.arr.Remove(v.Line)
			if vnode.Dirty && vnode.Valid {
				// Exposing a dirty line to the LLC: writeback + the
				// system's eviction persist policy (§II-A trigger 1).
				m.llcFill(v.Line, vnode.Version)
				m.coherenceWrites.Inc()
				m.sys.evictedDirty(vnode)
			}
		} else {
			// Clean valid: silent drop, leave the sharing list.
			pc.arr.Remove(v.Line)
			m.applyUpdate(m.dir.List(v.Line).RemoveClean(vnode))
		}
	}
	if e, _ := pc.arr.Insert(line, node); e == nil {
		panic(fmt.Sprintf("machine: cache %d set for %v unexpectedly unfillable", cacheID, line))
	}
	then()
}

// evbufWait parks a continuation until cacheID's eviction buffer releases
// an entry.
func (m *Machine) evbufWait(cacheID int, fn func()) {
	m.evbufWaiters[cacheID] = append(m.evbufWaiters[cacheID], fn)
}

// evbufReleased wakes eviction-buffer waiters for cacheID.
func (m *Machine) evbufReleased(cacheID int) {
	m.emit(Event{Kind: EvEvictDrain, Core: cacheID})
	m.evbufSample(cacheID)
	ws := m.evbufWaiters[cacheID]
	if len(ws) == 0 {
		return
	}
	m.evbufWaiters[cacheID] = nil
	for _, fn := range ws {
		fn := fn
		m.engine.Schedule(0, fn)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
