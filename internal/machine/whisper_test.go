package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// sharedOnly accepts only lines in the synthetic shared region — the
// "persistent addresses" of the WHISPER-style hybrid.
func sharedOnly(l mem.Line) bool {
	return l >= mem.LineOf(trace.SharedBase) && l < mem.LineOf(trace.PrivateBase)
}

// Selective persistency (§V baseline discussion): with a persist filter,
// only persistent lines get atomic-group treatment; private traffic runs
// like a conventional protocol.
func TestSelectivePersistency(t *testing.T) {
	p := smallProfile(400)
	full := runSmall(t, TSOPER, 400, 17)

	cfg := TableI(TSOPER)
	cfg.PersistFilter = sharedOnly
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := m.Run(trace.Generate(p, cfg.Cores, 17))

	if sel.TotalPersistWrites >= full.TotalPersistWrites {
		t.Fatalf("selective persists %d should be below full %d",
			sel.TotalPersistWrites, full.TotalPersistWrites)
	}
	// Only persistent lines may appear in the durable image.
	for line, v := range sel.Durable {
		if !sharedOnly(line) && !v.IsInitial() {
			t.Fatalf("non-persistent line %v reached NVM (%v)", line, v)
		}
	}
	// Persistent lines still persist completely.
	for line, order := range sel.LineOrder {
		if !sharedOnly(line) {
			continue
		}
		if got := sel.Durable[line]; got != order[len(order)-1] {
			t.Fatalf("persistent line %v durable %v, want %v", line, got, order[len(order)-1])
		}
	}
	// Groups contain only persistent lines.
	for _, g := range sel.Groups {
		for line := range g.DirtyLines() {
			if !sharedOnly(line) {
				t.Fatalf("group %v tracks non-persistent line %v", g, line)
			}
		}
	}
}

// The hybrid must never be slower than full-coverage TSOPER on the same
// workload: it strictly removes persistency work.
func TestSelectiveNotSlower(t *testing.T) {
	p := smallProfile(400)
	full := runSmall(t, TSOPER, 400, 29)
	cfg := TableI(TSOPER)
	cfg.PersistFilter = sharedOnly
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := m.Run(trace.Generate(p, cfg.Cores, 29))
	if sel.Cycles > full.Cycles+full.Cycles/20 {
		t.Fatalf("selective (%d) notably slower than full (%d)", sel.Cycles, full.Cycles)
	}
}
