package machine

import (
	"sort"

	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// hwrpSys models HW-RP, the hypothetical hardware relaxed-persistency
// system of §V ("Systems" 2): persists are unordered within a
// synchronization-free region (SFR) and ordered across synchronization
// points. Persistence is at cacheline granularity: at each sync, the core
// flushes every line it dirtied during the ending SFR; dirty lines that are
// invalidated or evicted persist spontaneously. Because SFRs bounded by
// critical sections are tiny (often one store), HW-RP coalesces far less
// than TSOPER and produces the highest persist traffic (Fig. 14, Fig. 15).
type hwrpSys struct {
	m *Machine
	// sfr tracks the lines dirtied in each core's current SFR.
	sfr []map[mem.Line]mem.Version
	// sfrStores counts stores in the current SFR (Fig. 15 histogram).
	sfrStores []int
	// outstanding counts a core's persists not yet durable; a sync stalls
	// while it exceeds the WPQ depth (persist-order backpressure).
	outstanding []int
	syncWaiters [][]func()
}

func newHWRPSys(m *Machine) *hwrpSys {
	s := &hwrpSys{m: m}
	for i := 0; i < m.cfg.Cores; i++ {
		s.sfr = append(s.sfr, make(map[mem.Line]mem.Version))
		s.sfrStores = append(s.sfrStores, 0)
		s.outstanding = append(s.outstanding, 0)
		s.syncWaiters = append(s.syncWaiters, nil)
	}
	return s
}

func (s *hwrpSys) destructive(mem.Line) bool { return true }

func (s *hwrpSys) gateStore(_ *coreUnit, _ mem.Line, proceed func()) { proceed() }

func (s *hwrpSys) storeCommitted(c *coreUnit, node *slc.Node, _ *slc.Node) {
	s.sfr[c.id][node.Line] = node.Version
	s.sfrStores[c.id]++
}

func (s *hwrpSys) loadObservedDirty(*coreUnit, *slc.Node, *slc.Node) {}

// exposed: an invalidated dirty line persists spontaneously — its value is
// about to be overwritten, and relaxed persistency still must not lose a
// write that a pre-crash observer could have seen.
func (s *hwrpSys) exposed(n *slc.Node, write bool) sim.Time {
	if write {
		s.persistLine(n.Cache, n.Line, n.Version)
	}
	return 0
}

// evictedDirty: spontaneous persist on eviction ("Evictions of dirty lines
// are counted as spontaneous persists").
func (s *hwrpSys) evictedDirty(n *slc.Node) {
	s.persistLine(n.Cache, n.Line, n.Version)
}

func (s *hwrpSys) nodeCleared(*slc.Node) {}

// marker: relaxed persistency has no atomic groups to delimit.
func (s *hwrpSys) marker(*coreUnit) {}

// dirEvicted: the line's owner still holds it; nothing to persist early.
func (s *hwrpSys) dirEvicted(*slc.Node) {}

// persistLine issues one cacheline persist through the per-rank WPQ.
func (s *hwrpSys) persistLine(coreID int, line mem.Line, ver mem.Version) {
	delete(s.sfr[coreID], line)
	s.m.persistWrites.Inc()
	s.outstanding[coreID]++
	// Durability point is WPQ admission (power-backed queue), not media
	// write completion — SFR persistency is buffered.
	s.m.memory.WriteBuffered(line, ver, func() {
		s.outstanding[coreID]--
		s.wake(coreID)
	}, nil)
}

// sync is the SFR boundary: flush the region's dirty lines, enforcing
// cross-SFR order by stalling when too many older persists are in flight.
func (s *hwrpSys) sync(c *coreUnit, done func()) {
	if s.outstanding[c.id] > s.m.cfg.WPQDepth {
		s.syncWaiters[c.id] = append(s.syncWaiters[c.id], func() { s.sync(c, done) })
		return
	}
	s.m.set.Dist("sfr.stores").Observe(uint64(s.sfrStores[c.id]))
	s.m.set.Dist("ag.size").Observe(uint64(len(s.sfr[c.id]))) // region size in lines
	s.m.timeline.Append(uint64(s.m.engine.Now()), float64(s.sfrStores[c.id]))
	s.sfrStores[c.id] = 0
	for _, lv := range sortedSFR(s.sfr[c.id]) {
		s.persistLine(c.id, lv.line, lv.ver)
	}
	done()
}

func (s *hwrpSys) wake(coreID int) {
	if s.outstanding[coreID] > s.m.cfg.WPQDepth {
		return
	}
	ws := s.syncWaiters[coreID]
	if len(ws) == 0 {
		return
	}
	s.syncWaiters[coreID] = nil
	for _, fn := range ws {
		fn := fn
		s.m.engine.Schedule(0, fn)
	}
}

// drain flushes every core's final SFR; durability completes as the engine
// drains the NVM writes.
func (s *hwrpSys) drain(done func()) {
	for id := range s.sfr {
		if s.sfrStores[id] > 0 {
			s.m.set.Dist("sfr.stores").Observe(uint64(s.sfrStores[id]))
		}
		for _, lv := range sortedSFR(s.sfr[id]) {
			s.persistLine(id, lv.line, lv.ver)
		}
	}
	done()
}

type sfrLine struct {
	line mem.Line
	ver  mem.Version
}

func sortedSFR(m map[mem.Line]mem.Version) []sfrLine {
	out := make([]sfrLine, 0, len(m))
	for l, v := range m {
		out = append(out, sfrLine{l, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}
