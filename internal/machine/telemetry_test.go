package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// runTraced runs a small TSOPER workload with a trace sink attached and
// returns the sink plus the results.
func runTraced(t *testing.T, kind SystemKind, ops int, seed int64) (*telemetry.TraceSink, *Results) {
	t.Helper()
	cfg := TableI(kind)
	sink := telemetry.NewTraceSink()
	cfg.Telemetry = telemetry.NewBus(sink)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(ops), cfg.Cores, seed)
	return sink, m.Run(w)
}

// eventTally groups the emitted events by (process, name).
func eventTally(sink *telemetry.TraceSink) map[string]int {
	tally := make(map[string]int)
	tracks := sink.Tracks()
	for _, e := range sink.Events() {
		proc := "unattributed"
		if int(e.Track) < len(tracks) {
			proc = tracks[e.Track].Process
		}
		tally[proc+"/"+e.Name]++
	}
	return tally
}

func TestTraceCoversAllSubsystems(t *testing.T) {
	sink, r := runTraced(t, TSOPER, 400, 11)
	if r.Stores == 0 {
		t.Fatal("degenerate run")
	}
	tally := eventTally(sink)

	// AG lifecycle spans on core tracks: every phase must appear, and every
	// Begin must be matched by an End (groups all retire in Run).
	for _, phase := range []string{agPhaseOpen, agPhaseFrozen, agPhaseDraining, agPhaseDurable} {
		if tally["cores/"+phase] == 0 {
			t.Errorf("no %q spans emitted", phase)
		}
	}
	var begins, ends int
	for _, e := range sink.Events() {
		if strings.HasPrefix(e.Name, "ag:") {
			switch e.Type {
			case telemetry.SpanBegin:
				begins++
			case telemetry.SpanEnd:
				ends++
			}
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("unbalanced AG spans: %d begins, %d ends", begins, ends)
	}

	// Sub-component activity.
	for _, want := range []string{
		"agb/agb.occupancy_lines", // AGB occupancy counter track
		"agb/allocate",
		"agb/retire",
		"nvm/write", // NVM rank spans
		"noc/msg",   // NoC message spans
		"slc/token-pass",
		"cores/freeze", // probe-kind instants ride the bus too
		"cores/line-buffered",
	} {
		if tally[want] == 0 {
			t.Errorf("no %q events emitted (tally: %v)", want, sink.Summary())
		}
	}

	// NVM queue-depth counters are per rank with unique names.
	depthTracks := 0
	for name := range tally {
		if strings.HasPrefix(name, "nvm/nvm.rank") && strings.HasSuffix(name, ".queue_depth") {
			depthTracks++
		}
	}
	if depthTracks == 0 {
		t.Error("no NVM rank queue-depth counters")
	}
}

func TestTraceWriteJSONFromMachine(t *testing.T) {
	sink, _ := runTraced(t, TSOPER, 300, 3)
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	// Async AG spans must be present ("b" phases with ids).
	asyncBegins := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "b" && strings.HasPrefix(fmt.Sprint(e["name"]), "ag:") {
			asyncBegins++
		}
	}
	if asyncBegins == 0 {
		t.Error("no async AG lifecycle spans in JSON output")
	}
}

// The probe must observe the identical event stream whether it is the only
// sink or composed with a full trace sink — it is an adapter on the bus.
func TestProbeAdapterEquivalence(t *testing.T) {
	collect := func(withBus bool) []Event {
		cfg := TableI(TSOPER)
		var events []Event
		cfg.Probe = func(e Event) { events = append(events, e) }
		if withBus {
			cfg.Telemetry = telemetry.NewBus(telemetry.NewTraceSink())
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(trace.Generate(smallProfile(300), cfg.Cores, 9))
		return events
	}
	probeOnly := collect(false)
	composed := collect(true)
	if len(probeOnly) == 0 {
		t.Fatal("probe saw no events")
	}
	if len(probeOnly) != len(composed) {
		t.Fatalf("probe stream diverges: %d events alone, %d composed with trace sink",
			len(probeOnly), len(composed))
	}
	for i := range probeOnly {
		if probeOnly[i] != composed[i] {
			t.Fatalf("event %d diverges: %v vs %v", i, probeOnly[i], composed[i])
		}
	}
	// Sanity: the adapter preserves payload fields.
	var sawLine, sawReason bool
	for _, e := range probeOnly {
		if e.Kind == EvLineBuffered && e.Line != 0 {
			sawLine = true
		}
		if e.Kind == EvFreeze && e.Reason != 0 {
			sawReason = true
		}
		if e.At == 0 && e.Kind != EvFreeze {
			t.Fatalf("event missing timestamp: %v", e)
		}
	}
	if !sawLine || !sawReason {
		t.Error("adapter dropped Line/Reason payloads")
	}
}

func TestResultsSnapshotResources(t *testing.T) {
	r := runSmall(t, TSOPER, 300, 4)
	if len(r.Resources) == 0 {
		t.Fatal("no resource snapshots")
	}
	for _, prefix := range []string{"llc.bank", "noc.node", "nvm.rank", "agb.slice"} {
		if _, ok := r.Resources[prefix+"0"]; !ok {
			t.Errorf("missing resource %s0 (have %d entries)", prefix, len(r.Resources))
		}
	}
	for name, rs := range r.Resources {
		if rs.Utilization < 0 || rs.Utilization > 1 {
			t.Errorf("%s: utilization %v out of [0,1]", name, rs.Utilization)
		}
	}
	s := r.Snapshot()
	if s.Cycles != uint64(r.Cycles) || len(s.Resources) != len(r.Resources) {
		t.Fatal("snapshot does not mirror results")
	}
	if len(s.Counters) == 0 || len(s.Dists) == 0 {
		t.Fatal("snapshot missing registry metrics")
	}
}

// Snapshots of two same-seed runs must serialize byte-identically.
func TestSnapshotDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		r := runSmall(t, TSOPER, 250, 21)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed snapshots differ byte-wise")
	}
}

// With no sink configured, instrumentation must not allocate or emit.
func TestNoSinkNoTelemetryState(t *testing.T) {
	cfg := TableI(TSOPER)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.tel != nil {
		t.Fatal("telemetry state allocated without a sink")
	}
	// A bus without a sink is equally inert.
	cfg.Telemetry = telemetry.NewBus(nil)
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.tel != nil {
		t.Fatal("telemetry state allocated for sinkless bus")
	}
}
