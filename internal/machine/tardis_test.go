package machine

import (
	"testing"

	"repro/internal/coherence/slc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func tardisConfig(system SystemKind) Config {
	cfg := TableI(system)
	cfg.Coherence = CoherenceTardis
	return cfg
}

// agreementChecker wraps the tardis backend and cross-checks every
// persist-ordering answer against the sharing list, which the machine still
// maintains as the retention structure. Directory serialization makes
// timestamp order identical to list order, so the two sources must agree on
// every query; a disagreement means the timestamp layer would derive a
// different persist order than SLC token passing.
type agreementChecker struct {
	cohBackend
	t       *testing.T
	queries int
}

func (a *agreementChecker) storeClear(n *slc.Node) bool {
	a.queries++
	got, want := a.cohBackend.storeClear(n), n.Clear()
	if got != want {
		a.t.Errorf("storeClear(%v %v): tardis %v, list %v", n.Line, n.Version, got, want)
	}
	return got
}

func (a *agreementChecker) readClear(n *slc.Node) bool {
	a.queries++
	got, want := a.cohBackend.readClear(n), n.Clear()
	if got != want {
		a.t.Errorf("readClear(%v): tardis %v, list %v", n.Line, got, want)
	}
	return got
}

func (a *agreementChecker) persistPredAG(n, prev *slc.Node) uint64 {
	a.queries++
	got, want := a.cohBackend.persistPredAG(n, prev), prev.AGID
	if got != want {
		a.t.Errorf("persistPredAG(%v %v): tardis AG %d, list AG %d", n.Line, n.Version, got, want)
	}
	return got
}

func (a *agreementChecker) producerAG(p *slc.Node) uint64 {
	a.queries++
	got, want := a.cohBackend.producerAG(p), p.AGID
	if got != want {
		a.t.Errorf("producerAG(%v): tardis AG %d, list AG %d", p.Line, got, want)
	}
	return got
}

// TestTardisAgreesWithSharingList pins the central invariant of the tardis
// backend: every clearance and dependency answer derived from write
// timestamps equals the answer the sharing list would give.
func TestTardisAgreesWithSharingList(t *testing.T) {
	for _, system := range []SystemKind{TSOPER, STW} {
		t.Run(system.String(), func(t *testing.T) {
			cfg := tardisConfig(system)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			chk := &agreementChecker{cohBackend: m.coh, t: t}
			m.coh = chk
			w := trace.Generate(smallProfile(400), cfg.Cores, 17)
			m.Run(w)
			if chk.queries == 0 {
				t.Fatal("no ordering queries exercised")
			}
			if err := m.tardis.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTardisAllSystemsComplete(t *testing.T) {
	for _, kind := range Systems() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := tardisConfig(kind)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w := trace.Generate(smallProfile(300), cfg.Cores, 1)
			r := m.Run(w)
			if r.Cycles == 0 || r.Stores == 0 || r.Loads == 0 {
				t.Fatalf("degenerate run: %+v", r)
			}
			if err := m.tardis.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTardisFinalDurableImageComplete: strict persistency semantics are
// protocol-independent — under tardis the drain must still leave NVM holding
// exactly the final version of every stored line.
func TestTardisFinalDurableImageComplete(t *testing.T) {
	for _, kind := range []SystemKind{STW, TSOPER} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := tardisConfig(kind)
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w := trace.Generate(smallProfile(250), cfg.Cores, 3)
			r := m.Run(w)
			for line, order := range r.LineOrder {
				want := order[len(order)-1]
				if got := r.Durable[line]; got != want {
					t.Fatalf("line %v durable %v, want final version %v", line, got, want)
				}
			}
		})
	}
}

// TestTardisPersistsAllPending: after a TSOPER end-of-run drain every write
// timestamp must have retired from the pending ledger — a leftover entry
// means a version entered coherence but never persisted or discarded.
func TestTardisPersistsAllPending(t *testing.T) {
	cfg := tardisConfig(TSOPER)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(300), cfg.Cores, 9)
	m.Run(w)
	if n := m.tardis.TotalPending(); n != 0 {
		t.Fatalf("%d pending writes survived the drain", n)
	}
}

// TestTardisRenewalsOccur: a sharing-heavy workload must exercise the lease
// machinery — some private hits ride a live lease, others pay the renewal
// round trip — and writes must jump logical time past read leases.
func TestTardisRenewalsOccur(t *testing.T) {
	cfg := tardisConfig(TSOPER)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(500), cfg.Cores, 21)
	r := m.Run(w)
	if n := r.Set.CounterValue("tardis.renewals"); n == 0 {
		t.Fatal("no lease renewals on a sharing-heavy workload")
	}
	if n := r.Set.CounterValue("tardis.lease_hits"); n == 0 {
		t.Fatal("no lease-valid private hits")
	}
	if n := r.Set.CounterValue("tardis.ts_jumps"); n == 0 {
		t.Fatal("no logical-time jumps past read leases")
	}
}

func TestTardisDeterministic(t *testing.T) {
	run := func() *Results {
		cfg := tardisConfig(TSOPER)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(trace.Generate(smallProfile(200), cfg.Cores, 7))
	}
	r1, r2 := run(), run()
	if r1.Cycles != r2.Cycles || r1.PersistWrites != r2.PersistWrites ||
		r1.NVMWrites != r2.NVMWrites || len(r1.Groups) != len(r2.Groups) {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

// TestTardisCheckpointRestoreMidExec: the tardis checkpoint section must
// round-trip — a restored machine finishes identically to a straight run.
func TestTardisCheckpointRestoreMidExec(t *testing.T) {
	cfg := ckptConfig(TSOPER)
	cfg.Coherence = CoherenceTardis
	w := ckptWorkload(t, 11)
	want := runStraight(t, cfg, w)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(w)
	mid := want.Cycles / 2
	if done, err := m.Advance(mid); err != nil {
		t.Fatal(err)
	} else if done {
		t.Fatalf("run finished before midpoint %d", mid)
	}
	blob, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(cfg, w, blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if done, err := r.Advance(sim.MaxTime); err != nil || !done {
		t.Fatalf("resume: done=%v err=%v", done, err)
	}
	assertSameResults(t, want, r.Results())
}

// TestTardisLeaseKnobPlumbed: TardisLease must actually reach the protocol.
// Note renewal counts are NOT monotone in lease length — a write jumps the
// writer's logical time past the written line's read-lease frontier, so a
// longer lease makes each write-jump larger and can expire MORE of the
// writer's other leases; the knob changes behavior, it doesn't simply trade
// renewals away.
func TestTardisLeaseKnobPlumbed(t *testing.T) {
	run := func(lease uint64) *Results {
		cfg := tardisConfig(TSOPER)
		cfg.TardisLease = lease
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(trace.Generate(smallProfile(400), cfg.Cores, 13))
	}
	a, b := run(1), run(1<<20)
	ra := a.Set.CounterValue("tardis.renewals")
	rb := b.Set.CounterValue("tardis.renewals")
	if ra == rb && a.Cycles == b.Cycles {
		t.Fatalf("lease=1 and lease=2^20 indistinguishable (renewals %d, cycles %d)", ra, a.Cycles)
	}
	// A read-only epoch never advances program timestamps, so with no stores
	// there is nothing to expire: the canonical-config default must be filled
	// only under tardis (pinned by canonical tests); here pin that the two
	// lease settings also hash differently.
	ca := tardisConfig(TSOPER)
	ca.TardisLease = 1
	cb := tardisConfig(TSOPER)
	cb.TardisLease = 1 << 20
	ha, err := ca.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cb.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("lease settings hash identically")
	}
}
