package machine

import (
	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CrashState is the machine state an instant after a power failure: the
// recovered NVM image (NVM contents plus the AGB's durable super group —
// the AGB is in the persistent domain, §II-B) and the bookkeeping the
// crash-consistency checker validates it against.
type CrashState struct {
	System SystemKind
	// At is the crash cycle.
	At sim.Time
	// Image is the recovered durable version of every line ever persisted
	// (absent = initial pre-run contents).
	Image map[mem.Line]mem.Version
	// Groups is the full atomic-group journal at the crash.
	Groups []*core.Group
	// DurableOrder lists groups in the order they entered the durable
	// super group (AGB allocation order).
	DurableOrder []*core.Group
	// LineOrder is the directory-serialized store order per line.
	LineOrder map[mem.Line][]mem.Version
	// StoresIssued is the per-core count of stores that left each store
	// buffer before the crash.
	StoresIssued []uint64
	// Fault is the corruption injected into this state (FaultNone for a
	// genuine recovery); FaultApplied reports whether the state offered a
	// target for it.
	Fault        CrashFault
	FaultApplied bool
	// Stalled reports that the watchdog declared quiescence-without-progress
	// before the crash cycle; Stall carries the diagnostic. The recovered
	// image is still checkable — a wedged machine must not have corrupted
	// the durable state — but resilience campaigns fail the run.
	Stalled bool
	Stall   *StallError
	// FaultCounts is the runtime fault-injection ledger at the crash (zero
	// unless the run carried a fault plan).
	FaultCounts faultplan.Counts
}

// RunWithCrash executes the workload until the crash cycle (or natural
// completion, whichever is first) and returns the post-crash durable state.
// Only the strict-persistency systems (STW, TSOPER) produce a checkable
// group journal.
//
// The returned state aliases the machine's live bookkeeping — fine for
// this single-shot entry point, where the machine never advances again.
// Incremental sweeps that keep simulating after a capture must use
// StartCrashRun / AdvanceTo / CaptureCrashState, whose captures are deep
// copies.
func (m *Machine) RunWithCrash(w *trace.Workload, at sim.Time) *CrashState {
	m.StartCrashRun(w)
	m.AdvanceTo(at)

	cs := &CrashState{
		System:       m.cfg.System,
		At:           m.engine.Now(),
		Image:        make(map[mem.Line]mem.Version),
		Groups:       m.journal,
		DurableOrder: m.durableOrder,
		LineOrder:    m.lineOrder,
		Stalled:      m.stall != nil,
		Stall:        m.stall,
		FaultCounts:  m.FaultCounts(),
	}
	for _, c := range m.cores {
		cs.StoresIssued = append(cs.StoresIssued, c.storeSeq)
	}
	recoverImage(cs)
	if m.cfg.CrashFault != FaultNone {
		cs.Fault = m.cfg.CrashFault
		cs.FaultApplied = InjectFault(cs, m.cfg.CrashFault)
	}
	return cs
}

// StartCrashRun schedules the workload for an incremental crash sweep:
// follow with AdvanceTo for each crash cycle of interest (ascending) and
// CaptureCrashState after each. One machine serves a whole ascending chain
// of crash points — the prefix up to each point simulates once instead of
// once per point.
func (m *Machine) StartCrashRun(w *trace.Workload) {
	m.Start(w)
}

// AdvanceTo dispatches events up to and including cycle at. Calls must use
// nondecreasing cycles. Unlike Advance, no phase machinery runs: a crash
// sweep only ever observes the execution phase (the end-of-run flush would
// mask exactly the in-flight state crash campaigns probe).
func (m *Machine) AdvanceTo(at sim.Time) {
	m.engine.RunUntil(at)
}

// CaptureCrashState snapshots the post-crash durable state at the current
// cycle without disturbing the run: every captured structure is a deep copy
// (the group journal via core.CloneGroups, the per-line order with copied
// version slices), so the machine can keep advancing to later crash points
// and fault injection can mutate the capture freely.
func (m *Machine) CaptureCrashState() *CrashState {
	groups, durable := core.CloneGroups(m.journal, m.durableOrder)
	lineOrder := make(map[mem.Line][]mem.Version, len(m.lineOrder))
	for l, vs := range m.lineOrder {
		lineOrder[l] = append([]mem.Version(nil), vs...)
	}
	cs := &CrashState{
		System:       m.cfg.System,
		At:           m.engine.Now(),
		Image:        make(map[mem.Line]mem.Version),
		Groups:       groups,
		DurableOrder: durable,
		LineOrder:    lineOrder,
		Stalled:      m.stall != nil,
		Stall:        m.stall,
		FaultCounts:  m.FaultCounts(),
	}
	for _, c := range m.cores {
		cs.StoresIssued = append(cs.StoresIssued, c.storeSeq)
	}
	recoverImage(cs)
	if m.cfg.CrashFault != FaultNone {
		cs.Fault = m.cfg.CrashFault
		cs.FaultApplied = InjectFault(cs, m.cfg.CrashFault)
	}
	return cs
}

// recoverImage replays the durable groups in durability order. Applying
// every durable group (including retired ones, whose lines already reached
// NVM) reconstructs the newest durable version per line — same-address FIFO
// holds because durability order is allocation order.
func recoverImage(cs *CrashState) {
	for _, g := range cs.DurableOrder {
		for l, v := range g.DirtyLines() {
			cs.Image[l] = v
		}
	}
}
