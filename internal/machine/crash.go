package machine

import (
	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CrashState is the machine state an instant after a power failure: the
// recovered NVM image (NVM contents plus the AGB's durable super group —
// the AGB is in the persistent domain, §II-B) and the bookkeeping the
// crash-consistency checker validates it against.
type CrashState struct {
	System SystemKind
	// At is the crash cycle.
	At sim.Time
	// Image is the recovered durable version of every line ever persisted
	// (absent = initial pre-run contents).
	Image map[mem.Line]mem.Version
	// Groups is the full atomic-group journal at the crash.
	Groups []*core.Group
	// DurableOrder lists groups in the order they entered the durable
	// super group (AGB allocation order).
	DurableOrder []*core.Group
	// LineOrder is the directory-serialized store order per line.
	LineOrder map[mem.Line][]mem.Version
	// StoresIssued is the per-core count of stores that left each store
	// buffer before the crash.
	StoresIssued []uint64
	// Fault is the corruption injected into this state (FaultNone for a
	// genuine recovery); FaultApplied reports whether the state offered a
	// target for it.
	Fault        CrashFault
	FaultApplied bool
	// Stalled reports that the watchdog declared quiescence-without-progress
	// before the crash cycle; Stall carries the diagnostic. The recovered
	// image is still checkable — a wedged machine must not have corrupted
	// the durable state — but resilience campaigns fail the run.
	Stalled bool
	Stall   *StallError
	// FaultCounts is the runtime fault-injection ledger at the crash (zero
	// unless the run carried a fault plan).
	FaultCounts faultplan.Counts
}

// RunWithCrash executes the workload until the crash cycle (or natural
// completion, whichever is first) and returns the post-crash durable state.
// Only the strict-persistency systems (STW, TSOPER) produce a checkable
// group journal.
func (m *Machine) RunWithCrash(w *trace.Workload, at sim.Time) *CrashState {
	if len(w.Cores) != m.cfg.Cores {
		panic("machine: workload/core mismatch")
	}
	for i, ops := range w.Cores {
		c := newCoreUnit(m, i, ops)
		m.cores = append(m.cores, c)
		m.running++
		m.engine.Schedule(0, c.stepFn)
	}
	m.armWatchdog()
	m.engine.RunUntil(at)

	cs := &CrashState{
		System:       m.cfg.System,
		At:           m.engine.Now(),
		Image:        make(map[mem.Line]mem.Version),
		Groups:       m.journal,
		DurableOrder: m.durableOrder,
		LineOrder:    m.lineOrder,
		Stalled:      m.stall != nil,
		Stall:        m.stall,
		FaultCounts:  m.FaultCounts(),
	}
	for _, c := range m.cores {
		cs.StoresIssued = append(cs.StoresIssued, c.storeSeq)
	}
	// Recover: replay the durable groups in durability order. Applying
	// every durable group (including retired ones, whose lines already
	// reached NVM) reconstructs the newest durable version per line —
	// same-address FIFO holds because durability order is allocation order.
	for _, g := range cs.DurableOrder {
		for l, v := range g.DirtyLines() {
			cs.Image[l] = v
		}
	}
	if m.cfg.CrashFault != FaultNone {
		cs.Fault = m.cfg.CrashFault
		cs.FaultApplied = InjectFault(cs, m.cfg.CrashFault)
	}
	return cs
}
