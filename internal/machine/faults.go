package machine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/sim"
)

// This file wires runtime fault injection (internal/faultplan) and the
// stall watchdog (sim.Watchdog) into the machine. With Config.Faults nil
// and WatchdogHorizon zero, nothing here allocates and the hot paths in
// nvm/noc/agb each pay exactly one nil check.

// initFaults compiles Config.Faults (if any) into a plan, attaches it to
// the fault-capable components, and builds the watchdog; called from New.
func (m *Machine) initFaults() {
	if m.cfg.Faults != nil && !m.cfg.Faults.Empty() {
		m.plan = faultplan.New(*m.cfg.Faults)
		if m.tel != nil {
			m.plan.Instrument(m.tel.bus)
		}
		m.memory.AttachFaults(m.plan)
		m.net.AttachFaults(m.plan)
		m.buffer.AttachFaults(m.plan)
	}
	horizon := m.cfg.WatchdogHorizon
	if horizon == 0 && m.plan != nil {
		horizon = DefaultWatchdogHorizon
	}
	if horizon > 0 {
		m.wd = sim.NewWatchdog(m.engine, horizon, m.outstanding, m.onStall)
	}
}

// FaultCounts returns the plan's injection ledger so far (zero Counts when
// the machine has no fault plan).
func (m *Machine) FaultCounts() faultplan.Counts {
	if m.plan == nil {
		return faultplan.Counts{}
	}
	return m.plan.Counts()
}

// armWatchdog (re)starts the progress checks; a no-op without a watchdog.
func (m *Machine) armWatchdog() {
	if m.wd != nil {
		m.wd.Arm()
	}
}

// disarmWatchdog cancels the pending check once the outstanding work of the
// current phase has completed, so the queued far-future check does not
// advance the clock past the end of real work.
func (m *Machine) disarmWatchdog() {
	if m.wd != nil {
		m.wd.Disarm()
	}
}

// outstanding reports work the machine still owes: unfinished cores or a
// pending end-of-run flush.
func (m *Machine) outstanding() bool {
	return m.running > 0 || m.drainPending
}

// onStall converts the watchdog diagnostic into a StallError enriched with
// machine state: stuck cores, group lifecycle buckets, AGB occupancy, and
// the fault ledger.
func (m *Machine) onStall(d sim.StallDiag) {
	m.stall = &StallError{
		System: m.cfg.System,
		Diag:   d,
		Detail: m.stallDetail(),
	}
}

// stallDetail renders a one-line machine snapshot for the stall diagnostic.
func (m *Machine) stallDetail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cores stuck=%d", m.running)
	if m.drainPending {
		b.WriteString(" drain-pending")
	}
	states := make(map[core.State]int)
	for _, g := range m.journal {
		states[g.State()]++
	}
	if len(states) > 0 {
		keys := make([]core.State, 0, len(states))
		for s := range states {
			keys = append(keys, s)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		b.WriteString(" groups[")
		for i, s := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", s, states[s])
		}
		b.WriteString("]")
	}
	fmt.Fprintf(&b, " agb[used=%d waiting=%d inflight=%d]",
		m.buffer.Used(), m.buffer.Waiting(), m.buffer.InFlight())
	if m.plan != nil {
		fmt.Fprintf(&b, " faults: %s", m.plan.Counts())
	}
	return b.String()
}

// StallError reports quiescence-without-progress: the simulation's event
// chains died out while cores or the final drain still had work pending —
// typically a permanently lost persist under the fault plan's test-only
// abandonment mode. The embedded detail names the wedged components.
type StallError struct {
	System SystemKind
	Diag   sim.StallDiag
	Detail string
}

func (e *StallError) Error() string {
	return fmt.Sprintf("machine: stall — no progress over %d cycles at cycle %d (%s; pending=%d executed=%d; %s)",
		e.Diag.Horizon, e.Diag.Now, e.System, e.Diag.Pending, e.Diag.Executed, e.Detail)
}
