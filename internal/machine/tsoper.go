package machine

import (
	"fmt"

	"repro/internal/agb"
	"repro/internal/coherence/slc"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// tsoperSys implements both TSOPER (§II–§IV) and its stop-the-world
// strawman STW (§III). The two share the entire atomic-group machinery;
// STW additionally stalls every core's store drain from the moment a group
// freezes until it is fully buffered in the AGB.
type tsoperSys struct {
	m        *Machine
	stw      bool
	trackers []*core.Tracker
	groups   map[uint64]*core.Group

	// liveCount tracks not-yet-durable groups for the end-of-run drain.
	liveCount int
	drainDone func()

	// STW world-stall state.
	stallRefs    int
	stallWaiters []func()

	agSize *statsDistProxy
}

// statsDistProxy defers dist lookup so construction order doesn't matter.
type statsDistProxy struct {
	m    *Machine
	name string
}

func (p *statsDistProxy) observe(v uint64) { p.m.set.Dist(p.name).Observe(v) }

func newTSOPERSys(m *Machine) *tsoperSys {
	s := &tsoperSys{
		m:      m,
		stw:    m.cfg.System == STW,
		groups: make(map[uint64]*core.Group),
		agSize: &statsDistProxy{m: m, name: "ag.size"},
	}
	ids := core.NewIDSource()
	for i := 0; i < m.cfg.Cores; i++ {
		tr := core.NewTracker(i, ids)
		tr.OnOpen = func(g *core.Group) {
			s.groups[g.ID] = g
			s.m.journal = append(s.m.journal, g)
			s.liveCount++
			s.m.agBegin(g, agPhaseOpen)
		}
		tr.OnDrainable = s.startDrain
		s.trackers = append(s.trackers, tr)
	}
	return s
}

// destructive: persistent lines use the non-destructive sharing-list
// discipline; with a persist filter configured (the WHISPER-style hybrid
// the §V baseline discussion sketches, where only ~4% of stores touch
// persistent data), non-persistent lines fall back to conventional
// destructive invalidation and skip atomic-group tracking entirely.
func (s *tsoperSys) destructive(l mem.Line) bool {
	return s.m.cfg.PersistFilter != nil && !s.m.cfg.PersistFilter(l)
}

// persistent reports whether l is subject to persistency tracking.
func (s *tsoperSys) persistent(l mem.Line) bool {
	return s.m.cfg.PersistFilter == nil || s.m.cfg.PersistFilter(l)
}

// gateStore blocks a store whose target line belongs to a frozen,
// not-yet-buffered group of this core (§II-A: "A store ... is blocked if it
// tries to write a cacheline in a frozen atomic group"), and, under STW,
// any store while the world is stopped.
func (s *tsoperSys) gateStore(c *coreUnit, line mem.Line, proceed func()) {
	if s.stw && s.stallRefs > 0 {
		s.stallWaiters = append(s.stallWaiters, func() { s.gateStore(c, line, proceed) })
		return
	}
	if node := s.m.nodeOf(c.id, line); node != nil && node.Dirty && node.AGID != 0 {
		if g := s.groups[node.AGID]; g != nil && g.State() != core.Open {
			s.m.waitLineFree(c.id, line, func() { s.gateStore(c, line, proceed) })
			return
		}
	}
	proceed()
}

// groupFor returns core c's open group, freezing it first if admitting
// line (as a new member) would exceed the AG size limit (§II-A trigger 4).
func (s *tsoperSys) groupFor(c int, line mem.Line) *core.Group {
	g := s.trackers[c].Open()
	if !g.Has(line) && g.Size() >= s.m.cfg.AGLimit {
		s.freeze(g, core.FreezeSizeLimit)
		g = s.trackers[c].Open()
	}
	return g
}

func (s *tsoperSys) storeCommitted(c *coreUnit, node *slc.Node, prevDirty *slc.Node) {
	if !s.persistent(node.Line) {
		return
	}
	g := s.groupFor(c.id, node.Line)
	node.AGID = g.ID
	if prevDirty != nil && prevDirty.AGID != 0 {
		// The persist-before edge source: the backend derives it from its
		// own ordering state (SLC/MESI read the predecessor node, tardis
		// the pending write preceding this one in timestamp order).
		if depID := s.m.coh.persistPredAG(node, prevDirty); depID != 0 {
			if pg := s.groups[depID]; pg != nil {
				g.DependOn(pg)
			}
		}
	}
	s.m.coh.tagAG(node)
	g.AddStore(node.Line, node.Version, s.m.coh.storeClear(node))
}

func (s *tsoperSys) loadObservedDirty(c *coreUnit, readerNode, producer *slc.Node) {
	if !s.persistent(readerNode.Line) || producer.AGID == 0 {
		return
	}
	g := s.groupFor(c.id, readerNode.Line)
	readerNode.AGID = g.ID
	if pid := s.m.coh.producerAG(producer); pid != 0 {
		if pg := s.groups[pid]; pg != nil {
			g.DependOn(pg)
		}
	}
	g.AddCleanRead(readerNode.Line, producer.Version, s.m.coh.readClear(readerNode))
}

// exposed freezes the owning group of a dirty line touched by a remote
// request. SLC multiversioning means the requester never waits for the
// owner's persist: extra delay is zero (this is OBS 3, the L1-exclusion
// elimination).
func (s *tsoperSys) exposed(n *slc.Node, write bool) sim.Time {
	if n.AGID == 0 {
		return 0
	}
	g := s.groups[n.AGID]
	if g == nil {
		return 0
	}
	reason := core.FreezeRemoteRead
	if write {
		reason = core.FreezeRemoteWrite
	}
	s.freeze(g, reason)
	return 0
}

func (s *tsoperSys) evictedDirty(n *slc.Node) {
	if n.AGID == 0 {
		return
	}
	if g := s.groups[n.AGID]; g != nil {
		s.freeze(g, core.FreezeEviction)
	}
}

// dirEvicted immediately freezes and persists the group holding the line
// whose directory entry was displaced (§III-B): the entry is buffered on
// the side until the affected cachelines persist.
func (s *tsoperSys) dirEvicted(n *slc.Node) {
	if n.AGID == 0 {
		return
	}
	if g := s.groups[n.AGID]; g != nil {
		s.freeze(g, core.FreezeDirEviction)
	}
}

// freeze performs an idempotent freeze, recording figure statistics and,
// under STW, stopping the world until the group is buffered.
func (s *tsoperSys) freeze(g *core.Group, reason core.FreezeReason) {
	if !g.Freeze(reason) {
		return
	}
	if g.Size() > 0 {
		s.agSize.observe(uint64(g.Size()))
		s.m.timeline.Append(uint64(s.m.engine.Now()), float64(g.Size()))
	}
	s.m.emit(Event{Kind: EvFreeze, Core: g.Core, Group: g.ID, Reason: reason})
	s.m.agEnd(g, agPhaseOpen)
	s.m.agBegin(g, agPhaseFrozen)
	if s.stw {
		s.stallRefs++
	}
}

func (s *tsoperSys) unstall() {
	s.stallRefs--
	if s.stallRefs == 0 {
		ws := s.stallWaiters
		s.stallWaiters = nil
		for _, fn := range ws {
			fn := fn
			s.m.engine.Schedule(0, fn)
		}
	}
}

// nodeCleared advances the waiting-to-become-tail accounting for every
// group of the node's cache (the predicate is per cache-line, monotone).
func (s *tsoperSys) nodeCleared(n *slc.Node) {
	s.trackers[n.Cache].LineCleared(n.Line)
}

// startDrain buffers a drainable group into the AGB (§IV-B phase two).
func (s *tsoperSys) startDrain(g *core.Group) {
	g.StartDrain()
	s.m.emit(Event{Kind: EvDrainStart, Core: g.Core, Group: g.ID})
	s.m.agEnd(g, agPhaseFrozen)
	s.m.agBegin(g, agPhaseDraining)
	req := agb.Request{
		ID:    g.ID,
		Lines: g.DirtyView(),
		OnLineBuffered: func(l mem.Line) {
			s.m.persistWrites.Inc()
			s.m.emit(Event{Kind: EvLineBuffered, Core: g.Core, Group: g.ID, Line: l})
			// "The LLC is constantly updated with the newest-epoch version
			// of a cacheline while simultaneously enqueueing the same
			// version in the AGB" (§II-B) — each persisted line is also a
			// coherence writeback into the LLC.
			if ver, ok := g.VersionOf(l); ok {
				s.m.llcFill(l, ver)
				s.m.coherenceWrites.Inc()
			}
			// The version enters the persistent domain: the node leaves
			// the sharing list (passes its token) — "as soon as a
			// cacheline is buffered in the AGB it leaves the sharing list".
			node := s.m.nodeOf(g.Core, l)
			if node != nil && node.AGID == g.ID && node.Dirty {
				// The backend retires the version from persist ordering —
				// tardis asserts it is the line's oldest pending write
				// timestamp, the timestamp-side twin of MarkPersisted's
				// tail-to-head clearance panic.
				s.m.coh.persisted(node)
				up := s.m.dir.List(l).MarkPersisted(node)
				s.m.applyUpdate(up)
				node.AGID = 0
				if node.OnList() {
					// A valid node normally survives as a clean sharer —
					// but if its frame lives in the eviction buffer the
					// line was already evicted: it only stayed to persist
					// (§III-B) and now leaves coherence entirely.
					if held, evicted := s.m.priv[g.Core].evbuf.Get(l); evicted && held == node {
						s.m.applyUpdate(s.m.dir.List(l).RemoveClean(node))
					}
				}
				s.m.releaseLine(g.Core, l)
			}
		},
		OnDurable: func() {
			g.MarkDurable()
			s.m.durableOrder = append(s.m.durableOrder, g)
			s.m.emit(Event{Kind: EvDurable, Core: g.Core, Group: g.ID})
			s.m.agEnd(g, agPhaseDraining)
			s.m.agBegin(g, agPhaseDurable)
			s.liveCount--
			s.checkDrainDone()
		},
		OnRetired: func() {
			g.Retire()
			s.m.emit(Event{Kind: EvRetired, Core: g.Core, Group: g.ID})
			s.m.agEnd(g, agPhaseDurable)
			if s.stw {
				// The stop-the-world strawman takes no durability credit
				// from persist buffering: the world restarts only when the
				// group's lines have reached NVM — this is what makes
				// high-persist-volume applications (radix, lu_ncb)
				// catastrophic under STW (§V-A).
				s.unstall()
			}
		},
	}
	if err := s.m.buffer.Persist(req); err != nil {
		panic(fmt.Sprintf("machine: %v (group %v)", err, g))
	}
}

// marker closes the core's open group at a software-chosen point (§II-D):
// the next stores open a fresh group, so recovery code can rely on AG
// boundaries coinciding with its own epochs.
func (s *tsoperSys) marker(c *coreUnit) {
	if g := s.trackers[c.id].Peek(); g != nil {
		s.freeze(g, core.FreezeMarker)
	}
}

func (s *tsoperSys) sync(_ *coreUnit, done func()) {
	// TSO persistency needs no persist action at synchronization: ordering
	// is continuous. The store buffer drain (handled by the core) is all a
	// fence requires.
	done()
}

// drain freezes every remaining open group and waits for all groups to
// reach durability.
func (s *tsoperSys) drain(done func()) {
	s.drainDone = done
	for _, tr := range s.trackers {
		if g := tr.Peek(); g != nil {
			s.freeze(g, core.FreezeDrain)
		}
	}
	// Groups that opened but never received a line are frozen empty and
	// drain immediately; the AGB callbacks drive the rest.
	s.checkDrainDone()
}

func (s *tsoperSys) checkDrainDone() {
	if s.drainDone != nil && s.liveCount == 0 {
		cb := s.drainDone
		s.drainDone = nil
		cb()
	}
}
