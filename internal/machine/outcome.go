package machine

import (
	"strings"

	"repro/internal/mem"
)

// Outcome is the canonical durable-state encoding of a crash image
// restricted to a caller-chosen set of lines: the recovered version of each
// line, in the caller's order. A zero Version means the line's pre-run
// (initial) contents were recovered. The litmus conformance oracle compares
// these against the Px86 reference model's allowed outcome sets; Key gives
// a stable string form usable as a set member.
type Outcome []mem.Version

// DurableOutcome extracts the recovered durable version of each requested
// line from the crash image. Lines the recovery never produced (absent from
// the image) report the initial version.
func (cs *CrashState) DurableOutcome(lines []mem.Line) Outcome {
	out := make(Outcome, len(lines))
	for i, l := range lines {
		out[i] = cs.Image[l]
	}
	return out
}

// Key returns the canonical encoding of the outcome: the versions joined
// with "|" in order ("v0" for initial contents). Two outcomes are equal iff
// their keys are equal.
func (o Outcome) Key() string {
	var b strings.Builder
	for i, v := range o {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
