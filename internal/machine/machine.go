package machine

import (
	"fmt"

	"repro/internal/agb"
	"repro/internal/cache"
	"repro/internal/coherence/slc"
	"repro/internal/coherence/tardis"
	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Machine is one simulated CMP instance. It is single-use: construct, Run,
// then read Results.
type Machine struct {
	cfg    Config
	engine *sim.Engine
	set    *stats.Set
	net    *noc.Network
	memory *nvm.Memory
	buffer *agb.Buffer
	dir    *slc.Directory
	llc    *cache.Cache[mem.Version]
	banks  *sim.Bank

	cores []*coreUnit
	priv  []*privCache
	sys   system

	// coh is the coherence-protocol backend (backend.go); tardis is non-nil
	// only under CoherenceTardis (the backend's timestamp state, kept here
	// for the checkpoint section).
	coh    cohBackend
	tardis *tardis.State

	// waiters are continuations blocked on "cache c's copy of line l is no
	// longer pending" (removed from the list or persisted in place).
	waiters map[waitKey][]func()
	// evbufWaiters are fills blocked on a full eviction buffer, per cache.
	evbufWaiters [][]func()

	// current is the newest coherent version of each line (what a reader
	// observes); lineOrder is the full directory-serialized version order.
	current map[mem.Line]mem.Version

	// vnScratch is the invalidation walk's reusable valid-node snapshot
	// (only writeTxn.dir iterates it, and directory stages never nest).
	vnScratch []*slc.Node

	coherenceWrites *stats.Counter
	persistWrites   *stats.Counter
	loads, stores   *stats.Counter
	syncs           *stats.Counter
	invalWalks      *stats.Dist

	// lineOrder records the coherence (directory) serialization of store
	// versions per line, consumed by the crash-consistency checker. verSlab
	// backs the logs' initial capacity (recordStore).
	lineOrder map[mem.Line][]mem.Version
	verSlab   []mem.Version

	journal      []*core.Group
	durableOrder []*core.Group
	timeline     *stats.Series

	// tel is nil unless a telemetry sink (bus or probe) is attached.
	tel *machineTel

	// plan is nil unless Config.Faults compiled a fault-injection plan;
	// wd is nil unless a watchdog horizon is armed (faults.go).
	plan *faultplan.Plan
	wd   *sim.Watchdog
	// stall records the watchdog's verdict; drainPending marks the
	// end-of-run flush as outstanding work for the watchdog.
	stall        *StallError
	drainPending bool

	running   int
	phase     runPhase
	flushed   bool
	workload  *trace.Workload
	execDone  sim.Time
	drainDone sim.Time

	// Traffic snapshots taken when execution (not the end-of-run flush)
	// completes: Fig. 14 reports steady-state traffic, and the final drain
	// is a simulation artifact that would inflate the buffered systems.
	execCoherenceWrites uint64
	execPersistWrites   uint64
	execNVMWrites       uint64
}

type waitKey struct {
	cache int
	line  mem.Line
}

// privCache is one core's private cache plus its eviction buffer (§III-B).
type privCache struct {
	id    int
	arr   *cache.Cache[*slc.Node]
	evbuf *cache.EvictBuffer[*slc.Node]
}

// New constructs a machine for the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       cfg,
		engine:    sim.NewEngineWithScheduler(cfg.Scheduler),
		set:       stats.NewSet(),
		waiters:   make(map[waitKey][]func()),
		lineOrder: make(map[mem.Line][]mem.Version, 1<<11),
		current:   make(map[mem.Line]mem.Version, 1<<11),
		timeline:  &stats.Series{Name: "region_size"},
	}
	m.initTelemetry()
	m.net = noc.New(m.engine, cfg.NoC, m.set)
	m.memory = nvm.New(m.engine, cfg.NVM, m.set)
	m.buffer = agb.New(m.engine, m.memory, cfg.AGB, m.set)
	m.dir = slc.NewDirectory(m.set)
	m.llc = cache.New[mem.Version](cfg.LLCGeom)
	m.banks = sim.NewBank(cfg.LLCBanks)
	m.coherenceWrites = m.set.Counter("traffic.coherence_writes")
	m.persistWrites = m.set.Counter("traffic.persist_writes")
	m.loads = m.set.Counter("ops.loads")
	m.stores = m.set.Counter("ops.stores")
	m.syncs = m.set.Counter("ops.syncs")
	m.invalWalks = m.set.Dist("slc.invalidation_walk")

	for i := 0; i < cfg.Cores; i++ {
		m.priv = append(m.priv, &privCache{
			id:    i,
			arr:   cache.New[*slc.Node](cfg.PrivGeom),
			evbuf: cache.NewEvictBuffer[*slc.Node](cfg.EvictBufEntries),
		})
	}
	m.evbufWaiters = make([][]func(), cfg.Cores)
	m.coh = m.newCohBackend()
	m.instrumentComponents()
	m.initFaults()
	m.sys = newSystem(m)
	return m, nil
}

// Run executes the workload to completion, flushes trailing persists, and
// returns the results. It panics if the workload has a different core count
// than the machine, and on a wedged run (deadlock or watchdog stall) — use
// RunChecked to get the stall as an error instead.
func (m *Machine) Run(w *trace.Workload) *Results {
	r, err := m.RunChecked(w)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// runPhase tracks where a stepped run stands. It advances strictly
// idle → exec → drain → done; a checkpoint records it so a restore knows
// which phase to resume.
type runPhase uint8

const (
	phaseIdle runPhase = iota
	phaseExec
	phaseDrain
	phaseDone
)

func (p runPhase) String() string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseExec:
		return "exec"
	case phaseDrain:
		return "drain"
	case phaseDone:
		return "done"
	}
	return "unknown"
}

// Phase reports the run phase as a string ("idle", "exec", "drain", "done").
func (m *Machine) Phase() string { return m.phase.String() }

// Now reports the current simulation cycle.
func (m *Machine) Now() sim.Time { return m.engine.Now() }

// RunChecked is Run returning wedged-run failures as errors: a *StallError
// when the watchdog declares quiescence-without-progress, a plain error on
// deadlock or an incomplete final drain.
func (m *Machine) RunChecked(w *trace.Workload) (*Results, error) {
	m.Start(w)
	if _, err := m.Advance(sim.MaxTime); err != nil {
		return nil, err
	}
	return m.results(w), nil
}

// Start schedules the workload onto the cores and arms the watchdog,
// leaving the machine in the execution phase. Drive it with Advance; a
// full run to completion is Start + Advance(sim.MaxTime) (what RunChecked
// does), a stepped run calls Advance with increasing limits and may
// Checkpoint between calls.
func (m *Machine) Start(w *trace.Workload) {
	if len(w.Cores) != m.cfg.Cores {
		panic(fmt.Sprintf("machine: workload has %d cores, machine %d", len(w.Cores), m.cfg.Cores))
	}
	if m.phase != phaseIdle {
		panic("machine: Start called twice")
	}
	m.workload = w
	for i, ops := range w.Cores {
		c := newCoreUnit(m, i, ops)
		m.cores = append(m.cores, c)
		m.running++
		m.engine.Schedule(0, c.stepFn)
	}
	m.armWatchdog()
	m.phase = phaseExec
}

// Advance dispatches events with time <= limit, moving through the run's
// phases as each completes. It returns done=true once the final drain has
// finished and the run's invariants checked out; done=false with a nil
// error means events beyond the limit remain — call Advance again with a
// larger limit (checkpointing in between, if desired). Errors are the same
// wedged-run failures RunChecked reports and are sticky: the machine is
// not usable after one.
func (m *Machine) Advance(limit sim.Time) (bool, error) {
	for {
		switch m.phase {
		case phaseIdle:
			return false, fmt.Errorf("machine: Advance before Start")

		case phaseExec:
			m.engine.RunUntil(limit)
			if m.stall != nil {
				return false, m.stall
			}
			if m.engine.Pending() > 0 {
				return false, nil
			}
			if m.running != 0 {
				return false, fmt.Errorf("machine: deadlock — %d cores stuck at cycle %d (%s)",
					m.running, m.engine.Now(), m.cfg.System)
			}
			m.execDone = m.engine.Now()
			m.execCoherenceWrites = m.coherenceWrites.Value
			m.execPersistWrites = m.persistWrites.Value
			m.execNVMWrites = m.memory.Writes()

			// End-of-run flush: expose everything so the durable image
			// completes.
			m.flushed = false
			m.drainPending = true
			m.sys.drain(func() {
				m.flushed = true
				m.drainPending = false
				// The flush is done: cancel the artificial queue-keepers
				// (watchdog check, remaining fault-outage toggles) so the
				// queue empties at the last real event and DrainCycles keeps
				// its plan-free meaning.
				m.disarmWatchdog()
				m.buffer.CancelOutages()
			})
			m.armWatchdog()
			m.phase = phaseDrain

		case phaseDrain:
			m.engine.RunUntil(limit)
			if m.stall != nil {
				return false, m.stall
			}
			if m.engine.Pending() > 0 {
				return false, nil
			}
			if !m.flushed {
				return false, fmt.Errorf("machine: final drain never completed (cycle %d, %s)",
					m.engine.Now(), m.cfg.System)
			}
			m.drainDone = m.engine.Now()
			if m.plan != nil {
				// A run that quiesced cleanly can still have dropped persists
				// on the floor (the plan's test-only abandonment mode): the
				// durable image is silently incomplete, which must never read
				// as success.
				if lost := m.plan.Counts().Lost(); lost > 0 {
					return false, fmt.Errorf("machine: %d persists permanently lost (%s)", lost, m.cfg.System)
				}
			}
			m.phase = phaseDone
			return true, nil

		default: // phaseDone
			return true, nil
		}
	}
}

// Results materializes the results for the workload the machine ran. Valid
// only after Advance returned done=true; RunChecked calls it for you.
func (m *Machine) Results() *Results {
	if m.phase != phaseDone {
		panic("machine: Results before the run completed")
	}
	return m.results(m.workload)
}

func (m *Machine) results(w *trace.Workload) *Results {
	coh, per := m.dir.Lengths()
	r := &Results{
		System:             m.cfg.System,
		Benchmark:          w.Profile.Name,
		Cycles:             m.execDone,
		DrainCycles:        m.drainDone,
		CoherenceWrites:    m.execCoherenceWrites,
		PersistWrites:      m.execPersistWrites,
		NVMWrites:          m.execNVMWrites,
		TotalPersistWrites: m.persistWrites.Value,
		Stores:             m.stores.Value,
		Loads:              m.loads.Value,
		SyncOps:            m.syncs.Value,
		Groups:             m.journal,
		AGSizes:            m.set.Dist("ag.size"),
		SFRStores:          m.set.Dist("sfr.stores"),
		SizeTimeline:       m.timeline,
		CoherenceListLen:   coh,
		PersistListLen:     per,
		AGBStalls:          m.buffer.Stalls(),
		Durable:            m.memory.DurableImage(),
		LineOrder:          m.lineOrder,
		Set:                m.set,
		Resources:          m.collectResources(m.drainDone),
	}
	for _, pc := range m.priv {
		if pc.evbuf.MaxOccupancy > r.EvictBufMax {
			r.EvictBufMax = pc.evbuf.MaxOccupancy
		}
		r.EvictBufStalls += pc.evbuf.Stalls
	}
	if m.plan != nil {
		c := m.plan.Counts()
		r.Faults = &c
	}
	return r
}

func (m *Machine) coreDone(*coreUnit) {
	m.running--
	if m.running == 0 {
		// Cancel the pending watchdog check so its far-future event does not
		// advance the clock past the last real event of the execution phase.
		m.disarmWatchdog()
	}
}

// ---- topology helpers ----

// coreNode maps core i to its mesh node; bankNode maps LLC bank b to its
// node on the other half of the mesh.
func (m *Machine) coreNode(c int) int { return c % m.net.Nodes() }

func (m *Machine) bankNode(b int) int {
	n := m.net.Nodes()
	return (n/2 + b) % n
}

func (m *Machine) bankOf(l mem.Line) int { return int(uint64(l) % uint64(m.cfg.LLCBanks)) }

// ---- waiter infrastructure ----

// waitLineFree parks a continuation until cache's copy of line stops being
// pending (its node is unlinked or persists in place).
func (m *Machine) waitLineFree(cacheID int, line mem.Line, fn func()) {
	k := waitKey{cacheID, line}
	m.waiters[k] = append(m.waiters[k], fn)
}

// releaseLine wakes the waiters for (cache, line).
func (m *Machine) releaseLine(cacheID int, line mem.Line) {
	k := waitKey{cacheID, line}
	ws := m.waiters[k]
	if len(ws) == 0 {
		return
	}
	delete(m.waiters, k)
	for _, fn := range ws {
		fn := fn
		m.engine.Schedule(0, fn)
	}
}

// applyUpdate processes sharing-list side effects: removed nodes free their
// cache frames and wake waiters; newly clear nodes notify the system (AG
// waiting-to-become-tail accounting).
func (m *Machine) applyUpdate(up slc.Update) {
	for _, n := range up.Removed {
		if n.Dirty {
			// Only destructive removals unlink a still-dirty node (ordered
			// persists clean it first): its version leaves coherence without
			// persisting, and the backend retires it from persist ordering.
			m.coh.discarded(n)
		}
		m.dropFrame(n)
		m.releaseLine(n.Cache, n.Line)
		// A removed node is trivially clear for its cache's groups.
		m.sys.nodeCleared(n)
	}
	for _, n := range up.NewlyClear {
		m.sys.nodeCleared(n)
	}
}

// dropFrame releases the private-cache frame or eviction-buffer slot that
// held node n.
func (m *Machine) dropFrame(n *slc.Node) {
	pc := m.priv[n.Cache]
	if e := pc.arr.Peek(n.Line); e != nil && e.Data == n {
		pc.arr.Remove(n.Line)
		return
	}
	if got, ok := pc.evbuf.Get(n.Line); ok && got == n {
		pc.evbuf.Release(n.Line)
		m.evbufReleased(n.Cache)
	}
}
