package machine

import (
	"testing"

	"repro/internal/mem"
)

// Round-trip every fault through its String name, plus the two edges: the
// "none" sentinel parses, unknown names are rejected.
func TestCrashFaultStringRoundTrip(t *testing.T) {
	cases := append([]CrashFault{FaultNone}, Faults()...)
	seen := map[string]bool{}
	for _, f := range cases {
		name := f.String()
		if name == "" || seen[name] {
			t.Fatalf("fault %d: empty or duplicate name %q", f, name)
		}
		seen[name] = true
		got, ok := ParseCrashFault(name)
		if !ok || got != f {
			t.Errorf("ParseCrashFault(%q) = %v, %v; want %v", name, got, ok, f)
		}
	}
	for _, bogus := range []string{"", "torn", "TORN-GROUP", "CrashFault(99)", "phantom"} {
		if f, ok := ParseCrashFault(bogus); ok {
			t.Errorf("ParseCrashFault(%q) = %v, want rejection", bogus, f)
		}
	}
	if FaultNone.ExpectedRule() != "" {
		t.Error("FaultNone must expect no rule")
	}
	for _, f := range Faults() {
		if f.ExpectedRule() == "" {
			t.Errorf("%v: no expected checker rule", f)
		}
	}
}

// Regression: FaultPhantomVersion used to consider only the lowest-addressed
// image line and give up if that line's recovered version was legitimately
// absent from the coherence order (an initial-contents line). It must fall
// through to the next line that does offer a target.
func TestPhantomVersionSkipsUnorderedLines(t *testing.T) {
	v1 := mem.Version{Core: 1, Seq: 1}
	v2 := mem.Version{Core: 1, Seq: 2}
	cs := &CrashState{
		Image: map[mem.Line]mem.Version{
			// Line 1 (lowest) recovered a version the directory never
			// serialized; line 5 is the real target.
			1: {Core: 7, Seq: 9},
			5: v2,
		},
		LineOrder: map[mem.Line][]mem.Version{
			5: {v1, v2},
		},
	}
	if !InjectFault(cs, FaultPhantomVersion) {
		t.Fatal("fault must fall through to line 5")
	}
	order := cs.LineOrder[5]
	if len(order) != 1 || order[0] != v1 {
		t.Fatalf("line 5 order = %v, want recovered version erased", order)
	}
	if _, ok := cs.LineOrder[1]; ok {
		t.Fatal("line 1 must be untouched")
	}
}

func TestPhantomVersionNoTarget(t *testing.T) {
	cs := &CrashState{
		Image:     map[mem.Line]mem.Version{1: {Core: 7, Seq: 9}},
		LineOrder: map[mem.Line][]mem.Version{},
	}
	if InjectFault(cs, FaultPhantomVersion) {
		t.Fatal("no line offers a target; injection must report failure")
	}
	if InjectFault(&CrashState{Image: map[mem.Line]mem.Version{}}, FaultPhantomVersion) {
		t.Fatal("empty image must report failure")
	}
}
