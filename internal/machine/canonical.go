package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/agb"
	"repro/internal/cache"
	"repro/internal/coherence/tardis"
	"repro/internal/faultplan"
	"repro/internal/noc"
	"repro/internal/nvm"
	"repro/internal/sim"
)

// Canonicalization maps a Config onto the normal form that determines the
// simulation's observable results, so results can be cached and deduplicated
// by content address. Two configurations with the same canonical form
// produce byte-identical Results snapshots; any semantic difference changes
// the form. The normalization rules:
//
//   - Operational knobs that provably do not change results are dropped:
//     the scheduler (heap and wheel dispatch identically — the differential
//     suite in scheduler_equiv_test.go holds them to byte-identical
//     snapshots), the telemetry bus and probe (pure observers), and the
//     watchdog horizon (it only converts hangs into errors).
//   - Unset sub-configurations are filled with their defaults, so a Config
//     that spells out noc.DefaultConfig() field by field hashes the same as
//     one that left NoC zero. Likewise the fault plan's resilience defaults.
//   - PersistFilter is an arbitrary function and cannot be content-
//     addressed; canonicalization fails when it is set.

// canonicalConfig is the hashed mirror of Config: every semantic field,
// none of the runtime hooks. Field names are part of the hash domain —
// renaming one deliberately changes every key.
type canonicalConfig struct {
	System             string          `json:"system"`
	Coherence          string          `json:"coherence"`
	TardisLease        uint64          `json:"tardis_lease,omitempty"`
	Cores              int             `json:"cores"`
	StoreBufferEntries int             `json:"store_buffer_entries"`
	PrivGeom           cache.Geometry  `json:"priv_geom"`
	LLCGeom            cache.Geometry  `json:"llc_geom"`
	LLCBanks           int             `json:"llc_banks"`
	PrivHit            sim.Time        `json:"priv_hit"`
	LLCLatency         sim.Time        `json:"llc_latency"`
	BankOccupancy      sim.Time        `json:"bank_occupancy"`
	SyncLatency        sim.Time        `json:"sync_latency"`
	AGLimit            int             `json:"ag_limit"`
	EvictBufEntries    int             `json:"evict_buf_entries"`
	BSPEpochStores     int             `json:"bsp_epoch_stores"`
	WPQDepth           int             `json:"wpq_depth"`
	CrashFault         int             `json:"crash_fault,omitempty"`
	NoC                noc.Config      `json:"noc"`
	NVM                nvm.Config      `json:"nvm"`
	AGB                agb.Config      `json:"agb"`
	Faults             *faultplan.Spec `json:"faults,omitempty"`
}

// Canonical returns the configuration's normal form: defaults filled,
// result-neutral knobs cleared, runtime hooks stripped. It fails when the
// config carries a PersistFilter, which has no content address.
func (c Config) Canonical() (Config, error) {
	if c.PersistFilter != nil {
		return Config{}, fmt.Errorf("machine: config with a PersistFilter has no canonical form")
	}
	c.Scheduler = sim.SchedulerWheel
	c.Telemetry = nil
	c.Probe = nil
	c.WatchdogHorizon = 0
	// TardisLease only means anything under the tardis backend: clear it
	// elsewhere, fill the default under tardis, so configs that differ only
	// in an inert lease hash identically and slc/mesi hashes are unchanged.
	if c.Coherence != CoherenceTardis {
		c.TardisLease = 0
	} else if c.TardisLease == 0 {
		c.TardisLease = tardis.DefaultLease
	}
	if c.NoC == (noc.Config{}) {
		c.NoC = noc.DefaultConfig()
	}
	if c.NVM == (nvm.Config{}) {
		c.NVM = nvm.DefaultConfig()
	}
	if c.AGB == (agb.Config{}) {
		c.AGB = agb.DefaultConfig()
	}
	if c.Faults != nil {
		f := c.Faults.WithDefaults()
		c.Faults = &f
	}
	return c, nil
}

// CanonicalJSON renders the canonical form as deterministic JSON (fixed
// field order, no maps). This is the cache key's preimage; it is also
// human-readable on purpose, so a content-addressed store can show what a
// key stands for.
func (c Config) CanonicalJSON() ([]byte, error) {
	cc, err := c.Canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalConfig{
		System:             cc.System.String(),
		Coherence:          cc.Coherence.String(),
		TardisLease:        cc.TardisLease,
		Cores:              cc.Cores,
		StoreBufferEntries: cc.StoreBufferEntries,
		PrivGeom:           cc.PrivGeom,
		LLCGeom:            cc.LLCGeom,
		LLCBanks:           cc.LLCBanks,
		PrivHit:            cc.PrivHit,
		LLCLatency:         cc.LLCLatency,
		BankOccupancy:      cc.BankOccupancy,
		SyncLatency:        cc.SyncLatency,
		AGLimit:            cc.AGLimit,
		EvictBufEntries:    cc.EvictBufEntries,
		BSPEpochStores:     cc.BSPEpochStores,
		WPQDepth:           cc.WPQDepth,
		CrashFault:         int(cc.CrashFault),
		NoC:                cc.NoC,
		NVM:                cc.NVM,
		AGB:                cc.AGB,
		Faults:             cc.Faults,
	})
}

// CanonicalHash returns the hex SHA-256 of the canonical JSON — the
// configuration's content address.
func (c Config) CanonicalHash() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
