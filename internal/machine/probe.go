package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// EventKind classifies the persistency-machinery events a Probe observes.
// They are exactly the transitions whose surrounding cycles are the
// interesting crash points: a crash an instant before or after any of them
// exercises a different durability frontier.
type EventKind uint8

const (
	// EvFreeze: an atomic group froze (first exposure, §II-A).
	EvFreeze EventKind = iota
	// EvDrainStart: a group began buffering into the AGB (ingress).
	EvDrainStart
	// EvLineBuffered: one line entered the persistent domain and its
	// sharing-list node passed the persist token (left the list, §IV-B).
	EvLineBuffered
	// EvDurable: a group joined the AGB's durable super group.
	EvDurable
	// EvRetired: a group's NVM writes completed and its AGB space was
	// reclaimed (egress).
	EvRetired
	// EvEvictDrain: an eviction-buffer slot was released (a persisted
	// evicted line finally left the persistence domain's staging).
	EvEvictDrain
)

func (k EventKind) String() string {
	switch k {
	case EvFreeze:
		return "freeze"
	case EvDrainStart:
		return "drain-start"
	case EvLineBuffered:
		return "line-buffered"
	case EvDurable:
		return "durable"
	case EvRetired:
		return "retired"
	case EvEvictDrain:
		return "evict-drain"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one observed persistency transition.
type Event struct {
	Kind EventKind
	// At is the simulation cycle of the transition.
	At sim.Time
	// Core is the owning core / private cache.
	Core int
	// Group is the atomic group ID (0 when not group-related).
	Group uint64
	// Line is the affected cacheline (EvLineBuffered only).
	Line mem.Line
	// Reason is the freeze trigger (EvFreeze only).
	Reason core.FreezeReason
}

func (e Event) String() string {
	return fmt.Sprintf("@%d %s core=%d ag=%d", e.At, e.Kind, e.Core, e.Group)
}

// emit publishes a persistency transition on the telemetry bus as an
// instant on the owning core's track, stamped with the current cycle. The
// configured Probe (if any) receives it through the probeSink adapter —
// see telemetry.go. It is a no-op (and free of allocation) when no sink is
// attached.
func (m *Machine) emit(e Event) {
	if m.tel == nil {
		return
	}
	var aux uint64
	switch e.Kind {
	case EvLineBuffered:
		aux = uint64(e.Line)
	case EvFreeze:
		aux = uint64(e.Reason)
	}
	m.tel.bus.Instant(m.tel.coreTrack[e.Core], e.Kind.String(),
		telemetry.Ticks(m.engine.Now()), e.Group, aux)
}
