package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func mk(id uint32) mem.Op { return mem.Op{Kind: mem.OpMarker, Arg: id} }

// Marker stores (§II-D) close the open group in program order, so
// software-defined epochs map one-to-one onto atomic groups.
func TestMarkerClosesGroup(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(1)), st(addr(2)), mk(1), st(addr(3)), mk(2), st(addr(4))},
	)
	var markerGroups []*core.Group
	for _, g := range r.Groups {
		if g.Core == 0 && g.Reason() == core.FreezeMarker {
			markerGroups = append(markerGroups, g)
		}
	}
	if len(markerGroups) != 2 {
		t.Fatalf("marker-frozen groups: %d, want 2", len(markerGroups))
	}
	first := markerGroups[0]
	if !first.HasDirty(mem.Line(1)) || !first.HasDirty(mem.Line(2)) || first.Size() != 2 {
		t.Fatalf("first epoch group wrong: %v", first)
	}
	second := markerGroups[1]
	if !second.HasDirty(mem.Line(3)) || second.Size() != 1 {
		t.Fatalf("second epoch group wrong: %v", second)
	}
}

// Markers respect store-buffer order: a marker between two stores to the
// same line splits their versions into different groups.
func TestMarkerSplitsSameLine(t *testing.T) {
	r := runDirected(t, TSOPER,
		[]mem.Op{st(addr(9)), mk(1), st(addr(9))},
	)
	holders := 0
	for _, g := range r.Groups {
		if g.Core == 0 && g.HasDirty(mem.Line(9)) {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("line 9 versions in %d groups, want 2", holders)
	}
	if got := r.Durable[mem.Line(9)]; got != (mem.Version{Core: 0, Seq: 2}) {
		t.Fatalf("durable: %v", got)
	}
}

// Markers are harmless no-ops on systems without atomic groups.
func TestMarkerNoopElsewhere(t *testing.T) {
	for _, kind := range []SystemKind{Baseline, HWRP, BSP} {
		r := runDirected(t, kind, []mem.Op{st(addr(1)), mk(1), st(addr(2))})
		if r.Stores != 2 {
			t.Fatalf("%v: stores=%d", kind, r.Stores)
		}
	}
}

// A marker on an idle core (no open group) is a no-op.
func TestMarkerIdleCore(t *testing.T) {
	r := runDirected(t, TSOPER, []mem.Op{mk(1), st(addr(1))})
	for _, g := range r.Groups {
		if g.Reason() == core.FreezeMarker {
			t.Fatalf("marker froze a group before any store: %v", g)
		}
	}
}

// Directory (LLC) evictions freeze the affected group (§III-B). Force them
// with a tiny LLC.
func TestDirectoryEvictionFreeze(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.LLCGeom.SizeBytes = 64 * 64 // 64 lines
	cfg.AGLimit = 80
	var ops, reader []mem.Op
	// Write a few lines, then a second core streams reads over many other
	// lines, displacing the writer's LLC/directory entries.
	for i := uint64(0); i < 4; i++ {
		ops = append(ops, st(addr(i)))
	}
	ops = append(ops, cp(60000))
	for i := uint64(100); i < 400; i++ {
		reader = append(reader, ld(addr(i)))
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(directed(cfg, ops, reader))
	saw := false
	for _, g := range r.Groups {
		if g.Reason() == core.FreezeDirEviction {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("tiny LLC never produced a directory-eviction freeze")
	}
	if r.Set.CounterValue("dir.evictions") == 0 {
		t.Fatal("dir.evictions counter not incremented")
	}
}
