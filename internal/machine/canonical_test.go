package machine

import (
	"testing"

	"repro/internal/agb"
	"repro/internal/faultplan"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func hashOf(t *testing.T, c Config) string {
	t.Helper()
	h, err := c.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	return h
}

// Identical configurations expressed differently must share one key.
func TestCanonicalHashInvariance(t *testing.T) {
	base := TableI(TSOPER)
	ref := hashOf(t, base)

	t.Run("scheduler", func(t *testing.T) {
		c := TableI(TSOPER)
		c.Scheduler = sim.SchedulerHeap
		if h := hashOf(t, c); h != ref {
			t.Errorf("heap scheduler changed the key: %s != %s", h, ref)
		}
	})
	t.Run("filled-defaults", func(t *testing.T) {
		// Spelling the sub-configs out field by field vs. leaving them zero.
		c := TableI(TSOPER)
		c.NoC = noc.Config{}
		c.NVM = nvm.Config{}
		c.AGB = agb.Config{}
		if h := hashOf(t, c); h != ref {
			t.Errorf("zero sub-configs hash differently from spelled-out defaults: %s != %s", h, ref)
		}
	})
	t.Run("observers", func(t *testing.T) {
		c := TableI(TSOPER)
		c.Telemetry = telemetry.NewBus(&telemetry.CountingSink{})
		c.Probe = func(Event) {}
		c.WatchdogHorizon = 999_999
		if h := hashOf(t, c); h != ref {
			t.Errorf("observers/watchdog changed the key: %s != %s", h, ref)
		}
	})
	t.Run("fault-plan-defaults", func(t *testing.T) {
		spec, ok := faultplan.Preset("nvm-transient")
		if !ok {
			t.Fatal("missing preset")
		}
		a := TableI(TSOPER)
		a.Faults = &spec
		filled := spec.WithDefaults()
		b := TableI(TSOPER)
		b.Faults = &filled
		if hashOf(t, a) != hashOf(t, b) {
			t.Error("fault plan with unfilled defaults hashes differently from its normal form")
		}
	})
}

// Every semantic field change must change the key.
func TestCanonicalHashSensitivity(t *testing.T) {
	ref := hashOf(t, TableI(TSOPER))
	mutations := map[string]func(*Config){
		"system":       func(c *Config) { c.System = STW },
		"coherence":    func(c *Config) { c.System = BSP; c.Coherence = CoherenceMESI },
		"cores":        func(c *Config) { c.Cores = 16 },
		"store-buffer": func(c *Config) { c.StoreBufferEntries++ },
		"priv-geom":    func(c *Config) { c.PrivGeom.Ways *= 2 },
		"llc-geom":     func(c *Config) { c.LLCGeom.SizeBytes *= 2 },
		"llc-banks":    func(c *Config) { c.LLCBanks = 4 },
		"priv-hit":     func(c *Config) { c.PrivHit++ },
		"llc-latency":  func(c *Config) { c.LLCLatency++ },
		"bank-occ":     func(c *Config) { c.BankOccupancy++ },
		"sync-latency": func(c *Config) { c.SyncLatency++ },
		"ag-limit":     func(c *Config) { c.AGLimit-- },
		"evict-buf":    func(c *Config) { c.EvictBufEntries++ },
		"bsp-epoch":    func(c *Config) { c.BSPEpochStores++ },
		"wpq-depth":    func(c *Config) { c.WPQDepth++ },
		"crash-fault":  func(c *Config) { c.CrashFault = FaultTornGroup },
		"noc":          func(c *Config) { c.NoC.HopLatency++ },
		"nvm":          func(c *Config) { c.NVM.WriteLatency++ },
		"agb":          func(c *Config) { c.AGB.LinesPerSlice++ },
		"faults": func(c *Config) {
			s, _ := faultplan.Preset("noc-lossy")
			c.Faults = &s
		},
	}
	seen := map[string]string{}
	for name, mutate := range mutations {
		c := TableI(TSOPER)
		mutate(&c)
		h := hashOf(t, c)
		if h == ref {
			t.Errorf("%s: semantic change did not change the key", name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
}

func TestCanonicalRejectsPersistFilter(t *testing.T) {
	c := TableI(TSOPER)
	c.PersistFilter = func(mem.Line) bool { return true }
	if _, err := c.CanonicalHash(); err == nil {
		t.Fatal("PersistFilter config must not canonicalize")
	}
}

func TestCanonicalJSONDeterministic(t *testing.T) {
	a, err := TableI(TSOPER).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableI(TSOPER).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("canonical JSON not reproducible")
	}
}
