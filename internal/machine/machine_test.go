package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// smallProfile is a fast, contention-heavy workload for machine tests.
func smallProfile(ops int) trace.Profile {
	return trace.Profile{
		Name: "test", OpsPerCore: ops, StoreFrac: 0.45, SharedFrac: 0.5,
		SharedLines: 64, PrivateLines: 64, HotFrac: 0.4, HotLines: 8,
		Locality: 0.3, SyncPeriod: 100, CSStores: 2, ComputeMean: 2,
	}
}

func runSmall(t *testing.T, kind SystemKind, ops int, seed int64) *Results {
	t.Helper()
	cfg := TableI(kind)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(ops), cfg.Cores, seed)
	return m.Run(w)
}

func TestAllSystemsComplete(t *testing.T) {
	for _, kind := range Systems() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := runSmall(t, kind, 300, 1)
			if r.Cycles == 0 {
				t.Fatal("no cycles elapsed")
			}
			if r.Stores == 0 || r.Loads == 0 {
				t.Fatalf("degenerate run: %+v", r)
			}
			if r.DrainCycles < r.Cycles {
				t.Fatal("drain finished before execution")
			}
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1 := runSmall(t, TSOPER, 200, 7)
	r2 := runSmall(t, TSOPER, 200, 7)
	if r1.Cycles != r2.Cycles || r1.PersistWrites != r2.PersistWrites ||
		r1.NVMWrites != r2.NVMWrites || len(r1.Groups) != len(r2.Groups) {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

// Strict-persistency systems must leave NVM holding exactly the final
// version of every stored line after the end-of-run drain.
func TestFinalDurableImageComplete(t *testing.T) {
	for _, kind := range []SystemKind{STW, TSOPER} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := runSmall(t, kind, 250, 3)
			for line, order := range r.LineOrder {
				want := order[len(order)-1]
				if got := r.Durable[line]; got != want {
					t.Fatalf("line %v durable %v, want final version %v", line, got, want)
				}
			}
		})
	}
}

func TestTSOPERGroupsAllRetired(t *testing.T) {
	r := runSmall(t, TSOPER, 250, 5)
	if len(r.Groups) == 0 {
		t.Fatal("no groups journaled")
	}
	for _, g := range r.Groups {
		if g.State() != core.Retired {
			t.Fatalf("group %v not retired after drain", g)
		}
	}
	if err := core.CheckAcyclic(r.Groups); err != nil {
		t.Fatal(err)
	}
}

func TestAGSizeLimitRespected(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.AGLimit = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(300), cfg.Cores, 2)
	r := m.Run(w)
	for _, g := range r.Groups {
		if g.Size() > 8 {
			t.Fatalf("group %v exceeds limit", g)
		}
	}
	if r.AGSizes.Max() > 8 {
		t.Fatalf("max AG size %d", r.AGSizes.Max())
	}
}

// Per-line durable versions must respect the coherence write order: the
// durable version is always some version from the line's order, and since
// the drain completes everything, the final one.
func TestPerLineOrderRecorded(t *testing.T) {
	r := runSmall(t, TSOPER, 200, 9)
	if len(r.LineOrder) == 0 {
		t.Fatal("no line order recorded")
	}
	for line, order := range r.LineOrder {
		// Versions of one core must appear in increasing Seq order.
		lastSeq := map[int]uint64{}
		for _, v := range order {
			if v.Seq <= lastSeq[v.Core] {
				t.Fatalf("line %v: core %d stores out of order", line, v.Core)
			}
			lastSeq[v.Core] = v.Seq
		}
	}
}

// The relative performance ordering of Fig. 11 must hold on a contended
// workload: baseline <= HW-RP/TSOPER < STW, and BSP slower than TSOPER.
func TestSystemOrdering(t *testing.T) {
	res := map[SystemKind]*Results{}
	for _, kind := range Systems() {
		res[kind] = runSmall(t, kind, 400, 11)
	}
	base := res[Baseline].Cycles
	if res[TSOPER].Cycles < base {
		t.Fatalf("TSOPER (%d) faster than baseline (%d)?", res[TSOPER].Cycles, base)
	}
	if res[STW].Cycles <= res[TSOPER].Cycles {
		t.Errorf("STW (%d) should be slower than TSOPER (%d)", res[STW].Cycles, res[TSOPER].Cycles)
	}
	if res[BSP].Cycles <= res[TSOPER].Cycles {
		t.Errorf("BSP (%d) should be slower than TSOPER (%d)", res[BSP].Cycles, res[TSOPER].Cycles)
	}
	if res[HWRP].PersistWrites <= res[TSOPER].PersistWrites {
		t.Errorf("HW-RP persist traffic (%d) should exceed TSOPER's (%d) — less coalescing",
			res[HWRP].PersistWrites, res[TSOPER].PersistWrites)
	}
}

func TestValidateConfig(t *testing.T) {
	cfg := TableI(TSOPER)
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cores must be rejected")
	}
	cfg = TableI(TSOPER)
	cfg.AGLimit = cfg.AGB.LinesPerSlice + 1
	if _, err := New(cfg); err == nil {
		t.Fatal("AG limit beyond AGB slice capacity must be rejected")
	}
}

func TestWorkloadCoreMismatchPanics(t *testing.T) {
	cfg := TableI(Baseline)
	m, _ := New(cfg)
	w := trace.Generate(smallProfile(50), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("core-count mismatch did not panic")
		}
	}()
	m.Run(w)
}

func TestSystemKindStrings(t *testing.T) {
	want := map[SystemKind]string{
		Baseline: "baseline", HWRP: "hw-rp", BSP: "bsp", BSPSLC: "bsp+slc",
		BSPSLCAGB: "bsp+slc+agb", STW: "stw", TSOPER: "tsoper",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: %q", k, k.String())
		}
	}
	if len(Systems()) != 7 {
		t.Fatalf("systems: %v", Systems())
	}
}

// Version coherence sanity: after a fully drained TSOPER run, every line's
// durable version matches the machine's current version map.
func TestDurableMatchesCurrent(t *testing.T) {
	cfg := TableI(TSOPER)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(smallProfile(150), cfg.Cores, 13)
	r := m.Run(w)
	for line, ver := range m.current {
		if got := r.Durable[line]; got != ver {
			t.Fatalf("line %v durable %v, current %v", line, got, ver)
		}
	}
	_ = mem.Line(0)
}
