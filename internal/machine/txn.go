package machine

import (
	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Pooled coherence transactions. An in-order core has at most one read and
// one write transaction in flight at a time (loads block the core; the store
// buffer drains serially), so each core owns one readTxn and one writeTxn
// whose stage continuations are bound once at construction. Steady-state
// misses then allocate nothing: the stages below are the exact event
// sequence the former per-transaction closures scheduled, in the same order
// at the same cycles.

// readTxn is a core's GetS miss in flight (protocol.go readTransaction).
type readTxn struct {
	m    *Machine
	c    *coreUnit
	line mem.Line
	done func()

	src, bnode, owner int
	extra             sim.Time
	dataReady         sim.Time
	node              *slc.Node

	dirFn, fwdFn, memFn, afterFn, retryFn func()
}

func newReadTxn(m *Machine, c *coreUnit) *readTxn {
	t := &readTxn{m: m, c: c}
	t.dirFn = t.dir
	t.fwdFn = t.fwd
	t.memFn = t.fromMem
	t.afterFn = t.after
	t.retryFn = func() { t.m.load(t.c, t.line, t.done) }
	return t
}

// start issues the request to the line's home bank.
func (t *readTxn) start() {
	m := t.m
	t.src = m.coreNode(t.c.id)
	bank := m.bankOf(t.line)
	t.bnode = m.bankNode(bank)
	reqArrive := m.net.Send(t.src, t.bnode, nil)
	begin := m.banks.Claim(bank, reqArrive, m.cfg.BankOccupancy)
	m.engine.At(begin+m.cfg.LLCLatency, t.dirFn)
}

// dir is the directory-serialization instant: all protocol state mutates
// here; the remaining stages only decide when the core resumes.
func (t *readTxn) dir() {
	m, c, line := t.m, t.c, t.line
	lst := m.dir.List(line)
	vd := lst.DirtyNewest()
	if vd != nil && !vd.Valid {
		// The producing version is invalid-pending; the newest valid
		// data is in the LLC (it was written back at invalidation).
		vd = nil
	}
	t.extra = 0
	if vd != nil {
		t.extra = m.sys.exposed(vd, false)
		// Downgrade writeback: the LLC is kept current (§II-B).
		m.llcFill(line, vd.Version)
		m.coherenceWrites.Inc()
	}
	observed := m.current[line]
	t.node = lst.AddHead(c.id, true, false, observed, 0)
	m.coh.dirRead(c.id, line)
	if vd != nil {
		// Read of an unpersisted version: include the line in the
		// reader's group and record the dependency (§III-A).
		m.sys.loadObservedDirty(c, t.node, vd)
	}
	m.dir.Sample(line)

	switch {
	case vd != nil:
		// Forward: bank -> owner -> requester.
		t.owner = m.coreNode(vd.Cache)
		fwdArrive := m.net.Send(t.bnode, t.owner, nil)
		m.engine.At(fwdArrive+m.cfg.PrivHit+t.extra, t.fwdFn)
	case m.llc.Lookup(line) != nil:
		arrive := m.net.Send(t.bnode, t.src, nil)
		t.finish(arrive + t.extra)
	default:
		if _, inAGB := m.buffer.Lookup(line); inAGB {
			// AGB search under the LLC-miss shadow (§II-B): the line
			// was evicted from the LLC but a newer version still sits
			// in the persist buffer; serve it at buffer latency.
			m.set.Counter("agb.search_hits").Inc()
			arrive := m.net.Send(t.bnode, t.src, nil)
			t.finish(arrive + m.cfg.AGB.TransferLatency + t.extra)
			return
		}
		memDone := m.memory.Read(line, nil)
		m.llcFill(line, observed)
		m.engine.At(memDone, t.memFn)
	}
}

// fwd runs at the owner: data hops owner -> requester.
func (t *readTxn) fwd() {
	arrive := t.m.net.Send(t.owner, t.src, nil)
	t.finish(arrive)
}

// fromMem runs when NVM has the data: bank -> requester.
func (t *readTxn) fromMem() {
	arrive := t.m.net.Send(t.bnode, t.src, nil)
	t.finish(arrive + t.extra)
}

// finish secures the private-cache frame, then resumes the core once both
// the frame and the data are ready.
func (t *readTxn) finish(dataReady sim.Time) {
	t.dataReady = dataReady
	t.m.insertFrame(t.c.id, t.line, t.node, t.afterFn)
}

func (t *readTxn) after() {
	t.m.engine.At(maxTime(t.dataReady, t.m.engine.Now()), t.done)
}

// writeTxn is a core's retiring store in flight (protocol.go store /
// writeTransaction): the persistency gate, then a GetX miss or upgrade.
type writeTxn struct {
	m       *Machine
	c       *coreUnit
	line    mem.Line
	ver     mem.Version
	upgrade *slc.Node
	done    func()

	src, bnode, owner int
	walk, extra       sim.Time
	dataReady         sim.Time
	node              *slc.Node

	attemptFn, dirFn, fwdFn, memFn, afterFn, retryFn func()
}

func newWriteTxn(m *Machine, c *coreUnit) *writeTxn {
	t := &writeTxn{m: m, c: c}
	t.attemptFn = t.attempt
	t.dirFn = t.dir
	t.fwdFn = t.fwd
	t.memFn = t.fromMem
	t.afterFn = t.after
	t.retryFn = func() { t.m.store(t.c, t.line, t.ver, t.done) }
	return t
}

// attempt runs once the system's store gate opens.
func (t *writeTxn) attempt() {
	m, c, line := t.m, t.c, t.line
	node := m.nodeOf(c.id, line)
	if node != nil {
		if !node.Valid {
			m.waitLineFree(c.id, line, t.retryFn)
			return
		}
		if node.Dirty {
			// Write hit on our own dirty copy: coalesce in place. The
			// gate guaranteed the owning group is still open.
			m.priv[c.id].arr.Lookup(line)
			m.dir.List(line).MarkDirty(node, t.ver)
			m.recordStore(line, t.ver)
			m.coh.coalesced(c.id, node)
			m.sys.storeCommitted(c, node, nil)
			m.engine.Schedule(m.cfg.PrivHit, t.done)
			return
		}
		// Clean valid copy: upgrade (invalidation round, no data fetch).
		t.start(node)
		return
	}
	t.start(nil)
}

// start issues the GetX (or upgrade) to the line's home bank.
func (t *writeTxn) start(upgrade *slc.Node) {
	m := t.m
	t.upgrade = upgrade
	t.src = m.coreNode(t.c.id)
	bank := m.bankOf(t.line)
	t.bnode = m.bankNode(bank)
	reqArrive := m.net.Send(t.src, t.bnode, nil)
	begin := m.banks.Claim(bank, reqArrive, m.cfg.BankOccupancy)
	m.engine.At(begin+m.cfg.LLCLatency, t.dirFn)
}

// dir is the directory-serialization instant of the write.
func (t *writeTxn) dir() {
	m, c, line, ver, upgrade := t.m, t.c, t.line, t.ver, t.upgrade
	lst := m.dir.List(line)
	if upgrade != nil && (!upgrade.Valid || upgrade.Dirty) {
		// Our copy changed while the upgrade was in flight (another
		// writer invalidated it): restart as a full miss.
		m.store(c, line, ver, t.done)
		return
	}
	vd := lst.DirtyNewest()
	if vd != nil && !vd.Valid {
		vd = nil
	}
	t.extra = 0
	needData := upgrade == nil
	llcHit := m.llc.Lookup(line) != nil
	if vd != nil {
		t.extra = m.sys.exposed(vd, true)
		m.llcFill(line, vd.Version)
		m.coherenceWrites.Inc()
	}

	// Serial invalidation walk over the remaining valid copies.
	nInval := 0
	destructive := m.sys.destructive(line)
	m.vnScratch = lst.ValidInto(m.vnScratch[:0])
	for _, n := range m.vnScratch {
		if n.Cache == c.id {
			continue
		}
		nInval++
		if destructive {
			if n.Dirty {
				m.llcFill(line, n.Version)
			}
			m.applyUpdate(lst.RemoveDestructive(n))
		} else {
			m.applyUpdate(lst.Invalidate(n))
		}
	}
	m.invalWalks.Observe(uint64(nInval))
	// The backend's invalidation discipline: SLC walks the sharing list
	// serially (one hop per valid copy), a conventional directory
	// multicasts in parallel, tardis sends nothing (logical time jumps
	// past the lease frontier instead).
	t.walk = m.coh.invalDelay(nInval)

	// Install the new version at the head of the list.
	if upgrade != nil {
		m.applyUpdate(lst.MoveToHead(upgrade))
		lst.MarkDirty(upgrade, ver)
		t.node = upgrade
	} else {
		t.node = lst.AddHead(c.id, true, true, ver, 0)
	}
	m.recordStore(line, ver)
	m.coh.dirWrite(c.id, t.node)
	m.sys.storeCommitted(c, t.node, vd)
	m.dir.Sample(line)

	switch {
	case !needData:
		arrive := m.net.Send(t.bnode, t.src, nil)
		t.finish(arrive + t.walk + t.extra)
	case vd != nil:
		t.owner = m.coreNode(vd.Cache)
		fwdArrive := m.net.Send(t.bnode, t.owner, nil)
		m.engine.At(fwdArrive+m.cfg.PrivHit+t.extra, t.fwdFn)
	case llcHit:
		arrive := m.net.Send(t.bnode, t.src, nil)
		t.finish(arrive + t.walk + t.extra)
	default:
		memDone := m.memory.Read(line, nil)
		m.llcFill(line, ver)
		m.engine.At(memDone, t.memFn)
	}
}

func (t *writeTxn) fwd() {
	arrive := t.m.net.Send(t.owner, t.src, nil)
	t.finish(arrive + t.walk)
}

func (t *writeTxn) fromMem() {
	arrive := t.m.net.Send(t.bnode, t.src, nil)
	t.finish(arrive + t.walk + t.extra)
}

func (t *writeTxn) finish(dataReady sim.Time) {
	t.dataReady = dataReady
	t.m.insertFrame(t.c.id, t.line, t.node, t.afterFn)
}

func (t *writeTxn) after() {
	t.m.engine.At(maxTime(t.dataReady, t.m.engine.Now()), t.done)
}
