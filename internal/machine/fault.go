package machine

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
)

// CrashFault selects a deliberate persistency corruption applied to the
// recovered crash state. Each fault models a concrete hardware bug the
// paper's design rules out by construction — a torn atomic group, a
// persist-order skip, a leaked speculative version — and is engineered to
// trip exactly one of the checker's rules. The crashmc package uses these
// for mutation testing: a checker that fails to reject every fault is
// vacuously green and proves nothing.
type CrashFault uint8

const (
	// FaultNone injects nothing.
	FaultNone CrashFault = iota
	// FaultTornGroup drops one line of a durable atomic group from the
	// recovered image: a partial (non-atomic) group persist.
	FaultTornGroup
	// FaultUndurablePrefix demotes a durable group that has a younger
	// durable sibling on the same core: persist order skipped a group,
	// breaking per-core prefix closure.
	FaultUndurablePrefix
	// FaultSkipDep records that a durable group should have waited for a
	// still-undurable group: a skipped persist-before edge.
	FaultSkipDep
	// FaultLeakFrozen leaks a frozen-but-undurable group's version into
	// the image: a write that never gained a durability guarantee was
	// recovered.
	FaultLeakFrozen
	// FaultReorderDurable recovers an older durable version over the
	// newest one: same-address FIFO violated during replay.
	FaultReorderDurable
	// FaultPhantomVersion erases the recovered version of a line from the
	// coherence serialization: recovery produced a version the directory
	// never ordered.
	FaultPhantomVersion
	// FaultAlienDurable appends a non-durable group to the durable order:
	// the AGB's durability frontier advanced past an incomplete group.
	FaultAlienDurable
)

func (f CrashFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTornGroup:
		return "torn-group"
	case FaultUndurablePrefix:
		return "undurable-prefix"
	case FaultSkipDep:
		return "skip-dep"
	case FaultLeakFrozen:
		return "leak-frozen"
	case FaultReorderDurable:
		return "reorder-durable"
	case FaultPhantomVersion:
		return "phantom-version"
	case FaultAlienDurable:
		return "alien-durable"
	default:
		return fmt.Sprintf("CrashFault(%d)", uint8(f))
	}
}

// ExpectedRule returns the checker rule the fault is engineered to trip
// ("" for FaultNone). The mapping accounts for the checker's rule order:
// states are validated before dependency closure, which is validated before
// the image.
func (f CrashFault) ExpectedRule() string {
	switch f {
	case FaultTornGroup, FaultReorderDurable:
		return "atomicity"
	case FaultUndurablePrefix:
		return "core-prefix"
	case FaultSkipDep:
		return "persist-before"
	case FaultLeakFrozen:
		return "leak"
	case FaultPhantomVersion:
		return "coherence-order"
	case FaultAlienDurable:
		return "durability-order"
	default:
		return ""
	}
}

// Faults lists every injectable fault (FaultNone excluded).
func Faults() []CrashFault {
	return []CrashFault{
		FaultTornGroup, FaultUndurablePrefix, FaultSkipDep,
		FaultLeakFrozen, FaultReorderDurable, FaultPhantomVersion,
		FaultAlienDurable,
	}
}

// ParseCrashFault resolves a fault by its String name.
func ParseCrashFault(name string) (CrashFault, bool) {
	if name == FaultNone.String() {
		return FaultNone, true
	}
	for _, f := range Faults() {
		if f.String() == name {
			return f, true
		}
	}
	return FaultNone, false
}

// InjectFault corrupts cs in place and reports whether the state offered a
// target for the fault (a crash early enough to have no durable groups, for
// example, has nothing to tear). Injection is deterministic: the same crash
// state and fault always corrupt the same way.
func InjectFault(cs *CrashState, f CrashFault) bool {
	switch f {
	case FaultNone:
		return true

	case FaultTornGroup:
		// Tear the newest durable group that wrote lines: no later durable
		// group shadows its writes, so the dropped line's expected version
		// is exactly this group's.
		for i := len(cs.DurableOrder) - 1; i >= 0; i-- {
			if g := cs.DurableOrder[i]; g.DirtyLen() > 0 {
				delete(cs.Image, minDirtyLine(g))
				return true
			}
		}
		return false

	case FaultUndurablePrefix:
		for _, g := range cs.Groups {
			if g.State() < core.Durable {
				continue
			}
			for _, y := range cs.Groups {
				if y.Core == g.Core && y.Seq > g.Seq && y.State() >= core.Durable {
					g.InjectState(core.Frozen)
					return true
				}
			}
		}
		return false

	case FaultSkipDep:
		var skipped *core.Group
		for _, g := range cs.Groups {
			if g.State() < core.Durable {
				skipped = g
				break
			}
		}
		if skipped == nil {
			return false
		}
		for _, g := range cs.Groups {
			if g.State() >= core.Durable {
				g.DepIDs = append(g.DepIDs, skipped.ID)
				return true
			}
		}
		return false

	case FaultLeakFrozen:
		durableWrote := map[mem.Line]bool{}
		for _, g := range cs.DurableOrder {
			for l := range g.DirtyLines() {
				durableWrote[l] = true
			}
		}
		for _, g := range cs.Groups {
			if st := g.State(); st != core.Frozen && st != core.Draining {
				continue
			}
			for _, l := range sortedDirtyLines(g) {
				if !durableWrote[l] {
					v, _ := g.VersionOf(l)
					cs.Image[l] = v
					return true
				}
			}
		}
		return false

	case FaultReorderDurable:
		// Recover the oldest durable version of a line two durable groups
		// wrote: the newest durable write is shadowed, as if durable-order
		// replay ran backwards.
		first := map[mem.Line]mem.Version{}
		var lines []mem.Line
		for _, g := range cs.DurableOrder {
			for l, v := range g.DirtyLines() {
				if old, ok := first[l]; !ok {
					first[l] = v
				} else if old != v {
					lines = append(lines, l)
				}
			}
		}
		if len(lines) == 0 {
			return false
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		cs.Image[lines[0]] = first[lines[0]]
		return true

	case FaultPhantomVersion:
		var lines []mem.Line
		for l := range cs.Image {
			lines = append(lines, l)
		}
		if len(lines) == 0 {
			return false
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		// A recovered version can legitimately be absent from the coherence
		// serialization (an initial-contents line the run never wrote), so
		// scan for the first line whose version the directory did order
		// instead of giving up on the lowest-addressed one.
		for _, l := range lines {
			got := cs.Image[l]
			order := cs.LineOrder[l]
			for i, v := range order {
				if v == got {
					cs.LineOrder[l] = append(order[:i:i], order[i+1:]...)
					return true
				}
			}
		}
		return false

	case FaultAlienDurable:
		for _, g := range cs.Groups {
			if g.State() < core.Durable {
				cs.DurableOrder = append(cs.DurableOrder, g)
				return true
			}
		}
		return false
	}
	return false
}

func minDirtyLine(g *core.Group) mem.Line {
	lines := sortedDirtyLines(g)
	return lines[0]
}

func sortedDirtyLines(g *core.Group) []mem.Line {
	lines := make([]mem.Line, 0, g.DirtyLen())
	for l := range g.DirtyLines() {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}
