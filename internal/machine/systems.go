package machine

import (
	"repro/internal/coherence/slc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// system is the persistency model plugged into the machine. The machine
// owns coherence; the system decides what exposure, commitment, and
// eviction mean for persistency, and how much extra delay they impose.
type system interface {
	// destructive selects the invalidation policy: true unlinks invalidated
	// copies (conventional protocols); false keeps them on the sharing list
	// until persisted (§IV-A non-destructive invalidation).
	destructive(l mem.Line) bool
	// gateStore may delay a store before its coherence transaction issues
	// (frozen-group lines, flushing-epoch lines, a stopped world).
	gateStore(c *coreUnit, line mem.Line, proceed func())
	// storeCommitted runs at the directory instant of a committed store.
	// prevDirty is the previous unpersisted producer of the line (nil if
	// none) — the persist-before source for this write.
	storeCommitted(c *coreUnit, node *slc.Node, prevDirty *slc.Node)
	// loadObservedDirty runs when a load observes an unpersisted remote
	// version: readerNode is the reader's new list node, producer the
	// dirty node it read (§III-A read inclusion).
	loadObservedDirty(c *coreUnit, readerNode, producer *slc.Node)
	// exposed runs when a remote request (write=true for GetX) hits a
	// dirty node. It returns extra delay imposed on the requester (BSP's
	// L1 exclusion time; zero for SLC-based systems).
	exposed(n *slc.Node, write bool) sim.Time
	// evictedDirty runs when a valid dirty line leaves the private cache.
	evictedDirty(n *slc.Node)
	// dirEvicted runs when a directory/LLC entry whose line has an
	// unpersisted dirty copy is evicted (§III-B: freeze and persist; the
	// entry is buffered until the affected lines persist).
	dirEvicted(n *slc.Node)
	// nodeCleared runs when a sharing-list node becomes clear (no dirty
	// versions below it) — the atomic-group tail accounting of §IV-B.
	nodeCleared(n *slc.Node)
	// marker runs a software marker store (§II-D): strict systems close the
	// core's current atomic group so AG boundaries align with software-
	// defined recovery epochs; others ignore it.
	marker(c *coreUnit)
	// sync runs a core's synchronization operation (HW-RP's SFR boundary).
	sync(c *coreUnit, done func())
	// drain flushes all residual persistency state at end of run; done
	// fires when everything buffered has a durability guarantee.
	drain(done func())
}

// newSystem instantiates the configured persistency model.
func newSystem(m *Machine) system {
	switch m.cfg.System {
	case Baseline:
		return &baselineSys{}
	case HWRP:
		return newHWRPSys(m)
	case BSP, BSPSLC, BSPSLCAGB:
		return newBSPSys(m)
	case STW, TSOPER:
		return newTSOPERSys(m)
	default:
		panic("machine: unknown system kind")
	}
}

// baselineSys is SLC coherence with no persistency support at all.
type baselineSys struct{}

func (*baselineSys) destructive(mem.Line) bool { return true }
func (*baselineSys) gateStore(_ *coreUnit, _ mem.Line, proceed func()) {
	proceed()
}
func (*baselineSys) storeCommitted(*coreUnit, *slc.Node, *slc.Node)    {}
func (*baselineSys) loadObservedDirty(*coreUnit, *slc.Node, *slc.Node) {}
func (*baselineSys) exposed(*slc.Node, bool) sim.Time                  { return 0 }
func (*baselineSys) evictedDirty(*slc.Node)                            {}
func (*baselineSys) dirEvicted(*slc.Node)                              {}
func (*baselineSys) nodeCleared(*slc.Node)                             {}
func (*baselineSys) marker(*coreUnit)                                  {}
func (*baselineSys) sync(_ *coreUnit, done func())                     { done() }
func (*baselineSys) drain(done func())                                 { done() }
