package machine

import (
	"testing"

	"repro/internal/mem"
)

func TestDurableOutcomeKey(t *testing.T) {
	cs := &CrashState{Image: map[mem.Line]mem.Version{
		mem.Line(1): {Core: 0, Seq: 2},
		mem.Line(3): {Core: 1, Seq: 1},
	}}
	out := cs.DurableOutcome([]mem.Line{1, 2, 3})
	if len(out) != 3 {
		t.Fatalf("outcome length %d, want 3", len(out))
	}
	if !out[1].IsInitial() {
		t.Errorf("unwritten line must recover initial, got %v", out[1])
	}
	if got, want := out.Key(), "c0.s2|v0|c1.s1"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
	// Key equality iff outcome equality.
	other := cs.DurableOutcome([]mem.Line{3, 2, 1})
	if other.Key() == out.Key() {
		t.Error("distinct line orders must have distinct keys")
	}
	if (Outcome{}).Key() != "" {
		t.Errorf("empty outcome key = %q", (Outcome{}).Key())
	}
}
