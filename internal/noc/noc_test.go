package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func newNet(cfg Config) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	return e, New(e, cfg, stats.NewSet())
}

func TestHopsManhattan(t *testing.T) {
	_, n := newNet(DefaultConfig()) // 4x4
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 1},  // local delivery counts one router
		{0, 1, 1},  // adjacent
		{0, 3, 3},  // across a row
		{0, 12, 3}, // down a column
		{0, 15, 6}, // corner to corner
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d)=%d want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLatency(t *testing.T) {
	_, n := newNet(DefaultConfig())
	if got := n.Latency(0, 15); got != 18 {
		t.Fatalf("corner latency=%d, want 18", got)
	}
}

func TestSendDelivers(t *testing.T) {
	e, n := newNet(DefaultConfig())
	var at sim.Time
	arrive := n.Send(0, 1, func() { at = e.Now() })
	e.Run()
	if at != arrive || at != 3 {
		t.Fatalf("delivered at %d, arrive=%d", at, arrive)
	}
	if n.Messages() != 1 {
		t.Fatalf("messages=%d", n.Messages())
	}
}

func TestInjectionContention(t *testing.T) {
	e, n := newNet(Config{Width: 2, Height: 1, HopLatency: 5, LinkOccupancy: 2})
	a1 := n.Send(0, 1, nil)
	a2 := n.Send(0, 1, nil)
	// Second injection waits 2 cycles behind the first.
	if a1 != 5 || a2 != 7 {
		t.Fatalf("arrivals: %d %d", a1, a2)
	}
	e.Run()
}

func TestDifferentSourcesIndependent(t *testing.T) {
	_, n := newNet(Config{Width: 2, Height: 1, HopLatency: 5, LinkOccupancy: 2})
	a1 := n.Send(0, 1, nil)
	a2 := n.Send(1, 0, nil)
	if a1 != 5 || a2 != 5 {
		t.Fatalf("arrivals: %d %d", a1, a2)
	}
}

func TestPropertyHopsSymmetric(t *testing.T) {
	_, n := newNet(DefaultConfig())
	f := func(a, b uint8) bool {
		src, dst := int(a)%n.Nodes(), int(b)%n.Nodes()
		return n.Hops(src, dst) == n.Hops(dst, src) && n.Hops(src, dst) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateConfigClamped(t *testing.T) {
	_, n := newNet(Config{Width: 0, Height: 0, HopLatency: 1})
	if n.Nodes() != 1 {
		t.Fatalf("nodes=%d", n.Nodes())
	}
}
