package noc

import "repro/internal/ckpt"

// EncodeState writes the injection-port occupancy per node. In-flight
// deliveries are continuations in the engine schedule; the message/hop
// counters live in the machine's stats registry.
func (n *Network) EncodeState(w *ckpt.Writer) {
	n.ports.EncodeState(w)
}
