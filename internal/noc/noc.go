// Package noc models the on-chip interconnection network. The paper uses
// GARNET with a 2D mesh (Table I); only end-to-end message latency and link
// contention influence its results, so we model the mesh as hop-count
// latency (per-hop router + link delay) plus per-node-pair link occupancy
// for bandwidth contention.
package noc

import (
	"fmt"

	"repro/internal/faultplan"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config describes the mesh.
type Config struct {
	// Width and Height give the mesh dimensions; nodes are numbered
	// row-major. An 8-core CMP with 8 LLC banks maps onto a 4x4 mesh.
	Width, Height int
	// HopLatency is router traversal + link delay per hop, in cycles.
	HopLatency sim.Time
	// LinkOccupancy is how long a message occupies its injection port,
	// modeling serialization of multi-flit packets.
	LinkOccupancy sim.Time
}

// DefaultConfig returns a 4x4 mesh with 3-cycle hops and 1-cycle
// injection occupancy, matching the paper's GARNET setup in spirit.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatency: 3, LinkOccupancy: 1}
}

// Network routes messages between nodes.
type Network struct {
	cfg    Config
	engine *sim.Engine
	// ports serializes injections per source node.
	ports *sim.Bank

	msgs *stats.Counter
	hops *stats.Counter

	// tel is nil unless Instrument attached a telemetry bus.
	tel *nocTel
	// flt is nil unless AttachFaults attached a fault plan; Send pays one
	// branch when it is nil.
	flt *faultplan.Plan
}

// nocTel holds the pre-registered telemetry tracks: one timeline row per
// mesh node, carrying a complete span per injected message (link occupancy
// plus traversal) and an "inject-wait" span when the injection port was
// contended.
type nocTel struct {
	bus  *telemetry.Bus
	node []telemetry.Track
}

// Instrument attaches a telemetry bus; a nil or sinkless bus is a no-op.
func (n *Network) Instrument(bus *telemetry.Bus) {
	if !bus.Enabled() {
		return
	}
	t := &nocTel{bus: bus}
	for i := 0; i < n.Nodes(); i++ {
		t.node = append(t.node, bus.Track("noc", fmt.Sprintf("node %d", i)))
	}
	n.tel = t
}

// AttachFaults attaches a runtime fault-injection plan. Sends then model a
// reliable transport over a lossy link: every message carries a sequence
// number and is acknowledged; a dropped transmission times out at the
// sender (the plan's AckTimeout) and is retransmitted, up to MaxRetransmits
// times before the sender escalates to a slow guaranteed path; a lost ack
// causes a spurious retransmission that the receiver's sequence-number
// dedup suppresses. Delivery therefore remains exactly-once and the
// returned arrival time accounts for every repair round trip.
func (n *Network) AttachFaults(p *faultplan.Plan) { n.flt = p }

// New creates a network on the engine.
func New(engine *sim.Engine, cfg Config, set *stats.Set) *Network {
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.Height <= 0 {
		cfg.Height = 1
	}
	return &Network{
		cfg:    cfg,
		engine: engine,
		ports:  sim.NewBank(cfg.Width * cfg.Height),
		msgs:   set.Counter("noc.messages"),
		hops:   set.Counter("noc.hops"),
	}
}

// Nodes returns the number of mesh nodes.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the Manhattan distance between two nodes (XY routing).
func (n *Network) Hops(src, dst int) int {
	sx, sy := src%n.cfg.Width, src/n.cfg.Width
	dx, dy := dst%n.cfg.Width, dst/n.cfg.Width
	h := abs(sx-dx) + abs(sy-dy)
	if h == 0 {
		h = 1 // local delivery still crosses the node's router once
	}
	return h
}

// Latency returns the uncontended traversal time between two nodes.
func (n *Network) Latency(src, dst int) sim.Time {
	return sim.Time(n.Hops(src, dst)) * n.cfg.HopLatency
}

// Send models a message from src to dst starting now; it returns the arrival
// time and schedules deliver (if non-nil) at that time. Injection contention
// at the source is modeled; in-network contention is folded into HopLatency.
func (n *Network) Send(src, dst int, deliver func()) sim.Time {
	n.msgs.Inc()
	n.hops.Add(uint64(n.Hops(src, dst)))
	if n.flt != nil {
		return n.sendFaulty(src, dst, deliver)
	}
	now := n.engine.Now()
	start := n.ports.Claim(src, now, n.cfg.LinkOccupancy)
	arrive := start + n.Latency(src, dst)
	if n.tel != nil {
		if start > now {
			// Injection port contention: the message queued at the source.
			n.tel.bus.Span(n.tel.node[src], "inject-wait",
				telemetry.Ticks(now), telemetry.Ticks(start-now), 0)
		}
		n.tel.bus.Span(n.tel.node[src], "msg",
			telemetry.Ticks(start), telemetry.Ticks(arrive-start), uint64(dst))
	}
	if deliver != nil {
		n.engine.At(arrive, deliver)
	}
	return arrive
}

// sendFaulty is the fault-plan transport: the schedule is consulted per
// transmission attempt and the repaired arrival time is resolved
// synchronously (the plan is deterministic), so callers keep the plain
// Send contract — one delivery at the returned cycle.
func (n *Network) sendFaulty(src, dst int, deliver func()) sim.Time {
	now := n.engine.Now()
	at := now
	limit := n.flt.MaxRetransmits()
	timeout := sim.Time(n.flt.AckTimeout())
	tries := 0
	var start, arrive sim.Time
	for {
		start = n.ports.Claim(src, at, n.cfg.LinkOccupancy)
		arrive = start + n.Latency(src, dst)
		if tries > limit {
			// Retransmission budget exhausted: the sender escalates to the
			// slow reliable path (one extra timeout, guaranteed delivery).
			n.flt.NoCEscalate(uint64(start), src)
			arrive += timeout
			break
		}
		if !n.flt.NoCDropAttempt(uint64(start), src, dst) {
			break
		}
		tries++
		// The ack timer expires one traversal plus one timeout after the
		// transmission began; the retransmission injects then.
		at = arrive + timeout
		n.flt.NoCRetransmit(uint64(at), src)
	}
	if d := n.flt.NoCDelay(uint64(arrive)); d > 0 {
		arrive += sim.Time(d)
	}
	if n.flt.NoCDuplicate(uint64(arrive), src) {
		// Lost ack: a spurious retransmission claims injection bandwidth;
		// the receiver's dedup drops it, so no second delivery.
		n.ports.Claim(src, arrive+timeout, n.cfg.LinkOccupancy)
	}
	if n.tel != nil {
		if start > now {
			n.tel.bus.Span(n.tel.node[src], "inject-wait",
				telemetry.Ticks(now), telemetry.Ticks(start-now), 0)
		}
		n.tel.bus.Span(n.tel.node[src], "msg",
			telemetry.Ticks(start), telemetry.Ticks(arrive-start), uint64(dst))
	}
	if deliver != nil {
		n.engine.At(arrive, deliver)
	}
	return arrive
}

// Ports exposes the per-node injection ports for utilization snapshots.
func (n *Network) Ports() *sim.Bank { return n.ports }

// Messages returns the number of messages sent.
func (n *Network) Messages() uint64 { return n.msgs.Value }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
