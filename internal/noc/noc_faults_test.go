package noc

import (
	"testing"

	"repro/internal/faultplan"
	"repro/internal/sim"
)

// lossyNet attaches a compiled fault plan to a 2x1 mesh (5-cycle hop,
// 2-cycle injection occupancy), so uncontended delivery takes 5 cycles.
func lossyNet(spec faultplan.Spec) (*sim.Engine, *Network) {
	e, n := newNet(Config{Width: 2, Height: 1, HopLatency: 5, LinkOccupancy: 2})
	n.AttachFaults(faultplan.New(spec))
	return e, n
}

func TestRetransmitDelaysArrival(t *testing.T) {
	// Drop everything, but allow enough retransmits that escalation never
	// happens within the outage... DropPct=1 with a high budget would loop to
	// escalation, so use an outage-free scheme: drop the first transmissions
	// deterministically by bounding the budget instead.
	e, n := lossyNet(faultplan.Spec{
		NoC:        faultplan.NoCSpec{DropPct: 1},
		Resilience: faultplan.Resilience{AckTimeout: 10, MaxRetransmits: 2},
	})
	var deliveries int
	// tx1 at 0 arrives 5, dropped; retransmit at 15 arrives 20, dropped;
	// retransmit at 30 arrives 35, dropped (budget now spent); the escalated
	// transmission at 45 arrives 50 + one timeout = 60, guaranteed.
	arrive := n.Send(0, 1, func() { deliveries++ })
	if arrive != 60 {
		t.Fatalf("arrive=%d, want 60 (3 drops, then escalation)", arrive)
	}
	e.Run()
	if deliveries != 1 {
		t.Fatalf("%d deliveries, want exactly one", deliveries)
	}
	c := n.flt.Counts()
	if c.NoCDrops != 3 || c.NoCRetransmits != 3 || c.NoCEscalations != 1 {
		t.Fatalf("counts: %s", c)
	}
}

func TestDropFreePathUnchanged(t *testing.T) {
	e, n := lossyNet(faultplan.Spec{}) // plan attached but injects nothing
	arrive := n.Send(0, 1, nil)
	if arrive != 5 {
		t.Fatalf("arrive=%d, want 5 (fault path must preserve clean timing)", arrive)
	}
	e.Run()
	if c := n.flt.Counts(); c != (faultplan.Counts{}) {
		t.Fatalf("counts: %s", c)
	}
}

func TestDuplicateSuppressedExactlyOnce(t *testing.T) {
	e, n := lossyNet(faultplan.Spec{
		NoC:        faultplan.NoCSpec{DupPct: 1},
		Resilience: faultplan.Resilience{AckTimeout: 10},
	})
	var deliveries int
	arrive := n.Send(0, 1, func() { deliveries++ })
	// The lost ack does not delay the original delivery...
	if arrive != 5 {
		t.Fatalf("arrive=%d, want 5", arrive)
	}
	e.Run()
	// ...and the receiver dedups the spurious retransmission.
	if deliveries != 1 {
		t.Fatalf("%d deliveries, want exactly one", deliveries)
	}
	if c := n.flt.Counts(); c.NoCDups != 1 {
		t.Fatalf("counts: %s", c)
	}
	// The spurious retransmission claimed real injection bandwidth at
	// arrive+timeout: the port is busy at cycle 15.
	if free := n.ports.Claim(0, 15, 0); free != 17 {
		t.Fatalf("port next free at %d, want 17 (dup occupied 15..17)", free)
	}
}

func TestDelayAddsCycles(t *testing.T) {
	e, n := lossyNet(faultplan.Spec{
		NoC: faultplan.NoCSpec{DelayPct: 1, DelayCycles: 12},
	})
	arrive := n.Send(0, 1, nil)
	if arrive != 17 {
		t.Fatalf("arrive=%d, want 17 (5 + 12 delay)", arrive)
	}
	e.Run()
	if c := n.flt.Counts(); c.NoCDelays != 1 {
		t.Fatalf("counts: %s", c)
	}
}

// Total loss is still bounded: every message eventually arrives via
// escalation, so a burst under DropPct=1 delivers every message exactly once.
func TestTotalLossStillDeliversAll(t *testing.T) {
	e, n := lossyNet(faultplan.Spec{
		NoC:        faultplan.NoCSpec{DropPct: 1},
		Resilience: faultplan.Resilience{AckTimeout: 4, MaxRetransmits: 1},
	})
	delivered := 0
	for i := 0; i < 10; i++ {
		n.Send(0, 1, func() { delivered++ })
	}
	e.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d/10", delivered)
	}
	c := n.flt.Counts()
	if c.NoCEscalations != 10 {
		t.Fatalf("escalations=%d, want 10 (budget is 1 retransmit)", c.NoCEscalations)
	}
}

func TestFaultedSendsDeterministic(t *testing.T) {
	spec := faultplan.Spec{
		Seed:       11,
		NoC:        faultplan.NoCSpec{DropPct: 0.3, DupPct: 0.2, DelayPct: 0.2, DelayCycles: 7},
		Resilience: faultplan.Resilience{AckTimeout: 10, MaxRetransmits: 3},
	}
	run := func() ([]sim.Time, faultplan.Counts) {
		e, n := lossyNet(spec)
		var arrivals []sim.Time
		for i := 0; i < 50; i++ {
			arrivals = append(arrivals, n.Send(i%2, (i+1)%2, nil))
		}
		e.Run()
		return arrivals, n.flt.Counts()
	}
	a1, c1 := run()
	a2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverged: %s vs %s", c1, c2)
	}
	if c1.Injected() == 0 {
		t.Fatal("schedule injected nothing; test is vacuous")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("send %d arrival diverged: %d vs %d", i, a1[i], a2[i])
		}
	}
}
