package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/checker"
	"repro/internal/crashmc"
	"repro/internal/faultplan"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Options configures one exploration of a litmus test.
type Options struct {
	// System is the persistency model (default TSOPER; STW is the other
	// strict system the checker accepts).
	System machine.SystemKind
	// Scheduler selects the event-queue implementation; explorations under
	// both schedulers must produce identical Results.
	Scheduler sim.SchedulerKind
	// Coherence selects the coherence backend (default SLC). Conformance is
	// protocol-independent: the reached durable outcomes must satisfy the
	// oracle on every backend.
	Coherence machine.CoherenceKind
	// Faults, when non-nil, runs every crash under the runtime
	// fault-injection plan (NVM/NoC/AGB failures with resilience recovery).
	Faults *faultplan.Spec
	// Fault, when not FaultNone, corrupts every recovered crash state —
	// mutation testing of the oracle itself. A conforming run under an
	// injected fault is a missed kill.
	Fault machine.CrashFault
	// Perturbs lists the interleaving perturbations to sweep (default
	// DefaultPerturbs()).
	Perturbs []Perturb
	// CrashBudget caps harvested crash points per perturbation (default 48;
	// <0 keeps every harvested point).
	CrashBudget int
	// Coverage also requires every allowed outcome to be reached. On by
	// default via Default(); disable under fault plans, where injected
	// failures legitimately narrow the reachable set.
	Coverage bool
	// CrossCheck runs the crash-consistency checker on every crash state
	// and reports oracle/checker disagreement.
	CrossCheck bool
}

// Default returns the standard conformance options: TSOPER, coverage and
// cross-checking on, default perturbation sweep.
func Default() Options {
	return Options{System: machine.TSOPER, Coverage: true, CrossCheck: true}
}

// DefaultPerturbs returns the standard interleaving sweep: the unperturbed
// lowering, forward and backward core staggers at several scales (the
// largest wide enough for one core to drain whole persist epochs before
// another starts), core-order permutations at that scale, solo-core and
// all-but-one delays, and seeded inter-op jitter streams.
func DefaultPerturbs() []Perturb {
	ps := []Perturb{{}}
	for _, d := range []uint32{3, 17, 64, 211, 701} {
		ps = append(ps,
			Perturb{Skew: []uint32{0, d, 2 * d, 3 * d}},
			Perturb{Skew: []uint32{3 * d, 2 * d, d, 0}})
	}
	// The remaining orderings of the first three cores (identity and
	// reversal are covered by the staggers above): crash points along one
	// widely-spread trajectory realize every per-core progress mix of it.
	for _, ord := range [][3]uint32{{1, 0, 2}, {2, 0, 1}, {0, 2, 1}, {1, 2, 0}} {
		ps = append(ps, Perturb{Skew: []uint32{701 * ord[0], 701 * ord[1], 701 * ord[2], 3 * 701}})
	}
	for c := 0; c < 4; c++ {
		solo := make([]uint32, 4)
		solo[c] = 701
		ps = append(ps, Perturb{Skew: solo})
		rest := []uint32{701, 701, 701, 701}
		rest[c] = 0
		ps = append(ps, Perturb{Skew: rest})
	}
	for seed := int64(1); seed <= 4; seed++ {
		ps = append(ps, Perturb{Jitter: seed})
	}
	return ps
}

// Violation is one conformance failure.
type Violation struct {
	// Kind is one of "forbidden", "unallowed", "checker-disagreement",
	// "coverage", "stall", or "setup".
	Kind string `json:"kind"`
	// Outcome is the durable outcome involved (empty for setup failures).
	Outcome string `json:"outcome,omitempty"`
	// Perturb and At locate the crash that exposed it.
	Perturb string `json:"perturb,omitempty"`
	At      uint64 `json:"at,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(v.Kind)
	if v.Outcome != "" {
		fmt.Fprintf(&b, " [%s]", v.Outcome)
	}
	if v.Perturb != "" {
		fmt.Fprintf(&b, " perturb=%s at=%d", v.Perturb, v.At)
	}
	if v.Detail != "" {
		b.WriteString(": ")
		b.WriteString(v.Detail)
	}
	return b.String()
}

// maxViolations caps the recorded violation list; the count keeps running.
const maxViolations = 16

// Witness locates the first crash that reached an outcome.
type Witness struct {
	Perturb string `json:"perturb"`
	At      uint64 `json:"at"`
}

// Result is the outcome of exploring one test under one configuration. Its
// JSON form is deterministic: two explorations that observe the same
// behavior serialize byte-identically (the cross-scheduler gate).
type Result struct {
	Test        string `json:"test"`
	System      string `json:"system"`
	FaultPreset string `json:"fault_preset,omitempty"`
	CrashFault  string `json:"crash_fault,omitempty"`
	// Protocol is the coherence backend; omitted for the default SLC so
	// pre-existing results/litmus.json artifacts keep their exact shape.
	Protocol string `json:"protocol,omitempty"`

	// Reached is the sorted set of durable outcomes the machine exposed.
	Reached []string `json:"reached"`
	// Allowed echoes the test's declared allowed set.
	Allowed []string `json:"allowed"`
	// Witnesses maps each reached outcome to the first crash exposing it.
	Witnesses map[string]Witness `json:"witnesses,omitempty"`

	// Perturbs and Points count the sweep; FaultApplied counts crash states
	// the injected CrashFault found a target in.
	Perturbs     int `json:"perturbs"`
	Points       int `json:"points"`
	FaultApplied int `json:"fault_applied,omitempty"`

	Violations      []Violation `json:"violations,omitempty"`
	TotalViolations int         `json:"total_violations,omitempty"`
}

// Conforms reports whether the exploration found no violations.
func (r *Result) Conforms() bool { return r.TotalViolations == 0 }

// Err summarizes the violations as an error (nil when conforming).
func (r *Result) Err() error {
	if r.Conforms() {
		return nil
	}
	lines := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		lines = append(lines, "  "+v.String())
	}
	more := ""
	if r.TotalViolations > len(r.Violations) {
		more = fmt.Sprintf("\n  ... and %d more", r.TotalViolations-len(r.Violations))
	}
	return fmt.Errorf("litmus: %s: %d violation(s):\n%s%s",
		r.Test, r.TotalViolations, strings.Join(lines, "\n"), more)
}

func (r *Result) violate(v Violation) {
	r.TotalViolations++
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, v)
	}
}

// config builds the machine configuration for a test under the options.
func (o Options) config(cores int) machine.Config {
	cfg := machine.TableI(o.System)
	cfg.Cores = cores
	cfg.Scheduler = o.Scheduler
	cfg.Coherence = o.Coherence
	cfg.Faults = o.Faults
	cfg.CrashFault = o.Fault
	return cfg
}

// Explore drives the test through the machine across the perturbation sweep
// and every harvested crash point, and checks conformance: soundness of
// every reached durable outcome, coverage of the allowed set, and agreement
// with the crash-consistency checker.
func Explore(t *Test, o Options) *Result {
	if o.System == machine.Baseline {
		o.System = machine.TSOPER
	}
	if o.Perturbs == nil {
		o.Perturbs = DefaultPerturbs()
	}
	if o.CrashBudget == 0 {
		o.CrashBudget = 48
	}

	r := &Result{
		Test:      t.Name,
		System:    o.System.String(),
		Allowed:   append([]string(nil), t.Allowed...),
		Witnesses: map[string]Witness{},
		Perturbs:  len(o.Perturbs),
	}
	if o.Faults != nil {
		r.FaultPreset = o.Faults.Name
	}
	if o.Fault != machine.FaultNone {
		r.CrashFault = o.Fault.String()
	}
	if o.Coherence != machine.CoherenceSLC {
		r.Protocol = o.Coherence.String()
	}
	if err := t.Validate(); err != nil {
		r.violate(Violation{Kind: "setup", Detail: err.Error()})
		return r
	}

	allowed := map[string]bool{}
	for _, a := range t.Allowed {
		allowed[a] = true
	}
	forbidden := map[string]bool{}
	for _, f := range t.Forbidden {
		forbidden[f] = true
	}
	reached := map[string]bool{}

	for _, p := range o.Perturbs {
		lo := t.lower(p)
		cfg := o.config(len(t.Cores))
		budget := o.CrashBudget
		if budget < 0 {
			budget = 0
		}
		points, horizon, err := crashmc.HarvestWorkload(cfg, lo.w, budget)
		if err != nil {
			r.violate(Violation{Kind: "setup", Perturb: p.String(),
				Detail: "harvest: " + err.Error()})
			continue
		}
		// An explicit first-cycle crash pins the initial image and a
		// post-horizon crash the complete one.
		points = append([]uint64{1}, append(points, horizon+16)...)

		for _, at := range points {
			m, err := machine.New(cfg)
			if err != nil {
				r.violate(Violation{Kind: "setup", Detail: err.Error()})
				return r
			}
			cs := m.RunWithCrash(lo.w, sim.Time(at))
			r.Points++
			if cs.Stalled {
				r.violate(Violation{Kind: "stall", Perturb: p.String(), At: at,
					Detail: cs.Stall.Error()})
				continue
			}
			if cs.FaultApplied {
				r.FaultApplied++
			}
			out := lo.outcome(cs.DurableOutcome(lo.lines))
			if !reached[out] {
				reached[out] = true
				r.Witnesses[out] = Witness{Perturb: p.String(), At: at}
			}
			outcomeOK := allowed[out]
			switch {
			case forbidden[out]:
				r.violate(Violation{Kind: "forbidden", Outcome: out,
					Perturb: p.String(), At: at})
			case !outcomeOK:
				r.violate(Violation{Kind: "unallowed", Outcome: out,
					Perturb: p.String(), At: at})
			}
			if o.CrossCheck {
				// The checker and the outcome oracle must agree: a state
				// whose image the model allows must pass the checker. (The
				// converse — checker-clean but unallowed — already reported
				// above as "unallowed" and equally implicates one oracle.)
				if err := checker.Check(cs); err != nil && outcomeOK {
					r.violate(Violation{Kind: "checker-disagreement",
						Outcome: out, Perturb: p.String(), At: at,
						Detail: err.Error()})
				}
			}
		}
	}

	r.Reached = sortedKeys(reached)
	if o.Coverage {
		for _, a := range t.Allowed {
			if !reached[a] {
				r.violate(Violation{Kind: "coverage", Outcome: a,
					Detail: "allowed outcome never reached"})
			}
		}
	}
	sort.Slice(r.Violations, func(i, j int) bool {
		a, b := r.Violations[i], r.Violations[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Outcome != b.Outcome {
			return a.Outcome < b.Outcome
		}
		return a.At < b.At
	})
	return r
}
