package litmus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Report is the machine-readable conformance record (results/litmus.json):
// every exploration result across the swept axes plus the mutation-kill
// ledger. The JSON form is deterministic for fixed inputs.
type Report struct {
	// Axes names the swept configurations ("wheel", "heap",
	// "faults:nvm-transient", ...) in sweep order.
	Axes    []string  `json:"axes,omitempty"`
	Results []*Result `json:"results"`
	Kills   []Kill    `json:"kills,omitempty"`

	Tests      int `json:"tests"`
	Conforming int `json:"conforming"`
	Violating  int `json:"violating"`
	Killed     int `json:"killed"`
}

// Add appends a result and updates the tallies.
func (rep *Report) Add(r *Result) {
	rep.Results = append(rep.Results, r)
	rep.Tests++
	if r.Conforms() {
		rep.Conforming++
	} else {
		rep.Violating++
	}
}

// AddKills appends the mutation ledger.
func (rep *Report) AddKills(kills []Kill) {
	rep.Kills = append(rep.Kills, kills...)
	for _, k := range kills {
		if k.Killed {
			rep.Killed++
		}
	}
}

// Summary renders a one-line human summary.
func (rep *Report) Summary() string {
	s := fmt.Sprintf("litmus: %d explorations, %d conforming, %d violating",
		rep.Tests, rep.Conforming, rep.Violating)
	if len(rep.Kills) > 0 {
		s += fmt.Sprintf("; mutation: %d/%d faults killed", rep.Killed, len(rep.Kills))
	}
	return s
}

// WriteJSONFile writes the report, creating parent directories.
func (rep *Report) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
