package litmus

import (
	"errors"
	"fmt"

	"repro/internal/machine"
)

// Mutation testing of the oracle itself: the litmus corpus is only
// trustworthy if it actually fails when the machine misbehaves. For every
// injectable persistency fault we re-run the corpus with the fault
// corrupting each recovered crash state and demand at least one test
// notices — either because the corrupted image decodes to a non-allowed
// outcome ("outcome" kill: torn epochs, broken prefixes) or because the
// crash-consistency checker rejects a state whose image happens to remain
// plausible ("cross-check" kill: dependency and ordering faults are
// invisible in a two-variable image but never to the checker).

// Kill records how one injected fault was caught.
type Kill struct {
	Fault string `json:"fault"`
	// Expected is the checker rule the fault is engineered to trip.
	Expected string `json:"expected"`
	// Test is the corpus test that killed the fault; Mode is "outcome" for
	// a forbidden/unallowed durable state, "cross-check" for a checker
	// rejection of an allowed one.
	Test string `json:"test,omitempty"`
	Mode string `json:"mode,omitempty"`
	// Violation is the witnessing violation, rendered.
	Violation string `json:"violation,omitempty"`
	// Applied counts crash states the fault found a target in across the
	// killing test's exploration; TestsTried counts corpus tests examined.
	Applied    int  `json:"applied"`
	TestsTried int  `json:"tests_tried"`
	Killed     bool `json:"killed"`
}

// killMode classifies a violation as a kill witness.
func killMode(v Violation) string {
	switch v.Kind {
	case "forbidden", "unallowed":
		return "outcome"
	case "checker-disagreement":
		return "cross-check"
	default:
		return ""
	}
}

// MutationKills runs every injectable fault against the corpus until a test
// kills it. The exploration runs without coverage (a corrupted machine
// legitimately narrows reachability) and with a reduced perturbation sweep
// — fault injection is deterministic per crash state, so one lowering per
// test suffices. A fault no test kills is an error: the corpus is too weak
// to notice that corruption.
func MutationKills(tests []*Test, o Options) ([]Kill, error) {
	o.Coverage = false
	o.CrossCheck = true
	if o.Perturbs == nil {
		o.Perturbs = []Perturb{{}}
	}
	var kills []Kill
	var failures []error
	for _, fault := range machine.Faults() {
		k := Kill{Fault: fault.String(), Expected: fault.ExpectedRule()}
		for _, t := range tests {
			k.TestsTried++
			fo := o
			fo.Fault = fault
			r := Explore(t, fo)
			if r.Conforms() {
				continue
			}
			// Prefer an outcome witness — corruption visible in the durable
			// image itself is the stronger evidence — over a cross-check one.
			// A cross-check kill is recorded but the scan continues: a later
			// test may surface the same fault as a forbidden outcome.
			for _, mode := range []string{"outcome", "cross-check"} {
				for _, v := range r.Violations {
					if killMode(v) != mode {
						continue
					}
					if !k.Killed || (k.Mode == "cross-check" && mode == "outcome") {
						k.Test, k.Mode, k.Violation = t.Name, mode, v.String()
						k.Applied = r.FaultApplied
						k.Killed = true
					}
					break
				}
				if k.Killed {
					break
				}
			}
			if k.Killed && k.Mode == "outcome" {
				break
			}
		}
		if !k.Killed {
			failures = append(failures, fmt.Errorf(
				"litmus: mutant %v survived all %d corpus tests", fault, k.TestsTried))
		}
		kills = append(kills, k)
	}
	return kills, errors.Join(failures...)
}
