package litmus

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/mem"
)

func TestOpFormatParseRoundTrip(t *testing.T) {
	vars := []string{"x", "y"}
	ops := []Op{st(0, 1), st(1, 7), ld(0), ld(1), mf(), rmw(1, 3), mk()}
	for _, op := range ops {
		s := op.format(vars)
		got, err := parseOp(s, vars)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got != op {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, op)
		}
	}
	for _, bad := range []string{"", "st x", "st x 0", "st x -1", "st q 1", "ld", "hlt", "rmw x"} {
		if _, err := parseOp(bad, vars); err == nil {
			t.Errorf("parse %q: want error", bad)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tests, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range tests {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got := new(Test)
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", want.Name, got, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	valid := func() *Test {
		return &Test{Name: "ok", Vars: []string{"x"},
			Cores: [][]Op{{st(0, 1), mk()}}, Allowed: []string{"x=0", "x=1"}}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline must validate: %v", err)
	}
	cases := []struct {
		name  string
		wreck func(*Test)
	}{
		{"no name", func(t *Test) { t.Name = "" }},
		{"no vars", func(t *Test) { t.Vars = nil }},
		{"too many cores", func(t *Test) {
			t.Cores = [][]Op{{st(0, 1), mk()}, {}, {}, {}, {}}
		}},
		{"var out of range", func(t *Test) { t.Cores[0][0].Var = 3 }},
		{"zero store value", func(t *Test) { t.Cores[0][0].Val = 0 }},
		{"duplicate value", func(t *Test) {
			t.Cores = append(t.Cores, []Op{st(0, 1), mk()})
		}},
		{"trailing unclosed store", func(t *Test) { t.Cores[0] = t.Cores[0][:1] }},
		{"no stores", func(t *Test) { t.Cores[0] = []Op{ld(0)} }},
		{"allowed and forbidden overlap", func(t *Test) { t.Forbidden = []string{"x=1"} }},
	}
	for _, tc := range cases {
		tt := valid()
		tc.wreck(tt)
		if err := tt.Validate(); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
	}
}

// TestModelKnownOracles pins the reference model on shapes whose allowed
// sets are derivable by hand.
func TestModelKnownOracles(t *testing.T) {
	cases := []struct {
		name string
		test *Test
		want []string
	}{
		{
			name: "sb: independent single-store epochs",
			test: &Test{Name: "t", Vars: []string{"x", "y"}, Cores: [][]Op{
				{st(0, 1), mk(), ld(1)},
				{st(1, 1), mk(), ld(0)},
			}},
			want: []string{"x=0 y=0", "x=0 y=1", "x=1 y=0", "x=1 y=1"},
		},
		{
			name: "mp: same-core prefix order",
			test: &Test{Name: "t", Vars: []string{"x", "y"}, Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{ld(1), ld(0)},
			}},
			want: []string{"x=0 y=0", "x=1 y=0", "x=1 y=1"},
		},
		{
			name: "epoch: two-store atomicity",
			test: &Test{Name: "t", Vars: []string{"x", "y"}, Cores: [][]Op{
				{st(0, 1), st(1, 1), mk()},
			}},
			want: []string{"x=0 y=0", "x=1 y=1"},
		},
		{
			name: "chain: prefixes only",
			test: &Test{Name: "t", Vars: []string{"x", "y", "z"}, Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk(), st(2, 1), mk()},
			}},
			want: []string{"x=0 y=0 z=0", "x=1 y=0 z=0", "x=1 y=1 z=0", "x=1 y=1 z=1"},
		},
		{
			name: "waw: coherence-ordered overwrites",
			test: &Test{Name: "t", Vars: []string{"x"}, Cores: [][]Op{
				{st(0, 1), mk()},
				{st(0, 2), mk()},
			}},
			want: []string{"x=0", "x=1", "x=2"},
		},
		{
			name: "unclosed trailing store never persists",
			test: &Test{Name: "t", Vars: []string{"x", "y"}, Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1)},
			}},
			want: []string{"x=0 y=0", "x=1 y=0"},
		},
	}
	for _, tc := range cases {
		got, err := tc.test.AllowedOutcomes()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s:\n got %v\nwant %v", tc.name, got, tc.want)
		}
	}
}

func TestComplementSampleDisjoint(t *testing.T) {
	tests, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		in := map[string]bool{}
		for _, a := range tt.Allowed {
			in[a] = true
		}
		for _, f := range tt.Forbidden {
			if in[f] {
				t.Errorf("%s: %q both allowed and forbidden", tt.Name, f)
			}
		}
	}
}

// TestLowering checks the version map the outcome decoder relies on: the
// k-th store of core c must be minted as version {Core: c, Seq: k}, with
// fences, markers, and perturbation compute ops minting nothing.
func TestLowering(t *testing.T) {
	tt := &Test{Name: "t", Vars: []string{"x", "y"}, Cores: [][]Op{
		{st(0, 1), mf(), mk(), st(1, 2), mk()},
		{rmw(1, 3), mk()},
	}}
	lo := tt.lower(Perturb{Skew: []uint32{5, 0}})
	if got := len(lo.w.Cores); got != 2 {
		t.Fatalf("lowered %d cores, want 2", got)
	}
	if lo.w.Cores[0][0].Kind != mem.OpCompute || lo.w.Cores[0][0].Arg != 5 {
		t.Errorf("skewed core must lead with compute(5), got %+v", lo.w.Cores[0][0])
	}
	want := map[mem.Version]varVal{
		{Core: 0, Seq: 1}: {0, 1},
		{Core: 0, Seq: 2}: {1, 2},
		{Core: 1, Seq: 1}: {1, 3},
	}
	if !reflect.DeepEqual(lo.vals, want) {
		t.Errorf("version map:\n got %v\nwant %v", lo.vals, want)
	}
	// RMW lowers to sync, store, sync.
	rmwOps := lo.w.Cores[1]
	kinds := []mem.OpKind{rmwOps[0].Kind, rmwOps[1].Kind, rmwOps[2].Kind}
	if !reflect.DeepEqual(kinds, []mem.OpKind{mem.OpSync, mem.OpStore, mem.OpSync}) {
		t.Errorf("rmw lowering kinds = %v", kinds)
	}
	// Outcome decoding: initial, known version, alien version.
	out := lo.outcome([]mem.Version{{}, {Core: 0, Seq: 2}})
	if out != "x=0 y=2" {
		t.Errorf("outcome = %q, want %q", out, "x=0 y=2")
	}
	alien := lo.outcome([]mem.Version{{Core: 7, Seq: 9}, {}})
	if alien != "x=?c7.s9 y=0" {
		t.Errorf("alien outcome = %q", alien)
	}
}

func TestShrinkReducesFailingTest(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking explores many candidate tests")
	}
	// A fat MP variant with bystander ops; inject a fault so it fails, then
	// demand shrinking strips the bystanders while staying failing.
	tt := &Test{Name: "fat-mp", Vars: []string{"x", "y", "z"}, Cores: [][]Op{
		{st(0, 1), mk(), st(1, 1), mk()},
		{ld(1), ld(0)},
		{st(2, 1), mk(), ld(2)},
	}}
	allowed, err := tt.AllowedOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	tt.Allowed = allowed
	o := Default()
	o.Fault = mustFault(t, "undurable-prefix")
	o.Coverage = false
	shrunk, res := Shrink(tt, o)
	if shrunk == nil {
		t.Fatal("fault injection must reproduce a soundness violation to shrink")
	}
	if res.Conforms() {
		t.Fatal("shrunk result claims conformance")
	}
	before := opCount(tt)
	after := opCount(shrunk)
	if after >= before {
		t.Errorf("shrink kept %d of %d ops", after, before)
	}
	if err := shrunk.Validate(); err != nil {
		t.Errorf("shrunk test invalid: %v", err)
	}
}

func opCount(t *Test) int {
	n := 0
	for _, prog := range t.Cores {
		n += len(prog)
	}
	return n
}
