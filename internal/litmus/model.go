package litmus

import (
	"fmt"
	"sort"
	"strconv"
)

// This file is the Px86 strict-persistency reference model: an exhaustive
// enumerator of the durable outcomes a TSO machine with coherence-ordered,
// group-atomic persists may expose after a crash.
//
// Semantics. Each core executes its program in order through a FIFO store
// buffer (TSO: loads may complete while older stores are still buffered,
// and forward from the core's own pending stores). Stores between two
// markers form one persist unit — the atomic group §II-D markers delimit —
// and a crash recovers a set S of units that is
//
//   - complete: only marker-closed units whose stores all committed;
//   - per-core prefix-closed: units drain oldest-first per core;
//   - dependency-closed: a unit that overwrote another unit's line (WAW)
//     or whose core read another unit's value (RF read inclusion, §III-A)
//     persists only after it.
//
// The recovered image applies S in coherence order: each variable holds the
// newest committed value among units in S (or its initial contents). The
// model enumerates every interleaving of issue and store-buffer-commit
// events, and for each terminal state every valid S, unioning the images.
// Memoization on (program counters, commit counts, per-variable write
// sequences, dependency edges) keeps the walk polynomial for litmus-sized
// programs.

// modelStateLimit bounds the memoized state count; fuzz-generated tests
// that exceed it report an error rather than running away.
const modelStateLimit = 400_000

type mstore struct {
	id   int // global store id
	v    int // variable
	val  int
	win  int // global window (persist unit) id
	core int
}

type mwindow struct {
	core   int
	closed bool
}

type mprog struct {
	ops []Op
	// storeAt maps the core-local store ordinal to the global store id.
	storeAt []int
	// winOf maps op index to the global window open at that op (-1 for
	// fences/markers outside any window).
	winOf []int
	// storesIssued[i] counts store/RMW ops among ops[:i].
	storesIssued []int
}

type model struct {
	t       *Test
	progs   []mprog
	stores  []mstore
	windows []mwindow
	// winSeq lists each core's windows in creation order.
	winSeq [][]int

	seen   map[string]bool
	out    map[string]bool
	states int
}

// AllowedOutcomes enumerates the durable outcomes the strict-persistency
// model permits for the test, sorted canonically. It errors if the state
// space exceeds the model limit.
func (t *Test) AllowedOutcomes() ([]string, error) {
	m, err := newModel(t)
	if err != nil {
		return nil, err
	}
	st := m.initial()
	if err := m.walk(st); err != nil {
		return nil, err
	}
	return sortedKeys(m.out), nil
}

func newModel(t *Test) (*model, error) {
	m := &model{t: t, seen: map[string]bool{}, out: map[string]bool{},
		winSeq: make([][]int, len(t.Cores))}
	for c, prog := range t.Cores {
		p := mprog{ops: prog,
			winOf:        make([]int, len(prog)),
			storesIssued: make([]int, len(prog)+1),
		}
		cur := -1
		for i, op := range prog {
			p.storesIssued[i+1] = p.storesIssued[i]
			switch op.Kind {
			case OpStore, OpRMW, OpLoad:
				if cur == -1 {
					cur = len(m.windows)
					m.windows = append(m.windows, mwindow{core: c})
					m.winSeq[c] = append(m.winSeq[c], cur)
				}
				p.winOf[i] = cur
				if op.Kind != OpLoad {
					p.storeAt = append(p.storeAt, len(m.stores))
					m.stores = append(m.stores, mstore{
						id: len(m.stores), v: op.Var, val: op.Val, win: cur, core: c})
					p.storesIssued[i+1]++
				}
			case OpMarker:
				if cur != -1 {
					m.windows[cur].closed = true
					cur = -1
				}
				p.winOf[i] = -1
			default: // OpMFence
				p.winOf[i] = cur
			}
		}
		m.progs = append(m.progs, p)
	}
	if len(m.windows) > 30 {
		return nil, fmt.Errorf("litmus: %s: %d persist units exceed the model's limit", t.Name, len(m.windows))
	}
	return m, nil
}

// mst is one model state. Slices are copied on every branch; litmus state
// spaces are tiny, clarity wins.
type mst struct {
	issue     []int   // per-core next op index
	committed []int   // per-core count of stores committed to memory
	seq       [][]int // per-variable committed store ids, in commit order
	deps      []uint32
}

func (m *model) initial() *mst {
	return &mst{
		issue:     make([]int, len(m.progs)),
		committed: make([]int, len(m.progs)),
		seq:       make([][]int, len(m.t.Vars)),
		deps:      make([]uint32, len(m.windows)),
	}
}

func (st *mst) clone() *mst {
	n := &mst{
		issue:     append([]int(nil), st.issue...),
		committed: append([]int(nil), st.committed...),
		seq:       make([][]int, len(st.seq)),
		deps:      append([]uint32(nil), st.deps...),
	}
	for i, s := range st.seq {
		n.seq[i] = append([]int(nil), s...)
	}
	return n
}

func (st *mst) key() string {
	b := make([]byte, 0, 64)
	for i := range st.issue {
		b = append(b, byte(st.issue[i]), byte(st.committed[i]))
	}
	b = append(b, '/')
	for _, s := range st.seq {
		for _, id := range s {
			b = append(b, byte(id))
		}
		b = append(b, ',')
	}
	b = append(b, '/')
	for _, d := range st.deps {
		b = strconv.AppendUint(b, uint64(d), 36)
		b = append(b, ',')
	}
	return string(b)
}

// walk explores every interleaving from st.
func (m *model) walk(st *mst) error {
	k := st.key()
	if m.seen[k] {
		return nil
	}
	m.seen[k] = true
	m.states++
	if m.states > modelStateLimit {
		return fmt.Errorf("litmus: %s: model state space exceeds %d states", m.t.Name, modelStateLimit)
	}

	terminal := true
	for c := range m.progs {
		p := &m.progs[c]
		// Commit the core's oldest pending buffered store.
		if st.committed[c] < p.storesIssued[st.issue[c]] {
			terminal = false
			n := st.clone()
			m.commitStore(n, c)
			if err := m.walk(n); err != nil {
				return err
			}
		}
		// Issue the core's next op.
		if st.issue[c] >= len(p.ops) {
			continue
		}
		terminal = false
		op := p.ops[st.issue[c]]
		sbEmpty := st.committed[c] == p.storesIssued[st.issue[c]]
		switch op.Kind {
		case OpMFence:
			if !sbEmpty {
				continue // fence waits for the store buffer to drain
			}
		case OpRMW:
			if !sbEmpty {
				continue
			}
		}
		n := st.clone()
		switch op.Kind {
		case OpLoad:
			m.issueLoad(n, c, op)
		case OpRMW:
			// Atomic: the store is issued and globally committed in one
			// indivisible step.
			n.issue[c]++
			m.commitStore(n, c)
			if err := m.walk(n); err != nil {
				return err
			}
			continue
		}
		n.issue[c]++
		if err := m.walk(n); err != nil {
			return err
		}
	}
	if terminal {
		m.emit(st)
	}
	return nil
}

// issueLoad resolves the value a load observes and records the read-
// inclusion dependency: the reader's open persist unit must persist after
// the producing unit (§III-A). Forwarding from the core's own pending
// stores and reads of the core's own committed values add no edge — program
// order already covers them — and reads of initial contents depend on
// nothing.
func (m *model) issueLoad(st *mst, c int, op Op) {
	p := &m.progs[c]
	for ord := p.storesIssued[st.issue[c]] - 1; ord >= st.committed[c]; ord-- {
		if m.stores[p.storeAt[ord]].v == op.Var {
			return // store-buffer forwarding
		}
	}
	if s := st.seq[op.Var]; len(s) > 0 {
		prod := m.stores[s[len(s)-1]]
		if reader := p.winOf[st.issue[c]]; prod.core != c && reader != prod.win {
			st.deps[reader] |= 1 << uint(prod.win)
		}
	}
}

// commitStore retires core c's oldest buffered store to memory, recording
// the write-after-write dependency on the unit it overwrites.
func (m *model) commitStore(st *mst, c int) {
	s := m.stores[m.progs[c].storeAt[st.committed[c]]]
	if prev := st.seq[s.v]; len(prev) > 0 {
		p := m.stores[prev[len(prev)-1]]
		if p.win != s.win {
			st.deps[s.win] |= 1 << uint(p.win)
		}
	}
	st.seq[s.v] = append(st.seq[s.v], s.id)
	st.committed[c]++
}

// emit enumerates every valid durable cut of a terminal state and records
// its image. Cuts are chosen as a per-core prefix of marker-closed windows,
// then filtered by dependency closure.
func (m *model) emit(st *mst) {
	// maxPrefix[c] = number of leading closed windows of core c.
	maxPrefix := make([]int, len(m.progs))
	for c, wins := range m.winSeq {
		for _, w := range wins {
			if !m.windows[w].closed {
				break
			}
			maxPrefix[c]++
		}
	}
	prefix := make([]int, len(m.progs))
	var choose func(c int)
	choose = func(c int) {
		if c == len(m.progs) {
			var S uint32
			for cc, n := range prefix {
				for i := 0; i < n; i++ {
					S |= 1 << uint(m.winSeq[cc][i])
				}
			}
			for w := range m.windows {
				if S&(1<<uint(w)) != 0 && st.deps[w]&^S != 0 {
					return // dependency not in the cut
				}
			}
			m.record(st, S)
			return
		}
		for n := 0; n <= maxPrefix[c]; n++ {
			prefix[c] = n
			choose(c + 1)
		}
	}
	choose(0)
}

func (m *model) record(st *mst, S uint32) {
	vals := make([]string, len(m.t.Vars))
	for v := range vals {
		vals[v] = "0"
		s := st.seq[v]
		for i := len(s) - 1; i >= 0; i-- {
			w := m.stores[s[i]].win
			if S&(1<<uint(w)) != 0 {
				vals[v] = strconv.Itoa(m.stores[s[i]].val)
				break
			}
		}
	}
	m.out[encodeOutcome(m.t.Vars, vals)] = true
}

// complementSample returns up to n outcomes NOT in allowed, drawn from the
// cross product of per-variable observed values — useful for curating
// Forbidden sets in generated tests.
func complementSample(t *Test, allowed []string, n int) []string {
	vals := make([][]int, len(t.Vars))
	for i := range vals {
		vals[i] = []int{0}
	}
	for _, prog := range t.Cores {
		for _, op := range prog {
			if op.Kind == OpStore || op.Kind == OpRMW {
				vals[op.Var] = append(vals[op.Var], op.Val)
			}
		}
	}
	in := map[string]bool{}
	for _, a := range allowed {
		in[a] = true
	}
	var out []string
	cur := make([]string, len(t.Vars))
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= n {
			return
		}
		if i == len(t.Vars) {
			o := encodeOutcome(t.Vars, append([]string(nil), cur...))
			if !in[o] {
				out = append(out, o)
			}
			return
		}
		sort.Ints(vals[i])
		for _, v := range vals[i] {
			cur[i] = strconv.Itoa(v)
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
