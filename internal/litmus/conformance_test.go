package litmus

import (
	"testing"

	"repro/internal/faultplan"
	"repro/internal/machine"
	"repro/internal/sim"
)

func mustFault(t *testing.T, name string) machine.CrashFault {
	t.Helper()
	f, ok := machine.ParseCrashFault(name)
	if !ok {
		t.Fatalf("unknown crash fault %q", name)
	}
	return f
}

// TestCorpusMatchesGenerator pins the embedded golden corpus to the
// reference model: regenerating must reproduce every file byte-for-byte,
// so a model change that shifts any oracle shows up as a corpus diff.
func TestCorpusMatchesGenerator(t *testing.T) {
	tests, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) < 20 {
		t.Fatalf("corpus has %d tests, want at least 20", len(tests))
	}
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(tests) {
		t.Fatalf("embedded corpus has %d files, generator yields %d tests", len(entries), len(tests))
	}
	for i, tt := range tests {
		name := CorpusFileName(i, tt.Name)
		want, err := MarshalIndentTest(tt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := corpusFS.ReadFile("corpus/" + name)
		if err != nil {
			t.Fatalf("corpus/%s missing: %v (regenerate with tsoper-litmus -write-corpus)", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("corpus/%s is stale: regenerate with tsoper-litmus -write-corpus internal/litmus/corpus", name)
		}
	}
}

// TestCorpusConformance is the oracle gate: every corpus test, driven
// through the machine across the full perturbation sweep and harvested
// crash points, must reach exactly its allowed outcome set with the
// checker agreeing on every state.
func TestCorpusConformance(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			t.Parallel()
			r := Explore(tt, Default())
			if err := r.Err(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCorpusConformanceHeap repeats the gate under the reference heap
// scheduler (the cheap byte-identity sweep lives in the repo-root
// differential suite; this is the full-coverage pass).
func TestCorpusConformanceHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("heap coverage pass duplicates the wheel gate; short mode keeps one")
	}
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			t.Parallel()
			o := Default()
			o.Scheduler = sim.SchedulerHeap
			r := Explore(tt, o)
			if err := r.Err(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCorpusConformanceTardis repeats the full oracle gate on the tardis
// timestamp backend: coherence-protocol choice must not change which durable
// outcomes are reachable (timing shifts which crash points land where, but
// the reached set must still be exactly the allowed set and the checker
// must accept every state).
func TestCorpusConformanceTardis(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			t.Parallel()
			o := Default()
			o.Coherence = machine.CoherenceTardis
			r := Explore(tt, o)
			if err := r.Err(); err != nil {
				t.Error(err)
			}
			if r.Protocol != "tardis" {
				t.Errorf("result protocol %q, want tardis", r.Protocol)
			}
		})
	}
}

// TestCorpusUnderFaultPresets asserts soundness and checker agreement with
// runtime fault injection active: recovered resilience faults must never
// manufacture a durable outcome the model forbids. Coverage is waived —
// injected failures legitimately narrow reachability.
func TestCorpusUnderFaultPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-preset sweep doubles the corpus cost")
	}
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nvm-transient", "noc-lossy"} {
		preset, ok := faultplan.Preset(name)
		if !ok {
			t.Fatalf("missing fault preset %q", name)
		}
		for _, tt := range tests {
			tt, preset := tt, preset
			t.Run(name+"/"+tt.Name, func(t *testing.T) {
				t.Parallel()
				o := Default()
				o.Faults = &preset
				o.Coverage = false
				r := Explore(tt, o)
				if err := r.Err(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestExploreDetectsInjectedFault is the demonstrably-failing run: with a
// persistency fault corrupting recovered states, exploration must produce
// violations, and a clean Explore of the same test must not.
func TestExploreDetectsInjectedFault(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := Find(tests, "epoch-atomic")
	if !ok {
		t.Fatal("corpus lost epoch-atomic")
	}
	o := Default()
	o.Coverage = false
	if err := Explore(tt, o).Err(); err != nil {
		t.Fatalf("clean exploration must conform: %v", err)
	}
	o.Fault = mustFault(t, "torn-group")
	r := Explore(tt, o)
	if r.Conforms() {
		t.Fatal("torn-group injection produced no violation")
	}
	if r.FaultApplied == 0 {
		t.Fatal("fault never found a target")
	}
}
