package litmus

import (
	"embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

//go:embed corpus/*.json
var corpusFS embed.FS

// CorpusFileName derives the golden file name of corpus entry i: a
// position prefix (ordering is part of the golden contract) plus the test
// name with characters unfit for file names replaced.
func CorpusFileName(i int, name string) string {
	return fmt.Sprintf("%02d-%s.json", i+1, strings.ReplaceAll(name, "+", "p"))
}

// MarshalIndentTest renders a test in the corpus golden-file form.
func MarshalIndentTest(t *Test) ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Corpus loads the embedded golden corpus, validated, in file order.
func Corpus() ([]*Test, error) {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var tests []*Test
	for _, name := range names {
		data, err := corpusFS.ReadFile("corpus/" + name)
		if err != nil {
			return nil, err
		}
		t := new(Test)
		if err := json.Unmarshal(data, t); err != nil {
			return nil, fmt.Errorf("corpus/%s: %w", name, err)
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("corpus/%s: %w", name, err)
		}
		tests = append(tests, t)
	}
	return tests, nil
}

// Find returns the corpus test with the given name.
func Find(tests []*Test, name string) (*Test, bool) {
	for _, t := range tests {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}
