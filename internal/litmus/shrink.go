package litmus

// Shrinking: when a test fails conformance, the raw reproduction is an
// 8-op-per-core program and a crash cycle. Shrink greedily deletes cores
// and ops while the failure still reproduces, recomputing the model's
// allowed set for every candidate so the reproduction stays honest — the
// shrunk test fails for the same structural reason, not because its oracle
// went stale.

// reproduces re-oracles the candidate against the model and reports whether
// exploration still finds a soundness violation (coverage is ignored while
// shrinking: the interesting reproductions are states that should not
// exist, and a shrunk program legitimately reaches fewer states).
func reproduces(t *Test, o Options) (*Result, bool) {
	if t.Validate() != nil {
		return nil, false
	}
	allowed, err := t.AllowedOutcomes()
	if err != nil {
		return nil, false
	}
	c := t.clone()
	c.Allowed = allowed
	c.Forbidden = nil
	o.Coverage = false
	r := Explore(c, o)
	return r, !r.Conforms()
}

func (t *Test) clone() *Test {
	n := &Test{Name: t.Name, Doc: t.Doc,
		Vars:      append([]string(nil), t.Vars...),
		Allowed:   append([]string(nil), t.Allowed...),
		Forbidden: append([]string(nil), t.Forbidden...)}
	for _, prog := range t.Cores {
		n.Cores = append(n.Cores, append([]Op(nil), prog...))
	}
	return n
}

// dropCore returns the test without core c.
func dropCore(t *Test, c int) *Test {
	n := t.clone()
	n.Cores = append(n.Cores[:c], n.Cores[c+1:]...)
	return n
}

// dropOp returns the test without op i of core c.
func dropOp(t *Test, c, i int) *Test {
	n := t.clone()
	prog := n.Cores[c]
	n.Cores[c] = append(prog[:i], prog[i+1:]...)
	return n
}

// compactVars drops variables no op references, remapping indices.
func compactVars(t *Test) *Test {
	used := make([]bool, len(t.Vars))
	for _, prog := range t.Cores {
		for _, op := range prog {
			if op.Kind != OpMFence && op.Kind != OpMarker {
				used[op.Var] = true
			}
		}
	}
	remap := make([]int, len(t.Vars))
	n := t.clone()
	n.Vars = nil
	for i, u := range used {
		if u {
			remap[i] = len(n.Vars)
			n.Vars = append(n.Vars, t.Vars[i])
		}
	}
	if len(n.Vars) == len(t.Vars) {
		return t
	}
	for _, prog := range n.Cores {
		for j := range prog {
			if prog[j].Kind != OpMFence && prog[j].Kind != OpMarker {
				prog[j].Var = remap[prog[j].Var]
			}
		}
	}
	return n
}

// Shrink minimizes a non-conforming test: greedily deleting whole cores,
// then individual ops, then unused variables, as long as exploration under
// the (re-oracled) candidate still finds a soundness violation. It returns
// the shrunk test and its failing Result, or (nil, nil) when the original
// does not reproduce a soundness violation under the given options —
// coverage-only failures have nothing to shrink.
func Shrink(t *Test, o Options) (*Test, *Result) {
	cur := t.clone()
	best, ok := reproduces(cur, o)
	if !ok {
		return nil, nil
	}
	for improved := true; improved; {
		improved = false
		for c := 0; c < len(cur.Cores) && len(cur.Cores) > 1; c++ {
			if r, ok := reproduces(dropCore(cur, c), o); ok {
				cur, best = dropCore(cur, c), r
				improved = true
				c--
			}
		}
		for c := 0; c < len(cur.Cores); c++ {
			for i := 0; i < len(cur.Cores[c]); i++ {
				if r, ok := reproduces(dropOp(cur, c, i), o); ok {
					cur, best = dropOp(cur, c, i), r
					improved = true
					i--
				}
			}
		}
	}
	cur = compactVars(cur)
	cur.Name = t.Name + "-shrunk"
	allowed, err := cur.AllowedOutcomes()
	if err != nil {
		return nil, nil
	}
	cur.Allowed = allowed
	cur.Forbidden = nil
	return cur, best
}
