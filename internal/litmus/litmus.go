package litmus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/trace"
)

// OpKind is the kind of one litmus-program operation.
type OpKind uint8

const (
	// OpStore writes Val to Var.
	OpStore OpKind = iota
	// OpLoad reads Var (loads steer coherence traffic and persist
	// dependencies; the oracle observes durable state, not registers).
	OpLoad
	// OpMFence drains the store buffer (x86 MFENCE).
	OpMFence
	// OpRMW is a lock-prefixed read-modify-write, modeled as an atomic
	// fenced store: the store buffer drains, Val is written to Var, and the
	// write is globally visible before the next operation issues.
	OpRMW
	// OpMarker closes the core's current atomic group (§II-D), ending the
	// persist epoch: stores on either side of a marker never persist
	// atomically together.
	OpMarker
)

// Op is one operation of a per-core litmus program.
type Op struct {
	Kind OpKind
	// Var indexes Test.Vars (stores, loads, RMW).
	Var int
	// Val is the value written (stores, RMW). Values must be unique per
	// variable across the whole test so durable outcomes decode uniquely;
	// 0 is reserved for the initial contents.
	Val int
}

// Test is one litmus test: named shared variables, a program per core, and
// the declared durable-outcome oracle.
type Test struct {
	Name string
	Doc  string
	// Vars names the shared variables; variable i lives in its own
	// cacheline.
	Vars  []string
	Cores [][]Op
	// Allowed is the exact set of durable outcomes the Px86 strict-
	// persistency model permits (canonical encodings, sorted). Conformance
	// requires the machine's reachable set to equal it.
	Allowed []string
	// Forbidden curates the interesting disallowed outcomes — the shapes
	// the shape's name is about. Reaching one fails with a sharper message
	// than a generic not-in-Allowed; the sets must be disjoint.
	Forbidden []string
}

// ---- op string form ("st x 1", "ld x", "mf", "rmw x 2", "mk") ----

// format renders the op in the corpus wire form.
func (o Op) format(vars []string) string {
	switch o.Kind {
	case OpStore:
		return fmt.Sprintf("st %s %d", vars[o.Var], o.Val)
	case OpLoad:
		return fmt.Sprintf("ld %s", vars[o.Var])
	case OpMFence:
		return "mf"
	case OpRMW:
		return fmt.Sprintf("rmw %s %d", vars[o.Var], o.Val)
	case OpMarker:
		return "mk"
	default:
		return fmt.Sprintf("op(%d)", uint8(o.Kind))
	}
}

func parseOp(s string, vars []string) (Op, error) {
	varIndex := func(name string) (int, error) {
		for i, v := range vars {
			if v == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("litmus: unknown variable %q", name)
	}
	f := strings.Fields(s)
	if len(f) == 0 {
		return Op{}, fmt.Errorf("litmus: empty op")
	}
	switch f[0] {
	case "st", "rmw":
		if len(f) != 3 {
			return Op{}, fmt.Errorf("litmus: %q wants `%s VAR VAL`", s, f[0])
		}
		v, err := varIndex(f[1])
		if err != nil {
			return Op{}, err
		}
		val, err := strconv.Atoi(f[2])
		if err != nil || val <= 0 {
			return Op{}, fmt.Errorf("litmus: %q: value must be a positive integer", s)
		}
		k := OpStore
		if f[0] == "rmw" {
			k = OpRMW
		}
		return Op{Kind: k, Var: v, Val: val}, nil
	case "ld":
		if len(f) != 2 {
			return Op{}, fmt.Errorf("litmus: %q wants `ld VAR`", s)
		}
		v, err := varIndex(f[1])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpLoad, Var: v}, nil
	case "mf":
		return Op{Kind: OpMFence}, nil
	case "mk":
		return Op{Kind: OpMarker}, nil
	default:
		return Op{}, fmt.Errorf("litmus: unknown op %q", s)
	}
}

// ---- JSON wire form (the golden corpus files) ----

type wireTest struct {
	Name      string     `json:"name"`
	Doc       string     `json:"doc,omitempty"`
	Vars      []string   `json:"vars"`
	Cores     [][]string `json:"cores"`
	Allowed   []string   `json:"allowed"`
	Forbidden []string   `json:"forbidden,omitempty"`
}

// MarshalJSON renders the test in the corpus wire form (deterministic, so
// golden files are byte-stable).
func (t *Test) MarshalJSON() ([]byte, error) {
	w := wireTest{Name: t.Name, Doc: t.Doc, Vars: t.Vars,
		Allowed: t.Allowed, Forbidden: t.Forbidden}
	for _, prog := range t.Cores {
		var ops []string
		for _, op := range prog {
			ops = append(ops, op.format(t.Vars))
		}
		w.Cores = append(w.Cores, ops)
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the corpus wire form.
func (t *Test) UnmarshalJSON(data []byte) error {
	var w wireTest
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*t = Test{Name: w.Name, Doc: w.Doc, Vars: w.Vars,
		Allowed: w.Allowed, Forbidden: w.Forbidden}
	for _, prog := range w.Cores {
		ops := make([]Op, 0, len(prog))
		for _, s := range prog {
			op, err := parseOp(s, w.Vars)
			if err != nil {
				return fmt.Errorf("test %q: %w", w.Name, err)
			}
			ops = append(ops, op)
		}
		t.Cores = append(t.Cores, ops)
	}
	return nil
}

// Validate reports structural errors: missing names, out-of-range variable
// indices, non-unique store values, programs whose trailing stores no
// marker ever closes (such stores can never persist under RunWithCrash, so
// the full image would be unreachable and conformance vacuously broken).
func (t *Test) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("litmus: test without a name")
	}
	if len(t.Vars) == 0 || len(t.Vars) > 8 {
		return fmt.Errorf("litmus: %s: want 1..8 variables, have %d", t.Name, len(t.Vars))
	}
	if len(t.Cores) == 0 || len(t.Cores) > 4 {
		return fmt.Errorf("litmus: %s: want 1..4 cores, have %d", t.Name, len(t.Cores))
	}
	seen := map[int]map[int]bool{}
	for c, prog := range t.Cores {
		open := false
		for _, op := range prog {
			switch op.Kind {
			case OpStore, OpRMW:
				if op.Var < 0 || op.Var >= len(t.Vars) {
					return fmt.Errorf("litmus: %s core %d: variable index %d out of range", t.Name, c, op.Var)
				}
				if op.Val <= 0 {
					return fmt.Errorf("litmus: %s core %d: store value %d must be positive", t.Name, c, op.Val)
				}
				if seen[op.Var] == nil {
					seen[op.Var] = map[int]bool{}
				}
				if seen[op.Var][op.Val] {
					return fmt.Errorf("litmus: %s: duplicate value %d for %s", t.Name, op.Val, t.Vars[op.Var])
				}
				seen[op.Var][op.Val] = true
				open = true
			case OpLoad:
				if op.Var < 0 || op.Var >= len(t.Vars) {
					return fmt.Errorf("litmus: %s core %d: variable index %d out of range", t.Name, c, op.Var)
				}
			case OpMarker:
				open = false
			}
		}
		if open {
			return fmt.Errorf("litmus: %s core %d: trailing stores need a closing marker (mk)", t.Name, c)
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("litmus: %s: no stores — nothing to persist", t.Name)
	}
	for _, f := range t.Forbidden {
		for _, a := range t.Allowed {
			if f == a {
				return fmt.Errorf("litmus: %s: outcome %q both allowed and forbidden", t.Name, f)
			}
		}
	}
	return nil
}

// ---- outcome encoding ----

// encodeOutcome renders per-variable values in canonical form: "x=0 y=1".
func encodeOutcome(vars []string, vals []string) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v + "=" + vals[i]
	}
	return strings.Join(parts, " ")
}

// sortedKeys returns a sorted copy of the set's members.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- lowering to a machine workload ----

// Perturb is one interleaving perturbation: per-core lead-in compute skew
// plus an optional seed for random inter-op compute jitter. The zero value
// is the unperturbed lowering.
type Perturb struct {
	Skew   []uint32 `json:"skew,omitempty"`
	Jitter int64    `json:"jitter,omitempty"`
}

func (p Perturb) String() string {
	if len(p.Skew) == 0 && p.Jitter == 0 {
		return "none"
	}
	if p.Jitter != 0 {
		return fmt.Sprintf("jitter=%d", p.Jitter)
	}
	parts := make([]string, len(p.Skew))
	for i, s := range p.Skew {
		parts[i] = strconv.FormatUint(uint64(s), 10)
	}
	return "skew=" + strings.Join(parts, ",")
}

type varVal struct{ v, val int }

// lowered is one machine-executable rendering of a test.
type lowered struct {
	t     *Test
	w     *trace.Workload
	lines []mem.Line
	// vals maps the machine store version to the litmus (variable, value)
	// it encodes.
	vals map[mem.Version]varVal
}

// lineOf maps variable i to its cacheline (one full line per variable,
// consecutive lines spread across the LLC banks).
func lineOf(i int) mem.Line { return mem.LineOf(trace.SharedBase) + mem.Line(i) }

// lower renders the test as a per-core mem.Op workload under the given
// perturbation. Stores and RMWs mint machine versions in core-local store
// order, which is exactly how coreUnit numbers them.
func (t *Test) lower(p Perturb) *lowered {
	lo := &lowered{t: t, vals: map[mem.Version]varVal{},
		w: &trace.Workload{Profile: trace.Profile{Name: "litmus/" + t.Name}}}
	for i := range t.Vars {
		lo.lines = append(lo.lines, lineOf(i))
	}
	for c, prog := range t.Cores {
		var jr *jitterRand
		if p.Jitter != 0 {
			jr = newJitterRand(p.Jitter*1_000_003 + int64(c)*7907)
		}
		var ops []mem.Op
		if c < len(p.Skew) && p.Skew[c] > 0 {
			ops = append(ops, mem.Op{Kind: mem.OpCompute, Arg: p.Skew[c]})
		}
		var seq uint64
		var syncID uint32
		store := func(op Op) {
			seq++
			lo.vals[mem.Version{Core: c, Seq: seq}] = varVal{op.Var, op.Val}
			ops = append(ops, mem.Op{Kind: mem.OpStore, Addr: lo.lines[op.Var].Base()})
		}
		for _, op := range prog {
			if jr != nil {
				if d := jr.delay(); d > 0 {
					ops = append(ops, mem.Op{Kind: mem.OpCompute, Arg: d})
				}
			}
			switch op.Kind {
			case OpStore:
				store(op)
			case OpLoad:
				ops = append(ops, mem.Op{Kind: mem.OpLoad, Addr: lo.lines[op.Var].Base()})
			case OpMFence:
				syncID++
				ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID})
			case OpRMW:
				// Lock prefix: drain, atomic store, drain — the write is
				// globally ordered before anything younger issues.
				syncID++
				ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID})
				store(op)
				syncID++
				ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID})
			case OpMarker:
				ops = append(ops, mem.Op{Kind: mem.OpMarker})
			}
		}
		lo.w.Cores = append(lo.w.Cores, ops)
	}
	return lo
}

// Workload renders the test as the per-core mem.Op workload Explore runs
// under the given perturbation — exported for differential suites that
// drive litmus workloads through the machine directly (for example the
// checkpoint-resume byte-identity axis in scheduler_equiv_test.go).
func (t *Test) Workload(p Perturb) *trace.Workload {
	return t.lower(p).w
}

// outcome decodes a machine outcome (per-line durable versions) into the
// litmus encoding. Versions no litmus store minted — possible only when a
// deliberate CrashFault corrupted the image — decode as "?version", which
// no allowed set contains.
func (lo *lowered) outcome(out []mem.Version) string {
	vals := make([]string, len(lo.t.Vars))
	for i, ver := range out {
		switch vv, ok := lo.vals[ver]; {
		case ver.IsInitial():
			vals[i] = "0"
		case ok && vv.v == i:
			vals[i] = strconv.Itoa(vv.val)
		default:
			vals[i] = "?" + ver.String()
		}
	}
	return encodeOutcome(lo.t.Vars, vals)
}

// jitterRand is a tiny deterministic splitmix64 stream for inter-op delays
// (math/rand would also do; this keeps lowering allocation-light and the
// stream stable across Go versions).
type jitterRand struct{ s uint64 }

func newJitterRand(seed int64) *jitterRand { return &jitterRand{s: uint64(seed)*2654435769 + 1} }

func (j *jitterRand) next() uint64 {
	j.s += 0x9e3779b97f4a7c15
	z := j.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// delay yields 0 half the time, else 1..64 cycles.
func (j *jitterRand) delay() uint32 {
	v := j.next()
	if v&1 == 0 {
		return 0
	}
	return 1 + uint32((v>>1)%64)
}
