// Package litmus is the Px86 litmus-test conformance oracle: executable
// persistency litmus tests in the style of "Taming x86-TSO Persistency"
// (Khyzha & Lahav) with exact allowed/forbidden durable-outcome sets,
// checked against the simulated machine.
//
// A test is a handful of shared variables plus one tiny program per core
// built from five operations: stores, loads, MFENCE, lock-prefixed RMW
// (modeled as a fenced atomic store), and group markers (§II-D persist
// epoch boundaries). The declared oracle is a set of durable outcomes —
// which value of each variable survives a crash — rather than register
// values: under strict persistency the recovered NVM image must be a
// TSO-consistent cut of the execution, and the reference model in model.go
// enumerates exactly the images such cuts can produce.
//
// The explorer (explore.go) drives each test through the real machine
// across every harvested persistency-transition crash cycle (reusing
// crashmc's probe-event harvesting), a sweep of interleaving perturbations
// (per-core start skews and seeded inter-op jitter), and collects the set
// of reachable durable outcomes. Conformance demands three things at once:
//
//  1. soundness — every reached outcome is in the allowed set;
//  2. coverage — every allowed outcome is eventually reached (the machine
//     realizes the full model, not a convenient subset);
//  3. agreement — the hand-written crash-consistency checker accepts every
//     reached state; a state the checker rejects while the outcome oracle
//     allows it (or vice versa) is a bug in one of the two oracles.
//
// The generated corpus (gen.go, checked in under corpus/ as golden files)
// covers the canonical shapes — SB, MP, 2+2W, IRIW, CoRR, WRC, R, S,
// RMW/fence variants, multi-store persist epochs, and crash-mid-drain
// stressors — and is additionally gated across both event schedulers
// (byte-identical reachable sets) and runtime fault presets.
package litmus
