package litmus

import (
	"fmt"
)

// Corpus generator. Shapes are written by hand; oracles are not: Generate
// computes each test's Allowed set with the reference model and curates
// Forbidden from the complement, so the golden corpus can never encode a
// hand-miscalculated outcome. A conformance test pins corpus/ == Generate()
// byte-for-byte, making any model change that shifts an oracle visible in
// review.
//
// Shape rules (machine/model parity):
//
//   - every store is marker-closed (Validate enforces; RunWithCrash never
//     drains open groups, so an unclosed store could never persist and
//     coverage would be unreachable);
//   - shapes where another core touches a line use one marker per store:
//     remote reads and writes freeze the owner's open group, and a
//     single-store group frozen early has the same membership as at its
//     marker;
//   - multi-store persist epochs keep their lines private to the writing
//     core — a remote touch mid-epoch would split the group and tear the
//     epoch the model treats as atomic.

// DSL: variable indices name Test.Vars positions.
func st(v, val int) Op  { return Op{Kind: OpStore, Var: v, Val: val} }
func ld(v int) Op       { return Op{Kind: OpLoad, Var: v} }
func mf() Op            { return Op{Kind: OpMFence} }
func rmw(v, val int) Op { return Op{Kind: OpRMW, Var: v, Val: val} }
func mk() Op            { return Op{Kind: OpMarker} }

// maxForbidden caps the curated complement per test.
const maxForbidden = 8

// shapes lists the corpus in canonical order (file names are derived from
// the position, so ordering is part of the golden contract).
func shapes() []*Test {
	return []*Test{
		{
			Name: "sb",
			Doc:  "store buffering: independent stores, cross loads; all four durable states are TSO-consistent cuts",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), ld(1)},
				{st(1, 1), mk(), ld(0)},
			},
		},
		{
			Name: "sb-fence",
			Doc:  "store buffering with MFENCE before the loads; fences drain store buffers but add no persist ordering",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mf(), mk(), ld(1)},
				{st(1, 1), mf(), mk(), ld(0)},
			},
		},
		{
			Name: "mp",
			Doc:  "message passing: same-core stores persist in program order, so y=1 durable implies x=1 durable",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{ld(1), ld(0)},
			},
		},
		{
			Name: "mp-fence",
			Doc:  "message passing with fences on both sides; the persist-order guarantee is unchanged",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mf(), mk(), st(1, 1), mk()},
				{ld(1), mf(), ld(0)},
			},
		},
		{
			Name: "corr",
			Doc:  "coherent read-read: one writer core, racing reader; durable x follows coherence order",
			Vars: []string{"x"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(0, 2), mk()},
				{ld(0), ld(0)},
			},
		},
		{
			Name: "coww",
			Doc:  "coherent write-write, single core: the newer durable version always shadows the older",
			Vars: []string{"x"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(0, 2), mk()},
			},
		},
		{
			Name: "wrc",
			Doc:  "write-to-read causality: the middle core's read-inclusion dependency chains x before y whenever the read observed dirty data",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk()},
				{ld(0), mk(), st(1, 1), mk()},
				{ld(1), ld(0)},
			},
		},
		{
			Name: "2+2w",
			Doc:  "2+2W: both cores write both variables in opposite order; per-core prefixes bound the durable combinations",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 2), mk()},
				{st(1, 1), mk(), st(0, 2), mk()},
			},
		},
		{
			Name: "iriw",
			Doc:  "IRIW: two writers, two readers in opposite order; durable states are per-writer independent",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk()},
				{st(1, 1), mk()},
				{ld(0), ld(1)},
				{ld(1), ld(0)},
			},
		},
		{
			Name: "iriw-fence",
			Doc:  "IRIW with fenced readers; reader fences cannot constrain durability",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk()},
				{st(1, 1), mk()},
				{ld(0), mf(), ld(1)},
				{ld(1), mf(), ld(0)},
			},
		},
		{
			Name: "r",
			Doc:  "R: writer chain against a conflicting writer that then reads",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{st(1, 2), mk(), ld(0)},
			},
		},
		{
			Name: "s",
			Doc:  "S: read then dependent write, marker-separated — the read's inclusion group chains through the core's prefix order",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{ld(1), mk(), st(0, 2), mk()},
			},
		},
		{
			Name: "s-epoch",
			Doc:  "S with the read and the write fused into one persist epoch: read inclusion puts the observed line in the writing group",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{ld(1), st(0, 2), mk()},
			},
		},
		{
			Name: "epoch-atomic",
			Doc:  "one two-store persist epoch: both stores persist atomically or not at all",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), st(1, 1), mk()},
			},
		},
		{
			Name: "epoch-chain",
			Doc:  "a two-store epoch followed by a dependent single-store epoch on the same core",
			Vars: []string{"x", "y", "z"},
			Cores: [][]Op{
				{st(0, 1), st(1, 1), mk(), st(2, 1), mk()},
			},
		},
		{
			Name: "epoch-pair",
			Doc:  "two cores, disjoint two-store epochs: tearing within either epoch is forbidden, cross-core combinations are free",
			Vars: []string{"x", "y", "z", "w"},
			Cores: [][]Op{
				{st(0, 1), st(1, 1), mk()},
				{st(2, 1), st(3, 1), mk()},
			},
		},
		{
			Name: "epoch-rmw",
			Doc:  "a two-store epoch chained before a lock-prefixed RMW epoch; the RMW's fences do not reorder persists",
			Vars: []string{"x", "y", "z"},
			Cores: [][]Op{
				{st(0, 1), st(1, 1), mk(), rmw(2, 1), mk()},
			},
		},
		{
			Name: "rmw-sb",
			Doc:  "store buffering with lock-prefixed RMWs: atomics drain the store buffer but durability stays per-core independent",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{rmw(0, 1), mk(), ld(1)},
				{rmw(1, 1), mk(), ld(0)},
			},
		},
		{
			Name: "rmw-mp",
			Doc:  "message passing where the flag publish is a lock-prefixed RMW",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), rmw(1, 1), mk()},
				{ld(1), ld(0)},
			},
		},
		{
			Name: "fence-drain",
			Doc:  "fences after every store force store-buffer drains between persist epochs; prefix order is unchanged",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mf(), mk(), st(1, 1), mf(), mk()},
				{ld(0), ld(1)},
			},
		},
		{
			Name: "chain",
			Doc:  "four marker-separated stores on one core: durable states are exactly the program-order prefixes",
			Vars: []string{"x", "y", "z", "w"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk(), st(2, 1), mk(), st(3, 1), mk()},
			},
		},
		{
			Name: "drain-storm",
			Doc:  "three cores, two sequential epochs each: maximizes concurrent AGB drains so harvested crash points land mid-drain",
			Vars: []string{"a", "b", "c", "d", "e", "f"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{st(2, 1), mk(), st(3, 1), mk()},
				{st(4, 1), mk(), st(5, 1), mk()},
			},
		},
		{
			Name: "waw-cross",
			Doc:  "conflicting writers: the overwritten version must persist before the overwriter (WAW persist dependency)",
			Vars: []string{"x"},
			Cores: [][]Op{
				{st(0, 1), mk()},
				{st(0, 2), mk()},
			},
		},
		{
			Name: "waw-chain",
			Doc:  "two cores writing the same two variables in the same order: WAW dependencies interleave with per-core prefixes",
			Vars: []string{"x", "y"},
			Cores: [][]Op{
				{st(0, 1), mk(), st(1, 1), mk()},
				{st(0, 2), mk(), st(1, 2), mk()},
			},
		},
	}
}

// Generate builds the corpus: every shape validated, its Allowed set
// computed by the reference model, and Forbidden curated from the
// complement of observable per-variable values.
func Generate() ([]*Test, error) {
	tests := shapes()
	names := map[string]bool{}
	for _, t := range tests {
		if names[t.Name] {
			return nil, fmt.Errorf("litmus: duplicate corpus test %q", t.Name)
		}
		names[t.Name] = true
		allowed, err := t.AllowedOutcomes()
		if err != nil {
			return nil, err
		}
		t.Allowed = allowed
		t.Forbidden = complementSample(t, allowed, maxForbidden)
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return tests, nil
}
