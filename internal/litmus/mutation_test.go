package litmus

import (
	"testing"

	"repro/internal/machine"
)

// TestMutationKills is the checker/litmus cross-gate: every injectable
// persistency fault must be killed by at least one corpus test, either
// through a forbidden/unallowed durable outcome or through a checker
// rejection of an allowed one.
func TestMutationKills(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	kills, err := MutationKills(tests, Options{System: machine.TSOPER})
	if err != nil {
		t.Fatal(err)
	}
	if len(kills) != len(machine.Faults()) {
		t.Fatalf("ledger covers %d faults, want %d", len(kills), len(machine.Faults()))
	}
	for _, k := range kills {
		if !k.Killed {
			t.Errorf("mutant %s survived the corpus", k.Fault)
			continue
		}
		if k.Test == "" || k.Violation == "" {
			t.Errorf("mutant %s: kill without a witness: %+v", k.Fault, k)
		}
		if k.Mode != "outcome" && k.Mode != "cross-check" {
			t.Errorf("mutant %s: unknown kill mode %q", k.Fault, k.Mode)
		}
		if k.Applied == 0 {
			t.Errorf("mutant %s: killed without ever applying", k.Fault)
		}
	}
}

// TestMutationOutcomeKill pins the sharper kill mode: a torn multi-line
// persist epoch must be observable in the durable outcome alone, not just
// via the checker — the two-store epoch test decodes the torn image to a
// forbidden state.
func TestMutationOutcomeKill(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := Find(tests, "epoch-atomic")
	if !ok {
		t.Fatal("corpus lost epoch-atomic")
	}
	// Other faults may legitimately survive a one-test corpus; only the
	// torn-group entry matters here.
	kills, _ := MutationKills([]*Test{tt}, Options{System: machine.TSOPER})
	for _, k := range kills {
		if k.Fault != machine.FaultTornGroup.String() {
			continue
		}
		if !k.Killed {
			t.Fatal("epoch-atomic failed to kill torn-group")
		}
		if k.Mode != "outcome" {
			t.Errorf("torn-group on epoch-atomic killed via %q, want an outcome kill: %s", k.Mode, k.Violation)
		}
		return
	}
	t.Fatal("torn-group missing from ledger")
}
