package litmus

import (
	"encoding/json"
	"testing"
)

// FuzzLitmus mutates tiny litmus programs and asserts the machine never
// exposes a durable state the Px86 model forbids, never disagrees with the
// crash-consistency checker, and never stalls. The decoder emits a marker
// after every store so that persist units are single-store — the regime
// where conflict-triggered freezes coincide with unit boundaries and the
// static model is exact for arbitrary cross-core interleavings.

// fuzzPerturbs is a reduced sweep: fuzzing trades sweep breadth for input
// breadth.
func fuzzPerturbs() []Perturb {
	return []Perturb{{}, {Skew: []uint32{211, 0}}, {Jitter: 3}}
}

// decodeFuzz maps raw bytes to a litmus test: two cores split by 0xFF, two
// variables, op = b%4 in {store, load, mfence, rmw}, variable = bit 2.
// Store values are minted sequentially per variable, and every store is
// marker-closed. Returns nil for inputs that decode to nothing runnable.
func decodeFuzz(data []byte) *Test {
	if len(data) == 0 || len(data) > 16 {
		return nil
	}
	t := &Test{Name: "fuzz", Vars: []string{"x", "y"}}
	nextVal := []int{0, 0}
	var cur []Op
	stores := 0
	flush := func() bool {
		if len(t.Cores) == 2 {
			return false
		}
		t.Cores = append(t.Cores, cur)
		cur = nil
		return true
	}
	for _, b := range data {
		if b == 0xFF {
			if !flush() {
				return nil
			}
			continue
		}
		if len(cur) >= 8 {
			return nil
		}
		v := int(b>>2) & 1
		switch b % 4 {
		case 0:
			nextVal[v]++
			cur = append(cur, st(v, nextVal[v]), mk())
			stores++
		case 1:
			cur = append(cur, ld(v))
		case 2:
			cur = append(cur, mf())
		case 3:
			nextVal[v]++
			cur = append(cur, rmw(v, nextVal[v]), mk())
			stores++
		}
	}
	if !flush() || stores == 0 {
		return nil
	}
	return t
}

func FuzzLitmus(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0xFF, 0x04, 0x01})       // sb
	f.Add([]byte{0x00, 0x04, 0xFF, 0x05, 0x01})       // mp
	f.Add([]byte{0x00, 0xFF, 0x00})                   // waw conflict
	f.Add([]byte{0x03, 0x07})                         // rmw chain
	f.Add([]byte{0x00, 0x02, 0x04, 0xFF, 0x05, 0x02, 0x01}) // fenced mp
	f.Fuzz(func(t *testing.T, data []byte) {
		tt := decodeFuzz(data)
		if tt == nil || tt.Validate() != nil {
			t.Skip()
		}
		allowed, err := tt.AllowedOutcomes()
		if err != nil {
			t.Skip() // state-space cap; not a machine property
		}
		tt.Allowed = allowed
		o := Default()
		o.Coverage = false
		o.Perturbs = fuzzPerturbs()
		r := Explore(tt, o)
		if err := r.Err(); err != nil {
			blob, _ := json.Marshal(tt)
			t.Fatalf("%v\nreproduce: %s", err, blob)
		}
	})
}
