package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, _ := ByName("ocean_cp")
	w := Generate(p.Scale(0.1), 4, 77)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Profile, got.Profile) {
		t.Fatalf("profile round trip:\n%+v\n%+v", w.Profile, got.Profile)
	}
	if !reflect.DeepEqual(w.Cores, got.Cores) {
		t.Fatal("ops round trip mismatch")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a trace file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.WriteString("TSOT")
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLoadTruncated(t *testing.T) {
	p, _ := ByName("fft")
	w := Generate(p.Scale(0.05), 2, 5)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
