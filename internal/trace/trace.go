// Package trace generates deterministic synthetic workloads that stand in
// for the PARSEC 3.0 and Splash-3 benchmarks the paper evaluates (§V).
//
// The original suites are external binaries driven through a Sniper
// front-end; the front-end's only role is to feed per-core memory-operation
// streams into the simulated hierarchy. We therefore model each named
// benchmark as a parameterized stream generator (a Profile) whose knobs are
// exactly the properties the paper's results depend on: store fraction,
// shared-data fraction and skew, working-set sizes, synchronization
// frequency, critical-section store bursts, compute density, and phase
// behavior. The profiles are tuned so the qualitative structure of
// Figures 11-15 reproduces (e.g. radix and lu_ncb stress stop-the-world
// persistency; ocean_cp has periodic sync phases and the highest relaxed-
// persistency write amplification; dedup builds short persist lists while
// bodytrack builds long ones).
package trace

import (
	"math/rand"

	"repro/internal/mem"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark name as it appears in the paper's figures.
	Name string
	// LargeInput marks the benchmarks the paper runs with large inputs.
	LargeInput bool

	// OpsPerCore is the number of trace operations generated per core.
	OpsPerCore int
	// StoreFrac is the fraction of memory operations that are stores.
	StoreFrac float64
	// SharedFrac is the fraction of accesses that target the shared region.
	SharedFrac float64
	// SharedLines and PrivateLines size the two regions in cachelines.
	SharedLines  int
	PrivateLines int
	// HotFrac concentrates this fraction of shared accesses onto HotLines
	// lines, creating the contended lines that grow sharing lists.
	HotFrac  float64
	HotLines int
	// Locality is the probability that an access reuses the previous line
	// (spatial/temporal streaming inside a core).
	Locality float64
	// SyncPeriod is the mean number of memory ops between synchronization
	// operations (0 disables sync). HW-RP uses these to delimit SFRs.
	SyncPeriod int
	// CSStores is the number of stores issued inside each critical section
	// (immediately after a sync), modeling lock-protected shared updates.
	CSStores int
	// CSBurst is how many back-to-back critical sections fire at each sync
	// point (default 1). Fine-grained locking (e.g. ocean's per-cell
	// updates) issues many tiny CSes per region, which is what makes over
	// 90% of HW-RP's SFRs single-store (§V-D).
	CSBurst int
	// ComputeMean is the mean length of compute bursts between memory ops.
	ComputeMean int
	// PhasePeriod, when nonzero, alternates compute-heavy and store-heavy
	// phases of this many ops (ocean-style periodic behavior).
	PhasePeriod int
	// FalseSharing makes distinct cores write distinct words of the same
	// line with this probability per shared store.
	FalseSharing float64
}

// Workload is the generated trace: one op stream per core.
type Workload struct {
	Profile Profile
	Cores   [][]mem.Op
}

// Regions of the synthetic address space. Shared lines start at SharedBase;
// each core's private region starts at PrivateBase + core*PrivateStride.
const (
	SharedBase    mem.Addr = 0x1000_0000
	PrivateBase   mem.Addr = 0x8000_0000
	PrivateStride mem.Addr = 0x0100_0000
)

// Generate produces the workload for nCores cores with the given seed.
// The same (profile, nCores, seed) always yields the identical trace.
func Generate(p Profile, nCores int, seed int64) *Workload {
	w := &Workload{Profile: p, Cores: make([][]mem.Op, nCores)}
	for c := 0; c < nCores; c++ {
		w.Cores[c] = genCore(p, c, nCores, seed)
	}
	return w
}

// GenerateCore produces the op stream Generate would give core `core` of an
// nCores-wide run — the single-core entry point the program compiler's
// `profile` instruction uses to byte-reproduce legacy synthetic workloads.
func GenerateCore(p Profile, core, nCores int, seed int64) []mem.Op {
	return genCore(p, core, nCores, seed)
}

func genCore(p Profile, core, nCores int, seed int64) []mem.Op {
	rng := rand.New(rand.NewSource(seed*7919 + int64(core)*104729 + 1))
	ops := make([]mem.Op, 0, p.OpsPerCore+p.OpsPerCore/8)

	privBase := PrivateBase + mem.Addr(core)*PrivateStride
	var prevLine mem.Line
	havePrev := false
	sinceSync := 0
	csLeft := 0
	burstLeft := 0
	syncID := uint32(0)

	storePhase := true // in phase mode, whether current phase is store-heavy

	for len(ops) < p.OpsPerCore {
		n := len(ops)
		if p.PhasePeriod > 0 && n%p.PhasePeriod == 0 {
			storePhase = !storePhase
		}

		// Synchronization. A critical section is bracketed by two sync
		// operations (acquire and release): under SFR persistency each CS
		// is its own synchronization-free region, which is why the paper
		// observes that over 90% of HW-RP's SFRs contain a single store
		// (§V-D) while TSOPER's atomic groups coalesce across them.
		if csLeft > 0 {
			csLeft--
			ops = append(ops, mem.Op{Kind: mem.OpStore, Addr: csAddr(p, core, rng)})
			if csLeft == 0 {
				syncID++
				ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID}) // release
				burstLeft--
				if burstLeft > 0 {
					// The next critical section of the burst acquires
					// immediately (fine-grained per-element locking).
					syncID++
					ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID})
					csLeft = p.CSStores
				}
			}
			continue
		}
		if p.SyncPeriod > 0 {
			sinceSync++
			if sinceSync >= p.SyncPeriod+rng.Intn(p.SyncPeriod/2+1)-p.SyncPeriod/4 {
				sinceSync = 0
				syncID++
				ops = append(ops, mem.Op{Kind: mem.OpSync, Arg: syncID}) // acquire
				csLeft = p.CSStores
				burstLeft = p.CSBurst
				if burstLeft < 1 {
					burstLeft = 1
				}
				continue
			}
		}

		// Compute burst. Real PARSEC/Splash regions of interest are
		// compute-dominated: memory operations are a minority of dynamic
		// instructions, so each generated compute op stands for a sizable
		// burst of non-memory work.
		if p.ComputeMean > 0 && rng.Float64() < 0.35 {
			burst := 1 + rng.Intn(p.ComputeMean*12)
			if p.PhasePeriod > 0 && !storePhase {
				burst *= 3
			}
			ops = append(ops, mem.Op{Kind: mem.OpCompute, Arg: uint32(burst)})
			continue
		}

		// Pick line.
		var line mem.Line
		shared := rng.Float64() < p.SharedFrac
		switch {
		case havePrev && rng.Float64() < p.Locality:
			line = prevLine
			if rng.Float64() < 0.5 {
				line++ // streaming to the next line
			}
		case shared:
			if p.HotLines > 0 && rng.Float64() < p.HotFrac {
				line = mem.LineOf(SharedBase) + mem.Line(rng.Intn(p.HotLines))
			} else {
				line = mem.LineOf(SharedBase) + mem.Line(rng.Intn(max(p.SharedLines, 1)))
			}
		default:
			line = mem.LineOf(privBase) + mem.Line(rng.Intn(max(p.PrivateLines, 1)))
		}
		prevLine, havePrev = line, true

		// Word offset; false sharing gives each core its own word of a line.
		off := mem.Addr(rng.Intn(mem.LineSize/8)) * 8
		if shared && rng.Float64() < p.FalseSharing {
			off = mem.Addr(core%8) * 8
		}
		addr := line.Base() + off

		isStore := rng.Float64() < p.StoreFrac
		if p.PhasePeriod > 0 {
			if storePhase {
				isStore = rng.Float64() < minF(p.StoreFrac*2, 0.9)
			} else {
				isStore = rng.Float64() < p.StoreFrac*0.2
			}
		}
		if isStore {
			ops = append(ops, mem.Op{Kind: mem.OpStore, Addr: addr})
		} else {
			ops = append(ops, mem.Op{Kind: mem.OpLoad, Addr: addr})
		}
	}
	return ops[:p.OpsPerCore]
}

// csAddr picks the shared variable a critical section updates: a word in
// one of the hot contended lines (or the general shared region if the
// profile has no hot set).
func csAddr(p Profile, core int, rng *rand.Rand) mem.Addr {
	var line mem.Line
	if p.HotLines > 0 {
		line = mem.LineOf(SharedBase) + mem.Line(rng.Intn(p.HotLines))
	} else {
		line = mem.LineOf(SharedBase) + mem.Line(rng.Intn(max(p.SharedLines, 1)))
	}
	off := mem.Addr(rng.Intn(mem.LineSize/8)) * 8
	if rng.Float64() < p.FalseSharing {
		off = mem.Addr(core%8) * 8
	}
	return line.Base() + off
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Stats summarizes a generated workload (used by tests and examples).
type Stats struct {
	Ops, Loads, Stores, Syncs, Computes int
	SharedStores                        int
}

// Summarize computes aggregate statistics over all cores.
func (w *Workload) Summarize() Stats {
	var s Stats
	sharedLo := mem.LineOf(SharedBase)
	sharedHi := sharedLo + mem.Line(w.Profile.SharedLines) + 8
	for _, ops := range w.Cores {
		for _, op := range ops {
			s.Ops++
			switch op.Kind {
			case mem.OpLoad:
				s.Loads++
			case mem.OpStore:
				s.Stores++
				if l := mem.LineOf(op.Addr); l >= sharedLo && l < sharedHi {
					s.SharedStores++
				}
			case mem.OpSync:
				s.Syncs++
			case mem.OpCompute:
				s.Computes++
			}
		}
	}
	return s
}
