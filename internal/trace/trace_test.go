package trace

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestDeterminism(t *testing.T) {
	p, _ := ByName("fft")
	w1 := Generate(p, 4, 42)
	w2 := Generate(p, 4, 42)
	if !reflect.DeepEqual(w1.Cores, w2.Cores) {
		t.Fatal("same (profile, cores, seed) must generate identical traces")
	}
	w3 := Generate(p, 4, 43)
	if reflect.DeepEqual(w1.Cores, w3.Cores) {
		t.Fatal("different seeds should generate different traces")
	}
}

func TestOpsPerCoreExact(t *testing.T) {
	for _, p := range Benchmarks() {
		w := Generate(p.Scale(0.1), 2, 1)
		for c, ops := range w.Cores {
			if len(ops) != p.Scale(0.1).OpsPerCore {
				t.Errorf("%s core %d: %d ops, want %d", p.Name, c, len(ops), p.Scale(0.1).OpsPerCore)
			}
		}
	}
}

func TestStoreFractionRoughlyHonored(t *testing.T) {
	p := Profile{
		Name: "synthetic", OpsPerCore: 20000, StoreFrac: 0.4, SharedFrac: 0.3,
		SharedLines: 256, PrivateLines: 256, Locality: 0.3,
	}
	w := Generate(p, 1, 7)
	s := w.Summarize()
	frac := float64(s.Stores) / float64(s.Loads+s.Stores)
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("store fraction %.3f, want ~0.40", frac)
	}
}

func TestSyncPresentWhenConfigured(t *testing.T) {
	p, _ := ByName("ocean_cp")
	w := Generate(p, 2, 3)
	s := w.Summarize()
	if s.Syncs == 0 {
		t.Fatal("ocean_cp should contain sync ops")
	}
	q, _ := ByName("blackscholes")
	q.SyncPeriod = 0
	w2 := Generate(q, 2, 3)
	if w2.Summarize().Syncs != 0 {
		t.Fatal("SyncPeriod=0 must disable sync ops")
	}
}

func TestAddressRegions(t *testing.T) {
	p, _ := ByName("radix")
	w := Generate(p, 4, 11)
	for c, ops := range w.Cores {
		for _, op := range ops {
			if op.Kind != mem.OpLoad && op.Kind != mem.OpStore {
				continue
			}
			l := mem.LineOf(op.Addr)
			sharedLo := mem.LineOf(SharedBase)
			// Streaming locality can run a little past each region.
			sharedHi := sharedLo + mem.Line(p.SharedLines) + 64
			privLo := mem.LineOf(PrivateBase + mem.Addr(c)*PrivateStride)
			privHi := privLo + mem.Line(p.PrivateLines) + 64
			inShared := l >= sharedLo && l < sharedHi
			inPriv := l >= privLo && l < privHi
			if !inShared && !inPriv {
				t.Fatalf("core %d accesses %v outside both regions", c, l)
			}
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	p := Profile{Name: "p", OpsPerCore: 2000, StoreFrac: 0.5, SharedFrac: 0,
		PrivateLines: 100, Locality: 0}
	w := Generate(p, 8, 5)
	seen := map[mem.Line]int{}
	for c, ops := range w.Cores {
		for _, op := range ops {
			if op.Kind != mem.OpStore && op.Kind != mem.OpLoad {
				continue
			}
			l := mem.LineOf(op.Addr)
			if prev, ok := seen[l]; ok && prev != c {
				t.Fatalf("line %v accessed by cores %d and %d in private-only workload", l, prev, c)
			}
			seen[l] = c
		}
	}
}

func TestBenchmarkRoster(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 22 {
		t.Fatalf("expected 22 benchmark profiles, got %d", len(bs))
	}
	names := map[string]bool{}
	var nLarge int
	for _, b := range bs {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.LargeInput {
			nLarge++
		}
		if b.OpsPerCore <= 0 || b.StoreFrac <= 0 || b.StoreFrac >= 1 {
			t.Fatalf("%s: implausible profile %+v", b.Name, b)
		}
	}
	if nLarge != 13 {
		t.Fatalf("expected 13 large-input benchmarks, got %d", nLarge)
	}
	for _, want := range []string{"radix", "ocean_cp", "lu_ncb", "dedup", "bodytrack", "x264"} {
		if !names[want] {
			t.Errorf("missing paper benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("radix"); !ok {
		t.Fatal("radix should exist")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("nonesuch should not exist")
	}
	if len(Names()) != 22 {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
}

func TestScale(t *testing.T) {
	p, _ := ByName("fft")
	if got := p.Scale(0.5).OpsPerCore; got != p.OpsPerCore/2 {
		t.Fatalf("scale 0.5: %d", got)
	}
	if got := p.Scale(0).OpsPerCore; got != 64 {
		t.Fatalf("scale floor: %d", got)
	}
}

func TestSummarizeCounts(t *testing.T) {
	p, _ := ByName("barnes")
	w := Generate(p.Scale(0.2), 3, 9)
	s := w.Summarize()
	if s.Ops != s.Loads+s.Stores+s.Syncs+s.Computes {
		t.Fatalf("summary does not add up: %+v", s)
	}
	if s.Stores == 0 || s.Loads == 0 {
		t.Fatalf("degenerate workload: %+v", s)
	}
}

// Property: generation is total and bounded for arbitrary small profiles.
func TestPropertyGenerateTotal(t *testing.T) {
	f := func(storeFrac, sharedFrac, locality uint8, shared, private uint8) bool {
		p := Profile{
			Name:         "prop",
			OpsPerCore:   200,
			StoreFrac:    float64(storeFrac%100) / 100,
			SharedFrac:   float64(sharedFrac%100) / 100,
			Locality:     float64(locality%90) / 100,
			SharedLines:  int(shared)%64 + 1,
			PrivateLines: int(private)%64 + 1,
			SyncPeriod:   50, CSStores: 2, ComputeMean: 2,
		}
		w := Generate(p, 2, 13)
		return len(w.Cores) == 2 && len(w.Cores[0]) == 200 && len(w.Cores[1]) == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
