package trace

// Benchmarks returns the profiles standing in for the PARSEC 3.0 and
// Splash-3 applications evaluated in the paper (§V, "Benchmarks"). Small-
// input runs: barnes, cholesky, fft, freqmine, lu_cb, lu_ncb, streamcluster,
// swaptions, vips. Large-input runs: blackscholes, bodytrack, canneal,
// dedup, ferret, fluidanimate, ocean_cp, radiosity, radix, raytrace,
// volrend, water, x264.
//
// Each profile is tuned toward the behavior the paper reports for that
// application rather than toward its literal computation:
//
//   - radix and lu_ncb generate the largest persist volume and the most
//     atomic groups (worst cases for STW in Fig. 11: +392% and +104%);
//   - ocean_cp alternates compute and store phases with periodic barriers
//     (Fig. 15) and produces the highest HW-RP persist traffic (Fig. 14);
//   - dedup keeps persist lists short (~2) while x264 (~4) and bodytrack
//     (~6) keep them longer (§V-B), controlled here by hot-line contention;
//   - blackscholes and swaptions have few simultaneous writers, so BSP and
//     BSP+SLC behave alike on them (Fig. 12).
func Benchmarks() []Profile {
	return []Profile{
		// ---- Splash-3, small inputs ----
		{
			Name: "barnes", OpsPerCore: 4000, StoreFrac: 0.30, SharedFrac: 0.35,
			SharedLines: 512, PrivateLines: 256, HotFrac: 0.25, HotLines: 16,
			Locality: 0.45, SyncPeriod: 200, CSStores: 2, ComputeMean: 4,
		},
		{
			Name: "cholesky", OpsPerCore: 4000, StoreFrac: 0.28, SharedFrac: 0.30,
			SharedLines: 768, PrivateLines: 384, HotFrac: 0.20, HotLines: 24,
			Locality: 0.55, SyncPeriod: 250, CSStores: 1, ComputeMean: 5,
		},
		{
			Name: "fft", OpsPerCore: 4000, StoreFrac: 0.35, SharedFrac: 0.40,
			SharedLines: 1024, PrivateLines: 256, HotFrac: 0.10, HotLines: 8,
			Locality: 0.65, SyncPeriod: 400, CSStores: 1, ComputeMean: 3,
		},
		{
			Name: "freqmine", OpsPerCore: 4000, StoreFrac: 0.25, SharedFrac: 0.30,
			SharedLines: 640, PrivateLines: 512, HotFrac: 0.30, HotLines: 20,
			Locality: 0.40, SyncPeriod: 180, CSStores: 2, ComputeMean: 5,
		},
		{
			Name: "lu_cb", OpsPerCore: 4000, StoreFrac: 0.38, SharedFrac: 0.35,
			SharedLines: 896, PrivateLines: 256, HotFrac: 0.15, HotLines: 12,
			Locality: 0.70, SyncPeriod: 300, CSStores: 1, ComputeMean: 3,
		},
		{
			// Non-contiguous blocks: heavy false sharing and persist volume.
			Name: "lu_ncb", OpsPerCore: 4000, StoreFrac: 0.45, SharedFrac: 0.55,
			SharedLines: 1024, PrivateLines: 128, HotFrac: 0.20, HotLines: 24,
			Locality: 0.30, SyncPeriod: 220, CSStores: 3, ComputeMean: 2,
			FalseSharing: 0.50,
		},
		{
			Name: "streamcluster", OpsPerCore: 4000, StoreFrac: 0.32, SharedFrac: 0.45,
			SharedLines: 768, PrivateLines: 192, HotFrac: 0.35, HotLines: 12,
			Locality: 0.60, SyncPeriod: 150, CSStores: 2, ComputeMean: 3,
		},
		{
			// Few simultaneous writers: almost all private, streaming
			// through a working set larger than the private cache.
			Name: "swaptions", OpsPerCore: 4000, StoreFrac: 0.25, SharedFrac: 0.06,
			SharedLines: 128, PrivateLines: 10240, HotFrac: 0.10, HotLines: 4,
			Locality: 0.60, SyncPeriod: 1500, CSStores: 1, ComputeMean: 6,
		},
		{
			Name: "vips", OpsPerCore: 4000, StoreFrac: 0.30, SharedFrac: 0.25,
			SharedLines: 512, PrivateLines: 384, HotFrac: 0.20, HotLines: 12,
			Locality: 0.55, SyncPeriod: 300, CSStores: 2, ComputeMean: 4,
		},

		// ---- PARSEC 3.0, large inputs ----
		{
			// Few simultaneous writers; streams option chains far larger
			// than the private cache.
			Name: "blackscholes", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.22,
			SharedFrac: 0.05, SharedLines: 128, PrivateLines: 12288, HotFrac: 0.10,
			HotLines: 4, Locality: 0.70, SyncPeriod: 2000, CSStores: 1, ComputeMean: 6,
		},
		{
			// Long persist lists (~6): strong hot-line write contention.
			Name: "bodytrack", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.30,
			SharedFrac: 0.50, SharedLines: 384, PrivateLines: 256, HotFrac: 0.60,
			HotLines: 6, Locality: 0.35, SyncPeriod: 150, CSStores: 3, ComputeMean: 3,
		},
		{
			Name: "canneal", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.28,
			SharedFrac: 0.55, SharedLines: 2048, PrivateLines: 128, HotFrac: 0.05,
			HotLines: 16, Locality: 0.15, SyncPeriod: 400, CSStores: 1, ComputeMean: 2,
		},
		{
			// Short persist lists (~2): little write contention.
			Name: "dedup", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.33,
			SharedFrac: 0.30, SharedLines: 1024, PrivateLines: 384, HotFrac: 0.08,
			HotLines: 32, Locality: 0.50, SyncPeriod: 250, CSStores: 1, ComputeMean: 3,
		},
		{
			Name: "ferret", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.27,
			SharedFrac: 0.35, SharedLines: 768, PrivateLines: 384, HotFrac: 0.25,
			HotLines: 16, Locality: 0.45, SyncPeriod: 220, CSStores: 2, ComputeMean: 4,
		},
		{
			Name: "fluidanimate", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.35,
			SharedFrac: 0.40, SharedLines: 1024, PrivateLines: 256, HotFrac: 0.20,
			HotLines: 20, Locality: 0.55, SyncPeriod: 180, CSStores: 2, ComputeMean: 3,
		},
		{
			// Periodic grid phases + barriers; highest HW-RP persist traffic.
			Name: "ocean_cp", LargeInput: true, OpsPerCore: 6000, StoreFrac: 0.40,
			SharedFrac: 0.50, SharedLines: 512, PrivateLines: 96, HotFrac: 0.15,
			HotLines: 16, Locality: 0.75, SyncPeriod: 120, CSStores: 1, CSBurst: 10,
			ComputeMean: 3, PhasePeriod: 600,
		},
		{
			Name: "radiosity", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.30,
			SharedFrac: 0.45, SharedLines: 896, PrivateLines: 256, HotFrac: 0.30,
			HotLines: 14, Locality: 0.40, SyncPeriod: 200, CSStores: 2, ComputeMean: 3,
		},
		{
			// Highest persist volume + most AGs: worst case for STW.
			Name: "radix", LargeInput: true, OpsPerCore: 6000, StoreFrac: 0.55,
			SharedFrac: 0.65, SharedLines: 2048, PrivateLines: 96, HotFrac: 0.10,
			HotLines: 32, Locality: 0.20, SyncPeriod: 250, CSStores: 4, ComputeMean: 1,
			FalseSharing: 0.30,
		},
		{
			Name: "raytrace", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.24,
			SharedFrac: 0.30, SharedLines: 1024, PrivateLines: 384, HotFrac: 0.20,
			HotLines: 12, Locality: 0.50, SyncPeriod: 300, CSStores: 1, ComputeMean: 4,
		},
		{
			Name: "volrend", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.26,
			SharedFrac: 0.35, SharedLines: 640, PrivateLines: 320, HotFrac: 0.30,
			HotLines: 10, Locality: 0.45, SyncPeriod: 250, CSStores: 2, ComputeMean: 4,
		},
		{
			Name: "water", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.29,
			SharedFrac: 0.30, SharedLines: 512, PrivateLines: 320, HotFrac: 0.25,
			HotLines: 12, Locality: 0.50, SyncPeriod: 250, CSStores: 2, ComputeMean: 4,
		},
		{
			// Persist lists ~4: moderate contention.
			Name: "x264", LargeInput: true, OpsPerCore: 5000, StoreFrac: 0.34,
			SharedFrac: 0.45, SharedLines: 512, PrivateLines: 256, HotFrac: 0.45,
			HotLines: 8, Locality: 0.40, SyncPeriod: 150, CSStores: 2, ComputeMean: 3,
		},
	}
}

// ByName returns the named benchmark profile, or false if unknown.
func ByName(name string) (Profile, bool) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists all benchmark names in figure order.
func Names() []string {
	bs := Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// Scale returns a copy of p with OpsPerCore multiplied by f (minimum 64),
// used by tests and benches to run abbreviated workloads.
func (p Profile) Scale(f float64) Profile {
	q := p
	q.OpsPerCore = int(float64(p.OpsPerCore) * f)
	if q.OpsPerCore < 64 {
		q.OpsPerCore = 64
	}
	return q
}
