package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Workload files let a generated trace be stored and replayed bit-exactly —
// the equivalent of shipping a Sniper trace alongside results. The format
// is a small versioned binary container (little-endian):
//
//	magic "TSOT" | version u32 | name len+bytes | profile (fixed fields) |
//	core count u32 | per core: op count u32, ops (kind u8, addr u64, arg u32)
const (
	traceMagic   = "TSOT"
	traceVersion = 1
)

// Save writes the workload to w.
func (w *Workload) Save(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) { binary.Write(bw, le, v) }
	writeU64 := func(v uint64) { binary.Write(bw, le, v) }
	writeF := func(v float64) { binary.Write(bw, le, v) }

	writeU32(traceVersion)
	writeU32(uint32(len(w.Profile.Name)))
	bw.WriteString(w.Profile.Name)
	p := w.Profile
	for _, v := range []uint32{
		uint32(p.OpsPerCore), uint32(p.SharedLines), uint32(p.PrivateLines),
		uint32(p.HotLines), uint32(p.SyncPeriod), uint32(p.CSStores),
		uint32(p.CSBurst), uint32(p.ComputeMean), uint32(p.PhasePeriod),
	} {
		writeU32(v)
	}
	for _, v := range []float64{p.StoreFrac, p.SharedFrac, p.HotFrac, p.Locality, p.FalseSharing} {
		writeF(v)
	}
	if p.LargeInput {
		writeU32(1)
	} else {
		writeU32(0)
	}

	writeU32(uint32(len(w.Cores)))
	for _, ops := range w.Cores {
		writeU32(uint32(len(ops)))
		for _, op := range ops {
			bw.WriteByte(byte(op.Kind))
			writeU64(uint64(op.Addr))
			writeU32(op.Arg)
		}
	}
	return bw.Flush()
}

// Load reads a workload previously written by Save.
func Load(in io.Reader) (*Workload, error) {
	br := bufio.NewReader(in)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}

	var p Profile
	p.Name = string(name)
	ints := []*int{
		&p.OpsPerCore, &p.SharedLines, &p.PrivateLines, &p.HotLines,
		&p.SyncPeriod, &p.CSStores, &p.CSBurst, &p.ComputeMean, &p.PhasePeriod,
	}
	for _, dst := range ints {
		v, err := readU32()
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	floats := []*float64{&p.StoreFrac, &p.SharedFrac, &p.HotFrac, &p.Locality, &p.FalseSharing}
	for _, dst := range floats {
		if err := binary.Read(br, le, dst); err != nil {
			return nil, err
		}
	}
	large, err := readU32()
	if err != nil {
		return nil, err
	}
	p.LargeInput = large != 0

	nCores, err := readU32()
	if err != nil {
		return nil, err
	}
	if nCores > 1024 {
		return nil, fmt.Errorf("trace: implausible core count %d", nCores)
	}
	w := &Workload{Profile: p, Cores: make([][]mem.Op, nCores)}
	for c := range w.Cores {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("trace: implausible op count %d", n)
		}
		ops := make([]mem.Op, n)
		for i := range ops {
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			var addr uint64
			if err := binary.Read(br, le, &addr); err != nil {
				return nil, err
			}
			arg, err := readU32()
			if err != nil {
				return nil, err
			}
			ops[i] = mem.Op{Kind: mem.OpKind(kind), Addr: mem.Addr(addr), Arg: arg}
		}
		w.Cores[c] = ops
	}
	return w, nil
}
