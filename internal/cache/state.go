package cache

import (
	"sort"

	"repro/internal/ckpt"
	"repro/internal/mem"
)

// EncodeState writes the cache's logical contents deterministically: hit
// counters, the LRU clock, and every resident line in address order with
// its recency stamp, pin bit, and a caller-encoded payload. Set membership
// and free-list linkage are derivable (geometry is config) and excluded.
func (c *Cache[T]) EncodeState(w *ckpt.Writer, payload func(*ckpt.Writer, T)) {
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.tick)
	lines := make([]uint64, 0, len(c.index))
	for l := range c.index {
		lines = append(lines, uint64(l))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, l := range lines {
		e := c.index[mem.Line(l)]
		w.U64(l)
		w.U64(e.lru)
		w.Bool(e.pinned)
		payload(w, e.Data)
	}
}

// EncodeState writes the eviction buffer's occupancy state: high-water mark,
// stall count, and resident lines in address order with payloads.
func (b *EvictBuffer[T]) EncodeState(w *ckpt.Writer, payload func(*ckpt.Writer, T)) {
	w.Int(b.MaxOccupancy)
	w.U64(b.Stalls)
	lines := make([]uint64, 0, len(b.entries))
	for l := range b.entries {
		lines = append(lines, uint64(l))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, l := range lines {
		w.U64(l)
		payload(w, b.entries[mem.Line(l)])
	}
}
