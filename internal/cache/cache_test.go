package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestGeometrySets(t *testing.T) {
	cases := []struct {
		g    Geometry
		want int
	}{
		{Geometry{SizeBytes: 32 * 1024, Ways: 8}, 64},    // 32KB L1
		{Geometry{SizeBytes: 512 * 1024, Ways: 16}, 512}, // 512KB L2
		{Geometry{SizeBytes: 64, Ways: 1}, 1},
		{Geometry{SizeBytes: 64, Ways: 4}, 1}, // smaller than one way set
	}
	for _, c := range cases {
		if got := c.g.Sets(); got != c.want {
			t.Errorf("%+v: sets=%d want %d", c.g, got, c.want)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := New[int](Geometry{SizeBytes: 64 * 16, Ways: 4})
	e, v := c.Insert(mem.Line(1), 42)
	if e == nil || v != nil {
		t.Fatal("insert into empty cache should not evict")
	}
	got := c.Lookup(mem.Line(1))
	if got == nil || got.Data != 42 {
		t.Fatalf("lookup: %+v", got)
	}
	if c.Lookup(mem.Line(99)) != nil {
		t.Fatal("miss should return nil")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways.
	c := New[int](Geometry{SizeBytes: 128, Ways: 2})
	c.Insert(mem.Line(0), 0)
	c.Insert(mem.Line(1), 1)
	c.Lookup(mem.Line(0)) // 0 is now MRU
	_, victim := c.Insert(mem.Line(2), 2)
	if victim == nil || victim.Line != mem.Line(1) {
		t.Fatalf("victim=%+v, want line 1", victim)
	}
	if c.Peek(mem.Line(1)) != nil {
		t.Fatal("victim still resident")
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	c := New[int](Geometry{SizeBytes: 128, Ways: 2})
	e0, _ := c.Insert(mem.Line(0), 0)
	e1, _ := c.Insert(mem.Line(1), 1)
	e0.Pin()
	_, victim := c.Insert(mem.Line(2), 2)
	if victim == nil || victim.Line != mem.Line(1) {
		t.Fatalf("victim=%+v, want unpinned line 1", victim)
	}
	_ = e1
	// Now lines 0 (pinned) and 2 are resident; pin 2 as well.
	c.Peek(mem.Line(2)).Pin()
	e, v := c.Insert(mem.Line(3), 3)
	if e != nil || v != nil {
		t.Fatal("insert into fully pinned set must fail")
	}
	if !e0.Pinned() {
		t.Fatal("pin flag lost")
	}
	e0.Unpin()
	e, _ = c.Insert(mem.Line(3), 3)
	if e == nil {
		t.Fatal("insert after unpin should succeed")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c := New[int](Geometry{SizeBytes: 128, Ways: 2})
	c.Insert(mem.Line(0), 0)
	c.Insert(mem.Line(0), 1)
}

func TestRemove(t *testing.T) {
	c := New[int](Geometry{SizeBytes: 128, Ways: 2})
	c.Insert(mem.Line(0), 7)
	e := c.Remove(mem.Line(0))
	if e == nil || e.Data != 7 {
		t.Fatalf("removed=%+v", e)
	}
	if c.Remove(mem.Line(0)) != nil {
		t.Fatal("second remove should return nil")
	}
	if c.Len() != 0 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New[int](Geometry{SizeBytes: 128, Ways: 2})
	c.Insert(mem.Line(0), 0)
	c.Insert(mem.Line(1), 1)
	c.Peek(mem.Line(0)) // must NOT refresh line 0
	_, victim := c.Insert(mem.Line(2), 2)
	if victim == nil || victim.Line != mem.Line(0) {
		t.Fatalf("victim=%+v, want line 0 (peek must not touch)", victim)
	}
}

func TestForEach(t *testing.T) {
	c := New[int](Geometry{SizeBytes: 64 * 8, Ways: 8})
	for i := 0; i < 5; i++ {
		c.Insert(mem.Line(i), i)
	}
	sum := 0
	c.ForEach(func(e *Entry[int]) { sum += e.Data })
	if sum != 10 {
		t.Fatalf("sum=%d", sum)
	}
}

// Property: occupancy never exceeds ways per set, and resident lines are
// always found.
func TestPropertyOccupancyBound(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New[struct{}](Geometry{SizeBytes: 64 * 32, Ways: 4}) // 8 sets
		for _, l := range lines {
			line := mem.Line(l % 256)
			if c.Peek(line) == nil {
				c.Insert(line, struct{}{})
			}
			if c.SetOccupancy(line) > c.Ways() {
				return false
			}
			if c.Peek(line) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvictBuffer(t *testing.T) {
	b := NewEvictBuffer[string](2)
	if !b.Put(mem.Line(1), "a") || !b.Put(mem.Line(2), "b") {
		t.Fatal("puts within capacity must succeed")
	}
	if b.Put(mem.Line(3), "c") {
		t.Fatal("put beyond capacity must fail")
	}
	if b.Stalls != 1 || b.MaxOccupancy != 2 {
		t.Fatalf("stalls=%d max=%d", b.Stalls, b.MaxOccupancy)
	}
	if v, ok := b.Get(mem.Line(1)); !ok || v != "a" {
		t.Fatalf("get: %v %v", v, ok)
	}
	b.Release(mem.Line(1))
	if b.Len() != 1 || b.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", b.Len(), b.Cap())
	}
	if !b.Put(mem.Line(3), "c") {
		t.Fatal("put after release must succeed")
	}
}
