package cache

import "repro/internal/mem"

// EvictBuffer is the small side buffer of §III-B: a cacheline evicted from a
// private cache before its atomic group has persisted moves here, freeing
// its cache frame immediately while the line "still behaves as a member of
// the AG". Entries leave only when their group persists. The paper finds a
// 16-entry buffer never experiences pressure; Occupancy stats let the
// eviction-buffer ablation verify that.
type EvictBuffer[T any] struct {
	capacity int
	entries  map[mem.Line]T

	// MaxOccupancy tracks the high-water mark.
	MaxOccupancy int
	// Stalls counts rejected inserts (buffer full).
	Stalls uint64
}

// NewEvictBuffer creates a buffer holding up to capacity lines.
func NewEvictBuffer[T any](capacity int) *EvictBuffer[T] {
	return &EvictBuffer[T]{capacity: capacity, entries: make(map[mem.Line]T)}
}

// Put inserts a line; it reports false (and counts a stall) if full.
func (b *EvictBuffer[T]) Put(l mem.Line, data T) bool {
	if len(b.entries) >= b.capacity {
		b.Stalls++
		return false
	}
	b.entries[l] = data
	if len(b.entries) > b.MaxOccupancy {
		b.MaxOccupancy = len(b.entries)
	}
	return true
}

// Get returns the payload for l.
func (b *EvictBuffer[T]) Get(l mem.Line) (T, bool) {
	v, ok := b.entries[l]
	return v, ok
}

// Release removes l once its group has persisted.
func (b *EvictBuffer[T]) Release(l mem.Line) {
	delete(b.entries, l)
}

// Len returns the current occupancy.
func (b *EvictBuffer[T]) Len() int { return len(b.entries) }

// Cap returns the capacity.
func (b *EvictBuffer[T]) Cap() int { return b.capacity }
