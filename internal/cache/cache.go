// Package cache provides the set-associative storage arrays used by the
// private L1/L2 caches, the shared LLC banks, and the directory (Table I).
// The array is generic over its per-line payload so the coherence protocols
// can attach their own state (MESI state bits, sharing-list pointers,
// atomic-group tags) without this package knowing about them.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Geometry describes a set-associative array.
type Geometry struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	lines := g.SizeBytes / mem.LineSize
	if g.Ways <= 0 || lines < g.Ways {
		return 1
	}
	return lines / g.Ways
}

// Entry is one resident line with its payload. Entries are recycled on a
// per-cache free list: a removed entry keeps its Line and Data readable until
// the next Insert on the same cache reuses it, so callers may inspect a
// victim synchronously but must not retain the pointer across inserts.
type Entry[T any] struct {
	Line mem.Line
	Data T
	// lru is a per-set timestamp: larger = more recently used.
	lru uint64
	// pinned entries are never chosen as victims (e.g. lines whose atomic
	// group is mid-persist).
	pinned bool
	// nextFree chains the cache's free list while the entry is not resident.
	nextFree *Entry[T]
}

// Pin prevents the entry from being selected as an eviction victim.
func (e *Entry[T]) Pin() { e.pinned = true }

// Unpin re-enables eviction.
func (e *Entry[T]) Unpin() { e.pinned = false }

// Pinned reports whether the entry is pinned.
func (e *Entry[T]) Pinned() bool { return e.pinned }

// Cache is a set-associative array with LRU replacement.
type Cache[T any] struct {
	geom  Geometry
	sets  [][]*Entry[T]
	index map[mem.Line]*Entry[T]
	tick  uint64
	free  *Entry[T]
	slab  []Entry[T]

	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
}

// New creates an empty cache with the given geometry.
func New[T any](geom Geometry) *Cache[T] {
	// The index hint is capped: workloads rarely fill a large array, and a
	// full-capacity map is megabytes of mostly-idle buckets per machine —
	// past the cap, the map grows the usual doubling way (a few allocations).
	hint := geom.SizeBytes / mem.LineSize
	if hint > 2048 {
		hint = 2048
	}
	c := &Cache[T]{
		geom:  geom,
		sets:  make([][]*Entry[T], geom.Sets()),
		index: make(map[mem.Line]*Entry[T], hint),
	}
	// One backing array holds every set at full associativity, so Insert's
	// per-set appends never grow storage.
	backing := make([]*Entry[T], len(c.sets)*geom.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*geom.Ways : i*geom.Ways : (i+1)*geom.Ways]
	}
	return c
}

// setOf maps a line to its set.
func (c *Cache[T]) setOf(l mem.Line) int {
	return int(uint64(l) % uint64(len(c.sets)))
}

// Lookup returns the entry for l and bumps its recency, or nil on miss.
func (c *Cache[T]) Lookup(l mem.Line) *Entry[T] {
	e, ok := c.index[l]
	if !ok {
		c.Misses++
		return nil
	}
	c.Hits++
	c.tick++
	e.lru = c.tick
	return e
}

// Peek returns the entry without affecting recency or hit counters.
func (c *Cache[T]) Peek(l mem.Line) *Entry[T] { return c.index[l] }

// Insert adds line l, evicting an unpinned LRU victim from its set if the
// set is full. It returns the new entry and the victim (nil if none).
// Inserting a line that is already resident panics: callers must Lookup
// first — a double insert is always a protocol bug.
//
// If every entry in the set is pinned, Insert returns (nil, nil) and the
// caller must retry later (this back-pressure is what lets atomic groups
// finish persisting before their lines can be displaced).
func (c *Cache[T]) Insert(l mem.Line, data T) (entry, victim *Entry[T]) {
	if _, ok := c.index[l]; ok {
		panic(fmt.Sprintf("cache: double insert of %v", l))
	}
	si := c.setOf(l)
	set := c.sets[si]
	// Pop the free list before evicting: this Insert's own victim then lands
	// on the free list untouched, so the caller can still read it after we
	// return (it is only recycled by a later Insert).
	e := c.free
	if e != nil {
		c.free = e.nextFree
		e.nextFree = nil
		e.pinned = false
	} else {
		if len(c.slab) == 0 {
			c.slab = make([]Entry[T], 64)
		}
		e = &c.slab[0]
		c.slab = c.slab[1:]
	}
	if len(set) >= c.geom.Ways {
		victim = c.lruVictim(set)
		if victim == nil {
			e.nextFree = c.free
			c.free = e
			return nil, nil // all pinned
		}
		c.removeEntry(si, victim)
	}
	c.tick++
	e.Line, e.Data, e.lru = l, data, c.tick
	c.sets[si] = append(c.sets[si], e)
	c.index[l] = e
	return e, victim
}

func (c *Cache[T]) lruVictim(set []*Entry[T]) *Entry[T] {
	var victim *Entry[T]
	for _, e := range set {
		if e.pinned {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// Victim returns the entry Insert would evict to make room for line l, or
// nil if the set still has a free way. Callers that must relocate victims
// (e.g. into an eviction buffer) can inspect and remove the victim before
// inserting. If every entry in the set is pinned, Victim returns nil too —
// use SetFull to distinguish that case.
func (c *Cache[T]) Victim(l mem.Line) *Entry[T] {
	si := c.setOf(l)
	if len(c.sets[si]) < c.geom.Ways {
		return nil
	}
	return c.lruVictim(c.sets[si])
}

// SetFull reports whether the set holding l has no free way.
func (c *Cache[T]) SetFull(l mem.Line) bool {
	return len(c.sets[c.setOf(l)]) >= c.geom.Ways
}

// Remove deletes line l, returning its entry (nil if absent).
func (c *Cache[T]) Remove(l mem.Line) *Entry[T] {
	e, ok := c.index[l]
	if !ok {
		return nil
	}
	c.removeEntry(c.setOf(l), e)
	return e
}

func (c *Cache[T]) removeEntry(si int, e *Entry[T]) {
	set := c.sets[si]
	for i, x := range set {
		if x == e {
			set[i] = set[len(set)-1]
			c.sets[si] = set[:len(set)-1]
			break
		}
	}
	delete(c.index, e.Line)
	// Line and Data stay readable until a later Insert recycles the record.
	e.nextFree = c.free
	c.free = e
}

// Len returns the number of resident lines.
func (c *Cache[T]) Len() int { return len(c.index) }

// SetOccupancy returns how many lines the set holding l contains.
func (c *Cache[T]) SetOccupancy(l mem.Line) int { return len(c.sets[c.setOf(l)]) }

// Ways returns the associativity.
func (c *Cache[T]) Ways() int { return c.geom.Ways }

// ForEach visits every resident entry (iteration order unspecified).
func (c *Cache[T]) ForEach(fn func(*Entry[T])) {
	for _, e := range c.index {
		fn(e)
	}
}
