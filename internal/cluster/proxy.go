package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// The gateway exposes the same surface as one tsoper-serve node, so every
// existing client (typed or curl) is cluster-ready unchanged:
//
//	POST   /v1/jobs             route by content address; peer cache-fill,
//	                            then failover submission across candidates
//	GET    /v1/jobs/{id}        forwarded to the owning node (IDs carry a
//	                            "node:" prefix; "gw:" IDs are served locally)
//	GET    /v1/jobs/{id}/result raw pass-through from the owner
//	GET    /v1/jobs/{id}/events SSE proxy (state-event IDs rewritten)
//	DELETE /v1/jobs/{id}        forwarded cancel
//	GET    /v1/cache/{hash}     cluster-wide cache read (first candidate hit)
//	GET    /healthz             gateway health + backend state counts
//	GET    /metrics             cluster Metrics document
func (g *Gateway) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleCancel)
	mux.HandleFunc("GET /v1/cache/{hash}", g.handleCacheGet)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// ServeHTTP implements http.Handler on the gateway.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// handleSubmit is the routing core. The spec is validated and
// content-addressed at the gateway (bad specs never touch a backend), the
// replica candidates' caches are consulted first, and only then is compute
// placed — with failover and backoff if the primary refuses or dies
// mid-request.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading job spec: %v", err)
		return
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	key, err := spec.CacheKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.submitted.Add(1)

	// Peer cache-fill: every replica candidate that can serve reads —
	// draining nodes included — may already hold the result. Serving it
	// from here costs one small GET instead of a simulation.
	readCands := topK(g.nodes, key, g.cfg.Replicas, (*node).cacheEligible)
	for i, n := range readCands {
		body, ok := g.cacheProbe(n, key)
		if !ok {
			continue
		}
		n.cacheServed.Add(1)
		g.cacheFills.Add(1)
		if i > 0 {
			g.peerFills.Add(1)
		}
		writeJSON(w, http.StatusOK, g.retainVirtual(spec, key, body))
		return
	}

	// Compute placement with transparent failover. The candidate list is
	// recomputed every attempt: a breaker trip mid-loop changes eligibility.
	for attempt := 0; ; attempt++ {
		cands := topK(g.nodes, key, g.cfg.Replicas, (*node).computeEligible)
		if len(cands) == 0 {
			g.noBackend.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "no healthy backend for key %s", key)
			return
		}
		n := cands[attempt%len(cands)]
		status, hdr, body, err := g.forward(r.Context(), n, http.MethodPost, "/v1/jobs", raw)
		switch {
		case err == nil && status < http.StatusInternalServerError:
			n.markSuccess()
			n.routed.Add(1)
			if status == http.StatusOK || status == http.StatusAccepted {
				var st service.JobStatus
				if jerr := json.Unmarshal(body, &st); jerr == nil && st.ID != "" {
					st.ID = n.name + ":" + st.ID
					writeJSON(w, status, st)
					return
				}
			}
			// Pass 4xx through untouched (bad spec, queue-full 429 with its
			// Retry-After, over-budget body).
			passThrough(w, status, hdr, body)
			return
		case err == nil && status == http.StatusServiceUnavailable:
			// Alive but refusing: the node started draining since the last
			// probe. Not a breaker event — just reroute.
			n.markDraining()
		default:
			// Transport error, timeout, or 5xx: feed the breaker.
			n.markFailure(g.cfg, time.Now())
		}
		g.failovers.Add(1)
		if attempt+1 >= g.cfg.MaxAttempts {
			writeError(w, http.StatusBadGateway,
				"submission failed after %d attempts (last node %s): %v", attempt+1, n.name, err)
			return
		}
		select {
		case <-time.After(g.backoff(attempt + 1)):
		case <-r.Context().Done():
			return
		}
	}
}

// cacheProbe asks one node's cache-read endpoint for a content address.
func (g *Gateway) cacheProbe(n *node, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	body, ok, err := g.nodeClient(n).CacheGet(ctx, key)
	if err != nil {
		// A cache probe is opportunistic; its failure feeds the breaker but
		// never fails the submission.
		n.markFailure(g.cfg, time.Now())
		return nil, false
	}
	return body, ok
}

// forward proxies one bounded call to a node and returns the response
// wholesale.
func (g *Gateway) forward(ctx context.Context, n *node, method, path string, body []byte) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

func passThrough(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After", "X-Tsoper-Key", "X-Tsoper-Cache"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// route splits a namespaced job ID into its owning node and the node-local
// ID.
func (g *Gateway) route(id string) (*node, string, bool) {
	name, local, ok := strings.Cut(id, ":")
	if !ok {
		return nil, "", false
	}
	for _, n := range g.nodes {
		if n.name == name {
			return n, local, true
		}
	}
	return nil, "", false
}

// routedCall forwards a job-scoped request to its owning node, answering
// 404 for unroutable IDs and 502 for a down owner — the latter tells a
// retrying client the job record is unreachable and resubmission is the
// way forward (safe, because results are deterministic).
func (g *Gateway) routedCall(w http.ResponseWriter, r *http.Request, method, suffix string, rewriteID bool) {
	id := r.PathValue("id")
	n, local, ok := g.route(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if n.snapshotState() == nodeDown {
		writeError(w, http.StatusBadGateway, "node %s holding job %s is down", n.name, id)
		return
	}
	status, hdr, body, err := g.forward(r.Context(), n, method, "/v1/jobs/"+local+suffix, nil)
	if err != nil {
		n.markFailure(g.cfg, time.Now())
		writeError(w, http.StatusBadGateway, "node %s: %v", n.name, err)
		return
	}
	n.markSuccess()
	if rewriteID && status < http.StatusMultipleChoices {
		var st service.JobStatus
		if jerr := json.Unmarshal(body, &st); jerr == nil && st.ID != "" {
			st.ID = n.name + ":" + st.ID
			writeJSON(w, status, st)
			return
		}
	}
	passThrough(w, status, hdr, body)
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if vj := g.virtualLookup(r.PathValue("id")); vj != nil {
		writeJSON(w, http.StatusOK, vj.status)
		return
	}
	g.routedCall(w, r, http.MethodGet, "", true)
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	if vj := g.virtualLookup(r.PathValue("id")); vj != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tsoper-Key", vj.status.Key)
		w.Header().Set("X-Tsoper-Cache", "hit")
		_, _ = w.Write(vj.body)
		return
	}
	g.routedCall(w, r, http.MethodGet, "/result", false)
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	if vj := g.virtualLookup(r.PathValue("id")); vj != nil {
		// Mirrors a node's answer for an already-terminal job.
		writeJSON(w, http.StatusOK, vj.status)
		return
	}
	g.routedCall(w, r, http.MethodDelete, "", true)
}

// handleEvents proxies a job's SSE stream from its owning node,
// re-emitting frames as they arrive and rewriting the terminal state
// event's job ID into gateway namespace. A virtual job's stream is just
// its terminal state.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if vj := g.virtualLookup(id); vj != nil {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		data, _ := json.Marshal(vj.status)
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		return
	}
	n, local, ok := g.route(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if n.snapshotState() == nodeDown {
		writeError(w, http.StatusBadGateway, "node %s holding job %s is down", n.name, id)
		return
	}
	// Streams outlive RequestTimeout by design; the client's context is the
	// only bound.
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.base+"/v1/jobs/"+local+"/events", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", n.name, err)
		return
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		n.markFailure(g.cfg, time.Now())
		writeError(w, http.StatusBadGateway, "node %s: %v", n.name, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		passThrough(w, resp.StatusCode, resp.Header, raw)
		return
	}
	n.markSuccess()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "state":
			// Rewrite the terminal status into gateway ID space so a client
			// can keep using the ID it was handed.
			var st service.JobStatus
			if jerr := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); jerr == nil && st.ID != "" {
				st.ID = n.name + ":" + st.ID
				data, _ := json.Marshal(st)
				line = "data: " + string(data)
			}
		case line == "":
			event = ""
		}
		fmt.Fprintln(w, line)
		if line == "" && canFlush {
			flusher.Flush()
		}
	}
}

// handleCacheGet is the cluster-wide cache read: the first replica
// candidate holding the content address answers.
func (g *Gateway) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	for _, n := range topK(g.nodes, key, g.cfg.Replicas, (*node).cacheEligible) {
		if body, ok := g.cacheProbe(n, key); ok {
			n.cacheServed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Tsoper-Key", key)
			w.Header().Set("X-Tsoper-Cache", "hit")
			w.Header().Set("X-Tsoper-Node", n.name)
			_, _ = w.Write(body)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no cached result for %s", key)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Health())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	includeBackends := r.URL.Query().Get("backends") != "0"
	writeJSON(w, http.StatusOK, g.Metrics(r.Context(), includeBackends))
}
