package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// fakeNode is a scriptable stand-in for one tsoper-serve backend: it speaks
// just enough of the API for routing tests, with switchable health state
// and a poke-able result cache.
type fakeNode struct {
	name    string
	srv     *httptest.Server
	submits atomic.Int32
	// health state served on /healthz ("ok" or "draining"); empty means 500.
	healthState atomic.Value
	// submitStatus, when non-zero, short-circuits POST /v1/jobs with that code.
	submitStatus atomic.Int32
	// cache maps content address -> result bytes for GET /v1/cache/{hash}.
	cache map[string][]byte
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	f := &fakeNode{name: name, cache: map[string][]byte{}}
	f.healthState.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		state, _ := f.healthState.Load().(string)
		if state == "" {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		code := http.StatusOK
		if state == "draining" {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(service.HealthStatus{Node: name, State: state})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.submits.Add(1)
		if code := f.submitStatus.Load(); code != 0 {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "7")
			}
			http.Error(w, fmt.Sprintf(`{"error":"scripted %d"}`, code), int(code))
			return
		}
		var spec service.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		key, _ := spec.CacheKey()
		json.NewEncoder(w).Encode(service.JobStatus{ID: "j-000001", State: "done", Spec: spec, Key: key})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{ID: r.PathValue("id"), State: "done"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"node":%q,"id":%q}`, name, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: progress\ndata: {\"cycle\":5}\n\n")
		data, _ := json.Marshal(service.JobStatus{ID: r.PathValue("id"), State: "done"})
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
	})
	mux.HandleFunc("GET /v1/cache/{hash}", func(w http.ResponseWriter, r *http.Request) {
		if body, ok := f.cache[r.PathValue("hash")]; ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// testGateway builds a gateway over the given fakes with fast, jitter-free
// timing, runs one probe round, and returns it.
func testGateway(t *testing.T, fakes []*fakeNode, mutate func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{
		Replicas:      2,
		ProbeInterval: time.Hour, // tests drive probes by hand
		ProbeTimeout:  2 * time.Second,
		FailThreshold: 3,
		CooldownBase:  50 * time.Millisecond,
		MaxAttempts:   4,
		RetryBase:     time.Millisecond,
		RetryCap:      2 * time.Millisecond,
		Seed:          1,
	}
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, Backend{Name: f.name, URL: f.srv.URL})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.probeAll()
	return g
}

func submitSpec(t *testing.T, g *Gateway, spec service.JobSpec) (*httptest.ResponseRecorder, service.JobStatus) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	var st service.JobStatus
	if rec.Code == http.StatusOK || rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("decoding submit response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, st
}

func spec(seed int64) service.JobSpec {
	return service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: seed}
}

// TestGatewayRoutesByKey: submissions land on the key's rendezvous primary,
// and the returned job ID is namespaced with that node's name.
func TestGatewayRoutesByKey(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)

	byName := map[string]*fakeNode{}
	for _, f := range fakes {
		byName[f.name] = f
	}
	for seed := int64(0); seed < 8; seed++ {
		sp := spec(seed)
		key, err := sp.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		primary := g.Candidates(key)[0]
		before := byName[primary].submits.Load()
		rec, st := submitSpec(t, g, sp)
		if rec.Code != http.StatusOK {
			t.Fatalf("seed %d: HTTP %d: %s", seed, rec.Code, rec.Body.String())
		}
		if byName[primary].submits.Load() != before+1 {
			t.Errorf("seed %d: primary %s did not receive the submission", seed, primary)
		}
		if want := primary + ":j-000001"; st.ID != want {
			t.Errorf("seed %d: job ID = %q, want %q", seed, st.ID, want)
		}
	}
}

// TestGatewayFailover: the primary erroring on submit moves the job to the
// next candidate; the answer still comes back clean and the failover is
// counted.
func TestGatewayFailover(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)

	sp := spec(1)
	key, _ := sp.CacheKey()
	cands := g.Candidates(key)
	byName := map[string]*fakeNode{}
	for _, f := range fakes {
		byName[f.name] = f
	}
	byName[cands[0]].submitStatus.Store(http.StatusInternalServerError)

	rec, st := submitSpec(t, g, sp)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.HasPrefix(st.ID, cands[1]+":") {
		t.Errorf("job ID %q not namespaced to failover target %s", st.ID, cands[1])
	}
	if g.failovers.Load() == 0 {
		t.Error("failover not counted")
	}
}

// TestGatewayBreakerTripsAndSkips: enough failed submissions trip the
// primary's breaker, after which new submissions skip it without touching
// it at all.
func TestGatewayBreakerTripsAndSkips(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)

	sp := spec(1)
	key, _ := sp.CacheKey()
	primary := g.Candidates(key)[0]
	byName := map[string]*fakeNode{}
	for _, f := range fakes {
		byName[f.name] = f
	}
	byName[primary].submitStatus.Store(http.StatusInternalServerError)

	for i := int64(0); i < 6; i++ {
		submitSpec(t, g, sp) // failures accumulate on the primary
	}
	var pn *node
	for _, n := range g.nodes {
		if n.name == primary {
			pn = n
		}
	}
	if pn.snapshotState() != nodeDown {
		t.Fatalf("primary state = %s, want down after repeated failures", pn.snapshotState())
	}
	before := byName[primary].submits.Load()
	rec, _ := submitSpec(t, g, sp)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d after breaker trip: %s", rec.Code, rec.Body.String())
	}
	if byName[primary].submits.Load() != before {
		t.Error("down node still received a submission")
	}
	for _, name := range g.Candidates(key) {
		if name == primary {
			t.Error("down node still listed as compute candidate")
		}
	}
}

// TestGatewayPeerCacheFill: when a replica candidate already holds the
// result, the gateway serves it as a virtual job — no compute lands
// anywhere — and the virtual ID supports status/result/events follow-ups.
func TestGatewayPeerCacheFill(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)

	sp := spec(1)
	key, _ := sp.CacheKey()
	resultBody := []byte(`{"cached":true}`)
	// Plant the result on the SECOND candidate: a fill from there is a peer
	// fill, not just a primary hit.
	cands := g.Candidates(key)
	for _, f := range fakes {
		if f.name == cands[1] {
			f.cache[key] = resultBody
		}
	}

	rec, st := submitSpec(t, g, sp)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !st.CacheHit || st.State != "done" || !strings.HasPrefix(st.ID, "gw:") {
		t.Fatalf("status = %+v, want done gateway cache hit", st)
	}
	for _, f := range fakes {
		if f.submits.Load() != 0 {
			t.Errorf("node %s received compute despite cache fill", f.name)
		}
	}
	if g.cacheFills.Load() != 1 || g.peerFills.Load() != 1 {
		t.Errorf("cacheFills=%d peerFills=%d, want 1/1", g.cacheFills.Load(), g.peerFills.Load())
	}

	// Follow-ups against the virtual ID.
	rec2 := httptest.NewRecorder()
	g.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil))
	if rec2.Code != http.StatusOK || !bytes.Equal(rec2.Body.Bytes(), resultBody) {
		t.Errorf("virtual result = %d %q, want 200 %q", rec2.Code, rec2.Body.String(), resultBody)
	}
	rec3 := httptest.NewRecorder()
	g.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID, nil))
	if rec3.Code != http.StatusOK {
		t.Errorf("virtual status = %d", rec3.Code)
	}
	rec4 := httptest.NewRecorder()
	g.ServeHTTP(rec4, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID+"/events", nil))
	if rec4.Code != http.StatusOK || !strings.Contains(rec4.Body.String(), "event: state") {
		t.Errorf("virtual events = %d %q, want a state frame", rec4.Code, rec4.Body.String())
	}
}

// TestGatewayPassThrough4xx: a backend's definitive answer (429 with
// Retry-After, 400) passes through untouched — the gateway must not turn
// client errors into failovers.
func TestGatewayPassThrough4xx(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1")}
	g := testGateway(t, fakes, nil)

	for _, f := range fakes {
		f.submitStatus.Store(http.StatusTooManyRequests)
	}
	rec, _ := submitSpec(t, g, spec(1))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429 passed through", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "7" {
		t.Errorf("Retry-After = %q, want the backend's own hint", rec.Header().Get("Retry-After"))
	}
	total := fakes[0].submits.Load() + fakes[1].submits.Load()
	if total != 1 {
		t.Errorf("backends saw %d submits, want exactly 1 (no failover on 4xx)", total)
	}
}

// TestGatewayRejectsBadSpecLocally: a malformed spec is answered 400 by the
// gateway itself; no backend sees it.
func TestGatewayRejectsBadSpecLocally(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1")}
	g := testGateway(t, fakes, nil)

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"bench":"radix","bogus_field":1}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", rec.Code)
	}
	if n := fakes[0].submits.Load() + fakes[1].submits.Load(); n != 0 {
		t.Errorf("backends saw %d submits for an invalid spec", n)
	}
}

// TestGatewayNoBackend: with every node down, submission answers 503 with
// Retry-After instead of hanging or 502-ing.
func TestGatewayNoBackend(t *testing.T) {
	f := newFakeNode(t, "n0")
	g := testGateway(t, []*fakeNode{f}, nil)
	g.nodes[0].mu.Lock()
	g.nodes[0].state = nodeDown
	g.nodes[0].cooldownUntil = time.Now().Add(time.Hour)
	g.nodes[0].mu.Unlock()

	rec, _ := submitSpec(t, g, spec(1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if g.noBackend.Load() != 1 {
		t.Errorf("noBackend = %d, want 1", g.noBackend.Load())
	}
}

// TestGatewayRoutedCalls: namespaced IDs route to their owner with the ID
// rewritten back; unknown and unroutable IDs 404; a down owner 502s.
func TestGatewayRoutedCalls(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1")}
	g := testGateway(t, fakes, nil)

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/n1:j-000042", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var st service.JobStatus
	json.Unmarshal(rec.Body.Bytes(), &st)
	if st.ID != "n1:j-000042" {
		t.Errorf("status ID = %q, want rewritten n1:j-000042", st.ID)
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/n1:j-000042/result", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"node":"n1"`) {
		t.Errorf("result = %d %q, want n1's document", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/nope:j-1", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown node: HTTP %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/unprefixed", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unprefixed ID: HTTP %d, want 404", rec.Code)
	}

	for _, n := range g.nodes {
		if n.name == "n1" {
			n.mu.Lock()
			n.state = nodeDown
			n.mu.Unlock()
		}
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/n1:j-000042", nil))
	if rec.Code != http.StatusBadGateway {
		t.Errorf("down owner: HTTP %d, want 502", rec.Code)
	}
}

// TestGatewayEventsProxy: the SSE stream passes through with the terminal
// state event's job ID rewritten into gateway namespace and progress frames
// untouched.
func TestGatewayEventsProxy(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1")}
	g := testGateway(t, fakes, nil)

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/n0:j-000007/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "event: progress") || !strings.Contains(body, `{"cycle":5}`) {
		t.Errorf("progress frame missing or altered: %q", body)
	}
	if !strings.Contains(body, `"id":"n0:j-000007"`) {
		t.Errorf("state event ID not rewritten: %q", body)
	}
}

// TestGatewayDrainingExcludedFromCompute: a draining node takes no new
// compute but still answers cache reads — drain must be invisible to
// clients.
func TestGatewayDrainingExcludedFromCompute(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)

	sp := spec(1)
	key, _ := sp.CacheKey()
	primary := g.Candidates(key)[0]
	var drained *fakeNode
	for _, f := range fakes {
		if f.name == primary {
			drained = f
		}
	}
	drained.healthState.Store("draining")
	drained.cache[key] = []byte(`{"from":"draining node"}`)
	g.probeAll()

	// Its cached result is still reachable cluster-wide...
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cache/"+key, nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tsoper-Node") != primary {
		t.Errorf("cache read = %d via %q, want 200 via %s", rec.Code, rec.Header().Get("X-Tsoper-Node"), primary)
	}
	// ...and in fact a submission for that key is served from its cache.
	recSub, st := submitSpec(t, g, sp)
	if recSub.Code != http.StatusOK || !st.CacheHit {
		t.Fatalf("submission during drain = %d %+v, want cache fill", recSub.Code, st)
	}
	if drained.submits.Load() != 0 {
		t.Error("draining node received compute")
	}
	// A different key (not cached anywhere) must route around the drained
	// node entirely.
	sp2 := spec(2)
	rec2, st2 := submitSpec(t, g, sp2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec2.Code, rec2.Body.String())
	}
	if strings.HasPrefix(st2.ID, primary+":") {
		t.Errorf("job %q landed on draining node %s", st2.ID, primary)
	}
	if drained.submits.Load() != 0 {
		t.Error("draining node received compute for rerouted key")
	}
}

// TestGatewayHealthAndMetrics: the documents reflect node states and
// routing counters.
func TestGatewayHealthAndMetrics(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1"), newFakeNode(t, "n2")}
	g := testGateway(t, fakes, nil)
	fakes[1].healthState.Store("draining")
	g.probeAll()

	h := g.Health()
	if h.Up != 2 || h.Draining != 1 || h.Down != 0 {
		t.Errorf("health = %+v, want up 2 / draining 1 / down 0", h)
	}

	submitSpec(t, g, spec(1))
	m := g.Metrics(context.Background(), false)
	if m.Submitted != 1 {
		t.Errorf("submitted = %d, want 1", m.Submitted)
	}
	if len(m.Nodes) != 3 {
		t.Fatalf("metrics rows = %d, want 3", len(m.Nodes))
	}
	var routed uint64
	for _, ns := range m.Nodes {
		routed += ns.Routed
	}
	if routed != 1 {
		t.Errorf("total routed = %d, want 1", routed)
	}
}

// TestVirtualRingBounded: the gateway retains at most Retained virtual
// jobs; the oldest fall off and 404 afterwards.
func TestVirtualRingBounded(t *testing.T) {
	f := newFakeNode(t, "n0")
	g := testGateway(t, []*fakeNode{f}, func(c *Config) { c.Retained = 2 })

	ids := make([]string, 3)
	for i := range ids {
		st := g.retainVirtual(spec(int64(i)), fmt.Sprintf("key-%d", i), []byte("{}"))
		ids[i] = st.ID
	}
	if g.virtualLookup(ids[0]) != nil {
		t.Error("oldest virtual job should have been evicted")
	}
	if g.virtualLookup(ids[1]) == nil || g.virtualLookup(ids[2]) == nil {
		t.Error("recent virtual jobs must be retained")
	}
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+ids[0], nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("evicted virtual job: HTTP %d, want 404", rec.Code)
	}
}

// TestGatewaySubmitExhaustsAttempts: every candidate failing persistently
// ends in a 502 after MaxAttempts, not an infinite loop.
func TestGatewaySubmitExhaustsAttempts(t *testing.T) {
	fakes := []*fakeNode{newFakeNode(t, "n0"), newFakeNode(t, "n1")}
	// High threshold so the breaker never converts failures into "no
	// backend" — this test wants the attempts-exhausted path.
	g := testGateway(t, fakes, func(c *Config) { c.FailThreshold = 100 })
	for _, f := range fakes {
		f.submitStatus.Store(http.StatusInternalServerError)
	}
	rec, _ := submitSpec(t, g, spec(1))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("HTTP %d, want 502 after exhausting attempts", rec.Code)
	}
	total := fakes[0].submits.Load() + fakes[1].submits.Load()
	if total != int32(g.cfg.MaxAttempts) {
		t.Errorf("backends saw %d submits, want MaxAttempts = %d", total, g.cfg.MaxAttempts)
	}
}

