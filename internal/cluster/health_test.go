package cluster

import (
	"testing"
	"time"
)

func breakerCfg() Config {
	return Config{
		FailThreshold: 3,
		CooldownBase:  100 * time.Millisecond,
		CooldownMax:   time.Second,
	}
}

// TestBreakerThreshold: failures below the threshold keep the node up; the
// threshold-th consecutive failure trips it down with a cooldown.
func TestBreakerThreshold(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)
	now := time.Now()

	n.markFailure(cfg, now)
	n.markFailure(cfg, now)
	if got := n.snapshotState(); got != nodeUp {
		t.Fatalf("state after 2 failures = %s, want up", got)
	}
	n.markFailure(cfg, now)
	if got := n.snapshotState(); got != nodeDown {
		t.Fatalf("state after 3 failures = %s, want down", got)
	}
	if rem := n.cooldownRemaining(now); rem <= 0 || rem > cfg.CooldownBase {
		t.Errorf("cooldown remaining = %s, want in (0, %s]", rem, cfg.CooldownBase)
	}
	if n.failures.Load() != 3 {
		t.Errorf("failure counter = %d, want 3", n.failures.Load())
	}
}

// TestBreakerStreakReset: a success between failures resets the streak, so
// intermittent single failures never trip the breaker.
func TestBreakerStreakReset(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)
	now := time.Now()
	for i := 0; i < 10; i++ {
		n.markFailure(cfg, now)
		n.markFailure(cfg, now)
		n.markSuccess()
	}
	if got := n.snapshotState(); got != nodeUp {
		t.Fatalf("state = %s, want up (streak should reset on success)", got)
	}
}

// TestCooldownLadder: each breaker trip doubles the cooldown (capped), and
// re-admission halves the ladder instead of resetting it — a flapping node
// earns progressively longer exile.
func TestCooldownLadder(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)
	now := time.Now()

	trip := func() time.Duration {
		for i := 0; i < cfg.FailThreshold; i++ {
			n.markFailure(cfg, now)
		}
		return n.cooldownRemaining(now)
	}

	first := trip()
	if first != cfg.CooldownBase {
		t.Fatalf("first cooldown = %s, want %s", first, cfg.CooldownBase)
	}
	n.markUp() // one episode, halved to zero: full recovery
	second := trip()
	if second != cfg.CooldownBase {
		t.Fatalf("cooldown after full recovery = %s, want base %s", second, cfg.CooldownBase)
	}
	// Flap: trip, recover, trip, recover... without halving catching up.
	n.markUp()
	trip()
	n.mu.Lock()
	n.state = nodeUp // re-admit WITHOUT markUp's halving, simulating back-to-back trips
	n.mu.Unlock()
	third := trip()
	if third <= second {
		t.Fatalf("cooldown after repeated trips = %s, want > %s (ladder must grow)", third, second)
	}

	// The ladder never exceeds the cap.
	for i := 0; i < 10; i++ {
		n.mu.Lock()
		n.state = nodeUp
		n.mu.Unlock()
		if d := trip(); d > cfg.CooldownMax {
			t.Fatalf("cooldown %s exceeds cap %s", d, cfg.CooldownMax)
		}
	}
}

// TestMarkUpHalvesEpisodes: recovery halves the ladder, so a once-unlucky
// node gets back to short cooldowns after a couple of clean probes.
func TestMarkUpHalvesEpisodes(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)
	n.mu.Lock()
	n.downEpisodes = 8
	n.mu.Unlock()
	n.markUp()
	n.mu.Lock()
	got := n.downEpisodes
	n.mu.Unlock()
	if got != 4 {
		t.Fatalf("episodes after markUp = %d, want 4 (halved, not reset)", got)
	}
	if n.snapshotState() != nodeUp {
		t.Fatal("markUp must re-admit the node")
	}
}

// TestDrainingTransitions: draining is an alive state — it resets the
// failure streak, never resurrects a down node, and excludes the node from
// compute but not cache eligibility.
func TestDrainingTransitions(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)

	n.markFailure(cfg, time.Now())
	n.markFailure(cfg, time.Now())
	n.markDraining()
	if got := n.snapshotState(); got != nodeDraining {
		t.Fatalf("state = %s, want draining", got)
	}
	if n.computeEligible() {
		t.Error("draining node must not take compute")
	}
	if !n.cacheEligible() {
		t.Error("draining node must still serve cache reads")
	}
	// The 503 answer proved the node alive, so the streak restarts: it takes
	// a full threshold of fresh failures to go down.
	n.markFailure(cfg, time.Now())
	n.markFailure(cfg, time.Now())
	if n.snapshotState() != nodeDraining {
		t.Fatal("two failures after draining must not trip the breaker")
	}
	n.markFailure(cfg, time.Now())
	if n.snapshotState() != nodeDown {
		t.Fatal("threshold failures after draining must trip the breaker")
	}
	if n.cacheEligible() {
		t.Error("down node must not serve cache reads")
	}
	// markDraining on a down node is a no-op: only a successful probe
	// re-admits.
	n.markDraining()
	if n.snapshotState() != nodeDown {
		t.Fatal("markDraining must not resurrect a down node")
	}
}

// TestProbeDue: up and draining nodes are always due; a down node is due
// only once its cooldown expires.
func TestProbeDue(t *testing.T) {
	cfg := breakerCfg()
	n := newNode(Backend{Name: "n0", URL: "http://n0"}, cfg)
	now := time.Now()
	if !n.probeDue(now) {
		t.Fatal("up node must always be probe-due")
	}
	for i := 0; i < cfg.FailThreshold; i++ {
		n.markFailure(cfg, now)
	}
	if n.probeDue(now) {
		t.Fatal("freshly down node must cool off before re-probe")
	}
	if !n.probeDue(now.Add(cfg.CooldownBase + time.Millisecond)) {
		t.Fatal("down node must be probe-due after its cooldown")
	}
}
