package cluster

import (
	"context"
	"time"

	"repro/internal/service"
)

// NodeStatus is one backend's row in the cluster Metrics document.
type NodeStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	// ConsecutiveFails is the breaker's current streak;
	// CooldownRemainingMS is the exile left before a down node is re-probed.
	ConsecutiveFails    int     `json:"consecutive_fails,omitempty"`
	CooldownRemainingMS float64 `json:"cooldown_remaining_ms,omitempty"`
	// Routed counts compute submissions placed here; CacheServed counts
	// gateway cache reads this node answered; Failures counts probe and
	// request failures observed.
	Routed      uint64 `json:"routed"`
	CacheServed uint64 `json:"cache_served"`
	Failures    uint64 `json:"failures"`
	// Backend is the node's own /metrics snapshot, fetched live; nil when
	// the node is unreachable or backend detail was not requested.
	Backend *service.MetricsSnapshot `json:"backend,omitempty"`
}

// Health is the gateway's /healthz document.
type Health struct {
	Node     string `json:"node"`
	State    string `json:"state"`
	Up       int    `json:"up"`
	Draining int    `json:"draining"`
	Down     int    `json:"down"`
}

// Metrics is the gateway's /metrics document: cluster-level routing
// counters plus one row per backend. tsoper-load's -cluster mode decodes
// this to report per-node throughput and failover counts.
type Metrics struct {
	Submitted uint64 `json:"submitted"`
	// CacheFills counts submissions answered from some node's cache without
	// placing compute; PeerFills is the subset where the serving node was
	// not the routing primary — result bytes that crossed shards.
	CacheFills uint64 `json:"cache_fills"`
	PeerFills  uint64 `json:"peer_fills"`
	// Failovers counts submission attempts that had to move to another
	// candidate (node error, timeout, or drain refusal).
	Failovers uint64 `json:"failovers"`
	// NoBackend counts submissions rejected because no healthy compute
	// candidate existed.
	NoBackend uint64 `json:"no_backend"`
	// Retained is the current count of gateway-served virtual jobs.
	Retained int          `json:"retained"`
	Nodes    []NodeStatus `json:"nodes"`
}

// Health summarizes backend states for the gateway's own health endpoint.
func (g *Gateway) Health() Health {
	h := Health{Node: "gateway", State: "ok"}
	for _, n := range g.nodes {
		switch n.snapshotState() {
		case nodeUp:
			h.Up++
		case nodeDraining:
			h.Draining++
		default:
			h.Down++
		}
	}
	return h
}

// Metrics snapshots the gateway counters and per-node stats. With
// includeBackends, each live node's own metrics document is fetched and
// embedded (bounded by ProbeTimeout per node).
func (g *Gateway) Metrics(ctx context.Context, includeBackends bool) Metrics {
	g.vmu.Lock()
	retained := len(g.vorder)
	g.vmu.Unlock()
	m := Metrics{
		Submitted:  g.submitted.Load(),
		CacheFills: g.cacheFills.Load(),
		PeerFills:  g.peerFills.Load(),
		Failovers:  g.failovers.Load(),
		NoBackend:  g.noBackend.Load(),
		Retained:   retained,
	}
	now := time.Now()
	for _, n := range g.nodes {
		n.mu.Lock()
		consec := n.consecFails
		n.mu.Unlock()
		ns := NodeStatus{
			Name:                n.name,
			URL:                 n.base,
			State:               n.snapshotState().String(),
			ConsecutiveFails:    consec,
			CooldownRemainingMS: float64(n.cooldownRemaining(now)) / float64(time.Millisecond),
			Routed:              n.routed.Load(),
			CacheServed:         n.cacheServed.Load(),
			Failures:            n.failures.Load(),
		}
		if includeBackends && n.snapshotState() != nodeDown {
			cctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			if snap, err := g.nodeClient(n).Metrics(cctx); err == nil {
				ns.Backend = &snap
			}
			cancel()
		}
		m.Nodes = append(m.Nodes, ns)
	}
	return m
}
