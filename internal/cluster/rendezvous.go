package cluster

import (
	"hash/fnv"
	"io"
	"sort"
)

// Rendezvous (highest-random-weight) hashing: every node scores every key
// independently, and a key's replica candidates are the top-K scorers
// among eligible nodes. Unlike a token ring there is nothing to rebalance:
// when a node leaves, exactly the keys it scored highest fall to their
// next-best candidate, and every other key's routing is untouched — which
// is what makes health-driven eligibility changes cheap.

// score is FNV-1a over (node name, NUL, key). Deterministic across
// processes, so gateway restarts and multiple gateway replicas route
// identically.
func score(name, key string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, key)
	return h.Sum64()
}

// topK returns up to k eligible nodes ordered by descending score for key,
// ties broken by name so the order is total and deterministic.
func topK(nodes []*node, key string, k int, eligible func(*node) bool) []*node {
	cands := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if eligible(n) {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := score(cands[i].name, key), score(cands[j].name, key)
		if si != sj {
			return si > sj
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
