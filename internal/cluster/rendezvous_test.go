package cluster

import (
	"fmt"
	"testing"
)

func roster(names ...string) []*node {
	out := make([]*node, len(names))
	for i, n := range names {
		out[i] = &node{name: n, base: "http://" + n}
	}
	return out
}

func all(*node) bool { return true }

// TestTopKDeterministic: same inputs, same candidate order — routing must
// be identical across gateway restarts and replicas.
func TestTopKDeterministic(t *testing.T) {
	nodes := roster("n0", "n1", "n2", "n3", "n4")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("sha256:%04d", i)
		a, b := topK(nodes, key, 3, all), topK(nodes, key, 3, all)
		if len(a) != 3 || len(b) != 3 {
			t.Fatalf("key %s: got %d/%d candidates, want 3", key, len(a), len(b))
		}
		for j := range a {
			if a[j].name != b[j].name {
				t.Fatalf("key %s: candidate %d differs: %s vs %s", key, j, a[j].name, b[j].name)
			}
		}
	}
}

// TestTopKBalance: with many keys, every node is primary for a roughly
// fair share — no node starves and none dominates.
func TestTopKBalance(t *testing.T) {
	nodes := roster("n0", "n1", "n2", "n3", "n4")
	const keys = 5000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		primary := topK(nodes, fmt.Sprintf("sha256:%06d", i), 1, all)[0]
		counts[primary.name]++
	}
	want := keys / len(nodes)
	for name, got := range counts {
		// ±40% of the fair share is generous for 5000 draws; real FNV-1a
		// lands much closer.
		if got < want*6/10 || got > want*14/10 {
			t.Errorf("node %s is primary for %d keys, want within [%d, %d]", name, got, want*6/10, want*14/10)
		}
	}
}

// TestTopKRemovalStability is the property that makes rendezvous routing
// cheap under churn: dropping one node remaps only the keys it owned; every
// other key keeps its primary.
func TestTopKRemovalStability(t *testing.T) {
	full := roster("n0", "n1", "n2", "n3", "n4")
	without := full[:4] // drop n4
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sha256:%06d", i)
		before := topK(full, key, 1, all)[0].name
		after := topK(without, key, 1, all)[0].name
		if before == "n4" {
			moved++
			continue // its keys must move somewhere
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though its primary survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("n4 was primary for zero keys — balance test should have caught this")
	}
}

// TestTopKEligibility: ineligible nodes never appear, and the next-best
// candidate takes over.
func TestTopKEligibility(t *testing.T) {
	nodes := roster("n0", "n1", "n2")
	key := "sha256:abc"
	fullOrder := topK(nodes, key, 3, all)
	excluded := fullOrder[0].name
	got := topK(nodes, key, 3, func(n *node) bool { return n.name != excluded })
	if len(got) != 2 {
		t.Fatalf("got %d candidates, want 2", len(got))
	}
	for _, n := range got {
		if n.name == excluded {
			t.Fatalf("ineligible node %s returned", excluded)
		}
	}
	if got[0].name != fullOrder[1].name {
		t.Errorf("new primary = %s, want previous runner-up %s", got[0].name, fullOrder[1].name)
	}
}

// TestTopKFewerThanK: asking for more candidates than exist returns them
// all, still ordered.
func TestTopKFewerThanK(t *testing.T) {
	nodes := roster("n0", "n1")
	got := topK(nodes, "sha256:xyz", 5, all)
	if len(got) != 2 {
		t.Fatalf("got %d candidates, want 2", len(got))
	}
	if got[0].name == got[1].name {
		t.Fatal("duplicate candidate")
	}
	if topK(nil, "sha256:xyz", 5, all) != nil && len(topK(nil, "sha256:xyz", 5, all)) != 0 {
		t.Fatal("empty roster must yield no candidates")
	}
}
