package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// chaosNode hosts a REAL service.Server behind a stable URL and lets the
// test kill and restart the "process" mid-flight. A killed node aborts
// every connection without writing a response (http.ErrAbortHandler — the
// client sees a torn connection, exactly what a SIGKILL'd process
// produces); a restart swaps in a fresh service.Server with an empty queue,
// an empty cache, and no memory of accepted jobs — which is precisely the
// failure the cluster must absorb without losing a single accepted job.
type chaosNode struct {
	name   string
	srv    *httptest.Server
	killed atomic.Bool

	mu  sync.Mutex
	svc *service.Server
	cfg service.Config
}

func startChaosNode(t *testing.T, name string, cacheEntries int) *chaosNode {
	t.Helper()
	n := &chaosNode{
		name: name,
		cfg: service.Config{
			NodeID:       name,
			Workers:      2,
			QueueDepth:   64,
			CacheEntries: cacheEntries,
		},
	}
	n.svc = service.New(n.cfg)
	n.svc.Start()
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.killed.Load() {
			panic(http.ErrAbortHandler)
		}
		n.current().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		n.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = n.current().Drain(ctx)
	})
	return n
}

func (n *chaosNode) current() *service.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.svc
}

// kill makes the node unreachable. The old server's in-flight work keeps
// burning CPU (an in-process test cannot truly SIGKILL it) but none of its
// state is observable anymore — the restart discards it.
func (n *chaosNode) kill() { n.killed.Store(true) }

// restart brings the node back as a blank process: fresh queue, empty
// cache, job counter reset. The replaced server is drained in the
// background purely to avoid leaking its workers past the test.
func (n *chaosNode) restart() {
	fresh := service.New(n.cfg)
	fresh.Start()
	n.mu.Lock()
	old := n.svc
	n.svc = fresh
	n.mu.Unlock()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = old.Drain(ctx)
	}()
	n.killed.Store(false)
}

// chaosGatewayCfg is tuned for fast convergence: quick probes, a
// two-failure breaker, short cooldowns, small failover backoff.
func chaosGatewayCfg(nodes []*chaosNode) Config {
	cfg := Config{
		Replicas:       2,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		FailThreshold:  2,
		CooldownBase:   50 * time.Millisecond,
		CooldownMax:    500 * time.Millisecond,
		MaxAttempts:    4,
		RetryBase:      5 * time.Millisecond,
		RetryCap:       50 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
		Seed:           1,
	}
	for _, n := range nodes {
		cfg.Backends = append(cfg.Backends, Backend{Name: n.name, URL: n.srv.URL})
	}
	return cfg
}

// chaosClientRetry rides through a full kill-detect-reroute cycle: enough
// attempts that a job accepted by the dying node gets resubmitted once the
// gateway has routed around it.
var chaosClientRetry = client.RetryPolicy{
	MaxAttempts: 12,
	Base:        20 * time.Millisecond,
	Cap:         250 * time.Millisecond,
	Jitter:      0.25,
	Seed:        7,
}

// oracleResults computes every spec's expected bytes on a plain single
// node, outside the cluster — the byte-identity ground truth.
func oracleResults(t *testing.T, ctx context.Context, specs []service.JobSpec) map[string][]byte {
	t.Helper()
	direct := service.New(service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 64})
	direct.Start()
	srv := httptest.NewServer(direct)
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, nil)
	out := make(map[string][]byte, len(specs))
	for _, sp := range specs {
		body, st, err := c.Run(ctx, sp)
		if err != nil {
			t.Fatalf("oracle run %+v: %v", sp, err)
		}
		out[st.Key] = body
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = direct.Drain(dctx)
	return out
}

// TestChaosKillRestart is the tentpole acceptance: a 3-node cluster under
// concurrent load, with one node SIGKILL'd mid-flight and later restarted
// blank, must complete EVERY accepted job with bytes identical to a direct
// single-node run — zero lost jobs, zero wrong answers.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign runs real simulations")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	const jobs = 36
	specs := make([]service.JobSpec, jobs)
	for i := range specs {
		specs[i] = service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: int64(3000 + i)}
	}
	expected := oracleResults(t, ctx, specs)

	nodes := []*chaosNode{
		startChaosNode(t, "n0", 64),
		startChaosNode(t, "n1", 64),
		startChaosNode(t, "n2", 64),
	}
	g, err := New(chaosGatewayCfg(nodes))
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	gwSrv := httptest.NewServer(g)
	defer gwSrv.Close()

	// The victim must actually own some of the mid-kill batch, or the kill
	// proves nothing. Routing is fully deterministic (FNV over fixed names
	// and content addresses), so this either always holds or the seeds need
	// rebalancing — never a flake.
	victim := g.nodes[0]
	victimKeys := 0
	for _, sp := range specs[12:24] {
		key, err := sp.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if g.Candidates(key)[0] == victim.name {
			victimKeys++
		}
	}
	if victimKeys == 0 {
		t.Fatalf("no batch-2 key routes to %s; rebalance the seed range", victim.name)
	}

	const clients = 4
	work := make(chan service.JobSpec)
	var wg sync.WaitGroup
	var failed atomic.Int32
	var maxLatency atomic.Int64
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct seeds give each client its own deterministic retry
			// schedule — reruns of this test replay identical timing.
			p := chaosClientRetry
			p.Seed = uint64(100 + w)
			c := client.New(gwSrv.URL, nil).WithRetry(p)
			for sp := range work {
				start := time.Now()
				body, st, err := c.Run(ctx, sp)
				lat := time.Since(start)
				for {
					prev := maxLatency.Load()
					if int64(lat) <= prev || maxLatency.CompareAndSwap(prev, int64(lat)) {
						break
					}
				}
				if err != nil {
					t.Errorf("job seed %d lost: %v", sp.Seed, err)
					failed.Add(1)
					continue
				}
				want, ok := expected[st.Key]
				if !ok {
					t.Errorf("job seed %d returned unexpected key %s", sp.Seed, st.Key)
					failed.Add(1)
					continue
				}
				if !bytes.Equal(body, want) {
					t.Errorf("job seed %d: result NOT byte-identical to direct run (%d vs %d bytes)",
						sp.Seed, len(body), len(want))
					failed.Add(1)
				}
			}
		}(w)
	}
	dispatch := func(batch []service.JobSpec) {
		for _, sp := range batch {
			select {
			case work <- sp:
			case <-ctx.Done():
				t.Fatal("context expired while dispatching jobs")
			}
		}
	}

	// Phase 1: steady state — jobs flowing on all three nodes.
	dispatch(specs[:12])
	// Phase 2: kill the victim while phase-1 jobs are still in flight, keep
	// load coming (several of these jobs route to the corpse), and require
	// the gateway to observe the death.
	nodes[0].kill()
	dispatch(specs[12:24])
	waitFor(t, 10*time.Second, func() bool { return victim.snapshotState() == nodeDown })
	// Phase 3: the victim returns as a blank process — empty cache, no job
	// records — and must be re-admitted by probe and take load again.
	nodes[0].restart()
	waitFor(t, 10*time.Second, func() bool { return victim.snapshotState() == nodeUp })
	dispatch(specs[24:])
	close(work)
	wg.Wait()

	if victim.failures.Load() == 0 {
		t.Error("victim recorded no failures — the kill was never observed")
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d jobs lost or wrong under chaos", n, jobs)
	}
	// Bounded tail latency: even the worst job — accepted by the dying node,
	// rerouted, recomputed — finishes well inside the campaign deadline.
	if worst := time.Duration(maxLatency.Load()); worst > time.Minute {
		t.Errorf("worst-case job latency %s exceeds the 1m chaos bound", worst)
	}
	m := g.Metrics(context.Background(), false)
	t.Logf("chaos campaign: %d submitted, %d failovers, %d cache fills (%d peer), worst latency %s",
		m.Submitted, m.Failovers, m.CacheFills, m.PeerFills, time.Duration(maxLatency.Load()))
}

// TestChaosDrainReroute: draining a node must be invisible — its cached
// results stay reachable through peer cache-fill, new compute routes to the
// remaining nodes, and no client-visible request fails.
func TestChaosDrainReroute(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	nodes := []*chaosNode{
		startChaosNode(t, "n0", 64),
		startChaosNode(t, "n1", 64),
		startChaosNode(t, "n2", 64),
	}
	g, err := New(chaosGatewayCfg(nodes))
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	gwSrv := httptest.NewServer(g)
	defer gwSrv.Close()
	c := client.New(gwSrv.URL, nil).WithRetry(chaosClientRetry)

	sp := service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: 4000}
	key, _ := sp.CacheKey()
	firstBody, st, err := c.Run(ctx, sp)
	if err != nil {
		t.Fatalf("priming run: %v", err)
	}
	owner, _, ok := g.route(st.ID)
	if !ok {
		t.Fatalf("primed job ID %q is not node-namespaced", st.ID)
	}

	// Drain the node that computed (and cached) the primed result.
	for _, n := range nodes {
		if n.name == owner.name {
			n.current().StartDrain()
		}
	}
	waitFor(t, 2*time.Second, func() bool { return owner.snapshotState() == nodeDraining })

	// Resubmitting the primed spec is served from the draining node's cache
	// — one plain 200, no failover, no 5xx.
	rec, st2 := submitSpec(t, g, sp)
	if rec.Code != http.StatusOK {
		t.Fatalf("resubmit during drain: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !st2.CacheHit {
		t.Fatalf("resubmit during drain not served from cache: %+v", st2)
	}
	rec2 := httptest.NewRecorder()
	g.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st2.ID+"/result", nil))
	if rec2.Code != http.StatusOK || !bytes.Equal(rec2.Body.Bytes(), firstBody) {
		t.Fatalf("drained-cache result differs from original (%d vs %d bytes)",
			rec2.Body.Len(), len(firstBody))
	}
	if owner.cacheServed.Load() == 0 {
		t.Error("draining node served no cache reads")
	}
	if g.cacheFills.Load() == 0 {
		t.Errorf("no gateway cache fill recorded for key %s", key)
	}

	// Fresh jobs route cleanly around the drained node.
	for seed := int64(4001); seed < 4007; seed++ {
		body, st3, err := c.Run(ctx, service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d during drain: %v", seed, err)
		}
		if len(body) == 0 {
			t.Fatalf("seed %d: empty result", seed)
		}
		if n, _, ok := g.route(st3.ID); ok && n.name == owner.name {
			t.Errorf("seed %d landed on draining node %s", seed, owner.name)
		}
	}
}

// TestClusterCacheBeatsSingleNode: the cluster's aggregate cache holds a
// working set that thrashes any single node. 12 distinct specs against
// 4-entry caches: a lone node's LRU evicts every entry before its reuse
// (zero hits, guaranteed by sequential order), while 3 nodes × 4 entries
// fit the set — at least one node owns ≤ 4 keys (pigeonhole), so the
// second pass must produce gateway cache fills.
func TestClusterCacheBeatsSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	const distinct = 12
	specs := make([]service.JobSpec, distinct)
	for i := range specs {
		specs[i] = service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: int64(5000 + i)}
	}

	// Single node, 4-entry cache, two sequential passes: LRU thrash.
	single := service.New(service.Config{Workers: 2, QueueDepth: 64, CacheEntries: 4})
	single.Start()
	singleSrv := httptest.NewServer(single)
	t.Cleanup(singleSrv.Close)
	sc := client.New(singleSrv.URL, nil)
	for pass := 0; pass < 2; pass++ {
		for _, sp := range specs {
			if _, _, err := sc.Run(ctx, sp); err != nil {
				t.Fatalf("single-node pass %d %+v: %v", pass, sp, err)
			}
		}
	}
	singleHits := single.Metrics().Cache.Hits
	if singleHits != 0 {
		t.Fatalf("single node scored %d hits — the working set no longer thrashes a 4-entry LRU and this test needs rebalancing", singleHits)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	_ = single.Drain(dctx)

	// Same workload through a 3-node cluster with the same per-node cache.
	nodes := []*chaosNode{
		startChaosNode(t, "n0", 4),
		startChaosNode(t, "n1", 4),
		startChaosNode(t, "n2", 4),
	}
	g, err := New(chaosGatewayCfg(nodes))
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	gwSrv := httptest.NewServer(g)
	defer gwSrv.Close()
	gc := client.New(gwSrv.URL, nil).WithRetry(chaosClientRetry)

	firstPass := make(map[string][]byte, distinct)
	for pass := 0; pass < 2; pass++ {
		for _, sp := range specs {
			body, st, err := gc.Run(ctx, sp)
			if err != nil {
				t.Fatalf("cluster pass %d %+v: %v", pass, sp, err)
			}
			if prev, ok := firstPass[st.Key]; ok {
				if !bytes.Equal(prev, body) {
					t.Fatalf("key %s: pass-2 bytes differ from pass-1", st.Key)
				}
			} else {
				firstPass[st.Key] = body
			}
		}
	}
	m := g.Metrics(context.Background(), false)
	if m.CacheFills == 0 {
		t.Fatalf("cluster scored 0 cache fills on the repeated pass; single node scored %d — sharding bought nothing", singleHits)
	}
	clusterRate := float64(m.CacheFills) / float64(m.Submitted)
	singleRate := float64(singleHits) / float64(2*distinct)
	if clusterRate <= singleRate {
		t.Fatalf("cluster hit rate %.3f not above single-node %.3f", clusterRate, singleRate)
	}
	t.Logf("cache: single node %d hits (rate %.3f) vs cluster %d fills (rate %.3f) on %d submissions",
		singleHits, singleRate, m.CacheFills, clusterRate, m.Submitted)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

