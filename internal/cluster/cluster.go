// Package cluster turns N independent tsoper-serve nodes into one sharded
// simulation service behind a stateless HTTP gateway. The design leans
// entirely on the substrate's determinism: every job is content-addressed
// (service.JobSpec.CacheKey), and any node recomputes any job
// byte-identically, so replication, failover, and resubmission are safe by
// construction — the worst a failure can cost is wasted work, never a
// wrong answer.
//
// Routing is rendezvous (highest-random-weight) hashing of the job's
// content address over the healthy node set, with K replica candidates per
// key. The gateway layers four robustness mechanisms on top:
//
//   - health checking: periodic /healthz probes with consecutive-failure
//     thresholds and exponential cooldown before a down node is re-admitted;
//   - circuit breaking: request failures feed the same per-node breaker as
//     probe failures, so a dying node is routed around before the next
//     probe cycle notices;
//   - transparent failover: a failed submission is retried on the next
//     replica candidate with capped, deterministically jittered backoff;
//   - peer cache-fill: before any compute is scheduled, the replica
//     candidates (draining nodes included — they still serve reads) are
//     asked for a cached result via GET /v1/cache/{hash}.
//
// The gateway holds no job state of its own beyond a bounded ring of
// cache-served ("virtual") results; killing and restarting it loses
// nothing but in-flight TCP connections.
package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// Backend names one tsoper-serve node.
type Backend struct {
	// Name is the node's routing identity: it seeds the rendezvous hash and
	// prefixes job IDs ("n1:j-000042"), so it must be stable across node
	// restarts and must not contain ':'.
	Name string
	// URL is the node's base URL, e.g. "http://127.0.0.1:7501".
	URL string
}

// Config shapes the gateway.
type Config struct {
	// Backends is the node roster. At least one is required.
	Backends []Backend
	// Replicas is K, the rendezvous candidates per key: the primary computes,
	// the others are failover targets and cache-fill peers (default 2).
	Replicas int

	// ProbeInterval spaces the health-check rounds (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe or cache-fill lookup (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe/request failures that trip a
	// node's breaker (default 3).
	FailThreshold int
	// CooldownBase is the first re-admission cooldown after a breaker trip;
	// each further trip doubles it up to CooldownMax (defaults 500ms / 15s).
	CooldownBase time.Duration
	CooldownMax  time.Duration

	// MaxAttempts bounds one submission's failover tries across candidates
	// (default 4).
	MaxAttempts int
	// RetryBase / RetryCap shape the jittered backoff between failover
	// attempts (defaults 50ms / 1s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter (default 0.25).
	Jitter float64
	// Seed makes the jitter stream deterministic (default 1).
	Seed uint64

	// RequestTimeout bounds one proxied backend call, SSE streams excepted
	// (default 30s).
	RequestTimeout time.Duration
	// Retained bounds the ring of gateway-served cache results kept for
	// follow-up status/result reads (default 1024).
	Retained int

	// HTTPClient overrides the transport (tests); default http.DefaultClient.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.CooldownBase <= 0 {
		c.CooldownBase = 500 * time.Millisecond
	}
	if c.CooldownMax <= 0 {
		c.CooldownMax = 15 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		c.Jitter = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Retained <= 0 {
		c.Retained = 1024
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// Gateway is the cluster front door: an http.Handler exposing the same
// API surface as one tsoper-serve node. Construct with New, launch the
// health prober with Start, stop it with Stop.
type Gateway struct {
	cfg   Config
	nodes []*node
	mux   *http.ServeMux
	hc    *http.Client

	rngMu sync.Mutex
	rng   uint64

	submitted  atomic.Uint64 // job submissions seen
	cacheFills atomic.Uint64 // submissions answered from some node's cache
	peerFills  atomic.Uint64 // … where the serving node was not the primary
	failovers  atomic.Uint64 // submission attempts that moved to another node
	noBackend  atomic.Uint64 // submissions with no healthy compute candidate

	vmu     sync.Mutex
	virtual map[string]*virtualJob
	vorder  []string
	vseq    uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// virtualJob is a cache-served submission the gateway answered itself; it
// is retained so the usual status/result/events follow-ups work.
type virtualJob struct {
	status service.JobStatus
	body   []byte
}

// New validates the roster and builds a gateway. No goroutines run until
// Start.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	g := &Gateway{
		cfg:     cfg,
		hc:      cfg.HTTPClient,
		rng:     cfg.Seed,
		virtual: make(map[string]*virtualJob),
		stop:    make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		if err := validateBackend(b); err != nil {
			return nil, err
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		g.nodes = append(g.nodes, newNode(b, cfg))
	}
	g.mux = g.newMux()
	return g, nil
}

func validateBackend(b Backend) error {
	if b.Name == "" || b.URL == "" {
		return fmt.Errorf("cluster: backend needs both name and URL, got %+v", b)
	}
	for _, r := range b.Name {
		if r == ':' || r == '/' {
			return fmt.Errorf("cluster: backend name %q must not contain %q", b.Name, r)
		}
	}
	return nil
}

// Start launches the health prober after one synchronous probe round, so a
// freshly started gateway has seen every node once before taking traffic.
// Idempotent-enough for its single caller; pair with Stop.
func (g *Gateway) Start() {
	g.probeAll()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(g.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				g.probeAll()
			case <-g.stop:
				return
			}
		}
	}()
}

// Stop terminates the health prober. In-flight proxied requests finish on
// their own timeouts.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Candidates reports the replica-candidate node names for a content
// address in routing order (compute-eligible nodes only) — introspection
// for operators and tests.
func (g *Gateway) Candidates(key string) []string {
	nodes := topK(g.nodes, key, g.cfg.Replicas, (*node).computeEligible)
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.name
	}
	return names
}

// backoff sleeps the attempt-th failover delay (capped exponential with
// deterministic jitter shared across the gateway's lifetime).
func (g *Gateway) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 20 {
		shift = 20
	}
	d := g.cfg.RetryBase << shift
	if d > g.cfg.RetryCap || d <= 0 {
		d = g.cfg.RetryCap
	}
	g.rngMu.Lock()
	u := float64(splitmix64(&g.rng)>>11) / float64(1 << 53)
	g.rngMu.Unlock()
	return time.Duration(float64(d) * (1 - g.cfg.Jitter + 2*g.cfg.Jitter*u))
}

// splitmix64 matches the client's jitter stream generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// retainVirtual records a cache-served result under a fresh gateway-local
// job ID and returns its status document.
func (g *Gateway) retainVirtual(spec service.JobSpec, key string, body []byte) service.JobStatus {
	g.vmu.Lock()
	defer g.vmu.Unlock()
	g.vseq++
	st := service.JobStatus{
		ID:       fmt.Sprintf("gw:%06d", g.vseq),
		State:    "done",
		Spec:     spec,
		Key:      key,
		CacheHit: true,
	}
	g.virtual[st.ID] = &virtualJob{status: st, body: body}
	g.vorder = append(g.vorder, st.ID)
	for len(g.vorder) > g.cfg.Retained {
		delete(g.virtual, g.vorder[0])
		g.vorder = g.vorder[1:]
	}
	return st
}

func (g *Gateway) virtualLookup(id string) *virtualJob {
	g.vmu.Lock()
	defer g.vmu.Unlock()
	return g.virtual[id]
}

// nodeClient builds a typed client for one node (probes and cache fills).
func (g *Gateway) nodeClient(n *node) *client.Client {
	return client.New(n.base, g.hc)
}
