package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// nodeState is a backend's position in the gateway's eyes.
type nodeState uint32

const (
	// nodeUp takes compute and cache reads.
	nodeUp nodeState = iota
	// nodeDraining is alive but refusing new compute: it still serves cache
	// reads and finishes accepted jobs, so it stays a cache-fill peer while
	// compute routes elsewhere.
	nodeDraining
	// nodeDown is unreachable (breaker tripped); it is re-probed only after
	// its cooldown expires, and re-admitted only by a successful probe.
	nodeDown
)

func (s nodeState) String() string {
	switch s {
	case nodeUp:
		return "up"
	case nodeDraining:
		return "draining"
	default:
		return "down"
	}
}

// node is the gateway's view of one backend: a tiny per-node circuit
// breaker fed by both health probes and live request outcomes, plus
// routing counters. The cooldown ladder is exponential — each breaker trip
// doubles the wait before re-admission, and a successful re-admission
// halves the ladder instead of resetting it, so a flapping node earns
// progressively longer exile while a once-unlucky one recovers fast.
type node struct {
	name string
	base string

	mu            sync.Mutex
	state         nodeState
	consecFails   int
	downEpisodes  int
	cooldownUntil time.Time

	routed      atomic.Uint64 // compute submissions routed here
	cacheServed atomic.Uint64 // gateway cache reads this node answered
	failures    atomic.Uint64 // probe + request failures observed
}

func newNode(b Backend, _ Config) *node {
	return &node{name: b.Name, base: b.URL}
}

func (n *node) snapshotState() nodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

func (n *node) computeEligible() bool { return n.snapshotState() == nodeUp }

func (n *node) cacheEligible() bool { return n.snapshotState() != nodeDown }

// probeDue reports whether the prober should contact the node now: always,
// unless it is down and still cooling off.
func (n *node) probeDue(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state != nodeDown || !now.Before(n.cooldownUntil)
}

// markFailure records one failed probe or proxied request. Crossing the
// threshold trips the breaker: the node goes down and will not be probed
// again until an exponentially growing cooldown expires.
func (n *node) markFailure(cfg Config, now time.Time) {
	n.failures.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecFails++
	if n.state != nodeDown && n.consecFails >= cfg.FailThreshold {
		n.state = nodeDown
		n.cooldownUntil = now.Add(n.cooldownLocked(cfg))
		n.downEpisodes++
	}
}

// cooldownLocked is the current rung of the ladder: base << episodes,
// capped.
func (n *node) cooldownLocked(cfg Config) time.Duration {
	shift := n.downEpisodes
	if shift > 16 {
		shift = 16
	}
	d := cfg.CooldownBase << shift
	if d > cfg.CooldownMax || d <= 0 {
		d = cfg.CooldownMax
	}
	return d
}

// markUp re-admits the node after a healthy probe, halving (not resetting)
// the cooldown ladder.
func (n *node) markUp() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.state = nodeUp
	n.consecFails = 0
	n.downEpisodes /= 2
	n.cooldownUntil = time.Time{}
}

// markDraining records an alive-but-draining probe or a 503 answer; the
// node responded, so the failure streak resets.
func (n *node) markDraining() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != nodeDown {
		n.state = nodeDraining
	}
	n.consecFails = 0
}

// markSuccess records a successful proxied request, clearing the failure
// streak without touching state (only probes re-admit a down node).
func (n *node) markSuccess() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecFails = 0
}

// cooldownRemaining is how much exile is left (zero unless down).
func (n *node) cooldownRemaining(now time.Time) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != nodeDown || now.After(n.cooldownUntil) {
		return 0
	}
	return n.cooldownUntil.Sub(now)
}

// probeAll runs one concurrent health-check round over all due nodes.
func (g *Gateway) probeAll() {
	now := time.Now()
	var wg sync.WaitGroup
	for _, n := range g.nodes {
		if !n.probeDue(now) {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			g.probeNode(n)
		}(n)
	}
	wg.Wait()
}

// probeNode asks one node for its health document and feeds the breaker.
func (g *Gateway) probeNode(n *node) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	hs, err := g.nodeClient(n).Health(ctx)
	switch {
	case err != nil:
		n.markFailure(g.cfg, time.Now())
	case hs.State == "draining":
		n.markDraining()
	default:
		n.markUp()
	}
}
