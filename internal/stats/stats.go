// Package stats collects simulation statistics: named counters,
// distributions with cumulative histograms, and time series. It backs every
// figure reproduced from the paper's evaluation (§V): Figure 13's AG-size
// cumulative histogram, Figure 14's traffic breakdowns, and Figure 15's
// region-size timelines.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing named count.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Dist accumulates a distribution of integer samples, retaining enough to
// compute mean, percentiles, and cumulative histograms.
type Dist struct {
	Name    string
	samples []uint64
	sorted  bool
	sum     uint64
	max     uint64
}

// NewDist returns an empty named distribution.
func NewDist(name string) *Dist { return &Dist{Name: name} }

// Observe records one sample.
func (d *Dist) Observe(v uint64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of samples.
func (d *Dist) Count() int { return len(d.samples) }

// Sum returns the sum of all samples.
func (d *Dist) Sum() uint64 { return d.sum }

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() uint64 { return d.max }

// Mean returns the arithmetic mean (0 if empty).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return float64(d.sum) / float64(len(d.samples))
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank; it returns 0 for an empty distribution.
func (d *Dist) Percentile(p float64) uint64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	rank := int(math.Ceil(p/100*float64(len(d.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.samples) {
		rank = len(d.samples) - 1
	}
	return d.samples[rank]
}

// FracAtMost returns the fraction of samples <= v (the empirical CDF at v).
func (d *Dist) FracAtMost(v uint64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	// First index with sample > v.
	i := sort.Search(len(d.samples), func(i int) bool { return d.samples[i] > v })
	return float64(i) / float64(len(d.samples))
}

// CumHist returns (bound, cumulative fraction) pairs for the given bounds,
// i.e. the cumulative histogram the paper plots in Figures 13 and 15.
func (d *Dist) CumHist(bounds []uint64) []CumBin {
	out := make([]CumBin, len(bounds))
	for i, b := range bounds {
		out[i] = CumBin{Bound: b, Frac: d.FracAtMost(b)}
	}
	return out
}

// CumBin is one point of a cumulative histogram.
type CumBin struct {
	Bound uint64
	Frac  float64
}

// String renders a compact summary.
func (d *Dist) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.2f p50=%d p90=%d p99=%d max=%d",
		d.Name, d.Count(), d.Mean(), d.Percentile(50), d.Percentile(90), d.Percentile(99), d.Max())
}

// Series is an (x, y) time series, used for Figure 15's size-over-time plots.
type Series struct {
	Name string
	X    []uint64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x uint64, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Downsample returns at most n points, evenly strided, preserving endpoints.
func (s *Series) Downsample(n int) *Series {
	out := &Series{Name: s.Name}
	if s.Len() == 0 || n <= 0 {
		return out
	}
	if s.Len() <= n {
		out.X = append(out.X, s.X...)
		out.Y = append(out.Y, s.Y...)
		return out
	}
	stride := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(math.Round(float64(i) * stride))
		out.Append(s.X[j], s.Y[j])
	}
	return out
}

// Set is a registry of counters and distributions for one simulation run.
type Set struct {
	counters map[string]*Counter
	dists    map[string]*Dist
	order    []string
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Dist),
	}
}

// Counter returns (creating if needed) the named counter.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Dist returns (creating if needed) the named distribution.
func (s *Set) Dist(name string) *Dist {
	if d, ok := s.dists[name]; ok {
		return d
	}
	d := NewDist(name)
	s.dists[name] = d
	s.order = append(s.order, name)
	return d
}

// Counters returns every counter in registration order.
func (s *Set) Counters() []*Counter {
	out := make([]*Counter, 0, len(s.counters))
	for _, name := range s.order {
		if c, ok := s.counters[name]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Dists returns every distribution in registration order.
func (s *Set) Dists() []*Dist {
	out := make([]*Dist, 0, len(s.dists))
	for _, name := range s.order {
		if d, ok := s.dists[name]; ok {
			out = append(out, d)
		}
	}
	return out
}

// CounterValue returns the value of a counter, 0 if absent.
func (s *Set) CounterValue(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// String renders every metric in registration order.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.order {
		if c, ok := s.counters[name]; ok {
			fmt.Fprintf(&b, "%s = %d\n", c.Name, c.Value)
		} else if d, ok := s.dists[name]; ok {
			fmt.Fprintf(&b, "%s\n", d.String())
		}
	}
	return b.String()
}
