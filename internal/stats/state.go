package stats

import (
	"math"

	"repro/internal/ckpt"
)

// EncodeState writes every registered metric in registration order:
// counters as (name, value), distributions as (name, sum, max, samples).
// Samples are written in insertion order — stable under replay because
// nothing sorts a distribution (Percentile/FracAtMost) while a run is in
// flight.
func (s *Set) EncodeState(w *ckpt.Writer) {
	w.U32(uint32(len(s.order)))
	for _, name := range s.order {
		if c, ok := s.counters[name]; ok {
			w.U8(0)
			w.String(name)
			w.U64(c.Value)
			continue
		}
		d := s.dists[name]
		w.U8(1)
		w.String(name)
		w.U64(d.sum)
		w.U64(d.max)
		w.U32(uint32(len(d.samples)))
		for _, v := range d.samples {
			w.U64(v)
		}
	}
}

// EncodeState writes the series points in insertion order.
func (s *Series) EncodeState(w *ckpt.Writer) {
	w.U32(uint32(len(s.X)))
	for i := range s.X {
		w.U64(s.X[i])
		w.U64(math.Float64bits(s.Y[i]))
	}
}
