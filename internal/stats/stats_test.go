package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	s := NewSet()
	c := s.Counter("stores")
	c.Inc()
	c.Add(9)
	if s.CounterValue("stores") != 10 {
		t.Fatalf("value=%d", s.CounterValue("stores"))
	}
	if s.CounterValue("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if s.Counter("stores") != c {
		t.Fatal("Counter should return the same instance")
	}
}

func TestDistBasics(t *testing.T) {
	d := NewDist("ag")
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		d.Observe(v)
	}
	if d.Count() != 5 || d.Sum() != 110 || d.Max() != 100 {
		t.Fatalf("count=%d sum=%d max=%d", d.Count(), d.Sum(), d.Max())
	}
	if d.Mean() != 22 {
		t.Fatalf("mean=%f", d.Mean())
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist("empty")
	if d.Mean() != 0 || d.Percentile(50) != 0 || d.FracAtMost(10) != 0 {
		t.Fatal("empty dist should report zeros")
	}
}

func TestPercentile(t *testing.T) {
	d := NewDist("p")
	for i := uint64(1); i <= 100; i++ {
		d.Observe(i)
	}
	if got := d.Percentile(50); got != 50 {
		t.Fatalf("p50=%d", got)
	}
	if got := d.Percentile(90); got != 90 {
		t.Fatalf("p90=%d", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100=%d", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0=%d", got)
	}
}

func TestFracAtMost(t *testing.T) {
	d := NewDist("f")
	for _, v := range []uint64{1, 1, 2, 5, 10} {
		d.Observe(v)
	}
	cases := []struct {
		v    uint64
		want float64
	}{
		{0, 0}, {1, 0.4}, {2, 0.6}, {4, 0.6}, {5, 0.8}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := d.FracAtMost(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FracAtMost(%d)=%f want %f", c.v, got, c.want)
		}
	}
}

func TestCumHist(t *testing.T) {
	d := NewDist("h")
	for i := uint64(1); i <= 10; i++ {
		d.Observe(i)
	}
	bins := d.CumHist([]uint64{2, 5, 10})
	want := []float64{0.2, 0.5, 1.0}
	for i, b := range bins {
		if math.Abs(b.Frac-want[i]) > 1e-12 {
			t.Errorf("bin %d: frac=%f want %f", i, b.Frac, want[i])
		}
	}
}

// Property: the CDF is monotone nondecreasing and ends at 1.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		d := NewDist("q")
		var maxV uint64
		for _, v := range vals {
			d.Observe(uint64(v))
			if uint64(v) > maxV {
				maxV = uint64(v)
			}
		}
		prev := -1.0
		for v := uint64(0); v <= maxV; v++ {
			f := d.FracAtMost(v)
			if f < prev {
				return false
			}
			prev = f
		}
		return d.FracAtMost(maxV) == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObserveAfterSortKeepsCorrectness(t *testing.T) {
	d := NewDist("resort")
	d.Observe(10)
	_ = d.Percentile(50) // forces sort
	d.Observe(1)
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 after late observe = %d", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{Name: "ts"}
	for i := uint64(0); i < 1000; i++ {
		s.Append(i, float64(i))
	}
	ds := s.Downsample(10)
	if ds.Len() != 10 {
		t.Fatalf("len=%d", ds.Len())
	}
	if ds.X[0] != 0 || ds.X[9] != 999 {
		t.Fatalf("endpoints: %d %d", ds.X[0], ds.X[9])
	}
	small := &Series{Name: "s"}
	small.Append(1, 1)
	if small.Downsample(10).Len() != 1 {
		t.Fatal("downsample should not pad short series")
	}
	if (&Series{}).Downsample(5).Len() != 0 {
		t.Fatal("empty downsample")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(3)
	s.Dist("b").Observe(7)
	out := s.String()
	if !strings.Contains(out, "a = 3") || !strings.Contains(out, "b:") {
		t.Fatalf("set string:\n%s", out)
	}
}

func TestDistString(t *testing.T) {
	d := NewDist("x")
	d.Observe(5)
	if !strings.Contains(d.String(), "n=1") {
		t.Fatalf("dist string: %s", d.String())
	}
}
