package service

import "testing"

func TestQueueAdmission(t *testing.T) {
	q := newQueue(2)
	if q.Cap() != 2 {
		t.Fatalf("cap %d", q.Cap())
	}
	a, b, c := &job{id: "a"}, &job{id: "b"}, &job{id: "c"}
	if !q.TryPush(a) || !q.TryPush(b) {
		t.Fatal("admission below the bound must succeed")
	}
	if q.TryPush(c) {
		t.Fatal("admission past the bound must fail, not block or grow")
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d, want 2", q.Depth())
	}
	if got := <-q.Chan(); got != a {
		t.Fatal("FIFO order violated")
	}
	if !q.TryPush(c) {
		t.Fatal("space freed by dequeue must be admissible")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(4)
	q.TryPush(&job{id: "a"})
	q.TryPush(&job{id: "b"})
	q.Close()
	var n int
	for range q.Chan() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d jobs, want 2", n)
	}
}
