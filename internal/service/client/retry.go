package client

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// RetryPolicy shapes the client's handling of transient failures — 429
// backpressure, 502/503/504 unavailability, and transport-level errors —
// as capped exponential backoff with deterministic, seedable jitter. The
// determinism matters: load tests and chaos campaigns replay the exact
// same schedule for the same seed, so a timing-sensitive failure
// reproduces instead of flaking.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per logical operation (default 6).
	MaxAttempts int
	// Base is the pre-jitter delay after the first failure; each further
	// failure doubles it (default 100ms).
	Base time.Duration
	// Cap ceils any single delay before jitter (default 5s).
	Cap time.Duration
	// Jitter spreads each delay uniformly over ±Jitter of its nominal
	// value, decorrelating clients that fail together (default 0.25).
	Jitter float64
	// Seed selects the jitter stream; equal seeds yield equal schedules
	// (default 1).
	Seed uint64
}

// DefaultRetryPolicy is what a zero-configured client uses.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 6,
	Base:        100 * time.Millisecond,
	Cap:         5 * time.Second,
	Jitter:      0.25,
	Seed:        1,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryPolicy.Base
	}
	if p.Cap <= 0 {
		p.Cap = DefaultRetryPolicy.Cap
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = DefaultRetryPolicy.Jitter
	}
	if p.Seed == 0 {
		p.Seed = DefaultRetryPolicy.Seed
	}
	return p
}

// Delays materializes the full backoff schedule (without server-supplied
// Retry-After overrides): MaxAttempts-1 waits, exponentially growing from
// Base to Cap, each jittered deterministically from Seed.
func (p RetryPolicy) Delays() []time.Duration {
	r := newRetrier(p)
	var out []time.Duration
	for {
		d, ok := r.next(0)
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// retrier walks one operation's schedule.
type retrier struct {
	p       RetryPolicy
	rng     uint64
	attempt int
}

func newRetrier(p RetryPolicy) *retrier {
	p = p.withDefaults()
	return &retrier{p: p, rng: p.Seed}
}

// next returns the wait before the following attempt, or false when the
// attempt budget is spent. A positive retryAfter (the server's own hint)
// overrides the computed delay — the server knows its queue better than
// the client's curve does.
func (r *retrier) next(retryAfter time.Duration) (time.Duration, bool) {
	r.attempt++
	if r.attempt >= r.p.MaxAttempts {
		return 0, false
	}
	if retryAfter > 0 {
		return retryAfter, true
	}
	shift := r.attempt - 1
	if shift > 20 { // past this the cap has long since won
		shift = 20
	}
	d := r.p.Base << shift
	if d > r.p.Cap || d <= 0 {
		d = r.p.Cap
	}
	// Jitter multiplies by a uniform draw from [1-Jitter, 1+Jitter].
	u := float64(splitmix64(&r.rng)>>11) / float64(1<<53)
	return time.Duration(float64(d) * (1 - r.p.Jitter + 2*r.p.Jitter*u)), true
}

// splitmix64 is the jitter stream: tiny, deterministic, well-mixed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// transient reports whether err is worth retrying: server backpressure or
// unavailability, or a transport-level failure (connection refused/reset,
// truncated body — the shapes a dying or restarting node produces).
// Context cancellation and definitive API answers (400, 404, 409 …) are
// not transient.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// lost reports whether err means the job record itself is gone — a node
// restarted out from under us, or retention expired it. The simulator's
// determinism makes resubmission safe: recomputing yields byte-identical
// results.
func lost(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) &&
		(apiErr.Status == http.StatusNotFound || apiErr.Status == http.StatusGone)
}

// retryAfterHint extracts the server's Retry-After from an error, if any.
func retryAfterHint(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
