package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestDelaysDeterministic pins the schedule contract: the same seed yields
// the same jittered schedule, a different seed a different one. Chaos
// campaigns rely on this to replay timing-sensitive failures.
func TestDelaysDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, Base: 100 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.25, Seed: 42}
	a, b := p.Delays(), p.Delays()
	if len(a) != 5 {
		t.Fatalf("schedule length = %d, want MaxAttempts-1 = 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs between identical policies: %s vs %s", i, a[i], b[i])
		}
	}
	p.Seed = 43
	c := p.Delays()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDelaysExponentialToCap checks the unjittered curve: doubling from
// Base, clamped at Cap. Jitter=0 must be honored, not replaced by the
// default (a backoff test with surprise jitter is a flaky backoff test).
func TestDelaysExponentialToCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond, Jitter: 0, Seed: 1}
	got := p.Delays()
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond,
		400 * time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("schedule length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delay %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestDelaysJitterBounds: every jittered delay stays within ±Jitter of the
// nominal curve.
func TestDelaysJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.25, Seed: 7}
	nominal := RetryPolicy{MaxAttempts: 10, Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0, Seed: 7}.Delays()
	for i, d := range p.Delays() {
		lo := time.Duration(float64(nominal[i]) * 0.75)
		hi := time.Duration(float64(nominal[i]) * 1.25)
		if d < lo || d > hi {
			t.Errorf("delay %d = %s outside [%s, %s]", i, d, lo, hi)
		}
	}
}

// TestRetrierRetryAfterOverride: the server's own hint beats the computed
// curve, and the attempt budget still counts down.
func TestRetrierRetryAfterOverride(t *testing.T) {
	r := newRetrier(RetryPolicy{MaxAttempts: 3, Base: time.Hour, Jitter: 0, Seed: 1})
	d, ok := r.next(7 * time.Second)
	if !ok || d != 7*time.Second {
		t.Fatalf("next(7s) = %s, %v; want 7s, true", d, ok)
	}
	d, ok = r.next(2 * time.Second)
	if !ok || d != 2*time.Second {
		t.Fatalf("next(2s) = %s, %v; want 2s, true", d, ok)
	}
	if _, ok := r.next(time.Second); ok {
		t.Fatal("retrier exceeded MaxAttempts")
	}
}

// TestTransientClassification is the retry taxonomy table.
func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
		{"wrapped cancellation", fmt.Errorf("poll: %w", context.Canceled), false},
		{"connection error", errors.New("dial tcp: connection refused"), true},
		{"truncated body", io.ErrUnexpectedEOF, true},
		{"429 backpressure", &APIError{Status: 429}, true},
		{"502 bad gateway", &APIError{Status: 502}, true},
		{"503 unavailable", &APIError{Status: 503}, true},
		{"504 gateway timeout", &APIError{Status: 504}, true},
		{"400 bad spec", &APIError{Status: 400}, false},
		{"404 not found", &APIError{Status: 404}, false},
		{"409 conflict", &APIError{Status: 409}, false},
		{"500 internal", &APIError{Status: 500}, false},
	}
	for _, tc := range cases {
		if got := transient(tc.err); got != tc.want {
			t.Errorf("transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestLostClassification: only 404/410 mean the job record is gone.
func TestLostClassification(t *testing.T) {
	if !lost(&APIError{Status: 404}) || !lost(&APIError{Status: 410}) {
		t.Error("404/410 must classify as lost")
	}
	if lost(&APIError{Status: 503}) || lost(errors.New("conn refused")) || lost(nil) {
		t.Error("non-404/410 must not classify as lost")
	}
}

// fastRetry keeps retry tests quick without changing the schedule shape.
var fastRetry = RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: 0, Seed: 1}

// TestRunRetriesTransientSubmit: 502s from a failing-over gateway are
// retried until a node accepts, and the result comes back clean.
func TestRunRetriesTransientSubmit(t *testing.T) {
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) <= 2 {
			http.Error(w, `{"error":"no backend"}`, http.StatusBadGateway)
			return
		}
		writeJSON(w, service.JobStatus{ID: "j-1", State: "done", Key: "k"})
	})
	mux.HandleFunc("GET /v1/jobs/j-1/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	body, st, err := c.Run(context.Background(), service.JobSpec{Bench: "radix", System: "tsoper"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := submits.Load(); got != 3 {
		t.Errorf("submits = %d, want 3 (two 502s then success)", got)
	}
	if st.State != "done" || string(body) != `{"ok":true}` {
		t.Errorf("st=%+v body=%q", st, body)
	}
}

// TestRunResubmitsLostJob: the owning node restarted mid-wait, so the job
// record 404s; Run must resubmit the spec rather than fail — determinism
// makes the recompute byte-identical.
func TestRunResubmitsLostJob(t *testing.T) {
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) == 1 {
			writeJSON(w, service.JobStatus{ID: "j-lost", State: "queued"})
			return
		}
		writeJSON(w, service.JobStatus{ID: "j-2", State: "done", Key: "k"})
	})
	mux.HandleFunc("GET /v1/jobs/j-lost", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	})
	mux.HandleFunc("GET /v1/jobs/j-2/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"run":2}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	body, st, err := c.Run(context.Background(), service.JobSpec{Bench: "radix", System: "tsoper"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if submits.Load() != 2 {
		t.Errorf("submits = %d, want 2 (original + resubmission)", submits.Load())
	}
	if st.ID != "j-2" || string(body) != `{"run":2}` {
		t.Errorf("st=%+v body=%q", st, body)
	}
}

// TestRunGivesUpAfterBudget: a permanently unavailable server exhausts
// MaxAttempts and surfaces the last transient error instead of spinning.
func TestRunGivesUpAfterBudget(t *testing.T) {
	var submits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	_, _, err := c.Run(context.Background(), service.JobSpec{Bench: "radix", System: "tsoper"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := submits.Load(); got != int32(fastRetry.MaxAttempts) {
		t.Errorf("submits = %d, want MaxAttempts = %d", got, fastRetry.MaxAttempts)
	}
}

// TestRunNeverRetriesDeterministicFailure: a 400 means the spec itself is
// wrong; retrying would hammer the server with the same mistake.
func TestRunNeverRetriesDeterministicFailure(t *testing.T) {
	var submits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		http.Error(w, `{"error":"unknown benchmark"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	_, _, err := c.Run(context.Background(), service.JobSpec{Bench: "doom", System: "tsoper"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if submits.Load() != 1 {
		t.Errorf("submits = %d, want exactly 1", submits.Load())
	}
}

// TestWaitAbsorbsTransientPolls: a node flapping 502 mid-wait must not
// abort the wait; the poll loop rides through and returns the terminal
// state.
func TestWaitAbsorbsTransientPolls(t *testing.T) {
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j-1", func(w http.ResponseWriter, r *http.Request) {
		switch polls.Add(1) {
		case 1:
			writeJSON(w, service.JobStatus{ID: "j-1", State: "running"})
		case 2, 3:
			http.Error(w, `{"error":"restarting"}`, http.StatusBadGateway)
		default:
			writeJSON(w, service.JobStatus{ID: "j-1", State: "done"})
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	st, err := c.Wait(context.Background(), "j-1", time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "done" {
		t.Errorf("state = %q, want done", st.State)
	}
	if polls.Load() < 4 {
		t.Errorf("polls = %d, want >= 4", polls.Load())
	}
}

// TestWaitExhaustsOnPersistentTransient: if the node never comes back the
// wait ends with the transient error after the attempt budget, not an
// infinite loop.
func TestWaitExhaustsOnPersistentTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"gone dark"}`, http.StatusBadGateway)
	}))
	defer srv.Close()

	c := New(srv.URL, nil).WithRetry(fastRetry)
	_, err := c.Wait(context.Background(), "j-1", time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		panic(err)
	}
}
