package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestAPIErrorDecoding covers the non-2xx paths: structured error bodies
// decode into Message, raw text bodies pass through verbatim, the raw bytes
// are always retained, and Retry-After is parsed on 429.
func TestAPIErrorDecoding(t *testing.T) {
	cases := []struct {
		name        string
		status      int
		retryAfter  string
		body        string
		wantMsg     string
		wantRetry   time.Duration
		wantBackoff bool
	}{
		{
			name:    "structured error document",
			status:  http.StatusBadRequest,
			body:    `{"error":"unknown benchmark \"doom\""}`,
			wantMsg: `unknown benchmark "doom"`,
		},
		{
			name:    "raw text body",
			status:  http.StatusInternalServerError,
			body:    "worker exploded\n",
			wantMsg: "worker exploded",
		},
		{
			name:    "JSON body without error field",
			status:  http.StatusConflict,
			body:    `{"state":"running"}`,
			wantMsg: `{"state":"running"}`,
		},
		{
			name:        "429 with Retry-After",
			status:      http.StatusTooManyRequests,
			retryAfter:  "7",
			body:        `{"error":"queue full (64 jobs)"}`,
			wantMsg:     "queue full (64 jobs)",
			wantRetry:   7 * time.Second,
			wantBackoff: true,
		},
		{
			name:        "over-budget 429 keeps the estimate body",
			status:      http.StatusTooManyRequests,
			body:        `{"error":"program estimated at 9000000 trace ops, over the 4194304-op admission budget","estimate":{"ops":9000000,"stores":9000000,"loads":0,"syncs":0,"markers":0,"computes":0,"cycles":126004000},"budget":4194304}`,
			wantMsg:     "program estimated at 9000000 trace ops, over the 4194304-op admission budget",
			wantBackoff: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				w.WriteHeader(tc.status)
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()

			c := New(srv.URL, nil)
			_, err := c.Submit(context.Background(), service.JobSpec{Bench: "radix", System: "tsoper"})
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("want *APIError, got %v", err)
			}
			if apiErr.Status != tc.status {
				t.Errorf("Status = %d, want %d", apiErr.Status, tc.status)
			}
			if apiErr.Message != tc.wantMsg {
				t.Errorf("Message = %q, want %q", apiErr.Message, tc.wantMsg)
			}
			if string(apiErr.Body) != tc.body {
				t.Errorf("Body = %q, want the raw bytes %q", apiErr.Body, tc.body)
			}
			if apiErr.RetryAfter != tc.wantRetry {
				t.Errorf("RetryAfter = %s, want %s", apiErr.RetryAfter, tc.wantRetry)
			}
			if got := IsBackpressure(err); got != tc.wantBackoff {
				t.Errorf("IsBackpressure = %v, want %v", got, tc.wantBackoff)
			}
		})
	}

	// The structured 429 body must round-trip into the estimate document.
	t.Run("estimate decodes from Body", func(t *testing.T) {
		body := `{"error":"over budget","estimate":{"ops":9000000},"budget":4194304}`
		apiErr := &APIError{Status: 429, Body: []byte(body)}
		var doc struct {
			Estimate struct {
				Ops int `json:"ops"`
			} `json:"estimate"`
			Budget int `json:"budget"`
		}
		if err := json.Unmarshal(apiErr.Body, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Estimate.Ops != 9000000 || doc.Budget != 4194304 {
			t.Fatalf("decoded %+v", doc)
		}
	})
}

// TestWaitContextCancellation: a job that never terminates must not pin the
// caller — canceling the context unblocks Wait with ctx.Err().
func TestWaitContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{ID: "j1", State: "running"})
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	c := New(srv.URL, nil)
	st, err := c.Wait(ctx, "j1", 10*time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if st.State == "done" || st.State == "failed" {
		t.Errorf("canceled Wait reported a terminal state: %+v", st)
	}
}

// TestWaitStatusError: a failing status poll surfaces immediately.
func TestWaitStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, nil)
	_, err := c.Wait(context.Background(), "gone", time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 *APIError, got %v", err)
	}
}

// sseServer streams the given raw SSE payload for any events request.
func sseServer(t *testing.T, payload string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/events") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, payload)
	}))
}

// TestEventsWellFormed consumes a healthy stream: progress samples in
// order, then the terminal state.
func TestEventsWellFormed(t *testing.T) {
	srv := sseServer(t, ""+
		"event: progress\ndata: {\"events\":100,\"cycle\":5000}\n\n"+
		"event: progress\ndata: {\"events\":200,\"cycle\":9000}\n\n"+
		"event: state\ndata: {\"id\":\"j1\",\"state\":\"done\"}\n\n")
	defer srv.Close()

	var got []telemetry.Progress
	c := New(srv.URL, nil)
	st, err := c.Events(context.Background(), "j1", func(p telemetry.Progress) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.ID != "j1" {
		t.Errorf("terminal status = %+v", st)
	}
	if len(got) != 2 || got[0].Events != 100 || got[1].Cycle != 9000 {
		t.Errorf("progress samples = %+v", got)
	}
}

// TestEventsMalformed pins the failure modes: bad progress JSON, bad state
// JSON, unknown event types, unframed lines, and truncated streams all
// error instead of being silently skipped.
func TestEventsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr string
	}{
		{
			name:    "progress data is not JSON",
			payload: "event: progress\ndata: {not json}\n\n",
			wantErr: "malformed progress event",
		},
		{
			name:    "progress data is wrong type",
			payload: "event: progress\ndata: {\"events\":\"many\"}\n\n",
			wantErr: "malformed progress event",
		},
		{
			name:    "state data is not JSON",
			payload: "event: state\ndata: 12,34\n\n",
			wantErr: "malformed state event",
		},
		{
			name:    "unknown event type",
			payload: "event: surprise\ndata: {}\n\n",
			wantErr: `unexpected SSE event "surprise"`,
		},
		{
			name:    "data without event framing",
			payload: "data: {\"events\":1}\n\n",
			wantErr: "unexpected SSE event",
		},
		{
			name:    "garbage line",
			payload: "progress!!\n",
			wantErr: "malformed SSE line",
		},
		{
			name:    "stream ends without state",
			payload: "event: progress\ndata: {\"events\":1,\"cycle\":2}\n\n",
			wantErr: "without a terminal state event",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srv := sseServer(t, tc.payload)
			defer srv.Close()
			c := New(srv.URL, nil)
			_, err := c.Events(context.Background(), "j1", nil)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestEventsNon200 surfaces the API error for a missing job.
func TestEventsNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job"}`)
	}))
	defer srv.Close()
	c := New(srv.URL, nil)
	_, err := c.Events(context.Background(), "gone", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 *APIError, got %v", err)
	}
}

// TestRunSubmitRetries429: Run must honor Retry-After and resubmit, then
// complete once the queue opens up.
func TestRunSubmitRetries429(t *testing.T) {
	var submits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			submits++
			if submits == 1 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"queue full"}`)
				return
			}
			json.NewEncoder(w).Encode(service.JobStatus{ID: "j1", State: "done"})
		case strings.HasSuffix(r.URL.Path, "/result"):
			fmt.Fprint(w, `{"system":"tsoper"}`)
		default:
			json.NewEncoder(w).Encode(service.JobStatus{ID: "j1", State: "done"})
		}
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := New(srv.URL, nil)
	body, st, err := c.Run(ctx, service.JobSpec{Bench: "radix", System: "tsoper"})
	if err != nil {
		t.Fatal(err)
	}
	if submits != 2 {
		t.Errorf("submits = %d, want 2 (one 429, one accept)", submits)
	}
	if st.State != "done" || string(body) != `{"system":"tsoper"}` {
		t.Errorf("st=%+v body=%s", st, body)
	}
}
