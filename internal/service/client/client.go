// Package client is the typed Go client for a tsoper-serve instance: the
// load generator, the CI smoke test, and any program that wants simulation
// results without running simulations locally speak this package instead of
// raw HTTP.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// Client talks to one server — a tsoper-serve node or a tsoper-gateway
// front door (the API is the same; job IDs are opaque either way). The
// zero HTTPClient means http.DefaultClient.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New creates a client for a base URL like "http://127.0.0.1:7433",
// with DefaultRetryPolicy.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, retry: DefaultRetryPolicy}
}

// WithRetry replaces the client's retry policy (zero fields take the
// defaults) and returns the client for chaining.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p.withDefaults()
	return c
}

// Base returns the server base URL the client targets.
func (c *Client) Base() string { return c.base }

// APIError is a non-2xx response. RetryAfter is populated on 429.
// Message is the decoded `error` field when the body is an error document,
// the raw body text otherwise; Body always keeps the raw bytes so callers
// can decode structured rejection documents (e.g. the over-budget 429's
// cost estimate).
type APIError struct {
	Status     int
	Message    string
	Body       []byte
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("service: HTTP %d: %s (retry after %s)", e.Status, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// IsBackpressure reports whether err is the server shedding load (429).
func IsBackpressure(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return newAPIError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

func newAPIError(resp *http.Response, raw []byte) *APIError {
	apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw)), Body: raw}
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &doc) == nil && doc.Error != "" {
		apiErr.Message = doc.Error
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit submits a job spec. On a cache hit the returned status is already
// terminal ("done") with CacheHit set; otherwise it is queued (possibly
// Deduped onto an identical in-flight job). A full queue returns an
// *APIError with Status 429 and RetryAfter set.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a completed job's result document (the run's Results
// snapshot JSON, byte-identical for identical specs). It fails with an
// *APIError carrying 202 semantics if the job is still pending.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, newAPIError(resp, raw)
	}
	return raw, nil
}

// Cancel cancels a queued job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state, then returns it.
// Transient poll failures (connection errors, 502/503/504, 429) are
// absorbed with the client's backoff policy rather than aborting the wait;
// a definitive answer — including 404 for a job record that no longer
// exists — surfaces immediately.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	r := newRetrier(c.retry)
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil:
			r = newRetrier(c.retry) // a successful poll resets the failure streak
			switch st.State {
			case "done", "failed", "canceled":
				return st, nil
			}
		case transient(err):
			wait, ok := r.next(retryAfterHint(err))
			if !ok {
				return st, err
			}
			if serr := sleepCtx(ctx, wait); serr != nil {
				return st, serr
			}
			continue
		default:
			return st, err
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Run is submit-wait-result in one call, the client's whole robustness
// story: submission retries transient failures (backpressure, node
// unavailability, connection errors) with capped jittered backoff honoring
// Retry-After; and if the job record is lost mid-wait — the owning node
// died or restarted — the spec is resubmitted from scratch, which is safe
// because the simulator recomputes byte-identical results. A deterministic
// failure (bad spec, failed simulation) is never retried.
func (c *Client) Run(ctx context.Context, spec service.JobSpec) ([]byte, service.JobStatus, error) {
	r := newRetrier(c.retry)
	backoff := func(err error) error {
		wait, ok := r.next(retryAfterHint(err))
		if !ok {
			return err
		}
		if serr := sleepCtx(ctx, wait); serr != nil {
			return serr
		}
		return nil
	}
	var st service.JobStatus
	for {
		var err error
		st, err = c.Submit(ctx, spec)
		if err != nil {
			if !transient(err) {
				return nil, st, err
			}
			if berr := backoff(err); berr != nil {
				return nil, st, berr
			}
			continue
		}
		if st.State != "done" {
			st, err = c.Wait(ctx, st.ID, 0)
			if err != nil {
				if !transient(err) && !lost(err) {
					return nil, st, err
				}
				if berr := backoff(err); berr != nil {
					return nil, st, berr
				}
				continue // resubmit: the job record is unreachable or gone
			}
		}
		if st.State != "done" {
			return nil, st, fmt.Errorf("service: job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		body, err := c.Result(ctx, st.ID)
		if err != nil {
			if !transient(err) && !lost(err) {
				return nil, st, err
			}
			if berr := backoff(err); berr != nil {
				return nil, st, berr
			}
			continue
		}
		return body, st, nil
	}
}

// Events consumes a job's SSE stream: onProgress is invoked for every
// "progress" sample, and the terminal JobStatus from the closing "state"
// event is returned. A stream that ends without a state event, or carries
// an event whose data is not valid JSON for its type, is an error — the
// server frames every event it sends, so malformed framing means the
// stream cannot be trusted.
func (c *Client) Events(ctx context.Context, id string, onProgress func(telemetry.Progress)) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return service.JobStatus{}, newAPIError(resp, raw)
	}

	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			event = ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p telemetry.Progress
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					return service.JobStatus{}, fmt.Errorf("service: malformed progress event %q: %w", data, err)
				}
				if onProgress != nil {
					onProgress(p)
				}
			case "state":
				var st service.JobStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return service.JobStatus{}, fmt.Errorf("service: malformed state event %q: %w", data, err)
				}
				return st, nil
			default:
				return service.JobStatus{}, fmt.Errorf("service: unexpected SSE event %q", event)
			}
		default:
			return service.JobStatus{}, fmt.Errorf("service: malformed SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return service.JobStatus{}, err
	}
	if err := ctx.Err(); err != nil {
		return service.JobStatus{}, err
	}
	return service.JobStatus{}, errors.New("service: event stream ended without a terminal state event")
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (service.MetricsSnapshot, error) {
	var m service.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Healthz reports server liveness; a draining server returns an error.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Health fetches the node's health document. Unlike Healthz it decodes the
// body for both 200 (ok) and 503 (draining) — a gateway needs to tell a
// draining node (alive, serves cache reads) from a dead one (error).
func (c *Client) Health(ctx context.Context) (service.HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return service.HealthStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.HealthStatus{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.HealthStatus{}, err
	}
	var hs service.HealthStatus
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return hs, newAPIError(resp, raw)
	}
	if err := json.Unmarshal(raw, &hs); err != nil {
		return hs, fmt.Errorf("service: decoding health document: %w", err)
	}
	return hs, nil
}

// CacheGet fetches the cached result bytes for a content address from the
// node's cache-read endpoint. ok=false reports a clean miss; errors are
// reachability problems.
func (c *Client) CacheGet(ctx context.Context, key string) (body []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, newAPIError(resp, raw)
	}
}
