package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faultplan"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// JobSpec is the wire form of one simulation request. Zero values mean the
// defaults the one-shot CLIs use (full scale, seed 42, Table I config,
// wheel scheduler, no faults), so the smallest useful spec is
// {"bench":"radix","system":"tsoper"}. A spec names either a benchmark
// profile (Bench) or carries an inline workload program (Program), never
// both.
type JobSpec struct {
	// Bench names the workload profile (see tsoper-sim -list).
	Bench string `json:"bench,omitempty"`
	// Program is an inline workload program (see PROGRAMS.md). Program jobs
	// are cost-estimated before admission and cached under the program's
	// canonical hash, so resubmitting an equivalent surface form — merged
	// bursts, unrolled loops, different doc strings — is a cache hit.
	Program *program.Program `json:"program,omitempty"`
	// System names the persistency system (baseline … tsoper).
	System string `json:"system"`
	// Scale multiplies the profile's OpsPerCore (0 or 1 = full size).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives workload generation (0 = 42, the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Scheduler picks the event queue ("wheel" or "heap"). Execution-only:
	// the two dispatch identically, so it does not enter the cache key.
	Scheduler string `json:"scheduler,omitempty"`
	// FaultPreset names a faultplan preset to inject (see faultplan).
	FaultPreset string `json:"fault_preset,omitempty"`
}

// plan is a resolved, runnable spec plus its content address.
type plan struct {
	bench     trace.Profile
	prog      *program.Program // non-nil for program jobs
	est       program.Estimate // program jobs: admission cost
	cfg       machine.Config
	scale     float64
	seed      int64
	scheduler sim.SchedulerKind
	key       string
}

// keyDoc is the cache key's preimage: everything that determines the
// result bytes, nothing that doesn't.
type keyDoc struct {
	Profile trace.Profile   `json:"profile"` // resolved and scaled
	Seed    int64           `json:"seed"`
	Config  json.RawMessage `json:"config"` // machine.Config.CanonicalJSON
}

// programKeyDoc is the program job's preimage: the program enters through
// its canonical hash, so equivalent surface forms share the key.
type programKeyDoc struct {
	ProgramHash string          `json:"program_hash"`
	Seed        int64           `json:"seed"`
	Config      json.RawMessage `json:"config"`
}

// resolve validates the spec against the roster and builds the machine
// configuration and cache key.
func (s JobSpec) resolve() (plan, error) {
	var p trace.Profile
	if s.Program != nil {
		if s.Bench != "" {
			return plan{}, fmt.Errorf("service: spec names bench %q and carries a program; pick one", s.Bench)
		}
		if s.Scale != 0 && s.Scale != 1 {
			return plan{}, fmt.Errorf("service: scale does not apply to program jobs (the profile instruction carries its own)")
		}
		if err := s.Program.Validate(); err != nil {
			return plan{}, fmt.Errorf("service: %w", err)
		}
	} else {
		var ok bool
		p, ok = trace.ByName(s.Bench)
		if !ok {
			return plan{}, fmt.Errorf("service: unknown benchmark %q", s.Bench)
		}
	}
	var kind machine.SystemKind
	found := false
	for _, k := range machine.Systems() {
		if k.String() == s.System {
			kind, found = k, true
			break
		}
	}
	if !found {
		return plan{}, fmt.Errorf("service: unknown system %q", s.System)
	}
	if s.Scale < 0 {
		return plan{}, fmt.Errorf("service: scale must be positive, got %g", s.Scale)
	}
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	seed := s.Seed
	if seed == 0 {
		seed = 42
	}
	sched, err := sim.ParseSchedulerKind(s.Scheduler)
	if err != nil {
		return plan{}, fmt.Errorf("service: %w", err)
	}

	cfg := machine.TableI(kind)
	if s.FaultPreset != "" {
		spec, ok := faultplan.Preset(s.FaultPreset)
		if !ok {
			return plan{}, fmt.Errorf("service: unknown fault preset %q (want one of %v)",
				s.FaultPreset, faultplan.PresetNames())
		}
		cfg.Faults = &spec
	}

	if s.Program != nil {
		est, err := harness.EstimateProgram(s.Program, cfg)
		if err != nil {
			return plan{}, fmt.Errorf("service: %w", err)
		}
		key, err := programCacheKey(s.Program, seed, cfg)
		if err != nil {
			return plan{}, err
		}
		return plan{prog: s.Program, est: est, cfg: cfg, scale: scale, seed: seed, scheduler: sched, key: key}, nil
	}
	key, err := cacheKey(p.Scale(scale), seed, cfg)
	if err != nil {
		return plan{}, err
	}
	return plan{bench: p, cfg: cfg, scale: scale, seed: seed, scheduler: sched, key: key}, nil
}

// CacheKey returns the spec's content address — the key its result is
// cached under. Two specs with the same key produce byte-identical results.
func (s JobSpec) CacheKey() (string, error) {
	pl, err := s.resolve()
	if err != nil {
		return "", err
	}
	return pl.key, nil
}

// cacheKey hashes (resolved profile, seed, canonical config).
func cacheKey(p trace.Profile, seed int64, cfg machine.Config) (string, error) {
	cc, err := cfg.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	doc, err := json.Marshal(keyDoc{Profile: p, Seed: seed, Config: cc})
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// programCacheKey hashes (canonical program hash, seed, canonical config).
func programCacheKey(p *program.Program, seed int64, cfg machine.Config) (string, error) {
	ph, err := p.Hash()
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	cc, err := cfg.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	doc, err := json.Marshal(programKeyDoc{ProgramHash: ph, Seed: seed, Config: cc})
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// jobState is a job's lifecycle position.
type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
)

func (st jobState) terminal() bool {
	return st == stateDone || st == stateFailed || st == stateCanceled
}

// job is one admitted request. Mutable fields are guarded by the server
// mutex; done closes exactly once on reaching a terminal state.
type job struct {
	id   string
	spec JobSpec
	plan plan

	state     jobState
	err       string
	cacheHit  bool
	result    []byte
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  telemetry.Progress
	subs      []chan telemetry.Progress
	done      chan struct{}
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Key is the job's content address (shared by every identical spec).
	Key string `json:"key"`
	// CacheHit marks a submission answered from the result cache;
	// Deduped marks one coalesced onto an identical in-flight job.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Deduped  bool   `json:"deduped,omitempty"`
	Error    string `json:"error,omitempty"`
	// Progress is the latest sampled position of a running job.
	Progress telemetry.Progress `json:"progress"`
	// LatencyMS is submit-to-finish wall time for terminal jobs.
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// status snapshots the job under the server mutex.
func (s *Server) status(j *job, deduped bool) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    string(j.state),
		Spec:     j.spec,
		Key:      j.plan.key,
		CacheHit: j.cacheHit,
		Deduped:  deduped,
		Error:    j.err,
		Progress: j.progress,
	}
	if j.state.terminal() && !j.finished.IsZero() {
		st.LatencyMS = float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond)
	}
	return st
}
