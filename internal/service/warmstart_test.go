package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/program"
)

// warmProgram builds a two-core program of `levels` fenced store bursts
// per core (the fences keep canonicalization from merging the bursts, so
// each level survives as a distinct truncation point). Cores are symmetric
// so neither finishes long before the other — the last execution-phase
// checkpoint of a prefix run then predates any core's completion, which is
// what makes a warm start replay-verifiable.
func warmProgram(levels int) *program.Program {
	p := &program.Program{Version: 1, Name: "warm"}
	for c := 0; c < 2; c++ {
		var instrs []program.Instr
		for k := 0; k < levels; k++ {
			instrs = append(instrs,
				program.Instr{Op: program.OpStoreBurst, Count: 400},
				program.Instr{Op: program.OpFence})
		}
		p.Cores = append(p.Cores, program.CoreProg{Instrs: instrs})
	}
	return p
}

func startInternalServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

// runToDone submits a spec and waits for the worker to finish it.
func runToDone(t *testing.T, s *Server, spec JobSpec) *job {
	t.Helper()
	j, outcome, err := s.submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if outcome != outcomeQueued {
		t.Fatalf("submit outcome %d, want queued", outcome)
	}
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	if j.state != stateDone {
		t.Fatalf("job state %s (err %q), want done", j.state, j.err)
	}
	return j
}

// directProgramBytes is the cold, in-process reference result.
func directProgramBytes(t *testing.T, p *program.Program, seed int64) []byte {
	t.Helper()
	res, err := harness.RunProgramChecked(p, machine.TSOPER, harness.Options{Seed: seed})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmStartFromPrefixCheckpoint is the service half of the checkpoint
// acceptance gate: running a program caches its last execution-phase
// checkpoint; a later superprogram job finds it via the prefix probe,
// resumes from it, and still produces bytes identical to a cold run.
func TestWarmStartFromPrefixCheckpoint(t *testing.T) {
	s := startInternalServer(t, Config{Workers: 1, QueueDepth: 8, CheckpointEvery: 2_000})
	const seed = 5

	prefix, super := warmProgram(1), warmProgram(3)

	jp := runToDone(t, s, JobSpec{Program: prefix, System: "tsoper", Seed: seed})
	if blob, ok := s.cache.Get(ckptKeyPrefix + jp.plan.key); !ok || len(blob) == 0 {
		t.Fatal("prefix run did not cache a checkpoint blob")
	}

	js := runToDone(t, s, JobSpec{Program: super, System: "tsoper", Seed: seed})
	snap := s.Metrics()
	if snap.Cache.WarmStarts != 1 {
		t.Fatalf("warm starts %d (rejects %d), want 1", snap.Cache.WarmStarts, snap.Cache.WarmStartRejects)
	}
	if snap.Cache.WarmStartRejects != 0 {
		t.Fatalf("warm start rejects %d, want 0", snap.Cache.WarmStartRejects)
	}
	if want := directProgramBytes(t, super, seed); !bytes.Equal(js.result, want) {
		t.Fatalf("warm-started result differs from cold run:\nwarm: %s\ncold: %s", js.result, want)
	}
	// The superprogram's own checkpoint is cached for the next extension.
	if _, ok := s.cache.Get(ckptKeyPrefix + js.plan.key); !ok {
		t.Fatal("superprogram run did not cache its own checkpoint blob")
	}
}

// TestWarmStartRejectFallsBackCold poisons the prefix slot with garbage:
// the job must detect the typed checkpoint failure, count a reject, rerun
// cold, and still produce the correct bytes.
func TestWarmStartRejectFallsBackCold(t *testing.T) {
	s := startInternalServer(t, Config{Workers: 1, QueueDepth: 8, CheckpointEvery: 2_000})
	const seed = 5

	super := warmProgram(3)
	pl, err := JobSpec{Program: warmProgram(1), System: "tsoper", Seed: seed}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	s.cache.Put(ckptKeyPrefix+pl.key, []byte("not a checkpoint blob"))

	js := runToDone(t, s, JobSpec{Program: super, System: "tsoper", Seed: seed})
	snap := s.Metrics()
	if snap.Cache.WarmStartRejects != 1 {
		t.Fatalf("warm start rejects %d, want 1", snap.Cache.WarmStartRejects)
	}
	if snap.Cache.WarmStarts != 0 {
		t.Fatalf("warm starts %d, want 0", snap.Cache.WarmStarts)
	}
	if want := directProgramBytes(t, super, seed); !bytes.Equal(js.result, want) {
		t.Fatal("cold-fallback result differs from direct run")
	}
}

// TestPrefixProgramsEnumeratesTruncations pins the probe order: longest
// prefix first, one level per instruction count below the longest core.
func TestPrefixProgramsEnumeratesTruncations(t *testing.T) {
	pps := prefixPrograms(warmProgram(3))
	if len(pps) != 5 {
		t.Fatalf("got %d prefixes, want 5", len(pps))
	}
	for i, want := range []int{5, 4, 3, 2, 1} {
		for c, cp := range pps[i].Cores {
			if len(cp.Instrs) != want {
				t.Fatalf("prefix %d core %d has %d instrs, want %d", i, c, len(cp.Instrs), want)
			}
		}
	}
}
