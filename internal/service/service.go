// Package service turns the simulator into a long-lived
// simulation-as-a-service process: a bounded job queue with admission
// control and backpressure, a worker pool that runs harness jobs under
// per-job stall deadlines, a content-addressed result cache that
// deduplicates identical and in-flight requests, and an HTTP API
// (submit/status/result/cancel, SSE progress streaming, /healthz and
// /metrics) with graceful drain.
//
// Soundness of the cache rests on two substrate guarantees: the simulator
// is deterministic (same spec, same bytes), and results are byte-identical
// across event schedulers (the differential suite in
// scheduler_equiv_test.go). The cache key is therefore a *content address*:
// the SHA-256 of the resolved workload profile, the seed, and the machine
// configuration's canonical form (machine.Config.CanonicalJSON). A job's
// result document is its Results snapshot JSON
// (machine.Results.Snapshot().WriteJSON), which the simulator produces
// byte-identically for byte-identical keys.
package service

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// NodeID names this instance in /healthz and /metrics so cluster
	// gateways and operators can attribute routing decisions (default
	// "node-0").
	NodeID string
	// Workers is the simulation worker-pool width (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects submissions with 429 + Retry-After instead of growing.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default 256
	// entries, LRU eviction).
	CacheEntries int
	// JobTimeout arms each job's stall watchdog with this progress horizon
	// in simulation cycles (default machine.DefaultWatchdogHorizon), so no
	// wedged simulation can hold a worker forever.
	JobTimeout sim.Time
	// ProgressStride is the telemetry-event sampling period for SSE
	// progress (default telemetry.DefaultProgressStride).
	ProgressStride int
	// RetainDone caps retained terminal job records (default 4096); the
	// oldest are forgotten first. Results live on in the cache.
	RetainDone int
	// MaxProgramOps is the admission budget for program jobs: a program
	// whose up-front cost estimate exceeds this many trace ops is rejected
	// with 429 before it can occupy a worker (default 4Mi ops, roughly 80×
	// a full-scale profile job).
	MaxProgramOps int
	// CheckpointEvery is the checkpoint stride (simulation cycles) for
	// program jobs (default DefaultCheckpointEvery). Each run's last
	// execution-phase checkpoint blob is cached under "ckpt:"+key so a
	// later superprogram job can warm-start from it (see warmstart.go).
	CheckpointEvery sim.Time
}

// DefaultCheckpointEvery is the default checkpoint stride for program jobs.
const DefaultCheckpointEvery sim.Time = 100_000

func (c Config) withDefaults() Config {
	if c.NodeID == "" {
		c.NodeID = "node-0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = machine.DefaultWatchdogHorizon
	}
	if c.ProgressStride <= 0 {
		c.ProgressStride = telemetry.DefaultProgressStride
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 4096
	}
	if c.MaxProgramOps <= 0 {
		c.MaxProgramOps = 4 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	return c
}

// Server is one service instance. Construct with New, launch workers with
// Start, mount its ServeHTTP anywhere, stop with Drain.
type Server struct {
	cfg     Config
	queue   *queue
	cache   *resultCache
	metrics *metrics
	handler *httpHandler

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // cache key -> queued/running job (singleflight)
	doneIDs  []string        // terminal-job retention ring, oldest first
	nextID   uint64
	nQueued  int // per-state gauges for /metrics and /healthz
	nRunning int
	draining bool
	started  bool

	wg sync.WaitGroup
}

// New creates a server. No goroutines run until Start.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    newQueue(cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries),
		metrics:  newMetrics(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	s.handler = newHTTPHandler(s)
	return s
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.draining {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// StartDrain flips the server into draining mode without waiting: new
// compute is rejected with 503 + Retry-After (so a gateway reroutes), but
// queued and in-flight jobs keep running and cache reads keep being served.
// It is idempotent; Drain adds the wait-for-idle half.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		s.queue.Close()
	}
}

// Drain stops admission (submissions get 503), lets the workers finish
// every queued and in-flight job, and returns when the pool is idle — the
// SIGTERM half of graceful shutdown. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submitOutcome classifies one submission for the HTTP layer.
type submitOutcome int

const (
	outcomeQueued submitOutcome = iota
	outcomeCacheHit
	outcomeDeduped
	outcomeQueueFull
	outcomeDraining
	// outcomeOverBudget rejects a program job whose cost estimate exceeds
	// Config.MaxProgramOps — admission control from static cost, no
	// simulation spent.
	outcomeOverBudget
)

// submit admits one resolved job. It returns the job record (authoritative
// for cache hits and dedupes too) and how admission went.
func (s *Server) submit(spec JobSpec) (*job, submitOutcome, error) {
	plan, err := spec.resolve()
	if err != nil {
		return nil, 0, err
	}

	if plan.prog != nil && plan.est.Ops > s.cfg.MaxProgramOps {
		s.metrics.rejected.Add(1)
		// Return the job shell so the HTTP layer can surface the estimate.
		return &job{spec: spec, plan: plan}, outcomeOverBudget, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, outcomeDraining, nil
	}
	s.metrics.submitted.Add(1)

	if body, ok := s.cache.Get(plan.key); ok {
		// Content hit: a completed job record materializes instantly.
		s.metrics.cacheHits.Add(1)
		j := s.newJobLocked(spec, plan)
		j.state = stateDone
		j.cacheHit = true
		j.result = body
		now := time.Now()
		j.started, j.finished = now, now
		close(j.done)
		s.retainLocked(j)
		return j, outcomeCacheHit, nil
	}
	if j, ok := s.inflight[plan.key]; ok {
		// Identical request already queued or running: coalesce onto it.
		s.metrics.dedups.Add(1)
		return j, outcomeDeduped, nil
	}

	s.metrics.cacheMisses.Add(1)
	j := s.newJobLocked(spec, plan)
	if !s.queue.TryPush(j) {
		s.metrics.rejected.Add(1)
		delete(s.jobs, j.id)
		return nil, outcomeQueueFull, nil
	}
	s.inflight[plan.key] = j
	s.nQueued++
	return j, outcomeQueued, nil
}

// cacheRead serves the node's cache-read endpoint (GET /v1/cache/{hash}):
// the raw result bytes for a content address, available even while
// draining so peers can cache-fill from a node on its way out.
func (s *Server) cacheRead(key string) ([]byte, bool) {
	body, ok := s.cache.Get(key)
	if ok {
		s.metrics.peerReads.Add(1)
	} else {
		s.metrics.peerReadMisses.Add(1)
	}
	return body, ok
}

func (s *Server) newJobLocked(spec JobSpec, p plan) *job {
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.nextID),
		spec:      spec,
		plan:      p,
		state:     stateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// retainLocked records a terminal job and forgets the oldest beyond the
// retention cap, bounding the registry for long-lived servers.
func (s *Server) retainLocked(j *job) {
	s.doneIDs = append(s.doneIDs, j.id)
	for len(s.doneIDs) > s.cfg.RetainDone {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancel cancels a queued job. Running jobs cannot be interrupted (the
// simulation has no preemption point), and terminal jobs are left alone;
// both report false with their current state.
func (s *Server) cancel(id string) (canceled bool, state jobState, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return false, "", false
	}
	if j.state != stateQueued {
		return false, j.state, true
	}
	j.state = stateCanceled
	j.finished = time.Now()
	s.nQueued--
	delete(s.inflight, j.plan.key)
	s.metrics.canceled.Add(1)
	close(j.done)
	s.retainLocked(j)
	return true, stateCanceled, true
}

// worker pulls jobs until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue.Chan() {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != stateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.started = time.Now()
	s.nQueued--
	s.nRunning++
	s.mu.Unlock()

	// Each run gets its own bus (track handles are machine-local) carrying
	// a progress sink that fans out to the job's SSE subscribers.
	sink := telemetry.NewProgressSink(s.cfg.ProgressStride, func(p telemetry.Progress) {
		s.publishProgress(j, p)
	})
	cfg := j.plan.cfg
	cfg.Telemetry = telemetry.NewBus(sink)
	opts := harness.Options{
		Scale:     j.plan.scale,
		Seed:      j.plan.seed,
		Scheduler: j.plan.scheduler,
		Timeout:   s.cfg.JobTimeout,
	}
	var ckptBlob []byte
	if j.plan.prog != nil {
		// Emit periodic checkpoints and keep the last execution-phase blob
		// — the one a future superprogram job can warm-start from. Drain-
		// and done-phase blobs never replay-verify under an extended
		// workload, so they are not worth caching.
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.OnCheckpoint = func(blob []byte) {
			if h, _, derr := ckpt.DecodeBlob(blob); derr == nil && h.Phase == machine.CheckpointPhaseExec {
				ckptBlob = blob
			}
		}
		if blob, ok := s.lookupWarmStart(j.plan); ok {
			opts.ResumeFrom = blob
		}
	}
	var res *machine.Results
	var err error
	if j.plan.prog != nil {
		res, err = harness.RunProgramConfigChecked(j.plan.prog, cfg, opts)
		if err != nil && len(opts.ResumeFrom) > 0 && isCheckpointErr(err) {
			// The prefix heuristic guessed wrong (replay-verification
			// rejected the blob): run cold. Correctness never depended on
			// the warm start.
			s.metrics.warmStartRejects.Add(1)
			opts.ResumeFrom = nil
			ckptBlob = nil
			res, err = harness.RunProgramConfigChecked(j.plan.prog, cfg, opts)
		} else if len(opts.ResumeFrom) > 0 {
			s.metrics.warmStarts.Add(1)
		}
	} else {
		res, err = harness.RunConfigChecked(j.plan.bench, cfg, opts)
	}

	var body []byte
	if err == nil {
		var buf bytes.Buffer
		if werr := res.Snapshot().WriteJSON(&buf); werr != nil {
			err = fmt.Errorf("service: encoding result: %w", werr)
		} else {
			body = buf.Bytes()
		}
	}
	sink.Flush()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, j.plan.key)
	j.finished = time.Now()
	s.nRunning--
	if err != nil {
		j.state = stateFailed
		j.err = err.Error()
		s.metrics.failed.Add(1)
	} else {
		j.state = stateDone
		j.result = body
		s.cache.Put(j.plan.key, body)
		if len(ckptBlob) > 0 {
			s.cache.Put(ckptKeyPrefix+j.plan.key, ckptBlob)
		}
		s.metrics.completed.Add(1)
		s.metrics.observeLatency(j.finished.Sub(j.submitted))
	}
	close(j.done)
	s.retainLocked(j)
}

// publishProgress fans a sample out to the job's subscribers. Slow
// subscribers lose samples rather than stalling the simulation.
func (s *Server) publishProgress(j *job, p telemetry.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.progress = p
	for _, ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// subscribe registers a progress channel on the job; the returned func
// unregisters it. Completed jobs get no samples — callers should consult
// the job state alongside.
func (s *Server) subscribe(j *job) (<-chan telemetry.Progress, func()) {
	ch := make(chan telemetry.Progress, 16)
	s.mu.Lock()
	j.subs = append(j.subs, ch)
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
}

// retryAfter estimates how long until queue space frees up: the queued work
// divided by the pool width at the observed mean job latency, floored at
// one second — honest backpressure without leaking precision it lacks.
func (s *Server) retryAfter() time.Duration {
	mean := s.metrics.meanLatency()
	if mean <= 0 {
		mean = time.Second
	}
	d := time.Duration(s.queue.Depth()/s.cfg.Workers+1) * mean
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}
