package service_test

// Graceful drain with a live SSE progress stream: the contract is that
// StartDrain never truncates an open stream — the subscribed client still
// receives every frame through the terminal state event, the connection
// closes cleanly, and no server goroutine outlives the drain. The whole
// file is meaningful only under -race (CI runs it that way): a torn drain
// typically surfaces as a race on the subscription channel or a leaked
// events goroutine, not as a visible protocol error.

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// TestDrainWithActiveSSEStream queues a backlog behind one worker, opens an
// SSE stream on the LAST job — guaranteed still queued — and drains the
// server mid-stream. The stream must end with a clean terminal state event
// (strict framing: the client errors on any malformed or truncated frame),
// and the server's goroutines must all retire.
func TestDrainWithActiveSSEStream(t *testing.T) {
	// Setup is inlined (no startServer) so the goroutine baseline brackets
	// the server's whole lifecycle: everything created after this line must
	// be gone by the final check.
	baseline := runtime.NumGoroutine()

	srv := service.New(service.Config{Workers: 1, QueueDepth: 16})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var last string
	for seed := int64(121); seed < 127; seed++ {
		st, err := c.Submit(ctx, smallSpec(seed))
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		last = st.ID
	}

	// Open the stream before draining; the subscription is live once Events
	// has seen the 200, which it has by the time the first callback or the
	// return fires.
	type outcome struct {
		st       service.JobStatus
		err      error
		progress int
	}
	res := make(chan outcome, 1)
	var mu sync.Mutex
	samples := 0
	go func() {
		st, err := c.Events(ctx, last, func(p telemetry.Progress) {
			mu.Lock()
			samples++
			mu.Unlock()
		})
		mu.Lock()
		n := samples
		mu.Unlock()
		res <- outcome{st: st, err: err, progress: n}
	}()

	// Give the stream a moment to attach, then drain while the backlog —
	// including the streamed job — is still pending.
	time.Sleep(20 * time.Millisecond)
	srv.StartDrain()

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	select {
	case out := <-res:
		if out.err != nil {
			t.Fatalf("SSE stream across drain: %v (a truncated or malformed frame)", out.err)
		}
		if out.st.State != "done" {
			t.Fatalf("terminal state = %q, want done (job must finish, not be dropped)", out.st.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate after drain")
	}

	// No goroutine leak: with the workers drained and the listener closed,
	// everything created since the baseline — workers, the events handler,
	// the stream's connection pair — must retire. Allow small slack for
	// runtime helpers; a leaked handler holds the count elevated past it.
	ts.Close()
	waitSettle(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}

// TestDrainCompletesStreamedBacklog: every job queued at drain time — not
// just the streamed one — reaches "done", each with a clean stream; drain
// means "finish what you accepted", never "shed it".
func TestDrainCompletesStreamedBacklog(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, QueueDepth: 16})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var ids []string
	for seed := int64(131); seed < 136; seed++ {
		st, err := c.Submit(ctx, smallSpec(seed))
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		ids = append(ids, st.ID)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			st, err := c.Events(ctx, id, nil)
			if err != nil {
				errs <- err
				return
			}
			if st.State != "done" {
				errs <- context.DeadlineExceeded
			}
		}(id)
	}

	srv.StartDrain()
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("stream across drain: %v", err)
	}
}
