package service

// queue is the bounded admission queue. Admission is strictly non-blocking:
// a full queue rejects (the HTTP layer turns that into 429 + Retry-After)
// so memory stays bounded no matter the offered load. Closing the queue is
// the drain signal — workers exit once the backlog empties.
type queue struct {
	ch chan *job
}

func newQueue(depth int) *queue {
	if depth <= 0 {
		depth = 1
	}
	return &queue{ch: make(chan *job, depth)}
}

// TryPush enqueues without blocking; false means the queue is full.
// Callers must hold the server mutex (it serializes TryPush against Close).
func (q *queue) TryPush(j *job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// Chan is the workers' dequeue side; it ends when Close is called and the
// backlog has drained.
func (q *queue) Chan() <-chan *job { return q.ch }

// Close stops admission. Callers must hold the server mutex.
func (q *queue) Close() { close(q.ch) }

// Depth is the current backlog; Cap the admission bound.
func (q *queue) Depth() int { return len(q.ch) }
func (q *queue) Cap() int   { return cap(q.ch) }
