package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/service"
	"repro/internal/service/client"
)

// progSpec wraps a program into a job spec.
func progSpec(p *program.Program, seed int64) service.JobSpec {
	return service.JobSpec{Program: p, System: "tsoper", Seed: seed}
}

// smallProgram is a two-core program cheap enough for unit tests, written
// in a deliberately redundant surface form.
func smallProgram() *program.Program {
	return &program.Program{
		Version: 1,
		Name:    "svc-test",
		Doc:     "surface form A",
		Cores: []program.CoreProg{
			{Instrs: []program.Instr{
				{Op: program.OpStoreBurst, Count: 40},
				{Op: program.OpStoreBurst, Count: 60},
				{Op: program.OpFence},
				{Op: program.OpEpoch},
			}},
			{Instrs: []program.Instr{
				{Op: program.OpLoadScan, Count: 50},
				{Op: program.OpLock, Line: 3},
			}},
		},
	}
}

// equivalentProgram is a different surface spelling of smallProgram: the
// merged burst is split through a loop and the doc string differs. Its
// canonical form — and therefore its cache key — must match.
func equivalentProgram() *program.Program {
	return &program.Program{
		Version: 1,
		Name:    "svc-test",
		Doc:     "surface form B, reordered fields and looped bursts",
		Cores: []program.CoreProg{
			{Instrs: []program.Instr{
				{Op: program.OpLoop, Times: 4, Body: []program.Instr{
					{Op: program.OpStoreBurst, Count: 25},
				}},
				{Op: program.OpFence},
				{Op: program.OpEpoch},
			}},
			{Instrs: []program.Instr{
				{Op: program.OpLoadScan, Count: 20},
				{Op: program.OpLoadScan, Count: 30},
				{Op: program.OpLock, Line: 3},
			}},
		},
	}
}

// TestProgramJobRunsAndMatchesDirect proves the service's program path is
// the same computation as the in-process harness path.
func TestProgramJobRunsAndMatchesDirect(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	body, st, err := c.Run(ctx, progSpec(smallProgram(), 9))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.CacheHit {
		t.Fatal("first submission must not be a cache hit")
	}

	res, err := harness.RunProgramChecked(smallProgram(), machine.TSOPER, harness.Options{Seed: 9})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var direct bytes.Buffer
	if err := res.Snapshot().WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Fatalf("service result differs from direct harness run:\nservice: %s\ndirect:  %s", body, direct.Bytes())
	}
}

// TestProgramCanonicalFormSharesCache is the acceptance criterion: an
// equivalent program in a different surface form (different instruction
// order, loops instead of merged bursts, different doc) is a cache hit.
func TestProgramCanonicalFormSharesCache(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	first, st1, err := c.Run(ctx, progSpec(smallProgram(), 3))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}

	second, st2, err := c.Run(ctx, progSpec(equivalentProgram(), 3))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if st1.Key != st2.Key {
		t.Fatalf("equivalent programs got different cache keys:\n%s\n%s", st1.Key, st2.Key)
	}
	if !st2.CacheHit {
		t.Fatal("equivalent resubmission was not a cache hit")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache returned different bytes")
	}

	// A genuinely different program must not collide.
	other := smallProgram()
	other.Cores[0].Instrs[0].Count = 41
	st3, err := c.Submit(ctx, progSpec(other, 3))
	if err != nil {
		t.Fatalf("third submit: %v", err)
	}
	if st3.Key == st1.Key {
		t.Fatal("different programs share a cache key")
	}
}

// TestProgramOverBudget is the admission-control acceptance criterion:
// an over-budget program is rejected with 429 and the response body carries
// the cost estimate and the budget.
func TestProgramOverBudget(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 4, MaxProgramOps: 1000})
	ctx := context.Background()

	big := &program.Program{
		Version: 1,
		Name:    "too-big",
		Cores: []program.CoreProg{
			{Instrs: []program.Instr{{Op: program.OpStoreBurst, Count: 2000}}},
		},
	}
	_, err := c.Submit(ctx, progSpec(big, 1))
	if err == nil {
		t.Fatal("over-budget program was admitted")
	}
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error is %T, want *client.APIError: %v", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", apiErr.Status)
	}
	var body struct {
		Error    string           `json:"error"`
		Estimate program.Estimate `json:"estimate"`
		Budget   int              `json:"budget"`
	}
	if err := json.Unmarshal(apiErr.Body, &body); err != nil {
		t.Fatalf("429 body is not the estimate document: %v (%q)", err, apiErr.Body)
	}
	if body.Estimate.Ops != 2000 {
		t.Fatalf("estimate reports %d ops, want 2000", body.Estimate.Ops)
	}
	if body.Budget != 1000 {
		t.Fatalf("budget reports %d, want 1000", body.Budget)
	}

	// An in-budget program on the same server still runs.
	if _, _, err := c.Run(ctx, progSpec(smallProgram(), 1)); err != nil {
		t.Fatalf("in-budget program failed: %v", err)
	}
}

func TestProgramBadSpecs(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	both := progSpec(smallProgram(), 1)
	both.Bench = "radix"
	if _, err := c.Submit(ctx, both); err == nil {
		t.Fatal("spec with both bench and program admitted")
	}

	scaled := progSpec(smallProgram(), 1)
	scaled.Scale = 0.5
	if _, err := c.Submit(ctx, scaled); err == nil {
		t.Fatal("program spec with scale admitted")
	}

	invalid := progSpec(&program.Program{Version: 1, Name: "x", Cores: []program.CoreProg{
		{Instrs: []program.Instr{{Op: "warp"}}},
	}}, 1)
	if _, err := c.Submit(ctx, invalid); err == nil {
		t.Fatal("invalid program admitted")
	}
}
