package service_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/trace"
)

// smallSpec is a job small enough for unit tests (a few ms of simulation).
func smallSpec(seed int64) service.JobSpec {
	return service.JobSpec{Bench: "radix", System: "tsoper", Scale: 0.05, Seed: seed}
}

func startServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	srv := service.New(cfg)
	srv.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, client.New(ts.URL, ts.Client())
}

// The acceptance path: a job's result document is byte-identical to a
// direct harness run of the same config, and an identical resubmission is
// a cache hit returning the very same bytes.
func TestResultMatchesDirectRunAndCaches(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()
	spec := smallSpec(7)

	body, st, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.CacheHit {
		t.Fatal("first submission must not be a cache hit")
	}

	// Direct, in-process run of the same Figure-11 cell.
	p, _ := trace.ByName(spec.Bench)
	res, err := harness.RunOneChecked(p, machine.TSOPER, harness.Options{Scale: spec.Scale, Seed: spec.Seed})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var direct bytes.Buffer
	if err := res.Snapshot().WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Fatal("service result differs from direct harness run")
	}

	// Resubmit: must be an immediate cache hit with identical bytes.
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !st2.CacheHit || st2.State != "done" {
		t.Fatalf("resubmission not served from cache: %+v", st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("identical specs got different keys: %s vs %s", st2.Key, st.Key)
	}
	body2, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatalf("cached result: %v", err)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached result bytes differ from the original run")
	}
}

// heap vs wheel scheduler are execution details: same key, one simulation,
// byte-identical results.
func TestSchedulerDoesNotSplitCache(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	wheel := smallSpec(11)
	heap := smallSpec(11)
	heap.Scheduler = "heap"
	bodyW, _, err := c.Run(ctx, wheel)
	if err != nil {
		t.Fatal(err)
	}
	stH, err := c.Submit(ctx, heap)
	if err != nil {
		t.Fatal(err)
	}
	if !stH.CacheHit {
		t.Fatal("heap-scheduler spec missed the cache the wheel run populated")
	}
	bodyH, err := c.Result(ctx, stH.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bodyW, bodyH) {
		t.Fatal("scheduler choice changed result bytes")
	}
}

// Identical in-flight submissions coalesce onto one job (singleflight).
func TestInflightDedup(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// Workers not started yet: the job stays queued.
	first, err := c.Submit(ctx, smallSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, smallSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("duplicate submission not coalesced: first %+v second %+v", first, second)
	}
	if m := srv.Metrics(); m.Cache.Dedups != 1 {
		t.Fatalf("dedup counter = %d, want 1", m.Cache.Dedups)
	}

	srv.Start()
	if _, err := c.Wait(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
	ctxD, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = srv.Drain(ctxD)
}

// A full queue sheds load with 429 + Retry-After instead of growing.
func TestQueueFullBackpressure(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// No workers: fill the queue with distinct specs.
	for seed := int64(1); seed <= 2; seed++ {
		if _, err := c.Submit(ctx, smallSpec(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	_, err := c.Submit(ctx, smallSpec(3))
	if err == nil {
		t.Fatal("third submission admitted past the bound")
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %v", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("Retry-After missing or zero: %v", apiErr.RetryAfter)
	}
	if !client.IsBackpressure(err) {
		t.Fatal("IsBackpressure misses a 429")
	}
	if m := srv.Metrics(); m.JobsRejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", m.JobsRejected)
	}
}

// Canceling a queued job frees its singleflight slot; running and unknown
// jobs answer 409 / 404.
func TestCancel(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	st, err := c.Submit(ctx, smallSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "canceled" {
		t.Fatalf("state %s after cancel", got.State)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("result of canceled job must error")
	}
	if _, err := c.Cancel(ctx, "j-999999"); err == nil {
		t.Fatal("canceling unknown job must 404")
	}

	// The identical spec must be admissible again (inflight slot freed).
	st2, err := c.Submit(ctx, smallSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Deduped || st2.ID == st.ID {
		t.Fatalf("resubmission after cancel coalesced onto the canceled job: %+v", st2)
	}
}

// SSE delivers progress samples and a terminal state event.
func TestEventsStream(t *testing.T) {
	// Workers start only after the stream is connected, so the subscriber
	// observes the run from its first sample.
	srv := service.New(service.Config{Workers: 1, QueueDepth: 8, ProgressStride: 100})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	st, err := c.Submit(ctx, smallSpec(19))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.Base() + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// The stream (and its subscription) is live once headers arrived; now
	// let the worker pool pick the job up.
	srv.Start()
	defer func() {
		ctxD, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctxD)
	}()
	var progress, state int
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: progress":
			progress++
		case line == "event: state":
			state++
		}
	}
	if state != 1 {
		t.Fatalf("got %d state events, want 1", state)
	}
	if progress == 0 {
		t.Fatal("no progress events at stride 500")
	}
}

// Drain finishes queued work, refuses new work, and flips healthz.
func TestDrain(t *testing.T) {
	srv := service.New(service.Config{Workers: 2, QueueDepth: 8})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}
	var ids []string
	for seed := int64(21); seed < 24; seed++ {
		st, err := c.Submit(ctx, smallSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctxD, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctxD); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %s left %s after drain", id, st.State)
		}
	}
	if _, err := c.Submit(ctx, smallSpec(99)); err == nil {
		t.Fatal("submission admitted while draining")
	}
	if err := c.Healthz(ctx); err == nil {
		t.Fatal("healthz must fail while draining")
	}
	m := srv.Metrics()
	if !m.Draining || m.JobsCompleted != 3 || m.Latency.Count != 3 {
		t.Fatalf("metrics after drain: %+v", m)
	}
	if m.Latency.P50MS <= 0 || m.Latency.P99MS < m.Latency.P50MS {
		t.Fatalf("latency percentiles inconsistent: %+v", m.Latency)
	}
}

// A bad spec is a 400, not a queued failure.
func TestBadSpecs(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	for name, spec := range map[string]service.JobSpec{
		"bench":     {Bench: "no-such-bench", System: "tsoper"},
		"system":    {Bench: "radix", System: "no-such-system"},
		"scale":     {Bench: "radix", System: "tsoper", Scale: -1},
		"scheduler": {Bench: "radix", System: "tsoper", Scheduler: "fifo"},
		"fault":     {Bench: "radix", System: "tsoper", FaultPreset: "no-such-preset"},
	} {
		_, err := c.Submit(ctx, spec)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %v", name, err)
		}
	}
}

// A job with an injected fault plan runs, completes, and caches under a
// different key than the fault-free run.
func TestFaultPresetJob(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	plain := smallSpec(23)
	faulty := smallSpec(23)
	faulty.FaultPreset = "nvm-transient"
	keyP, err := plain.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	keyF, err := faulty.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if keyP == keyF {
		t.Fatal("fault preset did not change the cache key")
	}
	if _, _, err := c.Run(ctx, faulty); err != nil {
		t.Fatalf("faulty run: %v", err)
	}
}
