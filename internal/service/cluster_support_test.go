package service_test

// Tests for the service surface the cluster gateway depends on: the health
// document (node identity + drain state), the cache-read endpoint that
// powers peer cache-fill, the eviction counter, and the per-state job
// gauges.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/service"
)

// TestHealthDocument: /healthz carries node identity and drain state — the
// two facts a gateway's prober needs to tell "route compute here" from
// "cache reads only".
func TestHealthDocument(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, QueueDepth: 8, NodeID: "shard-7"})
	ctx := context.Background()

	hs, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if hs.Node != "shard-7" || hs.State != "ok" {
		t.Errorf("health = %+v, want node shard-7 state ok", hs)
	}

	srv.StartDrain()
	hs, err = c.Health(ctx)
	if err != nil {
		t.Fatalf("health while draining: %v", err)
	}
	if hs.State != "draining" {
		t.Errorf("state = %q, want draining", hs.State)
	}
	// The legacy liveness check must still fail while draining — the CI
	// smoke's curl -sf contract.
	if err := c.Healthz(ctx); err == nil {
		t.Error("Healthz must error on a draining node")
	}
}

// TestNodeIDDefault: an unconfigured node identifies as node-0 rather than
// an empty string, so single-node deployments still produce routable IDs.
func TestNodeIDDefault(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 8})
	hs, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Node != "node-0" {
		t.Errorf("default node ID = %q, want node-0", hs.Node)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Node != "node-0" {
		t.Errorf("metrics node = %q, want node-0", m.Node)
	}
}

// TestCacheReadEndpoint: GET /v1/cache/{hash} returns the exact result
// bytes for a computed key, a clean 404 for an unknown one, and keeps
// serving while the node drains — that last property is what lets a
// gateway drain a node without losing its cache contents.
func TestCacheReadEndpoint(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	body, st, err := c.Run(ctx, smallSpec(71))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got, ok, err := c.CacheGet(ctx, st.Key)
	if err != nil || !ok {
		t.Fatalf("CacheGet(%s) = ok=%v err=%v, want hit", st.Key, ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("cache read returned %d bytes, result was %d — must be byte-identical", len(got), len(body))
	}

	if _, ok, err := c.CacheGet(ctx, "sha256:0000"); err != nil || ok {
		t.Errorf("unknown key: ok=%v err=%v, want clean miss", ok, err)
	}

	srv.StartDrain()
	got2, ok, err := c.CacheGet(ctx, st.Key)
	if err != nil || !ok {
		t.Fatalf("CacheGet while draining: ok=%v err=%v, want hit", ok, err)
	}
	if !bytes.Equal(got2, body) {
		t.Error("draining cache read returned different bytes")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two hits (before and during drain) and one miss crossed the endpoint.
	if m.Cache.PeerReads != 2 || m.Cache.PeerReadMisses != 1 {
		t.Errorf("peer reads = %d / misses = %d, want 2 / 1", m.Cache.PeerReads, m.Cache.PeerReadMisses)
	}
}

// TestEvictionCounter: a cache squeezed past capacity reports its
// evictions, so operators can tell "low hit rate" from "cache too small".
func TestEvictionCounter(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueDepth: 16, CacheEntries: 2})
	ctx := context.Background()
	for seed := int64(81); seed < 86; seed++ {
		if _, _, err := c.Run(ctx, smallSpec(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct results through a 2-entry LRU: at least 3 evictions.
	if m.Cache.Evictions < 3 {
		t.Errorf("evictions = %d, want >= 3", m.Cache.Evictions)
	}
}

// TestJobGauges: the queued/running gauges rise while work is in flight
// and return exactly to zero once the queue empties — a leaked gauge
// would eventually convince a gateway the node is permanently loaded.
func TestJobGauges(t *testing.T) {
	srv, c := startServer(t, service.Config{Workers: 1, QueueDepth: 16})
	ctx := context.Background()

	// The first job is deliberately slow (scale 3 ≈ 200ms of simulation) so
	// it pins the single worker while the polls below run: a Submit round
	// trip itself costs ~15ms (the cache key hashes the generated profile),
	// so a backlog of instant jobs can fully drain during the submissions —
	// which made an earlier version of this test flaky.
	slow := service.JobSpec{Bench: "radix", System: "tsoper", Scale: 3, Seed: 97}
	st, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	ids := []string{st.ID}
	for i := 0; i < 3; i++ {
		st, err := c.Submit(ctx, smallSpec(int64(91+i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	sawLoad := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		hs := srv.Health()
		if hs.Queued+hs.Running > 0 {
			sawLoad = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawLoad {
		t.Error("gauges never showed in-flight work for a 4-deep backlog")
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	// Terminal states must return both gauges to zero.
	waitSettle(t, 2*time.Second, func() bool {
		hs := srv.Health()
		return hs.Queued == 0 && hs.Running == 0
	})
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsQueued != 0 || m.JobsRunning != 0 {
		t.Errorf("gauges after completion: queued=%d running=%d, want 0/0", m.JobsQueued, m.JobsRunning)
	}
}

func waitSettle(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
