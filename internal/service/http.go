package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/program"
)

// The HTTP surface:
//
//	POST   /v1/jobs             submit a JobSpec; 200 on cache hit (result
//	                            ready), 202 queued/deduped, 400 bad spec,
//	                            429 + Retry-After queue full, 503 draining
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result document (the run's Results snapshot
//	                            JSON); 202 while pending, 500 if failed
//	GET    /v1/jobs/{id}/events SSE: progress samples, then a state event
//	DELETE /v1/jobs/{id}        cancel a queued job; 409 if running
//	GET    /v1/cache/{hash}     raw cached result bytes for a content
//	                            address; 404 on miss. Served even while
//	                            draining (peer cache-fill).
//	GET    /healthz             HealthStatus JSON; 200 ok / 503 draining
//	GET    /metrics             MetricsSnapshot JSON
type httpHandler struct {
	s   *Server
	mux *http.ServeMux
}

func newHTTPHandler(s *Server) *httpHandler {
	h := &httpHandler{s: s, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/jobs", h.submit)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	h.mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	h.mux.HandleFunc("GET /v1/jobs/{id}/events", h.events)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	h.mux.HandleFunc("GET /v1/cache/{hash}", h.cacheGet)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	return h
}

// ServeHTTP implements http.Handler on the server.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (h *httpHandler) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	j, outcome, err := h.s.submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch outcome {
	case outcomeCacheHit:
		writeJSON(w, http.StatusOK, h.s.status(j, false))
	case outcomeQueued:
		writeJSON(w, http.StatusAccepted, h.s.status(j, false))
	case outcomeDeduped:
		writeJSON(w, http.StatusAccepted, h.s.status(j, true))
	case outcomeQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(int(h.s.retryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs)", h.s.queue.Cap())
	case outcomeOverBudget:
		// Unlike queue-full, this is not transient: the same program will be
		// rejected again, so no Retry-After — the body carries the estimate
		// so the client can right-size the program instead.
		writeJSON(w, http.StatusTooManyRequests, overBudgetResponse{
			Error:    fmt.Sprintf("program estimated at %d trace ops, over the %d-op admission budget", j.plan.est.Ops, h.s.cfg.MaxProgramOps),
			Estimate: j.plan.est,
			Budget:   h.s.cfg.MaxProgramOps,
		})
	case outcomeDraining:
		// The node is on its way out; Retry-After tells a direct client to
		// back off briefly, and a gateway to reroute the job elsewhere.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
	}
}

// cacheGet serves the raw result bytes for a content address — the peer
// cache-fill path: before recomputing, a gateway asks a job's replica
// candidates for an existing result. Deliberately available while draining.
func (h *httpHandler) cacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	body, ok := h.s.cacheRead(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tsoper-Key", key)
	w.Header().Set("X-Tsoper-Cache", "hit")
	_, _ = w.Write(body)
}

// overBudgetResponse is the 429 body for cost-rejected program jobs.
type overBudgetResponse struct {
	Error    string           `json:"error"`
	Estimate program.Estimate `json:"estimate"`
	Budget   int              `json:"budget"`
}

func (h *httpHandler) job(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := h.s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (h *httpHandler) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := h.job(w, r); ok {
		writeJSON(w, http.StatusOK, h.s.status(j, false))
	}
}

func (h *httpHandler) result(w http.ResponseWriter, r *http.Request) {
	j, ok := h.job(w, r)
	if !ok {
		return
	}
	st := h.s.status(j, false)
	switch jobState(st.State) {
	case stateDone:
		h.s.mu.Lock()
		body := j.result
		h.s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tsoper-Key", st.Key)
		if st.CacheHit {
			w.Header().Set("X-Tsoper-Cache", "hit")
		}
		_, _ = w.Write(body)
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", st.Error)
	case stateCanceled:
		writeError(w, http.StatusGone, "job canceled")
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (h *httpHandler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	canceled, state, ok := h.s.cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !canceled && state == stateRunning {
		writeError(w, http.StatusConflict, "job is running and cannot be canceled")
		return
	}
	j, _ := h.s.lookup(id)
	writeJSON(w, http.StatusOK, h.s.status(j, false))
}

// events streams SSE: one "progress" event per sample while the job runs,
// then a single "state" event carrying the terminal JobStatus.
func (h *httpHandler) events(w http.ResponseWriter, r *http.Request) {
	j, ok := h.job(w, r)
	if !ok {
		return
	}
	// Subscribe before the headers go out, so a client that has seen the
	// 200 is guaranteed a live subscription.
	ch, unsubscribe := h.s.subscribe(j)
	defer unsubscribe()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}

	send := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		if canFlush {
			flusher.Flush()
		}
	}

	for {
		select {
		case p := <-ch:
			send("progress", p)
		case <-j.done:
			// Drain any samples published before the terminal transition.
			for {
				select {
				case p := <-ch:
					send("progress", p)
					continue
				default:
				}
				break
			}
			send("state", h.s.status(j, false))
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (h *httpHandler) healthz(w http.ResponseWriter, _ *http.Request) {
	st := h.s.Health()
	code := http.StatusOK
	if st.State != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (h *httpHandler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.s.Metrics())
}
