package service

import (
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the eviction victim
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestResultCacheRePut(t *testing.T) {
	c := newResultCache(4)
	c.Put("k", []byte("v"))
	c.Put("k", []byte("v"))
	if c.Len() != 1 {
		t.Fatalf("re-put duplicated the entry: len %d", c.Len())
	}
}

func TestResultCacheBounded(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 8 {
		t.Fatalf("cache grew past its bound: %d", c.Len())
	}
}
