// Checkpoint warm-start for program jobs.
//
// A program whose per-core instruction streams extend another program's is
// a *superprogram*: because each core lowers through one continuous
// RNG/cursor stream, the prefix program's compiled op streams are strict
// prefixes of the superprogram's, so the two machines are in identical
// states at any cycle before a prefix core completes. The service exploits
// this: every program run emits periodic checkpoints, and the last
// execution-phase blob is stored in the result cache under
// "ckpt:" + the job's content address. A later job whose program truncates
// to that prefix (uniform per-core instruction count) probes those keys
// and resumes from the blob instead of starting at cycle 0.
//
// Soundness does not rest on the prefix heuristic: machine.Restore replays
// the new job's own workload to the checkpoint cycle and byte-compares the
// state, so an unsound match (a prefix core had already completed, a
// paired cross-core op was split, a different seed) is rejected with a
// typed error and the job falls back to a cold run. The heuristic only
// decides what is worth trying.
package service

import (
	"errors"

	"repro/internal/ckpt"
	"repro/internal/program"
)

// ckptKeyPrefix namespaces checkpoint blobs in the result cache.
const ckptKeyPrefix = "ckpt:"

// prefixPrograms enumerates the canonical uniform truncations of p,
// longest first: for each level k below the longest core's instruction
// count, every core keeps min(k, len) instructions. Levels whose
// truncation fails validation are skipped by the caller (Hash errors).
func prefixPrograms(p *program.Program) []*program.Program {
	c, err := p.Canonical()
	if err != nil {
		return nil
	}
	maxLen := 0
	for _, cp := range c.Cores {
		if len(cp.Instrs) > maxLen {
			maxLen = len(cp.Instrs)
		}
	}
	out := make([]*program.Program, 0, maxLen-1)
	for k := maxLen - 1; k >= 1; k-- {
		q := &program.Program{Version: c.Version, Name: c.Name}
		for _, cp := range c.Cores {
			n := k
			if n > len(cp.Instrs) {
				n = len(cp.Instrs)
			}
			q.Cores = append(q.Cores, program.CoreProg{
				Instrs: append([]program.Instr(nil), cp.Instrs[:n]...),
			})
		}
		out = append(out, q)
	}
	return out
}

// lookupWarmStart probes the cache for a checkpoint blob of any prefix of
// the plan's program (longest prefix first) under the same seed and
// config. It returns the first blob found.
func (s *Server) lookupWarmStart(p plan) ([]byte, bool) {
	if p.prog == nil {
		return nil, false
	}
	for _, pp := range prefixPrograms(p.prog) {
		key, err := programCacheKey(pp, p.seed, p.cfg)
		if err != nil {
			continue
		}
		if blob, ok := s.cache.Get(ckptKeyPrefix + key); ok {
			return blob, true
		}
	}
	return nil, false
}

// isCheckpointErr reports whether err is one of the typed checkpoint
// failures — the signal to retry cold rather than fail the job.
func isCheckpointErr(err error) bool {
	return errors.Is(err, ckpt.ErrFormat) || errors.Is(err, ckpt.ErrVersion) ||
		errors.Is(err, ckpt.ErrConfigMismatch) || errors.Is(err, ckpt.ErrDivergence)
}
