package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the service's own instrumentation (as opposed to the
// simulated machines'): admission counters, cache effectiveness, and a
// bounded reservoir of job latencies for percentile reporting.
type metrics struct {
	submitted      atomic.Uint64
	completed      atomic.Uint64
	failed         atomic.Uint64
	canceled       atomic.Uint64
	rejected       atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	dedups         atomic.Uint64
	peerReads      atomic.Uint64 // cache-read endpoint hits (peer cache-fill)
	peerReadMisses atomic.Uint64
	// warmStarts counts program jobs resumed from a cached prefix
	// checkpoint; warmStartRejects counts blobs the replay-verification
	// refused (the job then ran cold).
	warmStarts       atomic.Uint64
	warmStartRejects atomic.Uint64

	mu sync.Mutex
	// lat is a ring of the most recent completed-job latencies; count and
	// sum cover the full history so the mean stays exact.
	lat      []time.Duration
	latNext  int
	latCount uint64
	latSum   time.Duration
	latMax   time.Duration
}

// latencyWindow bounds the percentile reservoir; percentiles reflect the
// most recent window, which is what capacity planning wants anyway.
const latencyWindow = 4096

func newMetrics() *metrics {
	return &metrics{lat: make([]time.Duration, 0, latencyWindow)}
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, d)
	} else {
		m.lat[m.latNext] = d
		m.latNext = (m.latNext + 1) % latencyWindow
	}
	m.latCount++
	m.latSum += d
	if d > m.latMax {
		m.latMax = d
	}
}

func (m *metrics) meanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latCount == 0 {
		return 0
	}
	return m.latSum / time.Duration(m.latCount)
}

// LatencyStats summarizes completed-job wall latency.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// CacheStats summarizes the content-addressed cache.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	// Dedups counts submissions coalesced onto identical in-flight jobs
	// (singleflight) — work avoided before it ever reached the cache.
	Dedups  uint64  `json:"dedups"`
	HitRate float64 `json:"hit_rate"`
	// Evictions counts entries dropped by LRU pressure; a high rate means
	// the cache is undersized for the working set.
	Evictions uint64 `json:"evictions"`
	// PeerReads / PeerReadMisses count cache-read endpoint lookups
	// (GET /v1/cache/{hash}) — how often cluster peers fill from this node.
	PeerReads      uint64 `json:"peer_reads"`
	PeerReadMisses uint64 `json:"peer_read_misses"`
	// WarmStarts counts program jobs resumed from a cached prefix
	// checkpoint; WarmStartRejects counts blobs rejected by
	// replay-verification (those jobs ran cold and stayed correct).
	WarmStarts       uint64 `json:"warm_starts"`
	WarmStartRejects uint64 `json:"warm_start_rejects"`
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	Node       string `json:"node"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`
	Draining   bool   `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	// JobsQueued / JobsRunning are point-in-time gauges of non-terminal
	// jobs, the numbers a gateway watches to judge routing decisions.
	JobsQueued  int `json:"jobs_queued"`
	JobsRunning int `json:"jobs_running"`

	Cache   CacheStats   `json:"cache"`
	Latency LatencyStats `json:"latency"`
}

// HealthStatus is the /healthz document. State is "ok" or "draining"; a
// draining node still serves cache reads and finishes accepted work, so a
// gateway treats it as alive-but-not-admitting rather than down.
type HealthStatus struct {
	Node    string `json:"node"`
	State   string `json:"state"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

// Health snapshots node identity and drain state for /healthz.
func (s *Server) Health() HealthStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := HealthStatus{Node: s.cfg.NodeID, State: "ok", Queued: s.nQueued, Running: s.nRunning}
	if s.draining {
		st.State = "draining"
	}
	return st
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Metrics snapshots the service counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := s.metrics
	s.mu.Lock()
	queued, running, draining := s.nQueued, s.nRunning, s.draining
	s.mu.Unlock()
	snap := MetricsSnapshot{
		Node:          s.cfg.NodeID,
		QueueDepth:    s.queue.Depth(),
		QueueCap:      s.queue.Cap(),
		Workers:       s.cfg.Workers,
		Draining:      draining,
		JobsSubmitted: m.submitted.Load(),
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsCanceled:  m.canceled.Load(),
		JobsRejected:  m.rejected.Load(),
		JobsQueued:    queued,
		JobsRunning:   running,
		Cache: CacheStats{
			Entries:          s.cache.Len(),
			Hits:             m.cacheHits.Load(),
			Misses:           m.cacheMisses.Load(),
			Dedups:           m.dedups.Load(),
			Evictions:        s.cache.Evictions(),
			PeerReads:        m.peerReads.Load(),
			PeerReadMisses:   m.peerReadMisses.Load(),
			WarmStarts:       m.warmStarts.Load(),
			WarmStartRejects: m.warmStartRejects.Load(),
		},
	}
	if total := snap.Cache.Hits + snap.Cache.Misses; total > 0 {
		snap.Cache.HitRate = float64(snap.Cache.Hits) / float64(total)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	snap.Latency.Count = m.latCount
	if m.latCount > 0 {
		snap.Latency.MeanMS = ms(m.latSum / time.Duration(m.latCount))
		snap.Latency.MaxMS = ms(m.latMax)
		window := append([]time.Duration(nil), m.lat...)
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		snap.Latency.P50MS = ms(percentile(window, 50))
		snap.Latency.P90MS = ms(percentile(window, 90))
		snap.Latency.P99MS = ms(percentile(window, 99))
	}
	return snap
}

// percentile reads the p-th percentile from a sorted window (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
