package service

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: key = the job's
// content address (see cacheKey), value = the result document bytes.
// Because the simulator is deterministic and scheduler-independent, a hit
// is byte-identical to what re-running the job would produce — the cache
// is sound, not heuristic. Bounded LRU keeps residency predictable.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result bytes and refreshes recency.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a result, evicting the least recently used beyond capacity.
// Re-putting an existing key refreshes it (the bytes are identical by
// construction).
func (c *resultCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len is the resident entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions is the cumulative count of entries dropped by LRU pressure.
func (c *resultCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
