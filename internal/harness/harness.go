// Package harness regenerates every table and figure of the paper's
// evaluation (§V): Figure 11 (execution time vs. baseline), Figure 12 (the
// BSP stepping stones), Figure 13 (AG-size cumulative histogram), Figure 14
// (coherence vs. persistence write traffic), Figure 15 (ocean_cp SFR/AG
// size behavior), the §V-B sharing-list length statistics, the Table I
// configuration, the SLICC protocol-complexity comparison, and the ablation
// sweeps DESIGN.md calls out (AGB sizing, eviction-buffer depth, AGB
// organization, BSP epoch size).
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options controls experiment scale and reproducibility.
type Options struct {
	// Scale multiplies each benchmark's OpsPerCore (1.0 = full size).
	Scale float64
	// Seed drives workload generation.
	Seed int64
	// Benchmarks restricts the run (nil = the full 22-benchmark roster).
	Benchmarks []string
	// Parallel runs benchmark×system simulations concurrently.
	Parallel bool
	// Workers caps the simulation worker count when positive; it overrides
	// Parallel (Workers 1 forces serial, Workers n runs n-wide).
	Workers int
	// Scheduler selects the engine's event queue (default the timing wheel).
	Scheduler sim.SchedulerKind
	// Protocol selects the coherence backend (default SLC). Applied after
	// any explicit Config, so it also overrides its Coherence field.
	Protocol machine.CoherenceKind
	// Timeout, when positive, arms the machine stall watchdog with this
	// progress horizon (in simulation cycles) on every run, so a wedged
	// simulation fails with a StallError instead of hanging its worker
	// forever. It overrides Config.WatchdogHorizon.
	Timeout sim.Time

	// CheckpointEvery, when positive, pauses each run every that many
	// cycles and hands a checkpoint blob to OnCheckpoint (plus a final one
	// at completion). Checkpoints do not perturb results.
	CheckpointEvery sim.Time
	// OnCheckpoint receives each checkpoint blob; ignored when
	// CheckpointEvery is 0.
	OnCheckpoint func(blob []byte)
	// ResumeFrom, when non-empty, restores the run from a checkpoint blob
	// instead of starting at cycle 0 (replay-verified against the config
	// and workload).
	ResumeFrom []byte
}

// DefaultOptions returns full-scale, deterministic, parallel options.
func DefaultOptions() Options {
	return Options{Scale: 1.0, Seed: 42, Parallel: true}
}

func (o Options) benchmarks() []trace.Profile {
	all := trace.Benchmarks()
	if len(o.Benchmarks) == 0 {
		return all
	}
	var out []trace.Profile
	for _, name := range o.Benchmarks {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// RunOne simulates one benchmark under one system with the Table I
// configuration.
func RunOne(bench trace.Profile, kind machine.SystemKind, o Options) *machine.Results {
	return RunConfig(bench, machine.TableI(kind), o)
}

// RunConfig simulates one benchmark under an explicit configuration. It
// panics on configuration errors and wedged runs — the job-shaped
// RunConfigChecked returns those as errors instead.
func RunConfig(bench trace.Profile, cfg machine.Config, o Options) *machine.Results {
	r, err := RunConfigChecked(bench, cfg, o)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return r
}

// RunOneChecked is the job-shaped RunOne: configuration errors and wedged
// runs (watchdog stalls, deadlocks) come back as errors, so a long-lived
// worker can fail one job without dying.
func RunOneChecked(bench trace.Profile, kind machine.SystemKind, o Options) (*machine.Results, error) {
	return RunConfigChecked(bench, machine.TableI(kind), o)
}

// RunConfigChecked is the job-shaped RunConfig. With Options.Timeout set it
// arms the stall watchdog, bounding how long a wedged simulation can hold a
// worker.
func RunConfigChecked(bench trace.Profile, cfg machine.Config, o Options) (*machine.Results, error) {
	if o.Scheduler != sim.SchedulerWheel {
		cfg.Scheduler = o.Scheduler
	}
	if o.Protocol != machine.CoherenceSLC {
		cfg.Coherence = o.Protocol
	}
	if o.Timeout > 0 {
		cfg.WatchdogHorizon = o.Timeout
	}
	w := trace.Generate(bench.Scale(o.scale()), cfg.Cores, o.Seed)
	return runWorkload(cfg, w, o)
}

// runWorkload drives one workload on a fresh or checkpoint-restored
// machine, emitting periodic checkpoints when asked.
func runWorkload(cfg machine.Config, w *trace.Workload, o Options) (*machine.Results, error) {
	var m *machine.Machine
	var err error
	if len(o.ResumeFrom) > 0 {
		m, err = machine.Restore(cfg, w, o.ResumeFrom)
	} else if m, err = machine.New(cfg); err == nil {
		m.Start(w)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if o.CheckpointEvery == 0 {
		if _, err := m.Advance(sim.MaxTime); err != nil {
			return nil, err
		}
		return m.Results(), nil
	}
	limit := m.Now() + o.CheckpointEvery
	for {
		done, err := m.Advance(limit)
		if err != nil {
			return nil, err
		}
		if o.OnCheckpoint != nil {
			blob, err := m.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("harness: %w", err)
			}
			o.OnCheckpoint(blob)
		}
		if done {
			return m.Results(), nil
		}
		limit += o.CheckpointEvery
	}
}

// Cell identifies one simulation in a sweep.
type Cell struct {
	Bench  trace.Profile
	System machine.SystemKind
}

// RunMatrix simulates every benchmark × system pair, optionally in
// parallel (each machine is fully independent and deterministic).
func RunMatrix(benches []trace.Profile, systems []machine.SystemKind, o Options) map[string]map[machine.SystemKind]*machine.Results {
	type job struct {
		cell Cell
		res  *machine.Results
	}
	jobs := make([]job, 0, len(benches)*len(systems))
	for _, b := range benches {
		for _, s := range systems {
			jobs = append(jobs, job{cell: Cell{Bench: b, System: s}})
		}
	}
	workers := 1
	if o.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > 0 {
		workers = o.Workers
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				jobs[i].res = RunOne(jobs[i].cell.Bench, jobs[i].cell.System, o)
			}
		}()
	}
	for i := range jobs {
		ch <- i
	}
	close(ch)
	wg.Wait()

	out := make(map[string]map[machine.SystemKind]*machine.Results)
	for _, j := range jobs {
		name := j.cell.Bench.Name
		if out[name] == nil {
			out[name] = make(map[machine.SystemKind]*machine.Results)
		}
		out[name][j.cell.System] = j.res
	}
	return out
}

// geomean-free mean matching the paper's "on average" phrasing.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxF(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
