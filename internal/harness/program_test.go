package harness

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/trace"
)

// libraryIdentityBenches are the golden library programs that byte-reproduce
// legacy synthetic profiles (one per workload archetype).
var libraryIdentityBenches = []string{"radix", "ocean_cp", "dedup", "swaptions"}

// snapJSON serializes a result snapshot for byte comparison.
func snapJSON(t *testing.T, r *machine.Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// scaledIdentityProgram loads a golden identity program and rewrites its
// profile instructions to the given scale, mirroring Options.Scale on the
// legacy path so the test runs at CI-friendly size.
func scaledIdentityProgram(t *testing.T, name string, scale float64) *program.Program {
	t.Helper()
	p, err := program.ByName(name)
	if err != nil {
		t.Fatalf("library %q: %v", name, err)
	}
	for c := range p.Cores {
		for i := range p.Cores[c].Instrs {
			in := &p.Cores[c].Instrs[i]
			if in.Op != program.OpProfile {
				t.Fatalf("library %q is not a pure identity program (found %q)", name, in.Op)
			}
			in.Scale = scale
		}
	}
	return p
}

// TestProgramSnapshotIdentity is the acceptance gate for the golden
// library: running an identity program end to end yields a byte-identical
// Results.Snapshot() to running its profile the legacy way — same machine,
// same seed, for both the TSOPER and baseline systems.
func TestProgramSnapshotIdentity(t *testing.T) {
	t.Parallel()
	const scale = 0.1
	o := Options{Scale: scale, Seed: 42}
	systems := []machine.SystemKind{machine.TSOPER, machine.Baseline}
	for i, name := range libraryIdentityBenches {
		name, system := name, systems[i%len(systems)]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prof, ok := trace.ByName(name)
			if !ok {
				t.Fatalf("no profile %q", name)
			}
			want, err := RunOneChecked(prof, system, o)
			if err != nil {
				t.Fatalf("profile run: %v", err)
			}

			p := scaledIdentityProgram(t, name, scale)
			got, err := RunProgramChecked(p, system, o)
			if err != nil {
				t.Fatalf("program run: %v", err)
			}

			ws := snapJSON(t, want)
			gs := snapJSON(t, got)
			if !bytes.Equal(ws, gs) {
				t.Fatalf("snapshots differ for %s on %v:\nprofile: %s\nprogram: %s", name, system, ws, gs)
			}
		})
	}
}

func TestRunProgramChecked(t *testing.T) {
	t.Parallel()
	p, err := program.ByName("producer-consumer-ring")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgramChecked(p, machine.TSOPER, Options{Seed: 1})
	if err != nil {
		t.Fatalf("RunProgramChecked: %v", err)
	}
	if r.Cycles == 0 {
		t.Fatalf("program run reported zero cycles")
	}
	if r.Snapshot().Benchmark != "producer-consumer-ring" {
		t.Fatalf("snapshot benchmark %q", r.Snapshot().Benchmark)
	}

	// Determinism across runs.
	r2, err := RunProgramChecked(p, machine.TSOPER, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapJSON(t, r), snapJSON(t, r2)) {
		t.Fatalf("same seed produced different snapshots")
	}

	// Invalid programs fail as errors, not panics.
	bad := &program.Program{Version: 1, Name: "bad", Cores: []program.CoreProg{
		{Instrs: []program.Instr{{Op: "warp"}}},
	}}
	if _, err := RunProgramChecked(bad, machine.TSOPER, Options{}); err == nil {
		t.Fatalf("invalid program ran")
	}
}

func TestEstimateProgram(t *testing.T) {
	t.Parallel()
	p, err := program.ByName("log-structured-writer")
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateProgram(p, machine.TableI(machine.TSOPER))
	if err != nil {
		t.Fatalf("EstimateProgram: %v", err)
	}
	if est.Ops <= 0 || est.Cycles == 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
}

func BenchmarkProgramRun(b *testing.B) {
	p, err := program.ByName("producer-consumer-ring")
	if err != nil {
		b.Fatal(err)
	}
	est, err := EstimateProgram(p, machine.TableI(machine.TSOPER))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(est.Ops))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgramChecked(p, machine.TSOPER, Options{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
