package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig11 reproduces Figure 11: application execution time for HW-RP, BSP,
// STW, and TSOPER, normalized to the SLC baseline.
type Fig11 struct {
	Rows    []Fig11Row
	Avg     map[machine.SystemKind]float64
	Max     map[machine.SystemKind]float64
	Systems []machine.SystemKind
}

// Fig11Row is one benchmark's normalized execution times.
type Fig11Row struct {
	Bench      string
	Normalized map[machine.SystemKind]float64
}

// Figure11 runs the experiment.
func Figure11(o Options) *Fig11 {
	systems := []machine.SystemKind{machine.Baseline, machine.HWRP, machine.BSP, machine.STW, machine.TSOPER}
	res := RunMatrix(o.benchmarks(), systems, o)
	fig := &Fig11{
		Avg:     map[machine.SystemKind]float64{},
		Max:     map[machine.SystemKind]float64{},
		Systems: systems[1:],
	}
	perSys := map[machine.SystemKind][]float64{}
	for _, b := range o.benchmarks() {
		row := Fig11Row{Bench: b.Name, Normalized: map[machine.SystemKind]float64{}}
		base := float64(res[b.Name][machine.Baseline].Cycles)
		for _, s := range fig.Systems {
			n := float64(res[b.Name][s].Cycles) / base
			row.Normalized[s] = n
			perSys[s] = append(perSys[s], n)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for _, s := range fig.Systems {
		fig.Avg[s] = mean(perSys[s])
		fig.Max[s] = maxF(perSys[s])
	}
	return fig
}

func (f *Fig11) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: execution time normalized to SLC baseline\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %11s", s)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14s", r.Bench)
		for _, s := range f.Systems {
			fmt.Fprintf(&b, " %11.3f", r.Normalized[s])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "average")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %11.3f", f.Avg[s])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-14s", "max")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %11.3f", f.Max[s])
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig12 reproduces Figure 12: BSP, BSP+SLC, BSP+SLC+AGB relative to TSOPER.
type Fig12 struct {
	Rows    []Fig11Row // same shape: normalized-to-TSOPER values
	Avg     map[machine.SystemKind]float64
	Max     map[machine.SystemKind]float64
	Systems []machine.SystemKind
}

// Figure12 runs the stepping-stone comparison.
func Figure12(o Options) *Fig12 {
	systems := []machine.SystemKind{machine.BSP, machine.BSPSLC, machine.BSPSLCAGB, machine.TSOPER}
	res := RunMatrix(o.benchmarks(), systems, o)
	fig := &Fig12{
		Avg:     map[machine.SystemKind]float64{},
		Max:     map[machine.SystemKind]float64{},
		Systems: systems[:3],
	}
	perSys := map[machine.SystemKind][]float64{}
	for _, b := range o.benchmarks() {
		row := Fig11Row{Bench: b.Name, Normalized: map[machine.SystemKind]float64{}}
		base := float64(res[b.Name][machine.TSOPER].Cycles)
		for _, s := range fig.Systems {
			n := float64(res[b.Name][s].Cycles) / base
			row.Normalized[s] = n
			perSys[s] = append(perSys[s], n)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for _, s := range fig.Systems {
		fig.Avg[s] = mean(perSys[s])
		fig.Max[s] = maxF(perSys[s])
	}
	return fig
}

func (f *Fig12) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: execution time normalized to TSOPER\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %11s", s)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14s", r.Bench)
		for _, s := range f.Systems {
			fmt.Fprintf(&b, " %11.3f", r.Normalized[s])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "average")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %11.3f", f.Avg[s])
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig13 reproduces Figure 13: the cumulative histogram of atomic-group
// sizes under TSOPER, pooled over all benchmarks, plus per-benchmark CDFs.
type Fig13 struct {
	Bounds []uint64
	Pooled []stats.CumBin
	Per    map[string][]stats.CumBin
	// FracUnder10 and FracOver80 are the two headline numbers: the paper
	// reports ~90% of AGs under 10 lines and <1% over 80.
	FracUnder10 float64
	FracOver80  float64
}

// Figure13 runs the AG-size study.
func Figure13(o Options) *Fig13 {
	res := RunMatrix(o.benchmarks(), []machine.SystemKind{machine.TSOPER}, o)
	bounds := []uint64{1, 2, 5, 10, 20, 40, 80, 160}
	pooled := stats.NewDist("pooled")
	fig := &Fig13{Bounds: bounds, Per: map[string][]stats.CumBin{}}
	for _, b := range o.benchmarks() {
		d := res[b.Name][machine.TSOPER].AGSizes
		fig.Per[b.Name] = d.CumHist(bounds)
		// Pool the exact per-group sizes across benchmarks.
		for _, g := range res[b.Name][machine.TSOPER].Groups {
			if g.Size() > 0 {
				pooled.Observe(uint64(g.Size()))
			}
		}
	}
	fig.Pooled = pooled.CumHist(bounds)
	fig.FracUnder10 = pooled.FracAtMost(10)
	fig.FracOver80 = 1 - pooled.FracAtMost(80)
	return fig
}

func (f *Fig13) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: AG size cumulative histogram (TSOPER, all benchmarks)\n")
	for _, bin := range f.Pooled {
		fmt.Fprintf(&b, "  <= %4d lines: %6.2f%%\n", bin.Bound, bin.Frac*100)
	}
	fmt.Fprintf(&b, "  fraction <= 10 lines: %.1f%%   fraction > 80 lines: %.2f%%\n",
		f.FracUnder10*100, f.FracOver80*100)
	return b.String()
}

// Fig14 reproduces Figure 14: coherence vs. persistence write traffic per
// system, normalized to the baseline's coherence write volume.
type Fig14 struct {
	Rows    []Fig14Row
	Systems []machine.SystemKind
}

// Fig14Row is one benchmark's normalized traffic split.
type Fig14Row struct {
	Bench     string
	Coherence map[machine.SystemKind]float64
	Persist   map[machine.SystemKind]float64
}

// Figure14 runs the traffic study.
func Figure14(o Options) *Fig14 {
	systems := []machine.SystemKind{machine.Baseline, machine.HWRP, machine.BSP, machine.STW, machine.TSOPER}
	res := RunMatrix(o.benchmarks(), systems, o)
	fig := &Fig14{Systems: systems[1:]}
	for _, b := range o.benchmarks() {
		base := float64(res[b.Name][machine.Baseline].CoherenceWrites)
		if base == 0 {
			base = 1
		}
		row := Fig14Row{
			Bench:     b.Name,
			Coherence: map[machine.SystemKind]float64{},
			Persist:   map[machine.SystemKind]float64{},
		}
		for _, s := range fig.Systems {
			row.Coherence[s] = float64(res[b.Name][s].CoherenceWrites) / base
			row.Persist[s] = float64(res[b.Name][s].PersistWrites) / base
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

func (f *Fig14) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: write traffic normalized to baseline coherence writes\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, s := range f.Systems {
		fmt.Fprintf(&b, " %17s", s)
	}
	b.WriteString("   (coherence+persist)\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14s", r.Bench)
		for _, s := range f.Systems {
			fmt.Fprintf(&b, "     %5.2f + %5.2f", r.Coherence[s], r.Persist[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig15 reproduces Figure 15: ocean_cp's SFR sizes under HW-RP vs. AG sizes
// under TSOPER — size-over-time series and cumulative histograms.
type Fig15 struct {
	SFRTimeline *stats.Series
	AGTimeline  *stats.Series
	SFRHist     []stats.CumBin
	AGHist      []stats.CumBin
	// FracSFROne is the fraction of SFRs with <= 1 store (the paper: over
	// 90% of HW-RP's SFRs are single-store critical sections).
	FracSFROne float64
	// HWRPPersists and TSOPERPersists compare total persist volume.
	HWRPPersists, TSOPERPersists uint64
}

// Figure15 runs the ocean_cp case study.
func Figure15(o Options) *Fig15 {
	p, ok := trace.ByName("ocean_cp")
	if !ok {
		panic("harness: ocean_cp profile missing")
	}
	hw := RunOne(p, machine.HWRP, o)
	ts := RunOne(p, machine.TSOPER, o)
	bounds := []uint64{1, 2, 5, 10, 25, 100, 500, 2500}
	return &Fig15{
		SFRTimeline:    hw.SizeTimeline.Downsample(64),
		AGTimeline:     ts.SizeTimeline.Downsample(64),
		SFRHist:        hw.SFRStores.CumHist(bounds),
		AGHist:         ts.AGSizes.CumHist(bounds),
		FracSFROne:     hw.SFRStores.FracAtMost(1),
		HWRPPersists:   hw.PersistWrites,
		TSOPERPersists: ts.PersistWrites,
	}
}

func (f *Fig15) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: ocean_cp SFR (HW-RP) vs AG (TSOPER)\n")
	fmt.Fprintf(&b, "  SFRs with <= 1 store: %.1f%%\n", f.FracSFROne*100)
	fmt.Fprintf(&b, "  persist volume: HW-RP %d lines vs TSOPER %d lines (%.2fx)\n",
		f.HWRPPersists, f.TSOPERPersists, float64(f.HWRPPersists)/float64(maxU(f.TSOPERPersists, 1)))
	fmt.Fprintf(&b, "  SFR-size CDF:")
	for _, bin := range f.SFRHist {
		fmt.Fprintf(&b, "  <=%d:%.0f%%", bin.Bound, bin.Frac*100)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  AG-size  CDF:")
	for _, bin := range f.AGHist {
		fmt.Fprintf(&b, "  <=%d:%.0f%%", bin.Bound, bin.Frac*100)
	}
	b.WriteByte('\n')
	return b.String()
}

// ListLengths reproduces the §V-B sharing-list statistics: mean coherence
// list length vs. mean persist list length per benchmark.
type ListLengths struct {
	Rows []ListLengthRow
	// AvgCoherence and AvgPersist are roster-wide means (paper: <2 vs ~4).
	AvgCoherence, AvgPersist float64
}

// ListLengthRow is one benchmark's list lengths under TSOPER.
type ListLengthRow struct {
	Bench              string
	Coherence, Persist float64
}

// Lists runs the sharing-list length study.
func Lists(o Options) *ListLengths {
	res := RunMatrix(o.benchmarks(), []machine.SystemKind{machine.TSOPER}, o)
	out := &ListLengths{}
	var cs, ps []float64
	for _, b := range o.benchmarks() {
		r := res[b.Name][machine.TSOPER]
		out.Rows = append(out.Rows, ListLengthRow{
			Bench: b.Name, Coherence: r.CoherenceListLen, Persist: r.PersistListLen,
		})
		cs = append(cs, r.CoherenceListLen)
		ps = append(ps, r.PersistListLen)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Bench < out.Rows[j].Bench })
	out.AvgCoherence = mean(cs)
	out.AvgPersist = mean(ps)
	return out
}

func (l *ListLengths) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharing-list lengths under TSOPER (§V-B)\n")
	for _, r := range l.Rows {
		fmt.Fprintf(&b, "  %-14s coherence %5.2f   persist %5.2f\n", r.Bench, r.Coherence, r.Persist)
	}
	fmt.Fprintf(&b, "  %-14s coherence %5.2f   persist %5.2f\n", "average", l.AvgCoherence, l.AvgPersist)
	return b.String()
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
