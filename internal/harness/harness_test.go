package harness

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// tiny returns options that keep harness tests fast while exercising every
// code path: two contrasting benchmarks at a small scale.
func tiny() Options {
	return Options{Scale: 0.08, Seed: 3, Benchmarks: []string{"radix", "dedup"}, Parallel: true}
}

func TestRunMatrixShape(t *testing.T) {
	o := tiny()
	res := RunMatrix(o.benchmarks(), []machine.SystemKind{machine.Baseline, machine.TSOPER}, o)
	if len(res) != 2 {
		t.Fatalf("benchmarks: %d", len(res))
	}
	for name, m := range res {
		if len(m) != 2 {
			t.Fatalf("%s: systems %d", name, len(m))
		}
		for kind, r := range m {
			if r == nil || r.Cycles == 0 {
				t.Fatalf("%s/%v: empty result", name, kind)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	o := tiny()
	o.Parallel = true
	rp := RunMatrix(o.benchmarks(), []machine.SystemKind{machine.TSOPER}, o)
	o.Parallel = false
	rs := RunMatrix(o.benchmarks(), []machine.SystemKind{machine.TSOPER}, o)
	for name := range rp {
		if rp[name][machine.TSOPER].Cycles != rs[name][machine.TSOPER].Cycles {
			t.Fatalf("%s: parallel and serial runs diverge", name)
		}
	}
}

func TestFigure11(t *testing.T) {
	f := Figure11(tiny())
	if len(f.Rows) != 2 {
		t.Fatalf("rows: %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		for s, v := range r.Normalized {
			if v < 0.5 || v > 30 {
				t.Fatalf("%s/%v implausible normalization %f", r.Bench, s, v)
			}
		}
	}
	if f.Avg[machine.STW] <= f.Avg[machine.TSOPER] {
		t.Errorf("STW avg (%f) should exceed TSOPER avg (%f)", f.Avg[machine.STW], f.Avg[machine.TSOPER])
	}
	out := f.String()
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "average") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure12(t *testing.T) {
	f := Figure12(tiny())
	if len(f.Rows) != 2 {
		t.Fatalf("rows: %d", len(f.Rows))
	}
	if !strings.Contains(f.String(), "normalized to TSOPER") {
		t.Fatal("render missing header")
	}
}

func TestFigure13(t *testing.T) {
	f := Figure13(tiny())
	if f.FracUnder10 <= 0 || f.FracUnder10 > 1 {
		t.Fatalf("FracUnder10=%f", f.FracUnder10)
	}
	if f.FracOver80 > 0.05 {
		t.Fatalf("too many oversized AGs: %f (limit is 80)", f.FracOver80)
	}
	prev := 0.0
	for _, bin := range f.Pooled {
		if bin.Frac < prev {
			t.Fatal("pooled CDF not monotone")
		}
		prev = bin.Frac
	}
	if !strings.Contains(f.String(), "Figure 13") {
		t.Fatal("render missing header")
	}
}

func TestFigure14(t *testing.T) {
	f := Figure14(tiny())
	for _, r := range f.Rows {
		if r.Persist[machine.TSOPER] <= 0 {
			t.Fatalf("%s: TSOPER persist traffic missing", r.Bench)
		}
		if r.Coherence[machine.TSOPER] <= 0 {
			t.Fatalf("%s: TSOPER coherence traffic missing", r.Bench)
		}
	}
	if !strings.Contains(f.String(), "Figure 14") {
		t.Fatal("render missing header")
	}
}

func TestFigure15(t *testing.T) {
	o := tiny()
	o.Benchmarks = nil // Figure15 always runs ocean_cp
	f := Figure15(o)
	if f.FracSFROne < 0.5 {
		t.Errorf("expected mostly single-store SFRs, got %.2f", f.FracSFROne)
	}
	if f.HWRPPersists <= f.TSOPERPersists {
		t.Errorf("HW-RP persists (%d) should exceed TSOPER's (%d) on ocean_cp",
			f.HWRPPersists, f.TSOPERPersists)
	}
	if f.SFRTimeline.Len() == 0 || f.AGTimeline.Len() == 0 {
		t.Fatal("timelines empty")
	}
	if !strings.Contains(f.String(), "ocean_cp") {
		t.Fatal("render missing benchmark")
	}
}

func TestLists(t *testing.T) {
	l := Lists(tiny())
	if len(l.Rows) != 2 {
		t.Fatalf("rows: %d", len(l.Rows))
	}
	if l.AvgPersist < l.AvgCoherence {
		t.Errorf("persist lists (%.2f) should be at least as long as coherence lists (%.2f)",
			l.AvgPersist, l.AvgCoherence)
	}
	if !strings.Contains(l.String(), "average") {
		t.Fatal("render missing average")
	}
}

func TestAGBSweep(t *testing.T) {
	o := tiny()
	a := AGBSweep(o)
	if len(a.Rows) != 8 { // 2 benches x 4 sizes
		t.Fatalf("rows: %d", len(a.Rows))
	}
	if !strings.Contains(a.String(), "AGB size sweep") {
		t.Fatal("render missing header")
	}
}

func TestEvictSweep(t *testing.T) {
	a := EvictSweep(tiny())
	if len(a.Rows) != 8 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.Entries == 16 && r.Stalls != 0 {
			t.Errorf("%s: 16-entry eviction buffer should see no pressure (stalls=%d)", r.Bench, r.Stalls)
		}
	}
}

func TestAGBOrganizations(t *testing.T) {
	a := AGBOrganizations(tiny())
	if len(a.Rows) != 2 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
}

func TestBSPEpochSweep(t *testing.T) {
	a := BSPEpochSweep(tiny())
	if len(a.Rows) != 6 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
	// Shrinking the epoch to 80 stores should not be slower than 10,000.
	byBench := map[string]map[int]float64{}
	for _, r := range a.Rows {
		if byBench[r.Bench] == nil {
			byBench[r.Bench] = map[int]float64{}
		}
		byBench[r.Bench][r.EpochStores] = r.VsTSOPER
	}
	for bench, m := range byBench {
		if m[80] > m[10000]*1.05 {
			t.Errorf("%s: 80-store epochs (%.3f) slower than 10000-store (%.3f)", bench, m[80], m[10000])
		}
	}
}

func TestSLCOverhead(t *testing.T) {
	a := SLCOverhead(tiny())
	if len(a.Rows) != 2 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
	// SLC should be within a few percent of MESI, never wildly off.
	if a.Avg < 0.95 || a.Avg > 1.15 {
		t.Fatalf("SLC/MESI = %.3f, expected near-parity (~1.03 in the paper)", a.Avg)
	}
	if !strings.Contains(a.String(), "MESI") {
		t.Fatal("render missing header")
	}
}

func TestCoherenceBackendMatrix(t *testing.T) {
	// Every system accepts every coherence backend: retention of dirty and
	// invalid-pending copies is governed by the system (destructive()),
	// while the backend only sets invalidation timing and the source of
	// persist-ordering answers.
	for _, sys := range machine.Systems() {
		for _, coh := range machine.Coherences() {
			cfg := machine.TableI(sys)
			cfg.Coherence = coh
			if _, err := machine.New(cfg); err != nil {
				t.Errorf("%v on %v rejected: %v", sys, coh, err)
			}
		}
	}
	if machine.CoherenceMESI.String() != "mesi" ||
		machine.CoherenceSLC.String() != "slc" ||
		machine.CoherenceTardis.String() != "tardis" {
		t.Fatal("coherence kind names")
	}
	cfg := machine.TableI(machine.TSOPER)
	cfg.Coherence = machine.CoherenceKind(99)
	if _, err := machine.New(cfg); err == nil {
		t.Fatal("unknown coherence backend must be rejected")
	}
}

func TestWhisper(t *testing.T) {
	a := Whisper(tiny())
	if len(a.Rows) != 2 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.SelectPersists >= r.FullPersists {
			t.Errorf("%s: selective persists %d not below full %d",
				r.Bench, r.SelectPersists, r.FullPersists)
		}
	}
	if !strings.Contains(a.String(), "Selective persistency") {
		t.Fatal("render missing header")
	}
}

func TestTableIText(t *testing.T) {
	out := TableIText()
	for _, want := range []string{"Table I", "Atomic Group Buffer", "NVM", "SLC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestProtocolComplexityText(t *testing.T) {
	out := ProtocolComplexityText()
	if !strings.Contains(out, "SLC") || !strings.Contains(out, "MOESI_CMP_directory") {
		t.Fatalf("complexity table:\n%s", out)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Scale != 1.0 || !o.Parallel {
		t.Fatalf("defaults: %+v", o)
	}
	if len(o.benchmarks()) != 22 {
		t.Fatalf("default roster: %d", len(o.benchmarks()))
	}
	bad := Options{Scale: -1}
	if bad.scale() != 1.0 {
		t.Fatal("negative scale should clamp")
	}
}
