package harness

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/machine"
)

// TableIText renders the simulated system configuration (the paper's
// Table I) as the simulator actually instantiates it.
func TableIText() string {
	cfg := machine.TableI(machine.TSOPER)
	var b strings.Builder
	b.WriteString("Table I: system configuration (as simulated)\n")
	fmt.Fprintf(&b, "  Cores                  %d in-order, TSO store buffer %d entries\n",
		cfg.Cores, cfg.StoreBufferEntries)
	fmt.Fprintf(&b, "  Private cache          %d KB, %d-way, %d-cycle hit (L1 folded in)\n",
		cfg.PrivGeom.SizeBytes/1024, cfg.PrivGeom.Ways, cfg.PrivHit)
	fmt.Fprintf(&b, "  Shared LLC             %d MB, %d-way, %d banks, %d-cycle access\n",
		cfg.LLCGeom.SizeBytes/(1024*1024), cfg.LLCGeom.Ways, cfg.LLCBanks, cfg.LLCLatency)
	fmt.Fprintf(&b, "  Coherence              SLC sharing-list protocol (directory at LLC banks)\n")
	fmt.Fprintf(&b, "  Atomic Group Buffer    %d slices x %d lines (%.1f KB each), %d-cycle transfer, %d-cycle arbiter\n",
		cfg.AGB.Slices, cfg.AGB.LinesPerSlice, float64(cfg.AGB.LinesPerSlice)*64/1024,
		cfg.AGB.TransferLatency, cfg.AGB.ArbiterLatency)
	fmt.Fprintf(&b, "  AG size limit          %d cachelines\n", cfg.AGLimit)
	fmt.Fprintf(&b, "  Eviction buffer        %d entries per private cache\n", cfg.EvictBufEntries)
	fmt.Fprintf(&b, "  NVM                    %d ranks, %d/%d-cycle write/read latency, %d/%d-cycle occupancy\n",
		cfg.NVM.Ranks, cfg.NVM.WriteLatency, cfg.NVM.ReadLatency,
		cfg.NVM.WriteOccupancy, cfg.NVM.ReadOccupancy)
	fmt.Fprintf(&b, "  NoC                    %dx%d mesh, %d-cycle hops\n",
		cfg.NoC.Width, cfg.NoC.Height, cfg.NoC.HopLatency)
	fmt.Fprintf(&b, "  BSP epoch              %d stores\n", cfg.BSPEpochStores)
	return b.String()
}

// ProtocolComplexityText renders the §V SLICC complexity comparison.
func ProtocolComplexityText() string {
	slc := coherence.SLCComplexity()
	tardis := coherence.TardisComplexity()
	moesi := coherence.MOESIComplexity()
	var b strings.Builder
	b.WriteString("Protocol complexity (SLICC metrics, §V)\n")
	fmt.Fprintf(&b, "  %-22s %11s %16s %8s %12s\n", "protocol", "base states", "transient states", "actions", "transitions")
	for _, c := range []coherence.Complexity{slc, tardis, moesi} {
		fmt.Fprintf(&b, "  %-22s %11d %16d %8d %12d\n",
			c.Protocol, c.BaseStates, c.TransientStates, c.Actions, c.Transitions)
	}
	return b.String()
}
