package harness

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// sweepBenches picks a small, contention-diverse subset for ablations.
func sweepBenches(o Options) []trace.Profile {
	if len(o.Benchmarks) > 0 {
		return o.benchmarks()
	}
	var out []trace.Profile
	for _, name := range []string{"radix", "ocean_cp", "bodytrack", "dedup"} {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// AGBSweepResult reports the AGB-size ablation (§I: the 10 KB AGB can be
// cut to one eighth — 1.25 KB per channel — without significant impact).
type AGBSweepResult struct {
	Rows []AGBSweepRow
}

// AGBSweepRow is one (benchmark, AGB size) sample.
type AGBSweepRow struct {
	Bench string
	// LinesPerSlice is the AGB slice capacity; AGLimit tracks it (an AG
	// cannot exceed what the buffer guarantees atomic).
	LinesPerSlice int
	Cycles        uint64
	AGBStalls     uint64
}

// AGBSweep runs TSOPER across AGB slice capacities.
func AGBSweep(o Options) *AGBSweepResult {
	sizes := []int{160, 80, 40, 20} // 10 KB down to 1.25 KB per channel
	out := &AGBSweepResult{}
	for _, b := range sweepBenches(o) {
		for _, sz := range sizes {
			cfg := machine.TableI(machine.TSOPER)
			cfg.AGB.LinesPerSlice = sz
			if cfg.AGLimit > sz {
				cfg.AGLimit = sz / 2
				if cfg.AGLimit == 0 {
					cfg.AGLimit = 1
				}
			}
			r := RunConfig(b, cfg, o)
			out.Rows = append(out.Rows, AGBSweepRow{
				Bench: b.Name, LinesPerSlice: sz,
				Cycles: uint64(r.Cycles), AGBStalls: r.AGBStalls,
			})
		}
	}
	return out
}

func (a *AGBSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AGB size sweep (TSOPER): slice capacity vs execution time\n")
	var base uint64
	for _, r := range a.Rows {
		if r.LinesPerSlice == 160 {
			base = r.Cycles
		}
		fmt.Fprintf(&b, "  %-12s %4d lines/slice (%5.2f KB): %10d cycles (%.3fx)  stalls=%d\n",
			r.Bench, r.LinesPerSlice, float64(r.LinesPerSlice)*64/1024,
			r.Cycles, float64(r.Cycles)/float64(base), r.AGBStalls)
	}
	return b.String()
}

// EvictSweepResult reports the eviction-buffer depth ablation (§III-B: 16
// entries never experience pressure).
type EvictSweepResult struct {
	Rows []EvictSweepRow
}

// EvictSweepRow is one (benchmark, depth) sample.
type EvictSweepRow struct {
	Bench   string
	Entries int
	Cycles  uint64
	Max     int
	Stalls  uint64
}

// evictBenches picks benchmarks whose working sets exceed the private
// cache, so the eviction buffer actually sees traffic.
func evictBenches(o Options) []trace.Profile {
	if len(o.Benchmarks) > 0 {
		return o.benchmarks()
	}
	var out []trace.Profile
	for _, name := range []string{"blackscholes", "swaptions", "canneal", "radix"} {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// EvictSweep runs TSOPER across eviction-buffer depths.
func EvictSweep(o Options) *EvictSweepResult {
	out := &EvictSweepResult{}
	for _, b := range evictBenches(o) {
		for _, n := range []int{16, 8, 4, 2} {
			cfg := machine.TableI(machine.TSOPER)
			cfg.EvictBufEntries = n
			r := RunConfig(b, cfg, o)
			out.Rows = append(out.Rows, EvictSweepRow{
				Bench: b.Name, Entries: n, Cycles: uint64(r.Cycles),
				Max: r.EvictBufMax, Stalls: r.EvictBufStalls,
			})
		}
	}
	return out
}

func (a *EvictSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Eviction buffer sweep (TSOPER)\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-12s %2d entries: %10d cycles  max-occupancy=%d stalls=%d\n",
			r.Bench, r.Entries, r.Cycles, r.Max, r.Stalls)
	}
	return b.String()
}

// AGBOrgResult compares the centralized and distributed AGB organizations
// of §II-C at equal total capacity.
type AGBOrgResult struct {
	Rows []AGBOrgRow
}

// AGBOrgRow is one benchmark's comparison.
type AGBOrgRow struct {
	Bench                    string
	Centralized, Distributed uint64
}

// AGBOrganizations runs the organization comparison.
func AGBOrganizations(o Options) *AGBOrgResult {
	out := &AGBOrgResult{}
	for _, b := range sweepBenches(o) {
		central := machine.TableI(machine.TSOPER)
		central.AGB.Slices = 1
		central.AGB.LinesPerSlice = 1280 // same total capacity
		rc := RunConfig(b, central, o)
		rd := RunOne(b, machine.TSOPER, o)
		out.Rows = append(out.Rows, AGBOrgRow{
			Bench: b.Name, Centralized: uint64(rc.Cycles), Distributed: uint64(rd.Cycles),
		})
	}
	return out
}

func (a *AGBOrgResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AGB organization (TSOPER, equal capacity): centralized vs distributed\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-12s centralized %10d cycles   distributed %10d cycles (%.3fx)\n",
			r.Bench, r.Centralized, r.Distributed, float64(r.Distributed)/float64(r.Centralized))
	}
	return b.String()
}

// SLCOverheadResult quantifies SLC's coherence cost against a conventional
// MESI-style directory on the non-persistent baseline (§V: the paper
// confirms a ~3% overhead, to be paid only on persistent addresses in a
// hybrid deployment).
type SLCOverheadResult struct {
	Rows []SLCOverheadRow
	Avg  float64
}

// SLCOverheadRow is one benchmark's SLC-vs-MESI baseline comparison.
type SLCOverheadRow struct {
	Bench      string
	MESICycles uint64
	SLCCycles  uint64
}

// SLCOverhead runs the coherence-protocol comparison.
func SLCOverhead(o Options) *SLCOverheadResult {
	out := &SLCOverheadResult{}
	var ratios []float64
	for _, b := range o.benchmarks() {
		slcRun := RunOne(b, machine.Baseline, o)
		cfg := machine.TableI(machine.Baseline)
		cfg.Coherence = machine.CoherenceMESI
		mesiRun := RunConfig(b, cfg, o)
		out.Rows = append(out.Rows, SLCOverheadRow{
			Bench: b.Name, MESICycles: uint64(mesiRun.Cycles), SLCCycles: uint64(slcRun.Cycles),
		})
		ratios = append(ratios, float64(slcRun.Cycles)/float64(mesiRun.Cycles))
	}
	out.Avg = mean(ratios)
	return out
}

func (a *SLCOverheadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLC coherence overhead vs MESI-style directory (baseline, no persistency)\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-14s MESI %10d  SLC %10d  (%.3fx)\n",
			r.Bench, r.MESICycles, r.SLCCycles, float64(r.SLCCycles)/float64(r.MESICycles))
	}
	fmt.Fprintf(&b, "  %-14s SLC/MESI = %.3fx (paper: ~1.03x)\n", "average", a.Avg)
	return b.String()
}

// WhisperResult reports the selective-persistency study: the §V baseline
// discussion notes that suites like WHISPER persist only ~4% of stores, so
// a hybrid that applies the persistency machinery only to persistent
// addresses recovers most of the (already small) TSOPER overhead.
type WhisperResult struct {
	Rows []WhisperRow
}

// WhisperRow compares full-coverage and shared-region-only persistency.
type WhisperRow struct {
	Bench                        string
	BaselineCycles               uint64
	FullCycles, SelectiveCycles  uint64
	FullPersists, SelectPersists uint64
}

// Whisper runs the selective-persistency comparison.
func Whisper(o Options) *WhisperResult {
	out := &WhisperResult{}
	shared := func(l mem.Line) bool {
		return l >= mem.LineOf(trace.SharedBase) && l < mem.LineOf(trace.PrivateBase)
	}
	for _, b := range sweepBenches(o) {
		base := RunOne(b, machine.Baseline, o)
		full := RunOne(b, machine.TSOPER, o)
		cfg := machine.TableI(machine.TSOPER)
		cfg.PersistFilter = shared
		sel := RunConfig(b, cfg, o)
		out.Rows = append(out.Rows, WhisperRow{
			Bench:           b.Name,
			BaselineCycles:  uint64(base.Cycles),
			FullCycles:      uint64(full.Cycles),
			SelectiveCycles: uint64(sel.Cycles),
			FullPersists:    full.TotalPersistWrites,
			SelectPersists:  sel.TotalPersistWrites,
		})
	}
	return out
}

func (a *WhisperResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selective persistency (WHISPER-style hybrid): persist shared region only\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-12s full %.3fx baseline (%d persists)   selective %.3fx (%d persists)\n",
			r.Bench,
			float64(r.FullCycles)/float64(r.BaselineCycles), r.FullPersists,
			float64(r.SelectiveCycles)/float64(r.BaselineCycles), r.SelectPersists)
	}
	return b.String()
}

// BSPEpochResult reports the BSP epoch-size ablation (§V-B: shrinking
// BSP+SLC+AGB epochs to 80 lines closes most of the residual gap).
type BSPEpochResult struct {
	Rows []BSPEpochRow
}

// BSPEpochRow is one (benchmark, epoch size) sample, normalized to TSOPER.
type BSPEpochRow struct {
	Bench       string
	EpochStores int
	VsTSOPER    float64
}

// epochBenches adds low-conflict benchmarks: BSP breaks epochs on every
// conflict, so the configured epoch length only binds where conflicts are
// rare enough for epochs to reach it.
func epochBenches(o Options) []trace.Profile {
	if len(o.Benchmarks) > 0 {
		return o.benchmarks()
	}
	var out []trace.Profile
	for _, name := range []string{"blackscholes", "swaptions", "bodytrack", "ocean_cp"} {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// BSPEpochSweep runs BSP+SLC+AGB across epoch sizes.
func BSPEpochSweep(o Options) *BSPEpochResult {
	out := &BSPEpochResult{}
	for _, b := range epochBenches(o) {
		ts := RunOne(b, machine.TSOPER, o)
		for _, ep := range []int{10000, 1000, 80} {
			cfg := machine.TableI(machine.BSPSLCAGB)
			cfg.BSPEpochStores = ep
			r := RunConfig(b, cfg, o)
			out.Rows = append(out.Rows, BSPEpochRow{
				Bench: b.Name, EpochStores: ep,
				VsTSOPER: float64(r.Cycles) / float64(ts.Cycles),
			})
		}
	}
	return out
}

func (a *BSPEpochResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BSP+SLC+AGB epoch-size sweep, normalized to TSOPER (§V-B)\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-12s epoch %6d stores: %.3fx TSOPER\n", r.Bench, r.EpochStores, r.VsTSOPER)
	}
	return b.String()
}
