package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

// goldenRow pins the summary statistics of one benchmark x system cell.
// Any change here means the simulator's timing or bookkeeping moved — the
// diff should be explained in the commit that regenerates the file.
type goldenRow struct {
	Benchmark       string `json:"benchmark"`
	System          string `json:"system"`
	Cycles          uint64 `json:"cycles"`
	DrainCycles     uint64 `json:"drain_cycles"`
	Stores          uint64 `json:"stores"`
	Loads           uint64 `json:"loads"`
	CoherenceWrites uint64 `json:"coherence_writes"`
	PersistWrites   uint64 `json:"persist_writes"`
	NVMWrites       uint64 `json:"nvm_writes"`
	Groups          int    `json:"groups"`
	EvictBufMax     int    `json:"evict_buf_max"`
	AGBStalls       uint64 `json:"agb_stalls"`
	AGBOccupancyMax uint64 `json:"agb_occupancy_max"`
}

// goldenSystems covers the conventional baseline (MESI timing), the strict
// strawman, and the paper's system.
func goldenSystems() []struct {
	name string
	cfg  machine.Config
} {
	mesi := machine.TableI(machine.Baseline)
	mesi.Coherence = machine.CoherenceMESI
	return []struct {
		name string
		cfg  machine.Config
	}{
		{"mesi", mesi},
		{"stw", machine.TableI(machine.STW)},
		{"tsoper", machine.TableI(machine.TSOPER)},
	}
}

func goldenRows(t *testing.T) []goldenRow {
	t.Helper()
	o := Options{Scale: 0.05, Seed: 42}
	var rows []goldenRow
	for _, benchName := range []string{"radix", "ocean_cp", "dedup"} {
		bench, ok := trace.ByName(benchName)
		if !ok {
			t.Fatalf("benchmark %q missing from roster", benchName)
		}
		for _, sys := range goldenSystems() {
			r := RunConfig(bench, sys.cfg, o)
			rows = append(rows, goldenRow{
				Benchmark:       benchName,
				System:          sys.name,
				Cycles:          uint64(r.Cycles),
				DrainCycles:     uint64(r.DrainCycles),
				Stores:          r.Stores,
				Loads:           r.Loads,
				CoherenceWrites: r.CoherenceWrites,
				PersistWrites:   r.PersistWrites,
				NVMWrites:       r.NVMWrites,
				Groups:          len(r.Groups),
				EvictBufMax:     r.EvictBufMax,
				AGBStalls:       r.AGBStalls,
				AGBOccupancyMax: r.Set.Dist("agb.occupancy_lines").Max(),
			})
		}
	}
	return rows
}

// TestGoldenSummaryStats locks the simulator's observable behavior: 3
// benchmarks x {MESI, STW, TSOPER} at scale 0.05 / seed 42 must reproduce
// testdata/golden.json exactly. Regenerate deliberately with
//
//	go test ./internal/harness/ -run TestGoldenSummaryStats -update
func TestGoldenSummaryStats(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	rows := goldenRows(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d rows", path, len(rows))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want []goldenRow
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(rows) {
		t.Fatalf("golden file has %d rows, simulator produced %d (regenerate with -update)", len(want), len(rows))
	}
	for i, got := range rows {
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("%s/%s drifted:\n  got  %+v\n  want %+v", got.Benchmark, got.System, got, want[i])
		}
	}
}

// The golden rows must not depend on scheduling or environment: two
// back-to-back runs in-process must agree field for field.
func TestGoldenRowsDeterministic(t *testing.T) {
	a := goldenRows(t)
	b := goldenRows(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("summary stats differ between identical runs")
	}
}
