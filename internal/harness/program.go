package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sim"
)

// envFor maps a machine configuration onto the program compiler's target
// shape: the config's core count and NVM rank interleave.
func envFor(cfg machine.Config) program.Env {
	return program.Env{Cores: cfg.Cores, Ranks: cfg.NVM.Ranks}
}

// RunProgram simulates a workload program under one system with the Table I
// configuration. Options.Scale is ignored — a program's size is spelled out
// by its instructions (the profile instruction carries its own scale).
func RunProgram(p *program.Program, kind machine.SystemKind, o Options) *machine.Results {
	r, err := RunProgramConfigChecked(p, machine.TableI(kind), o)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return r
}

// RunProgramChecked is the job-shaped RunProgram.
func RunProgramChecked(p *program.Program, kind machine.SystemKind, o Options) (*machine.Results, error) {
	return RunProgramConfigChecked(p, machine.TableI(kind), o)
}

// RunProgramConfigChecked compiles the program for the configuration's
// shape and runs it, returning validation, compile, configuration, and
// wedged-run failures as errors. Determinism matches the profile path: the
// result is a pure function of (program, config, seed, scheduler).
func RunProgramConfigChecked(p *program.Program, cfg machine.Config, o Options) (*machine.Results, error) {
	if o.Scheduler != sim.SchedulerWheel {
		cfg.Scheduler = o.Scheduler
	}
	if o.Timeout > 0 {
		cfg.WatchdogHorizon = o.Timeout
	}
	w, err := p.Compile(envFor(cfg), o.Seed)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return runWorkload(cfg, w, o)
}

// EstimateProgram is the admission-control view: the program's cost for the
// configuration's machine shape, with no compilation or simulation.
func EstimateProgram(p *program.Program, cfg machine.Config) (program.Estimate, error) {
	return p.Estimate(envFor(cfg))
}
