package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
)

// ProtocolRow is one benchmark × coherence-backend cell of the bake-off.
type ProtocolRow struct {
	Bench    string `json:"bench"`
	Protocol string `json:"protocol"`
	// Cycles is the execution horizon, DrainCycles the drain-complete
	// horizon (the strict-persistency figure of merit).
	Cycles      uint64 `json:"cycles"`
	DrainCycles uint64 `json:"drain_cycles"`
	// CoherenceWrites and PersistWrites expose the traffic the protocols
	// trade: SLC pays serial invalidation walks, tardis pays none but
	// renews expired leases instead.
	CoherenceWrites uint64 `json:"coherence_writes"`
	PersistWrites   uint64 `json:"persist_writes"`
	// Renewals counts tardis lease-renewal round trips (0 elsewhere).
	Renewals uint64 `json:"renewals,omitempty"`
	// VsSLC is DrainCycles relative to the SLC cell of the same benchmark.
	VsSLC float64 `json:"vs_slc"`
}

// ProtocolBakeoffResult is the three-backend comparison artifact: the same
// strict-persistency system and workloads on MESI, SLC, and tardis.
type ProtocolBakeoffResult struct {
	System string        `json:"system"`
	Rows   []ProtocolRow `json:"rows"`
	// AvgVsSLC maps protocol name to its mean drain-horizon ratio vs SLC.
	AvgVsSLC map[string]float64 `json:"avg_vs_slc"`
}

// ProtocolBakeoff runs every benchmark under TSOPER on each coherence
// backend. Durable semantics are identical across backends (the litmus and
// crashmc gates pin that); what the bake-off measures is the timing cost of
// each protocol's ordering machinery.
func ProtocolBakeoff(o Options) *ProtocolBakeoffResult {
	out := &ProtocolBakeoffResult{System: machine.TSOPER.String(), AvgVsSLC: map[string]float64{}}
	ratios := map[string][]float64{}
	for _, b := range o.benchmarks() {
		slcDrain := uint64(0)
		for _, proto := range machine.Coherences() {
			po := o
			po.Protocol = proto
			r := RunOne(b, machine.TSOPER, po)
			row := ProtocolRow{
				Bench:           b.Name,
				Protocol:        proto.String(),
				Cycles:          uint64(r.Cycles),
				DrainCycles:     uint64(r.DrainCycles),
				CoherenceWrites: r.CoherenceWrites,
				PersistWrites:   r.TotalPersistWrites,
				Renewals:        r.Set.CounterValue("tardis.renewals"),
			}
			if proto == machine.CoherenceSLC {
				slcDrain = row.DrainCycles
			}
			out.Rows = append(out.Rows, row)
		}
		// Coherences() orders SLC before tardis but after MESI; fill the
		// ratios in a second pass so every row normalizes to the SLC cell.
		for i := len(out.Rows) - len(machine.Coherences()); i < len(out.Rows); i++ {
			row := &out.Rows[i]
			row.VsSLC = float64(row.DrainCycles) / float64(slcDrain)
			ratios[row.Protocol] = append(ratios[row.Protocol], row.VsSLC)
		}
	}
	for proto, rs := range ratios {
		out.AvgVsSLC[proto] = mean(rs)
	}
	return out
}

func (a *ProtocolBakeoffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coherence-protocol bake-off (%s, drain horizon)\n", a.System)
	for i, r := range a.Rows {
		if i%len(machine.Coherences()) == 0 {
			fmt.Fprintf(&b, "  %s\n", r.Bench)
		}
		fmt.Fprintf(&b, "    %-7s exec %10d  drain %10d  coh-writes %8d  persists %8d",
			r.Protocol, r.Cycles, r.DrainCycles, r.CoherenceWrites, r.PersistWrites)
		if r.Renewals > 0 {
			fmt.Fprintf(&b, "  renewals %7d", r.Renewals)
		}
		fmt.Fprintf(&b, "  (%.3fx vs slc)\n", r.VsSLC)
	}
	for _, proto := range machine.Coherences() {
		fmt.Fprintf(&b, "  average %-7s %.3fx vs slc\n", proto.String(), a.AvgVsSLC[proto.String()])
	}
	return b.String()
}

// protocolBenchResult mirrors cmd/benchjson's entry shape so the bake-off
// lands in the same results/ tracking format as the benchmarks.
type protocolBenchResult struct {
	NsPerOp    float64 `json:"ns_per_op"`
	Iterations int64   `json:"iterations"`
}

// BenchEntries renders the bake-off as a benchjson-style map keyed
// Protocols/<bench>/<protocol>, with ns_per_op carrying the simulated drain
// horizon.
func (a *ProtocolBakeoffResult) BenchEntries() map[string]protocolBenchResult {
	out := make(map[string]protocolBenchResult)
	for _, r := range a.Rows {
		out[fmt.Sprintf("Protocols/%s/%s", r.Bench, r.Protocol)] =
			protocolBenchResult{NsPerOp: float64(r.DrainCycles), Iterations: 1}
	}
	return out
}

// WriteBenchJSONFile writes BenchEntries to path, benchjson-compatible.
func (a *ProtocolBakeoffResult) WriteBenchJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a.BenchEntries()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
