package harness

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func bench(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return p
}

// A timeout-armed run of a healthy machine must finish and produce exactly
// the bytes of an unarmed run: the watchdog is an observer, not a knob.
func TestTimeoutPreservesResults(t *testing.T) {
	p := bench(t, "radix")
	o := Options{Scale: 0.05, Seed: 7}
	plain, err := RunOneChecked(p, machine.TSOPER, o)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	o.Timeout = 50_000
	armed, err := RunOneChecked(p, machine.TSOPER, o)
	if err != nil {
		t.Fatalf("armed run: %v", err)
	}
	var a, b bytes.Buffer
	if err := plain.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := armed.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("watchdog-armed run's snapshot differs from the plain run")
	}
}

// Timeout must override a config-level horizon and flow through RunConfig.
func TestTimeoutOverridesConfigHorizon(t *testing.T) {
	p := bench(t, "radix")
	cfg := machine.TableI(machine.TSOPER)
	cfg.WatchdogHorizon = 1_000_000
	r, err := RunConfigChecked(p, cfg, Options{Scale: 0.05, Seed: 7, Timeout: 60_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Cycles == 0 {
		t.Fatal("empty run")
	}
}

// An invalid configuration must come back as an error, not a panic.
func TestRunConfigCheckedBadConfig(t *testing.T) {
	cfg := machine.TableI(machine.TSOPER)
	cfg.Cores = 0
	if _, err := RunConfigChecked(bench(t, "radix"), cfg, Options{Scale: 0.05}); err == nil {
		t.Fatal("expected configuration error")
	}
}

// RunMatrix with a timeout set must still produce every cell (the watchdog
// stays silent on healthy runs at any worker width).
func TestRunMatrixWithTimeout(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 7, Workers: 2, Timeout: sim.Time(100_000)}
	out := RunMatrix([]trace.Profile{bench(t, "radix")},
		[]machine.SystemKind{machine.Baseline, machine.TSOPER}, o)
	if len(out["radix"]) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(out["radix"]))
	}
}
